/**
 * @file
 * sweep_all — run the full paper evaluation (Figures 3-8, Table 2,
 * and the stride-extension ablation) as one parallel sweep and emit a
 * single JSON results file. Every grid entry is an independent
 * ExperimentConfig; compilation and train-profiling are memoized
 * across the whole sweep, and results are bit-identical for any
 * --jobs value (see sim/sweep.hh).
 *
 *   sweep_all --jobs 8 --out results.json
 *   sweep_all --insts 50000 --profile-insts 50000 --figures fig05,table2
 *   sweep_all --workers 4 --out results.json     # multi-process shards
 *
 * `--workers N` runs the grid across N forked worker processes driven
 * by the work-stealing coordinator in sim/shard.hh (each worker is
 * this same binary in hidden `--worker` mode); results come back
 * through per-worker journals and merge into the identical report a
 * single-process run would write.
 *
 * Run `sweep_all --help` for the full option set.
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/subprocess.hh"
#include "sim/journal.hh"
#include "sim/runner.hh"
#include "sim/shard.hh"
#include "sim/sweep.hh"
#include "vp/registry.hh"
#include "workloads/workloads.hh"

using namespace rvp;

namespace
{

struct Options
{
    unsigned jobs = 0;
    std::string out = "sweep_results.json";
    std::string benchOut = "BENCH_perf.json";
    std::uint64_t insts = 400'000;
    std::uint64_t profileInsts = 300'000;
    std::vector<std::string> workloads;   // empty = all nine
    std::vector<std::string> figures;     // empty = all
    bool fullStats = false;
    bool quiet = false;
    /** Per-run trace path prefix; empty = tracing off. */
    std::string tracePrefix;
    std::uint64_t traceSample = 64;
    bool hist = false;
    /** Committed-stream cache budget; 0 = always live emulation. */
    std::uint64_t streamCacheBytes =
        WorkloadCache::defaultStreamCacheBytes;
    /** Group runs by stream key and replay each decode once
     *  (sim/batchrun.hh); results are bit-identical either way. */
    bool batchReplay = true;
    /** Load <out>.journal and skip runs journaled as successful. */
    bool resume = false;
    /** Per-attempt wall-clock watchdog, seconds; 0 = off. */
    double runDeadline = 0.0;
    /** Exit 0 even when runs failed after their retry. */
    bool keepGoing = false;
    /** Disable the crash-safety journal entirely. */
    bool noJournal = false;
    /** Zero host-timing fields and omit the cache block in the output
     *  so a resumed sweep's JSON is byte-identical to an
     *  uninterrupted one (used by the kill-and-resume test). */
    bool stableOutput = false;
    /** Worker processes for a sharded sweep; 0 = single process. */
    unsigned workers = 0;
    /** Batched-replay group chunk bound (SweepOptions) and sharded
     *  work-unit size bound; 0 = unchunked. */
    unsigned maxBatchGroup = 16;
    /** Print the partitioned work units and exit (shard debugging). */
    bool dryRun = false;
    /** Hidden: act as a sharded-sweep worker on stdin/stdout. */
    bool workerMode = false;
    /** Hidden: the journal this worker appends its runs to. */
    std::string workerJournal;
};

/** One grid entry: a figure's variant applied to one workload. */
struct GridEntry
{
    std::string figure;
    std::string variant;
    ExperimentConfig config;
};

void
usage()
{
    std::cout <<
        "sweep_all — full paper evaluation on the parallel sweep "
        "scheduler\n"
        "\n"
        "  --jobs N, -j N      worker threads (default: all cores)\n"
        "  --out FILE          JSON output path (sweep_results.json)\n"
        "  --bench-out FILE    simulator-throughput report path\n"
        "                      (BENCH_perf.json)\n"
        "  --insts N           committed instructions per run (400000)\n"
        "  --profile-insts N   profiling budget per workload (300000)\n"
        "  --workloads CSV     workload filter (default: all nine)\n"
        "  --figures CSV       figure filter: fig03,fig04,fig05,fig06,\n"
        "                      fig07,fig08,table2,stride (default: all);\n"
        "                      opt-in extras (never in the default set):\n"
        "                      headtohead — predictor-zoo grid (LVP vs\n"
        "                      RVP vs stride/balcvp/fcm/oracle)\n"
        "  --list-vp           list registered predictor schemes + params\n"
        "  --full-stats        embed the complete per-run stat dumps\n"
        "  --trace-out PREFIX  write one Chrome trace JSON per run to\n"
        "                      PREFIX<figure>-<variant>-<workload>"
        ".trace.json\n"
        "  --trace-sample N    trace every Nth instruction (default: 64)\n"
        "  --hist              collect latency/occupancy histograms\n"
        "                      (visible with --full-stats)\n"
        "  --stream-cache-bytes N\n"
        "                      committed-stream replay cache budget\n"
        "                      (default 256 MiB; 0 disables replay)\n"
        "  --batch-replay      group runs sharing a captured stream and\n"
        "                      decode it once for the whole group\n"
        "                      (default; bit-identical to solo replay)\n"
        "  --no-batch-replay   one decode pass per run instead\n"
        "  --resume            skip runs already journaled as\n"
        "                      successful in <out>.journal (a killed\n"
        "                      sweep picks up where it left off)\n"
        "  --run-deadline S    per-run wall-clock watchdog in seconds\n"
        "                      (fractions OK; 0 = off); an overrunning\n"
        "                      run fails and is retried degraded\n"
        "  --keep-going        exit 0 even when runs failed (failures\n"
        "                      are still reported and journaled)\n"
        "  --no-journal        do not write the crash-safety journal\n"
        "  --stable-output     zero host-timing fields and omit cache\n"
        "                      stats so resumed and uninterrupted\n"
        "                      sweeps emit byte-identical JSON\n"
        "  --workers N         shard the grid across N forked worker\n"
        "                      processes with work stealing (0 =\n"
        "                      single process; results are identical)\n"
        "  --max-batch-group N bound batched-replay groups and sharded\n"
        "                      work units to N runs (default 16;\n"
        "                      0 = unchunked; bit-identical)\n"
        "  --dry-run           print the partitioned work units (run\n"
        "                      keys per unit) and exit\n"
        "  --quiet             suppress per-run progress lines\n";
}

[[noreturn]] void
die(const std::string &message)
{
    std::cerr << "sweep_all: " << message << " (try --help)\n";
    std::exit(1);
}

/** `git describe` label for bench rows; "unknown" outside a repo. */
std::string
gitDescribe()
{
    std::FILE *pipe =
        popen("git describe --always --dirty --tags 2>/dev/null", "r");
    if (!pipe)
        return "unknown";
    char buf[128];
    std::string out;
    while (std::fgets(buf, sizeof(buf), pipe))
        out += buf;
    int rc = pclose(pipe);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    if (rc != 0 || out.empty())
        return "unknown";
    return out;
}

/**
 * FNV-1a hash of every option that shapes the measured grid, so two
 * bench rows are throughput-comparable exactly when their hashes
 * match. --jobs, --stream-cache-bytes, and --batch-replay are
 * deliberately excluded: they change how fast the work is done, not
 * what work the sweep does, and comparing rows across them is the
 * point of the trail.
 */
std::string
configHash(const Options &opts)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const std::string &s) {
        for (unsigned char c : s) {
            h ^= c;
            h *= 1099511628211ull;
        }
        h ^= 0xff;   // field separator
        h *= 1099511628211ull;
    };
    mix("insts=" + std::to_string(opts.insts));
    mix("profile_insts=" + std::to_string(opts.profileInsts));
    mix("hist=" + std::to_string(opts.hist));
    for (const std::string &w : opts.workloads)
        mix("workload=" + w);
    for (const std::string &f : opts.figures)
        mix("figure=" + f);
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

bool
wants(const Options &opts, const std::string &figure)
{
    if (opts.figures.empty())
        return true;
    for (const std::string &f : opts.figures)
        if (f == figure)
            return true;
    return false;
}

/** The per-figure variant lists, mirroring the bench/ binaries. */
struct FigureSpec
{
    const char *figure;
    /** Workload filter for the figure (empty = the sweep's set). */
    std::vector<std::string> workloads;
    std::vector<std::pair<std::string,
                          std::function<void(ExperimentConfig &)>>>
        variants;
    /**
     * Opt-in figures run only when named in --figures, never as part
     * of the default "all" set — the default 308-run paper grid (and
     * its journal/report identity) must not change when extras are
     * added.
     */
    bool optIn = false;
};

std::vector<FigureSpec>
paperGrid()
{
    using C = ExperimentConfig;
    auto selective = [](C &c) {
        c.core.recovery = RecoveryPolicy::Selective;
    };
    auto lvp = [](C &c) { c.scheme = VpScheme::Lvp; };
    auto grp = [](C &c) { c.scheme = VpScheme::GabbayRp; };
    auto srvp = [](AssistLevel a) {
        return [a](C &c) {
            c.scheme = VpScheme::StaticRvp;
            c.assist = a;
        };
    };
    auto drvp = [](AssistLevel a) {
        return [a](C &c) {
            c.scheme = VpScheme::DynamicRvp;
            c.assist = a;
        };
    };
    auto all_insts = [](C &c) { c.loadsOnly = false; };
    auto compose = [](std::vector<std::function<void(C &)>> fns) {
        return [fns](C &c) {
            for (const auto &fn : fns)
                fn(c);
        };
    };

    std::vector<FigureSpec> grid;

    // Figure 3: static RVP, selective reissue, 80% threshold.
    auto thresh80 = [](C &c) { c.profileThreshold = 0.8; };
    auto fig03_base = compose({selective, thresh80});
    grid.push_back(
        {"fig03",
         {},
         {{"no_predict", fig03_base},
          {"lvp", compose({fig03_base, lvp})},
          {"srvp_same", compose({fig03_base, srvp(AssistLevel::Same)})},
          {"srvp_dead", compose({fig03_base, srvp(AssistLevel::Dead)})},
          {"srvp_live", compose({fig03_base, srvp(AssistLevel::Live)})},
          {"srvp_live_lv",
           compose({fig03_base, srvp(AssistLevel::LiveLv)})}}});

    // Figure 4: recovery mechanisms, srvp_dead, 90% threshold.
    auto thresh90 = [](C &c) { c.profileThreshold = 0.9; };
    auto recovery = [](RecoveryPolicy p) {
        return [p](C &c) { c.core.recovery = p; };
    };
    grid.push_back(
        {"fig04",
         {},
         {{"no_predict", thresh90},
          {"srvp_refetch",
           compose({thresh90, srvp(AssistLevel::Dead),
                    recovery(RecoveryPolicy::Refetch)})},
          {"srvp_reissue",
           compose({thresh90, srvp(AssistLevel::Dead),
                    recovery(RecoveryPolicy::Reissue)})},
          {"srvp_selective",
           compose({thresh90, srvp(AssistLevel::Dead), selective})}}});

    // Figure 5: dynamic RVP, loads only.
    grid.push_back(
        {"fig05",
         {},
         {{"no_predict", selective},
          {"lvp", compose({selective, lvp})},
          {"drvp", compose({selective, drvp(AssistLevel::Same)})},
          {"drvp_dead", compose({selective, drvp(AssistLevel::Dead)})},
          {"drvp_dead_lv",
           compose({selective, drvp(AssistLevel::DeadLv)})}}});

    // Figure 6: dynamic RVP, all register-writing instructions.
    grid.push_back(
        {"fig06",
         {},
         {{"no_predict", compose({selective, all_insts})},
          {"lvp_all", compose({selective, all_insts, lvp})},
          {"grp_all", compose({selective, all_insts, grp})},
          {"drvp_all",
           compose({selective, all_insts, drvp(AssistLevel::Same)})},
          {"drvp_all_dead",
           compose({selective, all_insts, drvp(AssistLevel::Dead)})},
          {"drvp_all_dead_lv",
           compose({selective, all_insts, drvp(AssistLevel::DeadLv)})}}});

    // Table 2: coverage/accuracy, all instructions.
    grid.push_back(
        {"table2",
         {},
         {{"drvp_dead",
           compose({selective, all_insts, drvp(AssistLevel::Dead)})},
          {"drvp_dead_lv",
           compose({selective, all_insts, drvp(AssistLevel::DeadLv)})},
          {"lvp", compose({selective, all_insts, lvp})},
          {"grp", compose({selective, all_insts, grp})}}});

    // Figure 7: realistic re-allocation (paper's four workloads).
    auto realloc_cfg = [](C &c) {
        c.scheme = VpScheme::DynamicRvp;
        c.realisticRealloc = true;
    };
    grid.push_back(
        {"fig07",
         {"hydro2d", "li", "mgrid", "su2cor"},
         {{"no_predict", compose({selective, all_insts})},
          {"lvp", compose({selective, all_insts, lvp})},
          {"drvp_all_noreallocate",
           compose({selective, all_insts, drvp(AssistLevel::Same)})},
          {"drvp_all_dead_lv_realloc",
           compose({selective, all_insts, realloc_cfg})},
          {"drvp_all_dead_lv_ideal",
           compose({selective, all_insts, drvp(AssistLevel::DeadLv)})}}});

    // Figure 8: the aggressive 16-wide core.
    auto wide = [](C &c) {
        std::uint64_t budget = c.core.maxInsts;
        c.core = CoreParams::aggressive16();
        c.core.maxInsts = budget;
        c.core.recovery = RecoveryPolicy::Selective;
        c.loadsOnly = false;
    };
    grid.push_back(
        {"fig08",
         {},
         {{"no_predict", wide},
          {"lvp_all", compose({wide, lvp})},
          {"drvp_all", compose({wide, drvp(AssistLevel::Same)})},
          {"drvp_all_dead_lv",
           compose({wide, drvp(AssistLevel::DeadLv)})}}});

    // Stride extension ablation.
    grid.push_back(
        {"stride",
         {},
         {{"no_predict", compose({selective, all_insts})},
          {"drvp_dead_lv",
           compose({selective, all_insts, drvp(AssistLevel::DeadLv)})},
          {"drvp_dead_lv_stride",
           compose(
               {selective, all_insts,
                drvp(AssistLevel::DeadLvStride)})}}});

    // Predictor-zoo head-to-head (opt-in: --figures headtohead). The
    // paper's storageless RVP against the storage-backed competition
    // from the registry — LVP, the 721sim-style stride predictor,
    // BALCVP, order-2 FCM — bracketed by the no-prediction baseline
    // and the oracle upper bound. All register-writing instructions,
    // selective reissue, default table geometries.
    auto zoo = [](VpScheme s) {
        return [s](C &c) { c.scheme = s; };
    };
    grid.push_back(
        {"headtohead",
         {},
         {{"no_predict", compose({selective, all_insts})},
          {"lvp_all", compose({selective, all_insts, lvp})},
          {"drvp_all",
           compose({selective, all_insts, drvp(AssistLevel::Same)})},
          {"drvp_all_dead_lv",
           compose({selective, all_insts, drvp(AssistLevel::DeadLv)})},
          {"stride_all",
           compose({selective, all_insts, zoo(VpScheme::Stride)})},
          {"balcvp_all",
           compose({selective, all_insts, zoo(VpScheme::Balcvp)})},
          {"fcm_all",
           compose({selective, all_insts, zoo(VpScheme::Fcm)})},
          {"oracle_all",
           compose({selective, all_insts, zoo(VpScheme::Oracle)})}},
         /*optIn=*/true});

    return grid;
}

// JSON escaping/number formatting come from sim/journal.hh
// (rvp::jsonEscape / rvp::jsonNum — %.17g round-trips exactly, which
// the resume path depends on).

/** Identity key of one grid entry within a sweep (the sweep-level
 *  options are pinned separately by configHash). */
std::string
runKey(const GridEntry &entry)
{
    std::uint64_t h = fnv1a(entry.figure);
    h = fnv1a(entry.variant, h);
    h = fnv1a(entry.config.workload, h);
    return hashHex(h);
}

// ---------------------------------------------------------------------
// Sharded-sweep support (sim/shard.hh): the same binary is both the
// coordinator (--workers N) and each worker (--worker, spawned by the
// coordinator with the full grid-shaping option set forwarded so both
// sides build the identical grid and sweep hash).
// ---------------------------------------------------------------------

std::string
joinCsv(const std::vector<std::string> &items)
{
    std::string out;
    for (const std::string &item : items) {
        if (!out.empty())
            out += ',';
        out += item;
    }
    return out;
}

/** This executable's path, for execv (no PATH search) in workers. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/**
 * argv for one worker process. Everything that shapes the grid or the
 * per-run behaviour is forwarded explicitly (workloads post-default,
 * so the worker's configHash matches even though the parent's CLI
 * left them implicit); execution-shape options (--workers, --resume,
 * --out) deliberately are not — the worker neither shards further nor
 * writes a report.
 */
std::vector<std::string>
workerArgs(const Options &opts, const std::string &bin,
           const std::string &journalPath)
{
    std::vector<std::string> args{bin,
                                  "--worker",
                                  "--worker-journal",
                                  journalPath,
                                  "--jobs",
                                  "1"};
    args.push_back("--insts");
    args.push_back(std::to_string(opts.insts));
    args.push_back("--profile-insts");
    args.push_back(std::to_string(opts.profileInsts));
    args.push_back("--workloads");
    args.push_back(joinCsv(opts.workloads));
    if (!opts.figures.empty()) {
        args.push_back("--figures");
        args.push_back(joinCsv(opts.figures));
    }
    if (opts.hist)
        args.push_back("--hist");
    if (!opts.tracePrefix.empty()) {
        args.push_back("--trace-out");
        args.push_back(opts.tracePrefix);
        args.push_back("--trace-sample");
        args.push_back(std::to_string(opts.traceSample));
    }
    args.push_back("--stream-cache-bytes");
    args.push_back(std::to_string(opts.streamCacheBytes));
    args.push_back(opts.batchReplay ? "--batch-replay"
                                    : "--no-batch-replay");
    if (opts.runDeadline > 0.0) {
        args.push_back("--run-deadline");
        args.push_back(jsonNum(opts.runDeadline));
    }
    args.push_back("--max-batch-group");
    args.push_back(std::to_string(opts.maxBatchGroup));
    if (opts.quiet)
        args.push_back("--quiet");
    return args;
}

/**
 * Worker main loop: hello on stdout, then serve `unit` requests until
 * `shutdown` or coordinator EOF. Every finished run is journaled
 * (fsync'd) BEFORE the unit's `done` frame goes out — the pipe is
 * control plane only, so a torn pipe never loses results. One
 * WorkloadCache persists across all units this worker is handed, so
 * compile/profile/stream sharing matches a single-process sweep's.
 */
int
runWorker(const Options &opts, const std::vector<GridEntry> &entries,
          const std::vector<std::string> &keys,
          const std::string &sweep_hash)
{
    ScopedSigpipeIgnore sigpipe;

    RunJournal journal(opts.workerJournal);
    if (!journal.ok())
        die("cannot open worker journal " + opts.workerJournal);
    // A respawned worker reuses its predecessor's journal; only write
    // the sweep header when no prior header survives.
    if (RunJournal::load(opts.workerJournal).sweepHash.empty())
        journal.appendSweepHeader(sweep_hash);

    WorkloadCache cache(opts.streamCacheBytes);

    if (!writeFrame(STDOUT_FILENO, encodeHello(sweep_hash,
                                               entries.size())))
        return 1;

    FrameReader reader(STDIN_FILENO);
    for (;;) {
        std::optional<std::string> payload;
        try {
            while (!(payload = reader.next())) {
                if (!reader.fill())
                    return 0;   // coordinator went away; journal holds
                                // everything already completed
            }
        } catch (const std::exception &e) {
            std::cerr << "sweep_all worker: bad frame: " << e.what()
                      << "\n";
            return 1;
        }
        ShardMsg msg;
        try {
            msg = decodeShardMsg(*payload);
        } catch (const std::exception &e) {
            std::cerr << "sweep_all worker: bad message: " << e.what()
                      << "\n";
            return 1;
        }
        if (msg.type == "shutdown") {
            writeFrame(STDOUT_FILENO, encodeBye(cache.stats()));
            return 0;
        }
        if (msg.type != "unit") {
            std::cerr << "sweep_all worker: unexpected message '"
                      << msg.type << "'\n";
            return 1;
        }
        std::vector<ExperimentConfig> configs;
        configs.reserve(msg.indices.size());
        for (std::size_t idx : msg.indices) {
            if (idx >= entries.size()) {
                std::cerr << "sweep_all worker: unit index " << idx
                          << " out of grid range\n";
                return 1;
            }
            configs.push_back(entries[idx].config);
        }
        SweepOptions sweep_opts;
        sweep_opts.jobs = 1;
        sweep_opts.progress = !opts.quiet;
        sweep_opts.streamCapture = opts.streamCacheBytes > 0;
        sweep_opts.streamCacheBytes = opts.streamCacheBytes;
        sweep_opts.runDeadline = opts.runDeadline;
        sweep_opts.batchReplay = opts.batchReplay;
        sweep_opts.maxBatchGroupRuns = opts.maxBatchGroup;
        sweep_opts.sharedCache = &cache;
        sweep_opts.onRunComplete = [&](std::size_t pi,
                                       const ExperimentResult &result,
                                       double seconds) {
            std::size_t i = msg.indices[pi];
            JournalRecord rec;
            rec.key = keys[i];
            rec.figure = entries[i].figure;
            rec.variant = entries[i].variant;
            rec.workload = entries[i].config.workload;
            rec.runSeconds = seconds;
            rec.result = result;
            journal.append(rec);
        };
        SweepReport unit_report;
        std::vector<ExperimentResult> unit_results =
            runSweep(configs, sweep_opts, &unit_report);
        std::uint64_t ok_runs = 0, failed_runs = 0;
        for (const ExperimentResult &r : unit_results)
            (r.failed ? failed_runs : ok_runs)++;
        if (!writeFrame(STDOUT_FILENO,
                        encodeDone(msg.id, ok_runs, failed_runs,
                                   unit_report.batchGroups,
                                   unit_report.batchedRuns,
                                   unit_report.batchFallouts)))
            return 1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                die("missing value for " + arg);
            return argv[++i];
        };
        auto nextU64 = [&]() -> std::uint64_t {
            std::string value = next();
            try {
                std::size_t used = 0;
                std::uint64_t n = std::stoull(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
                return n;
            } catch (const std::exception &) {
                die("'" + value + "' is not a number (for " + arg + ")");
            }
        };
        if (arg == "--jobs" || arg == "-j")
            opts.jobs = static_cast<unsigned>(nextU64());
        else if (arg == "--out")
            opts.out = next();
        else if (arg == "--bench-out")
            opts.benchOut = next();
        else if (arg == "--insts")
            opts.insts = nextU64();
        else if (arg == "--profile-insts")
            opts.profileInsts = nextU64();
        else if (arg == "--workloads")
            opts.workloads = splitCsv(next());
        else if (arg == "--figures")
            opts.figures = splitCsv(next());
        else if (arg == "--full-stats")
            opts.fullStats = true;
        else if (arg == "--trace-out")
            opts.tracePrefix = next();
        else if (arg == "--trace-sample")
            opts.traceSample = nextU64();
        else if (arg == "--hist")
            opts.hist = true;
        else if (arg == "--stream-cache-bytes")
            opts.streamCacheBytes = nextU64();
        else if (arg == "--batch-replay")
            opts.batchReplay = true;
        else if (arg == "--no-batch-replay")
            opts.batchReplay = false;
        else if (arg == "--resume")
            opts.resume = true;
        else if (arg == "--run-deadline") {
            std::string value = next();
            char *end = nullptr;
            opts.runDeadline = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' ||
                opts.runDeadline < 0.0)
                die("'" + value + "' is not a valid deadline");
        } else if (arg == "--keep-going")
            opts.keepGoing = true;
        else if (arg == "--no-journal")
            opts.noJournal = true;
        else if (arg == "--stable-output")
            opts.stableOutput = true;
        else if (arg == "--workers")
            opts.workers = static_cast<unsigned>(nextU64());
        else if (arg == "--max-batch-group")
            opts.maxBatchGroup = static_cast<unsigned>(nextU64());
        else if (arg == "--dry-run")
            opts.dryRun = true;
        else if (arg == "--list-vp") {
            listSchemes(std::cout);
            return 0;
        } else if (arg == "--worker")
            opts.workerMode = true;
        else if (arg == "--worker-journal")
            opts.workerJournal = next();
        else if (arg == "--quiet")
            opts.quiet = true;
        else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            die("unknown argument '" + arg + "'");
        }
    }

    if (!opts.tracePrefix.empty() && opts.traceSample == 0)
        die("--trace-sample must be at least 1");
    if (opts.workers > 0 && opts.noJournal)
        die("--workers needs the journal (sharded results travel via "
            "worker journals); drop --no-journal");
    if (opts.workerMode && opts.workerJournal.empty())
        die("--worker requires --worker-journal");

    std::vector<std::string> all_names;
    for (const WorkloadSpec &spec : allWorkloads())
        all_names.push_back(spec.name);
    if (opts.workloads.empty()) {
        opts.workloads = all_names;
    } else {
        for (const std::string &w : opts.workloads) {
            bool known = false;
            for (const std::string &name : all_names)
                known |= name == w;
            if (!known)
                die("unknown workload '" + w + "'");
        }
    }

    // Build the flat grid.
    std::vector<GridEntry> entries;
    for (const FigureSpec &fig : paperGrid()) {
        // Opt-in figures need an explicit --figures mention; wants()
        // alone would sweep them into the default "all" set.
        bool selected = opts.figures.empty()
                            ? !fig.optIn
                            : wants(opts, fig.figure);
        if (!selected)
            continue;
        const std::vector<std::string> &fig_workloads =
            fig.workloads.empty() ? opts.workloads : fig.workloads;
        for (const std::string &workload : fig_workloads) {
            bool selected = false;
            for (const std::string &w : opts.workloads)
                selected |= w == workload;
            if (!selected)
                continue;
            for (const auto &[name, apply] : fig.variants) {
                GridEntry entry;
                entry.figure = fig.figure;
                entry.variant = name;
                entry.config.workload = workload;
                entry.config.core.maxInsts = opts.insts;
                entry.config.profileInsts = opts.profileInsts;
                apply(entry.config);
                // Tracing/histogram knobs go on after apply() so a
                // variant that rebuilds core params (e.g. fig08's
                // aggressive16) cannot drop them.
                entry.config.core.collectHist = opts.hist;
                if (!opts.tracePrefix.empty()) {
                    entry.config.traceSample = opts.traceSample;
                    entry.config.traceOut = opts.tracePrefix +
                                            entry.figure + "-" +
                                            entry.variant + "-" +
                                            workload + ".trace.json";
                }
                entries.push_back(std::move(entry));
            }
        }
    }
    if (entries.empty())
        die("the grid is empty (check --figures / --workloads)");

    const std::string sweep_hash = configHash(opts);
    const std::string journal_path = opts.out + ".journal";
    std::vector<std::string> keys;
    keys.reserve(entries.size());
    for (const GridEntry &entry : entries)
        keys.push_back(runKey(entry));

    // Hidden worker mode: the grid and keys above are rebuilt from
    // the forwarded options, so indices over the pipe and run keys in
    // the journal mean the same thing on both sides (the hello/hash
    // handshake verifies it).
    if (opts.workerMode)
        return runWorker(opts, entries, keys, sweep_hash);

    // Resume: merge the main journal and every shard journal a killed
    // sharded sweep may have left (`<out>.journal.w<k>`), and pre-fill
    // every run recorded as successful; only the rest is executed.
    // Failed records are re-run (they may succeed this time, and the
    // retry's journal line supersedes theirs — later records win, but
    // a success never loses to a failure).
    std::vector<ExperimentResult> results(entries.size());
    std::vector<double> run_seconds(entries.size(), 0.0);
    std::vector<bool> resumed(entries.size(), false);
    if (opts.resume && !opts.noJournal) {
        MergedJournal merged;
        try {
            merged = mergeShardJournals(findShardJournals(journal_path),
                                        sweep_hash);
        } catch (const std::exception &e) {
            die(std::string(e.what()) + "; rerun without --resume");
        }
        if (merged.skippedLines > 0)
            std::cerr << "sweep_all: journal: skipped "
                      << merged.skippedLines
                      << " torn/corrupt line(s)\n";
        for (std::size_t i = 0; i < entries.size(); ++i) {
            auto it = merged.runs.find(keys[i]);
            if (it == merged.runs.end() || it->second.result.failed)
                continue;
            results[i] = it->second.result;
            run_seconds[i] = it->second.runSeconds;
            resumed[i] = true;
        }
    } else if (!opts.resume && !opts.dryRun) {
        // A fresh sweep must not inherit stale journals (main or
        // shard): a key collision with an old run would silently skip
        // work on a later --resume.
        for (const std::string &path : findShardJournals(journal_path))
            unlink(path.c_str());
    }

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < entries.size(); ++i)
        if (!resumed[i])
            pending.push_back(i);

    // Shard debugging: show how the pending grid would partition into
    // work units (the same partition both --workers and the in-process
    // batcher use), then exit without running anything.
    if (opts.dryRun) {
        std::vector<ExperimentConfig> grid_configs;
        grid_configs.reserve(entries.size());
        for (const GridEntry &entry : entries)
            grid_configs.push_back(entry.config);
        std::vector<WorkUnit> units =
            partitionWork(grid_configs, pending, opts.maxBatchGroup);
        std::cout << "sweep_all: dry run: " << pending.size()
                  << " pending of " << entries.size() << " runs in "
                  << units.size() << " unit(s) (max "
                  << opts.maxBatchGroup << " runs/unit)\n";
        for (const WorkUnit &unit : units) {
            std::cout << "unit " << unit.id << ": "
                      << unit.indices.size() << " run(s)\n";
            for (std::size_t i : unit.indices)
                std::cout << "  " << keys[i] << " " << entries[i].figure
                          << "/" << entries[i].variant << "/"
                          << entries[i].config.workload << "\n";
        }
        return 0;
    }

    SweepReport report;
    ShardReport shard;
    const bool sharded = opts.workers > 0;
    std::cerr << "sweep_all: " << entries.size() << " runs ("
              << pending.size() << " to execute, "
              << entries.size() - pending.size() << " resumed), ";
    if (sharded)
        std::cerr << "workers=" << opts.workers << "\n";
    else
        std::cerr << "jobs=" << (opts.jobs ? opts.jobs : defaultJobs())
                  << "\n";

    std::unique_ptr<RunJournal> journal;
    if (sharded) {
        // Workers run --jobs 1 each, so the sharded report matches a
        // single-process --jobs 1 run byte-for-byte (--stable-output
        // omits everything else that could differ).
        report.jobs = 1;
        if (!pending.empty()) {
            std::vector<ExperimentConfig> grid_configs;
            grid_configs.reserve(entries.size());
            for (const GridEntry &entry : entries)
                grid_configs.push_back(entry.config);
            std::vector<WorkUnit> units = partitionWork(
                grid_configs, pending, opts.maxBatchGroup);

            ShardOptions shard_opts;
            shard_opts.workers = opts.workers;
            shard_opts.journalPrefix = journal_path + ".w";
            shard_opts.sweepHash = sweep_hash;
            shard_opts.progress = !opts.quiet;
            if (opts.runDeadline > 0.0) {
                // A unit is at most max_unit back-to-back runs; give
                // the worker that much budget (x2 for retries) plus
                // startup slack before declaring it hung.
                std::size_t max_unit = 0;
                for (const WorkUnit &unit : units)
                    max_unit = std::max(max_unit, unit.indices.size());
                shard_opts.unitDeadline =
                    opts.runDeadline * 2.0 *
                        static_cast<double>(max_unit) +
                    10.0;
            }
            const std::string bin = selfExePath(argv[0]);
            shard_opts.workerCommand =
                [&](unsigned, const std::string &jpath) {
                    return workerArgs(opts, bin, jpath);
                };

            auto shard_start = std::chrono::steady_clock::now();
            if (!runShardedSweep(units, shard_opts, shard))
                die("sharded sweep failed: " + shard.error);
            report.wallSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - shard_start)
                    .count();
            report.cache = shard.cache;
            report.batchGroups = shard.batchGroups;
            report.batchedRuns = shard.batchedRuns;
            report.batchFallouts = shard.batchFallouts;

            // Results come back through the journals, not the pipe.
            MergedJournal merged;
            try {
                merged = mergeShardJournals(
                    findShardJournals(journal_path), sweep_hash);
            } catch (const std::exception &e) {
                die(e.what());
            }
            for (std::size_t i : pending) {
                auto it = merged.runs.find(keys[i]);
                if (it == merged.runs.end()) {
                    results[i] = ExperimentResult{};
                    results[i].failed = true;
                    results[i].error =
                        "no journal record after sharded sweep";
                    continue;
                }
                results[i] = it->second.result;
                run_seconds[i] = it->second.runSeconds;
            }
        }
    } else {
        if (!opts.noJournal && !pending.empty()) {
            journal = std::make_unique<RunJournal>(journal_path);
            if (!journal->ok())
                die("cannot open run journal " + journal_path);
            // Header once per journal file (a resumed one has one).
            if (!opts.resume ||
                RunJournal::load(journal_path).sweepHash.empty())
                journal->appendSweepHeader(sweep_hash);
        }

        std::vector<ExperimentConfig> configs;
        configs.reserve(pending.size());
        for (std::size_t i : pending)
            configs.push_back(entries[i].config);

        SweepOptions sweep_opts;
        sweep_opts.jobs = opts.jobs;
        sweep_opts.progress = !opts.quiet;
        sweep_opts.streamCapture = opts.streamCacheBytes > 0;
        sweep_opts.streamCacheBytes = opts.streamCacheBytes;
        sweep_opts.runDeadline = opts.runDeadline;
        sweep_opts.batchReplay = opts.batchReplay;
        sweep_opts.maxBatchGroupRuns = opts.maxBatchGroup;
        if (journal) {
            sweep_opts.onRunComplete =
                [&](std::size_t pi, const ExperimentResult &result,
                    double seconds) {
                    std::size_t i = pending[pi];
                    JournalRecord rec;
                    rec.key = keys[i];
                    rec.figure = entries[i].figure;
                    rec.variant = entries[i].variant;
                    rec.workload = entries[i].config.workload;
                    rec.runSeconds = seconds;
                    rec.result = result;
                    journal->append(rec);
                };
        }
        std::vector<ExperimentResult> executed =
            runSweep(configs, sweep_opts, &report);
        for (std::size_t pi = 0; pi < pending.size(); ++pi) {
            results[pending[pi]] = std::move(executed[pi]);
            run_seconds[pending[pi]] = report.runSeconds[pi];
        }
    }

    // Throughput comes in two honest flavours: aggregate_kips divides
    // by summed per-core simulation seconds (comparable across cache
    // hit rates and job counts — the per-core simulator speed), while
    // wall_kips divides by this invocation's wall clock (what a user
    // actually waited; the one parallelism is allowed to improve).
    // Reporting only the former made a --jobs 4 sweep look ~2x SLOWER
    // than --jobs 1 in the bench trail.
    double total_committed = 0.0;
    double total_core_seconds = 0.0;
    for (const ExperimentResult &r : results) {
        total_committed += static_cast<double>(r.committed);
        total_core_seconds += r.hostSeconds;
    }
    double agg_kips =
        total_core_seconds > 0.0
            ? total_committed / total_core_seconds / 1000.0
            : 0.0;
    double wall_kips =
        report.wallSeconds > 0.0
            ? total_committed / report.wallSeconds / 1000.0
            : 0.0;

    // Emit the JSON report: composed in memory, then written through
    // writeFileAtomic so readers (and a crash mid-write) never observe
    // a partial file. --stable-output zeroes host-timing fields and
    // omits the cache block, which are the only parts that differ
    // between a resumed and an uninterrupted sweep.
    std::ostringstream os;
    os << "{\n"
       << "  \"tool\": \"sweep_all\",\n"
       << "  \"jobs\": " << report.jobs << ",\n"
       << "  \"insts\": " << opts.insts << ",\n"
       << "  \"profile_insts\": " << opts.profileInsts << ",\n"
       << "  \"wall_seconds\": "
       << jsonNum(opts.stableOutput ? 0.0 : report.wallSeconds) << ",\n";
    if (!opts.stableOutput) {
        os << "  \"cache\": {\"compile_hits\": "
           << report.cache.compileHits
           << ", \"compile_misses\": " << report.cache.compileMisses
           << ", \"profile_hits\": " << report.cache.profileHits
           << ", \"profile_misses\": " << report.cache.profileMisses
           << ", \"stream_hits\": " << report.cache.streamHits
           << ", \"stream_misses\": " << report.cache.streamMisses
           << ", \"stream_evicted\": " << report.cache.streamEvicted
           << ", \"stream_integrity_failures\": "
           << report.cache.streamIntegrityFailures
           << ", \"stream_capture_ooms\": "
           << report.cache.streamCaptureOoms
           << ", \"stream_bytes_built\": "
           << report.cache.streamBytesBuilt
           << ", \"stream_insts_built\": "
           << report.cache.streamInstsBuilt
           << ", \"stream_bytes_resident\": "
           << report.cache.streamBytesResident << "},\n";
        // Batch counters depend on execution circumstances (a resumed
        // sweep batches only what was left), so they ride with the
        // cache block that --stable-output omits.
        os << "  \"batch\": {\"enabled\": "
           << (opts.batchReplay ? "true" : "false")
           << ", \"groups\": " << report.batchGroups
           << ", \"batched_runs\": " << report.batchedRuns
           << ", \"fallouts\": " << report.batchFallouts << "},\n";
        os << "  \"throughput\": {\"aggregate_kips\": "
           << jsonNum(agg_kips) << ", \"wall_kips\": "
           << jsonNum(wall_kips) << "},\n";
        if (sharded) {
            os << "  \"shard\": {\"workers\": " << opts.workers
               << ", \"spawned\": " << shard.workersSpawned
               << ", \"deaths\": " << shard.workerDeaths
               << ", \"units_reassigned\": " << shard.unitsReassigned
               << "},\n";
        }
    }
    os << "  \"runs\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const GridEntry &entry = entries[i];
        const ExperimentResult &r = results[i];
        os << "    {\"figure\": \"" << jsonEscape(entry.figure)
           << "\", \"variant\": \"" << jsonEscape(entry.variant)
           << "\", \"workload\": \"" << jsonEscape(entry.config.workload)
           << "\", \"scheme\": \"" << schemeName(entry.config.scheme)
           << "\", \"assist\": \"" << assistName(entry.config.assist)
           << "\", \"loads_only\": "
           << (entry.config.loadsOnly ? "true" : "false")
           << ", \"realloc\": "
           << (entry.config.realisticRealloc ? "true" : "false")
           << ", \"ipc\": " << jsonNum(r.ipc)
           << ", \"cycles\": " << r.cycles
           << ", \"committed\": " << r.committed
           << ", \"predicted_frac\": " << jsonNum(r.predictedFrac)
           << ", \"accuracy\": " << jsonNum(r.accuracy)
           << ", \"realloc_failed\": "
           << (r.reallocFailed ? "true" : "false")
           << ", \"failed\": " << (r.failed ? "true" : "false")
           << ", \"retries\": " << r.retries
           << ", \"degraded\": " << (r.degraded ? "true" : "false")
           << ", \"run_seconds\": "
           << jsonNum(opts.stableOutput ? 0.0 : run_seconds[i])
           << ", \"kips\": "
           << jsonNum(opts.stableOutput ? 0.0 : r.kips);
        if (r.failed)
            os << ", \"error\": \"" << jsonEscape(r.error) << "\"";
        if (opts.fullStats) {
            os << ", \"stats\": {";
            bool first = true;
            for (const auto &[name, value] : r.stats.values()) {
                if (!first)
                    os << ", ";
                first = false;
                os << "\"" << jsonEscape(name)
                   << "\": " << jsonNum(value);
            }
            os << "}";
        }
        os << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    if (!writeFileAtomic(opts.out, os.str()))
        die("cannot write output file " + opts.out);

    // Simulator-throughput trail: one labelled JSON row is APPENDED
    // per invocation (docs/INTERNALS.md, "Simulator performance"), so
    // the file accumulates a history instead of losing it. Aggregates
    // are computed over core-simulation time only, so the number is
    // comparable across cache-hit-rate differences.
    if (!opts.benchOut.empty()) {
        // Min/max over completed runs only, with an explicit "nothing
        // completed" flag: a legitimate zero-KIPS run (e.g. a zero-
        // instruction budget) is a valid minimum, not "unset".
        KipsSummary kips = summarizeKips(results);
        auto rate = [](std::uint64_t hits, std::uint64_t misses) {
            return hits + misses
                       ? static_cast<double>(hits) / (hits + misses)
                       : 0.0;
        };
        double stream_bpi =
            report.cache.streamInstsBuilt
                ? static_cast<double>(report.cache.streamBytesBuilt) /
                      static_cast<double>(report.cache.streamInstsBuilt)
                : 0.0;
        // Which predictor schemes the measured grid exercised, by
        // canonical registry name (sorted, deduplicated) — so a bench
        // row is attributable to its predictor mix at a glance.
        std::vector<std::string> schemes;
        for (const GridEntry &entry : entries)
            schemes.push_back(registryNameOf(entry.config.scheme));
        std::sort(schemes.begin(), schemes.end());
        schemes.erase(std::unique(schemes.begin(), schemes.end()),
                      schemes.end());
        std::ostringstream bos;
        bos << "{\"tool\": \"sweep_all\""
            << ", \"git\": \"" << jsonEscape(gitDescribe()) << "\""
            << ", \"config_hash\": \"" << configHash(opts) << "\""
            << ", \"runs\": " << entries.size()
            << ", \"schemes\": [";
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            bos << (si ? ", " : "") << "\"" << jsonEscape(schemes[si])
                << "\"";
        }
        bos << "]"
            << ", \"jobs\": " << report.jobs
            << ", \"workers\": " << opts.workers
            << ", \"insts\": " << opts.insts
            << ", \"profile_insts\": " << opts.profileInsts
            << ", \"wall_seconds\": " << jsonNum(report.wallSeconds)
            << ", \"core_seconds\": " << jsonNum(total_core_seconds)
            << ", \"committed_insts\": " << jsonNum(total_committed)
            << ", \"aggregate_kips\": " << jsonNum(agg_kips)
            << ", \"wall_kips\": " << jsonNum(wall_kips)
            << ", \"min_run_kips\": " << jsonNum(kips.minKips)
            << ", \"max_run_kips\": " << jsonNum(kips.maxKips)
            << ", \"any_run_completed\": "
            << (kips.any ? "true" : "false")
            << ", \"batch_replay\": "
            << (opts.batchReplay ? "true" : "false")
            << ", \"batch_groups\": " << report.batchGroups
            << ", \"batched_runs\": " << report.batchedRuns
            << ", \"batch_fallouts\": " << report.batchFallouts
            << ", \"cache_hit_rates\": {\"compile\": "
            << jsonNum(rate(report.cache.compileHits,
                            report.cache.compileMisses))
            << ", \"profile\": "
            << jsonNum(rate(report.cache.profileHits,
                            report.cache.profileMisses))
            << ", \"stream\": "
            << jsonNum(rate(report.cache.streamHits,
                            report.cache.streamMisses))
            << "}, \"stream\": {\"evicted\": "
            << report.cache.streamEvicted
            << ", \"bytes_built\": " << report.cache.streamBytesBuilt
            << ", \"insts_built\": " << report.cache.streamInstsBuilt
            << ", \"bytes_per_inst\": " << jsonNum(stream_bpi)
            << ", \"resident_bytes\": "
            << report.cache.streamBytesResident << "}}";
        // The trail is append-only history: each row goes through the
        // write-temp-then-rename path, so a crash mid-append can never
        // tear a row or truncate the rows already there.
        if (!appendLineAtomic(opts.benchOut, bos.str()))
            die("cannot append to bench output file " + opts.benchOut);
        std::cerr << "sweep_all: throughput " << jsonNum(agg_kips)
                  << " KIPS per-core aggregate, " << jsonNum(wall_kips)
                  << " KIPS wall-clock -> appended to " << opts.benchOut
                  << "\n";
    }

    std::cerr << "sweep_all: wrote " << entries.size() << " results to "
              << opts.out << " in " << report.wallSeconds
              << "s (compile cache " << report.cache.compileHits
              << "/" << report.cache.compileHits + report.cache.compileMisses
              << " hits, profile cache " << report.cache.profileHits
              << "/" << report.cache.profileHits + report.cache.profileMisses
              << " hits, stream cache " << report.cache.streamHits
              << "/" << report.cache.streamHits + report.cache.streamMisses
              << " hits, " << report.cache.streamEvicted << " evicted, "
              << report.cache.streamIntegrityFailures
              << " integrity failures, " << report.cache.streamCaptureOoms
              << " capture OOMs, " << report.cache.streamBytesResident
              << " bytes resident)\n";

    // Failure summary (S1): every run still failed after its retry is
    // listed; the exit code tells CI. --keep-going keeps exit 0 for
    // best-effort sweeps (the journal survives for a later --resume).
    std::vector<std::size_t> failures;
    for (std::size_t i = 0; i < entries.size(); ++i)
        if (results[i].failed)
            failures.push_back(i);
    if (!failures.empty()) {
        std::cerr << "sweep_all: " << failures.size() << " of "
                  << entries.size() << " runs FAILED after retry:\n";
        std::cerr << "  config                                   "
                     "retries  error\n";
        for (std::size_t i : failures) {
            char line[256];
            std::snprintf(line, sizeof(line), "  %-40s %7u  %s\n",
                          (entries[i].figure + "/" + entries[i].variant +
                           "/" + entries[i].config.workload)
                              .c_str(),
                          results[i].retries, results[i].error.c_str());
            std::cerr << line;
        }
    }
    if (!opts.noJournal) {
        if (failures.empty()) {
            // Nothing left to resume: the results file is complete
            // and durable, so the journals (main and any per-worker
            // shards) have served their purpose.
            for (const std::string &path :
                 findShardJournals(journal_path))
                unlink(path.c_str());
        } else {
            std::cerr << "sweep_all: journal kept at " << journal_path
                      << (sharded ? " (+ shard journals)" : "")
                      << " (rerun with --resume to retry failures)\n";
        }
    }
    if (!failures.empty() && !opts.keepGoing)
        return 2;
    return 0;
}
