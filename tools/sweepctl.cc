/**
 * @file
 * sweepctl — client for rvpsweepd. Submits experiment grids, queries
 * daemon status, and requests graceful shutdown, with retry + capped
 * exponential backoff around every connection attempt and automatic
 * reconnect-and-resubmit when the daemon restarts mid-request (the
 * store + in-flight dedup make a resubmit of already-finished runs
 * free, and their records come back byte-identical).
 *
 *   sweepctl --socket /tmp/rvp.sock status
 *   sweepctl --socket /tmp/rvp.sock submit \
 *       --workloads go,mgrid --schemes lvp,drvp --insts 50000
 *   sweepctl --socket /tmp/rvp.sock shutdown
 *
 * Exit codes: 0 success; 1 a run failed or the daemon rejected the
 * request; 2 could not talk to the daemon at all.
 */

#include <unistd.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hh"
#include "service/protocol.hh"
#include "sim/journal.hh"

using namespace rvp;

namespace
{

void
usage()
{
    std::cout <<
        "sweepctl — rvpsweepd client\n"
        "\n"
        "  sweepctl [options] status | submit | shutdown\n"
        "\n"
        "common options:\n"
        "  --socket PATH        daemon socket (required)\n"
        "  --retries N          connection attempts      (default 5)\n"
        "  --backoff S          initial retry backoff, doubled per\n"
        "                       attempt, capped at 2s    (default 0.1)\n"
        "\n"
        "submit options (grid = workloads x schemes):\n"
        "  --workloads A,B,..   workload names           (required)\n"
        "  --schemes X,Y,..     predictor scheme names   (required)\n"
        "  --insts N            timed commit budget  (default 400000)\n"
        "  --profile-insts N    profile budget       (default 300000)\n"
        "  --assist NAME        same|dead|live|dead_lv|live_lv|...\n"
        "  --recovery NAME      refetch|reissue|selective\n"
        "  --all                predict all instructions, not loads\n"
        "  --table-entries N    predictor table size\n"
        "  --counter-threshold N  confidence threshold (0..7)\n"
        "  --vp-params K=V,..   registry param bag for every run\n"
        "  --out FILE           also write record lines (JSONL) here\n";
}

[[noreturn]] void
die(const std::string &msg)
{
    std::cerr << "sweepctl: " << msg << "\n";
    std::exit(2);
}

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

struct Options
{
    std::string socketPath;
    unsigned retries = 5;
    double backoff = 0.1;
    std::string command;
    // submit
    std::vector<std::string> workloads;
    std::vector<std::string> schemes;
    RunSpec base;   ///< shared knobs of every grid spec
    std::string outPath;
};

void
sleepSeconds(double s)
{
    std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

/**
 * Connect with retry + capped exponential backoff. Consumes one
 * attempt per failure; returns false once the budget is spent.
 */
bool
connectWithRetry(ServiceClient &client, const Options &opts,
                 unsigned &attemptsLeft)
{
    double backoff = opts.backoff;
    while (attemptsLeft > 0) {
        --attemptsLeft;
        if (client.connect(opts.socketPath))
            return true;
        if (attemptsLeft == 0)
            break;
        std::cerr << "sweepctl: connect failed (" << client.lastError()
                  << "), retrying in " << backoff << "s\n";
        sleepSeconds(backoff);
        backoff = std::min(backoff * 2.0, 2.0);
    }
    return false;
}

int
runStatus(const Options &opts)
{
    ServiceClient client;
    unsigned attempts = opts.retries;
    if (!connectWithRetry(client, opts, attempts))
        die("cannot connect to " + opts.socketPath + ": " +
            client.lastError());
    if (!client.send(encodeStatusRequest()))
        die("send failed: " + client.lastError());
    std::optional<ServerMsg> msg = client.recv();
    if (!msg || msg->kind != ServerMsg::Kind::Status)
        die("no status reply: " + client.lastError());
    const ServiceStatus &s = msg->status;
    std::cout << "store_entries    " << s.storeEntries << "\n"
              << "queued           " << s.queued << "\n"
              << "inflight         " << s.inflight << "\n"
              << "clients          " << s.clients << "\n"
              << "executed         " << s.executed << "\n"
              << "served_cached    " << s.servedCached << "\n"
              << "dedup_subscribed " << s.dedupSubscribed << "\n"
              << "draining         " << (s.draining ? "yes" : "no")
              << "\n";
    return 0;
}

int
runShutdown(const Options &opts)
{
    ServiceClient client;
    unsigned attempts = opts.retries;
    if (!connectWithRetry(client, opts, attempts))
        die("cannot connect to " + opts.socketPath + ": " +
            client.lastError());
    if (!client.send(encodeShutdownRequest()))
        die("send failed: " + client.lastError());
    std::optional<ServerMsg> msg = client.recv();
    if (!msg || msg->kind != ServerMsg::Kind::Bye)
        die("no shutdown ack: " + client.lastError());
    std::cout << "sweepctl: daemon draining\n";
    return 0;
}

int
runSubmit(const Options &opts)
{
    if (opts.workloads.empty() || opts.schemes.empty())
        die("submit needs --workloads and --schemes");

    std::vector<RunSpec> grid;
    for (const std::string &workload : opts.workloads) {
        for (const std::string &scheme : opts.schemes) {
            RunSpec spec = opts.base;
            spec.workload = workload;
            spec.scheme = scheme;
            grid.push_back(spec);
        }
    }

    // Everything still owed a result, by key. A reconnect resubmits
    // exactly these; completed keys come back from the store with the
    // byte-identical record, so retries never redo finished work.
    std::map<std::string, RunSpec> awaited;
    for (const RunSpec &spec : grid)
        awaited.emplace(runSpecKey(spec), spec);

    std::map<std::string, std::string> records;   ///< key -> line
    bool anyFailed = false;
    unsigned attempts = opts.retries;
    double backoff = opts.backoff;
    unsigned submitSeq = 0;

    while (!awaited.empty()) {
        ServiceClient client;
        if (!connectWithRetry(client, opts, attempts))
            die("cannot connect to " + opts.socketPath + ": " +
                client.lastError());

        std::vector<RunSpec> remaining;
        for (const auto &[key, spec] : awaited)
            remaining.push_back(spec);
        std::string id = "sweepctl-" + std::to_string(getpid()) + "-" +
                         std::to_string(submitSeq++);
        if (!client.send(encodeSubmitRequest(id, remaining)))
            continue;   // reconnect path; attempts already consumed

        bool resubmit = false;
        while (!awaited.empty() && !resubmit) {
            std::optional<ServerMsg> msg;
            try {
                msg = client.recv();
            } catch (const ServiceError &e) {
                die(std::string("protocol error: ") + e.what());
            }
            if (!msg) {
                std::cerr << "sweepctl: connection lost ("
                          << client.lastError() << "), resubmitting "
                          << awaited.size() << " runs\n";
                resubmit = true;
                break;
            }
            switch (msg->kind) {
              case ServerMsg::Kind::Result: {
                auto it = awaited.begin();
                for (; it != awaited.end(); ++it)
                    if (it->first == msg->key)
                        break;
                if (it == awaited.end())
                    break;   // duplicate delivery; already recorded
                records[msg->key] = msg->record;
                std::optional<JournalRecord> rec =
                    parseJournalRunLine(msg->record);
                if (!rec) {
                    std::cerr << "sweepctl: unparseable record for key "
                              << msg->key << "\n";
                    anyFailed = true;
                } else if (rec->result.failed) {
                    std::cerr << "  " << msg->key << " "
                              << rec->variant
                              << ": FAILED: " << rec->result.error
                              << "\n";
                    anyFailed = true;
                } else {
                    std::cout << "  " << msg->key << " " << rec->variant
                              << ": ipc " << rec->result.ipc
                              << (msg->cached ? " (cached)" : "")
                              << "\n";
                }
                awaited.erase(it);
                break;
              }
              case ServerMsg::Kind::Error:
                if (msg->code == ServiceError::Code::Backpressure ||
                    msg->code == ServiceError::Code::Draining) {
                    // Transient by design: back off and resubmit
                    // everything still owed (to this daemon or its
                    // successor).
                    std::cerr << "sweepctl: "
                              << serviceCodeName(msg->code) << " ("
                              << msg->message << "), retrying in "
                              << backoff << "s\n";
                    if (attempts == 0)
                        die("retry budget exhausted: " + msg->message);
                    --attempts;
                    sleepSeconds(backoff);
                    backoff = std::min(backoff * 2.0, 2.0);
                    resubmit = true;
                    break;
                }
                std::cerr << "sweepctl: daemon rejected request ["
                          << serviceCodeName(msg->code)
                          << "]: " << msg->message << "\n";
                return 1;
              default:
                break;   // ignore stray hello/status frames
            }
        }
    }

    if (!opts.outPath.empty()) {
        std::string contents;
        for (const auto &[key, line] : records) {
            contents += line;
            contents += '\n';
        }
        if (!writeFileAtomic(opts.outPath, contents))
            die("cannot write " + opts.outPath);
    }
    std::cout << "sweepctl: " << records.size() << " records"
              << (anyFailed ? " (with failures)" : "") << "\n";
    return anyFailed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                die("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--socket") {
            opts.socketPath = next();
        } else if (arg == "--retries") {
            opts.retries = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--backoff") {
            opts.backoff = std::stod(next());
        } else if (arg == "--workloads") {
            opts.workloads = splitCsv(next());
        } else if (arg == "--schemes") {
            opts.schemes = splitCsv(next());
        } else if (arg == "--insts") {
            opts.base.insts = std::stoull(next());
        } else if (arg == "--profile-insts") {
            opts.base.profileInsts = std::stoull(next());
        } else if (arg == "--assist") {
            opts.base.assist = next();
        } else if (arg == "--recovery") {
            opts.base.recovery = next();
        } else if (arg == "--all") {
            opts.base.loadsOnly = false;
        } else if (arg == "--table-entries") {
            opts.base.tableEntries =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--counter-threshold") {
            opts.base.counterThreshold =
                static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--vp-params") {
            opts.base.vpParams = next();
        } else if (arg == "--out") {
            opts.outPath = next();
        } else if (arg == "status" || arg == "submit" ||
                   arg == "shutdown") {
            if (!opts.command.empty())
                die("multiple commands given");
            opts.command = arg;
        } else {
            die("unknown option '" + arg + "' (see --help)");
        }
    }
    if (opts.socketPath.empty())
        die("--socket is required");
    if (opts.command.empty())
        die("no command given (status | submit | shutdown)");
    if (opts.retries == 0)
        opts.retries = 1;

    if (opts.command == "status")
        return runStatus(opts);
    if (opts.command == "shutdown")
        return runShutdown(opts);
    return runSubmit(opts);
}
