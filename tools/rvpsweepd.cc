/**
 * @file
 * rvpsweepd — the sweep service daemon. Listens on a Unix-domain
 * socket for framed experiment submissions (see docs/INTERNALS.md,
 * "Sweep service"), executes them through the shared sweep engine,
 * and memoizes every successful run in a crash-recoverable
 * content-addressed store, so identical requests — from any client,
 * across any number of daemon restarts — are answered byte-identically
 * from disk instead of being re-simulated.
 *
 *   rvpsweepd --socket /tmp/rvp.sock --store /tmp/rvp.store.jsonl
 *   sweepctl --socket /tmp/rvp.sock submit --workloads go --schemes lvp
 *
 * SIGTERM/SIGINT drain gracefully: in-flight runs finish, their
 * results are delivered and journaled, the store is compacted, then
 * the process exits 0. SIGKILL is recovered on the next start by
 * replaying the store.
 */

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "service/daemon.hh"

using namespace rvp;

namespace
{

void
usage()
{
    std::cout <<
        "rvpsweepd — sweep-as-a-service daemon\n"
        "\n"
        "  --socket PATH       Unix socket to listen on    (required)\n"
        "  --store PATH        persistent result store     (required)\n"
        "  --jobs N            executor worker threads     (default 1)\n"
        "  --run-deadline S    per-run watchdog, seconds   (default off)\n"
        "  --idle S            per-connection idle deadline (default 30)\n"
        "  --request-deadline S  per-request deadline      (default off)\n"
        "  --max-queued N      pending-run queue bound     (default 256)\n"
        "  --max-frame-bytes N per-frame byte bound  (default 16 MiB)\n"
        "  --progress          per-run progress lines on stderr\n"
        "  --help              this text\n";
}

[[noreturn]] void
die(const std::string &msg)
{
    std::cerr << "rvpsweepd: " << msg << "\n";
    std::exit(2);
}

/** Drain-pipe write end, for the async-signal-safe handler. */
volatile int signalFd = -1;

void
onTermSignal(int)
{
    int fd = signalFd;
    if (fd >= 0) {
        char b = 's';
        (void)!write(fd, &b, 1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ServiceOptions opts;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                die("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--socket") {
            opts.socketPath = next();
        } else if (arg == "--store") {
            opts.storePath = next();
        } else if (arg == "--jobs") {
            opts.jobs = static_cast<unsigned>(std::stoul(next()));
        } else if (arg == "--run-deadline") {
            opts.runDeadlineSeconds = std::stod(next());
        } else if (arg == "--idle") {
            opts.idleSeconds = std::stod(next());
        } else if (arg == "--request-deadline") {
            opts.requestSeconds = std::stod(next());
        } else if (arg == "--max-queued") {
            opts.maxQueuedRuns = std::stoul(next());
        } else if (arg == "--max-frame-bytes") {
            opts.maxFrameBytes = std::stoul(next());
        } else if (arg == "--progress") {
            opts.progress = true;
        } else {
            die("unknown option '" + arg + "' (see --help)");
        }
    }
    if (opts.socketPath.empty())
        die("--socket is required");
    if (opts.storePath.empty())
        die("--store is required");

    SweepService service(opts);
    if (!service.ok())
        die("cannot start (socket or store unavailable)");

    signalFd = service.drainFd();
    struct sigaction sa = {};
    sa.sa_handler = onTermSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    std::cerr << "rvpsweepd: listening on " << opts.socketPath
              << " (store " << opts.storePath << ")\n";
    int rc = service.run();
    std::cerr << "rvpsweepd: drained, exiting\n";
    return rc;
}
