/**
 * @file
 * rvpsim — command-line driver for the simulator. Runs any workload
 * under any value-prediction scheme and prints the headline numbers
 * (optionally the full statistics dump or the compiled disassembly).
 *
 *   rvpsim --workload m88ksim --scheme drvp --assist dead_lv --all
 *   rvpsim --workload hydro2d --scheme lvp --insts 1000000 --stats
 *   rvpsim --list
 *
 * Run `rvpsim --help` for the full option set.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "isa/disasm.hh"
#include "sim/runner.hh"
#include "sim/tables.hh"
#include "vp/registry.hh"

using namespace rvp;

namespace
{

void
usage()
{
    std::cout <<
        "rvpsim — storageless value prediction simulator (ISCA '99)\n"
        "\n"
        "  --workload NAME     go|ijpeg|li|m88ksim|perl|hydro2d|mgrid|\n"
        "                      su2cor|turb3d           (default: go)\n"
        "  --scheme NAME       none|lvp|srvp|drvp|grp  (default: none)\n"
        "  --vp NAME[:K=V,..]  pick any registered predictor by name,\n"
        "                      with scheme params (see --list-vp), e.g.\n"
        "                      --vp stride:entries=256,predict_threshold=4\n"
        "  --list-vp           list registered predictor schemes + params\n"
        "  --assist NAME       same|dead|live|dead_lv|live_lv|\n"
        "                      dead_lv_stride          (default: same)\n"
        "  --all               predict all register-writing instructions\n"
        "  --loads             predict loads only (default)\n"
        "  --recovery NAME     refetch|reissue|selective\n"
        "                                              (default: selective)\n"
        "  --realloc           recompile with the Section-7.3 register\n"
        "                      re-allocation instead of profile assists\n"
        "  --wide              use the aggressive 16-wide core\n"
        "  --insts N           committed-instruction budget (400000)\n"
        "  --profile-insts N   profiling budget on train input (300000)\n"
        "  --threshold X       profile selection threshold (0.8)\n"
        "  --confidence N      confidence-counter threshold (7)\n"
        "  --table N           predictor table entries (1024)\n"
        "  --tagged-rvp        tag the RVP confidence counters\n"
        "  --trace-out FILE    write a sampled pipeline-lifecycle trace;\n"
        "                      .jsonl = line-delimited, anything else =\n"
        "                      Chrome trace JSON (chrome://tracing)\n"
        "  --trace-sample N    trace every Nth instruction (default: 64)\n"
        "  --hist              collect latency/occupancy histograms into\n"
        "                      the stat dump (implies extra stat keys)\n"
        "  --stats             dump the full statistics set\n"
        "  --disasm            print the compiled workload and exit\n"
        "  --list              list available workloads and exit\n";
}

[[noreturn]] void
die(const std::string &message)
{
    std::cerr << "rvpsim: " << message << " (try --help)\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentConfig config;
    config.workload = "go";
    bool dump_stats = false;
    bool disasm_only = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                die("missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            for (const WorkloadSpec &spec : allWorkloads()) {
                std::cout << spec.name
                          << (spec.isFloatingPoint ? " (fp)\n"
                                                   : " (int)\n");
            }
            return 0;
        } else if (arg == "--list-vp") {
            listSchemes(std::cout);
            return 0;
        } else if (arg == "--vp") {
            // NAME or NAME:key=value,key=value — the registry grammar.
            std::string s = next();
            std::string name = s;
            std::size_t colon = s.find(':');
            if (colon != std::string::npos) {
                name = s.substr(0, colon);
                config.vpParams = s.substr(colon + 1);
            }
            auto scheme = schemeForName(name);
            if (!scheme)
                die("unknown vp scheme '" + name + "' (see --list-vp)");
            config.scheme = *scheme;
        } else if (arg == "--workload") {
            config.workload = next();
        } else if (arg == "--scheme") {
            std::string s = next();
            if (s == "none")
                config.scheme = VpScheme::None;
            else if (s == "lvp")
                config.scheme = VpScheme::Lvp;
            else if (s == "srvp")
                config.scheme = VpScheme::StaticRvp;
            else if (s == "drvp")
                config.scheme = VpScheme::DynamicRvp;
            else if (s == "grp")
                config.scheme = VpScheme::GabbayRp;
            else
                die("unknown scheme '" + s + "'");
        } else if (arg == "--assist") {
            std::string s = next();
            if (s == "same")
                config.assist = AssistLevel::Same;
            else if (s == "dead")
                config.assist = AssistLevel::Dead;
            else if (s == "live")
                config.assist = AssistLevel::Live;
            else if (s == "dead_lv")
                config.assist = AssistLevel::DeadLv;
            else if (s == "live_lv")
                config.assist = AssistLevel::LiveLv;
            else if (s == "dead_lv_stride")
                config.assist = AssistLevel::DeadLvStride;
            else
                die("unknown assist level '" + s + "'");
        } else if (arg == "--all") {
            config.loadsOnly = false;
        } else if (arg == "--loads") {
            config.loadsOnly = true;
        } else if (arg == "--recovery") {
            std::string s = next();
            if (s == "refetch")
                config.core.recovery = RecoveryPolicy::Refetch;
            else if (s == "reissue")
                config.core.recovery = RecoveryPolicy::Reissue;
            else if (s == "selective")
                config.core.recovery = RecoveryPolicy::Selective;
            else
                die("unknown recovery policy '" + s + "'");
        } else if (arg == "--realloc") {
            config.realisticRealloc = true;
        } else if (arg == "--wide") {
            RecoveryPolicy recovery = config.core.recovery;
            std::uint64_t insts = config.core.maxInsts;
            bool hist = config.core.collectHist;
            config.core = CoreParams::aggressive16();
            config.core.recovery = recovery;
            config.core.maxInsts = insts;
            config.core.collectHist = hist;
        } else if (arg == "--insts") {
            config.core.maxInsts = std::strtoull(next().c_str(), nullptr,
                                                 10);
        } else if (arg == "--profile-insts") {
            config.profileInsts = std::strtoull(next().c_str(), nullptr,
                                                10);
        } else if (arg == "--threshold") {
            config.profileThreshold = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--confidence") {
            config.counterThreshold = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--table") {
            config.tableEntries = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--tagged-rvp") {
            config.taggedRvp = true;
        } else if (arg == "--trace-out") {
            config.traceOut = next();
        } else if (arg == "--trace-sample") {
            config.traceSample = std::strtoull(next().c_str(), nullptr,
                                               10);
        } else if (arg == "--hist") {
            config.core.collectHist = true;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--disasm") {
            disasm_only = true;
        } else {
            die("unknown option '" + arg + "'");
        }
    }

    bool known = false;
    for (const WorkloadSpec &spec : allWorkloads())
        known |= spec.name == config.workload;
    if (!known)
        die("unknown workload '" + config.workload + "'");
    if (config.realisticRealloc && config.scheme != VpScheme::DynamicRvp)
        die("--realloc re-colours the registers for dynamic RVP; "
            "combine it with --scheme drvp");
    if (config.scheme == VpScheme::StaticRvp && !config.loadsOnly)
        die("static RVP marks loads only; --all needs --scheme drvp");
    if (!config.traceOut.empty() && config.traceSample == 0)
        die("--trace-sample must be at least 1");

    if (disasm_only) {
        BuiltWorkload wl = buildWorkload(config.workload, InputSet::Ref);
        AllocResult alloc = allocateRegisters(wl.func, AllocConfig{});
        LowerResult low = lower(wl.func, alloc);
        std::cout << disassemble(low.program);
        return 0;
    }

    ExperimentResult result;
    try {
        result = runExperiment(config);
    } catch (const VpConfigError &e) {
        die(e.what());
    }

    TextTable table;
    table.setHeader({"metric", "value"});
    table.addRow({"workload", config.workload});
    table.addRow({"committed", std::to_string(result.committed)});
    table.addRow({"cycles", std::to_string(result.cycles)});
    table.addRow({"IPC", TextTable::num(result.ipc)});
    table.addRow({"predicted", TextTable::percent(result.predictedFrac)});
    table.addRow({"accuracy", TextTable::percent(result.accuracy)});
    table.addRow({"branch mispredicts",
                  TextTable::num(
                      result.stats.get("core.branch_mispredicts"), 0)});
    table.addRow({"value mispredicts",
                  TextTable::num(
                      result.stats.get("core.value_mispredicts"), 0)});
    table.print(std::cout);

    if (dump_stats) {
        std::cout << "\n";
        result.stats.dump(std::cout);
    }
    return 0;
}
