/**
 * @file
 * Correlated values and compiler re-allocation (paper Figure 2(a) and
 * Section 7.3). Two variables consistently hold the same value: an
 * ADD produces it, and later a load re-produces it into a different
 * register. The demo profiles the program, runs the paper's
 * register-reallocation pass — which assigns producer and consumer
 * the same architectural register — and shows that the transformation
 * turns cross-register correlation into same-register reuse that
 * plain dynamic RVP (no profile assistance at run time) can exploit.
 *
 *   $ ./examples/correlated_values
 */

#include <iostream>

#include "compiler/arch_liveness.hh"
#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "compiler/rvp_realloc.hh"
#include "isa/disasm.hh"
#include "profile/reuse_profiler.hh"
#include "sim/tables.hh"
#include "uarch/core.hh"
#include "vp/oracle.hh"

using namespace rvp;

namespace
{

/** Figure 2(a): I1 add -> ... -> I3 load produces the same value. */
IRFunction
correlatedProgram(VReg &producer, VReg &consumer)
{
    IRFunction func;
    IRBuilder b(func);
    VReg iters = func.newIntVReg();
    VReg base = func.newIntVReg();
    VReg lo = func.newIntVReg();
    VReg hi = func.newIntVReg();
    producer = func.newIntVReg();
    consumer = func.newIntVReg();
    VReg sum = func.newIntVReg();
    VReg t = func.newIntVReg();

    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.loadAddr(iters, 30'000);
    b.loadImm(lo, 40);
    b.loadImm(hi, 2);
    b.loadImm(sum, 0);
    b.loadImm(consumer, 0);
    BlockId loop = b.startBlock();
    // consumer's previous value is consumed here (its live range wraps
    // the back edge).
    b.op3(Opcode::ADDQ, sum, sum, consumer);
    // I1: producer <- lo + iters. The value CHANGES every iteration —
    // last-value prediction can never catch the load below, but the
    // correlation (consumer == producer) always holds.
    b.op3(Opcode::ADDQ, producer, lo, iters);
    // I2: last use of producer; its live range ends.
    b.store(producer, base, 0);
    // I3: consumer <- mem[...] — always re-loads what producer just
    // computed: perfectly correlated, never the same value twice.
    b.load(consumer, base, 0);
    b.op3(Opcode::XOR, t, consumer, lo);
    b.store(t, base, 24);
    b.opImm(Opcode::SUBQ, iters, iters, 1);
    b.branch(Opcode::BNE, iters, loop);
    b.startBlock();
    b.store(sum, base, 16);
    b.halt();
    func.numberInsts();
    return func;
}

double
runLoadCoverage(const Program &prog, VpScheme scheme)
{
    VpConfig vp;
    vp.scheme = scheme;
    vp.loadsOnly = true;
    auto predictor = makePredictor(vp, prog);
    CoreParams params = CoreParams::table1();
    params.maxInsts = 150'000;
    Core core(params, prog, *predictor);
    CoreResult r = core.run();
    return r.stats.get("vp.predictions") /
           std::max(1.0, r.stats.get("vp.eligible"));
}

} // namespace

int
main()
{
    // ---- baseline compile ----
    VReg producer = 0, consumer = 0;
    IRFunction func = correlatedProgram(producer, consumer);
    AllocResult base_alloc = allocateRegisters(func, AllocConfig{});
    LowerResult base_low = lower(func, base_alloc);

    std::cout << "baseline allocation: producer="
              << regName(base_alloc.colorOf[producer])
              << "  consumer=" << regName(base_alloc.colorOf[consumer])
              << "\n\n"
              << disassemble(base_low.program) << "\n";

    // ---- profile to find the correlation ----
    std::vector<std::uint64_t> live =
        archLiveBefore(func, base_alloc, base_low);
    ReuseProfiler profiler(base_low.program, live);
    Emulator emu(base_low.program);
    DynInst di;
    for (unsigned n = 0; n < 100'000; ++n) {
        ArchState pre = emu.state();
        if (!emu.step(di))
            break;
        profiler.observe(di, pre);
    }
    ReuseProfile profile = profiler.finish();

    // Collect dead-register reuse candidates from the profile.
    std::vector<ReuseCandidate> cands;
    for (std::uint32_t s = 0; s < profile.counts.size(); ++s) {
        StaticPredSpec spec = profile.bestSpec(s, AssistLevel::Dead);
        if (spec.source != PredSource::OtherReg ||
            profile.bestRate(s, AssistLevel::Dead) < 0.8) {
            continue;
        }
        auto it = profile.primaryProducer.find(
            ReuseProfile::producerKey(s, spec.reg));
        if (it == profile.primaryProducer.end())
            continue;
        ReuseCandidate cand;
        cand.consumerIr = base_low.irIdOfStatic[s];
        cand.producerIr = base_low.irIdOfStatic[it->second];
        cand.priority = 1.0;
        cands.push_back(cand);
        std::cout << "profile: static " << s << " ("
                  << disassemble(base_low.program.at(s))
                  << ") reuses the value in " << regName(spec.reg)
                  << " (dead) " << TextTable::percent(profile.bestRate(
                         s, AssistLevel::Dead))
                  << " of the time\n";
    }

    // ---- the Section 7.3 re-allocation ----
    ReallocResult rr = reallocForReuse(func, AllocConfig{}, cands);
    if (!rr.success) {
        std::cout << "re-allocation failed\n";
        return 1;
    }
    LowerResult re_low = lower(func, rr.alloc);

    std::cout << "\nre-allocated: producer="
              << regName(rr.alloc.colorOf[producer])
              << "  consumer=" << regName(rr.alloc.colorOf[consumer])
              << "\n\n"
              << disassemble(re_low.program) << "\n";

    double lvp = runLoadCoverage(re_low.program, VpScheme::Lvp);
    double before =
        runLoadCoverage(base_low.program, VpScheme::DynamicRvp);
    double after = runLoadCoverage(re_low.program, VpScheme::DynamicRvp);
    std::cout << "load coverage:\n"
              << "  last-value prediction:           "
              << TextTable::percent(lvp)
              << "  (the value never repeats)\n"
              << "  plain RVP, baseline allocation:  "
              << TextTable::percent(before) << "\n"
              << "  plain RVP, after re-allocation:  "
              << TextTable::percent(after) << "\n"
              << "\nCorrelated variables need not hold the *same* value "
                 "over time — only the\nsame value as each other. Only "
                 "register-based prediction can exploit that.\n";
    return 0;
}
