/**
 * @file
 * Quickstart: the smallest end-to-end use of the library. Builds a
 * tiny program in the IR, compiles it (graph-colouring register
 * allocation + lowering to SRISC), runs it through the out-of-order
 * core with and without dynamic register value prediction, and prints
 * the disassembly and the headline numbers.
 *
 *   $ ./examples/quickstart
 */

#include <iostream>

#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "isa/disasm.hh"
#include "sim/tables.hh"
#include "uarch/core.hh"
#include "vp/oracle.hh"

using namespace rvp;

int
main()
{
    // ---- 1. Write a program against the IR ----
    // A pointer chase through a one-element cycle: the loaded value
    // never changes, so every load exhibits register-value reuse.
    IRFunction func;
    IRBuilder b(func);
    VReg iters = func.newIntVReg();
    VReg ptr = func.newIntVReg();
    b.startBlock();
    b.loadAddr(ptr, Program::dataBase);
    b.loadAddr(iters, 30'000);
    BlockId loop = b.startBlock();
    b.load(ptr, ptr, 0);              // ptr = mem[ptr]  (self-pointer)
    b.opImm(Opcode::SUBQ, iters, iters, 1);
    b.branch(Opcode::BNE, iters, loop);
    b.startBlock();
    b.halt();
    func.numberInsts();

    // ---- 2. Compile: allocate registers, lower to machine code ----
    AllocResult alloc = allocateRegisters(func, AllocConfig{});
    LowerResult low = lower(func, alloc);
    low.program.dataImage.push_back(
        {Program::dataBase, Program::dataBase});   // the self-pointer

    std::cout << "compiled program:\n"
              << disassemble(low.program) << "\n";

    // ---- 3. Run the timing model, without and with prediction ----
    auto run = [&](VpScheme scheme) {
        VpConfig vp;
        vp.scheme = scheme;
        vp.loadsOnly = true;
        auto predictor = makePredictor(vp, low.program);
        Core core(CoreParams::table1(), low.program, *predictor);
        return core.run();
    };
    CoreResult base = run(VpScheme::None);
    CoreResult rvp = run(VpScheme::DynamicRvp);

    TextTable table;
    table.setHeader({"config", "cycles", "IPC", "predicted", "correct"});
    table.addRow({"no prediction", std::to_string(base.cycles),
                  TextTable::num(base.ipc), "0", "-"});
    table.addRow({"dynamic RVP", std::to_string(rvp.cycles),
                  TextTable::num(rvp.ipc),
                  TextTable::num(rvp.stats.get("vp.predictions"), 0),
                  TextTable::percent(rvp.stats.ratio("vp.correct",
                                                     "vp.predictions"))});
    table.print(std::cout);

    std::cout << "\nThe pointer chase serializes on the load; register "
                 "value prediction\nbreaks the dependence using the value "
                 "already in the destination register\n(no value storage "
                 "at all) and the loop collapses to ~1 iteration/cycle.\n";
    return 0;
}
