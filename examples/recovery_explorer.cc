/**
 * @file
 * Recovery-mechanism explorer (paper Section 4.3 / Figure 4). Runs a
 * chosen workload under each value-misprediction recovery scheme —
 * refetch, reissue, selective reissue — at a chosen confidence
 * threshold, and prints IPC, misprediction counts, and the queue
 * pressure each scheme induces.
 *
 *   $ ./examples/recovery_explorer [workload] [threshold]
 */

#include <cstdlib>
#include <iostream>

#include "sim/runner.hh"
#include "sim/tables.hh"

using namespace rvp;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "hydro2d";
    unsigned threshold = argc > 2 ? std::atoi(argv[2]) : 7;

    std::cout << "workload " << workload << ", dynamic RVP (all insts, "
              << "dead+lv assist), confidence threshold " << threshold
              << "\n\n";

    ExperimentConfig base;
    base.workload = workload;
    base.core.maxInsts = 200'000;
    base.profileInsts = 200'000;
    ExperimentResult no_pred = runExperiment(base);

    TextTable table;
    table.setHeader({"recovery", "IPC", "speedup", "mispredicts",
                     "reissues", "refetch squashes", "IQ-full stalls"});
    table.addRow({"(no prediction)", TextTable::num(no_pred.ipc), "1.000",
                  "-", "-", "-",
                  TextTable::num(no_pred.stats.get("core.iq_full_stalls"),
                                 0)});

    for (RecoveryPolicy policy :
         {RecoveryPolicy::Refetch, RecoveryPolicy::Reissue,
          RecoveryPolicy::Selective}) {
        ExperimentConfig config = base;
        config.scheme = VpScheme::DynamicRvp;
        config.assist = AssistLevel::DeadLv;
        config.loadsOnly = false;
        config.counterThreshold = threshold;
        config.core.recovery = policy;
        ExperimentResult r = runExperiment(config);
        const char *name = policy == RecoveryPolicy::Refetch ? "refetch"
                           : policy == RecoveryPolicy::Reissue
                               ? "reissue"
                               : "selective";
        table.addRow(
            {name, TextTable::num(r.ipc),
             TextTable::num(r.ipc / no_pred.ipc),
             TextTable::num(r.stats.get("core.value_mispredicts"), 0),
             TextTable::num(r.stats.get("core.reissues"), 0),
             TextTable::num(r.stats.get("core.value_refetches"), 0),
             TextTable::num(r.stats.get("core.iq_full_stalls"), 0)});
    }
    table.print(std::cout);

    std::cout << "\nLower thresholds predict more aggressively: watch "
                 "refetch's squashes\nand reissue's queue pressure grow. "
                 "The paper's threshold of 7 is a\nconservative filter "
                 "that keeps all three schemes viable.\n";
    return 0;
}
