/**
 * @file
 * Constant locality (paper Section 3): reading a sparse matrix where
 * most entries are zero. Last-value prediction mispredicts twice
 * around every nonzero (once entering, once leaving); predicting the
 * *constant* zero — which register value prediction implements by
 * simply keeping zero in the destination register between uses —
 * mispredicts only once per nonzero. This example builds a sparse
 * matrix-vector product and compares LVP with dynamic RVP.
 *
 *   $ ./examples/sparse_matrix [density%]
 */

#include <cstdlib>
#include <iostream>

#include "common/rng.hh"
#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "sim/tables.hh"
#include "uarch/core.hh"
#include "vp/oracle.hh"
#include "workloads/workloads.hh"

using namespace rvp;

namespace
{

/** y += A*x over a dense-stored but mostly-zero 64x64 matrix. */
Program
sparseMatVec(unsigned density_pct)
{
    IRFunction func;
    IRBuilder b(func);
    constexpr unsigned n = 64;
    constexpr std::uint64_t matBase = Program::dataBase;
    constexpr std::uint64_t vecBase = Program::dataBase + 0x10000;
    constexpr std::uint64_t outBase = Program::dataBase + 0x11000;

    VReg outer = func.newIntVReg();
    VReg i = func.newIntVReg();
    VReg j = func.newIntVReg();
    VReg mat = func.newIntVReg();
    VReg vec = func.newIntVReg();
    VReg out = func.newIntVReg();
    VReg row = func.newIntVReg();
    VReg addr = func.newIntVReg();
    VReg tmp = func.newIntVReg();
    VReg a = func.newFpVReg();
    VReg x = func.newFpVReg();
    VReg acc = func.newFpVReg();
    VReg prod = func.newFpVReg();

    b.startBlock();
    b.loadAddr(mat, matBase);
    b.loadAddr(vec, vecBase);
    b.loadAddr(out, outBase);
    b.loadAddr(outer, 1'000'000);
    BlockId outer_head = b.startBlock();
    b.loadImm(i, 0);
    BlockId row_head = b.startBlock();
    b.opImm(Opcode::SLL, row, i, 6);
    b.op3(Opcode::SUBT, acc, acc, acc);   // acc = 0
    b.loadImm(j, 0);
    BlockId col_head = b.startBlock();
    b.op3(Opcode::ADDQ, addr, row, j);
    b.opImm(Opcode::SLL, addr, addr, 3);
    b.op3(Opcode::ADDQ, addr, addr, mat);
    b.load(a, addr, 0);                    // mostly 0.0: constant locality
    b.opImm(Opcode::SLL, tmp, j, 3);
    b.op3(Opcode::ADDQ, tmp, tmp, vec);
    b.load(x, tmp, 0);
    b.op3(Opcode::MULT, prod, a, x);
    b.op3(Opcode::ADDT, acc, acc, prod);
    b.opImm(Opcode::ADDQ, j, j, 1);
    b.opImm(Opcode::CMPLT, tmp, j, static_cast<std::int32_t>(n));
    b.branch(Opcode::BNE, tmp, col_head);
    b.startBlock();
    b.opImm(Opcode::SLL, tmp, i, 3);
    b.op3(Opcode::ADDQ, tmp, tmp, out);
    b.store(acc, tmp, 0);
    b.opImm(Opcode::ADDQ, i, i, 1);
    b.opImm(Opcode::CMPLT, tmp, i, static_cast<std::int32_t>(n));
    b.branch(Opcode::BNE, tmp, row_head);
    b.startBlock();
    b.opImm(Opcode::SUBQ, outer, outer, 1);
    b.branch(Opcode::BNE, outer, outer_head);
    b.startBlock();
    b.halt();
    func.numberInsts();

    AllocResult alloc = allocateRegisters(func, AllocConfig{});
    LowerResult low = lower(func, alloc);

    Rng rng(0xabc);
    for (unsigned r = 0; r < n; ++r)
        for (unsigned c = 0; c < n; ++c)
            if (rng.chance(density_pct, 100))
                low.program.dataImage.push_back(
                    {matBase + 8ull * (r * n + c),
                     doubleBits(1.0 + rng.nextDouble())});
    for (unsigned c = 0; c < n; ++c)
        low.program.dataImage.push_back(
            {vecBase + 8ull * c, doubleBits(rng.nextDouble())});
    return low.program;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned density = argc > 1 ? std::atoi(argv[1]) : 8;
    Program prog = sparseMatVec(density);

    TextTable table;
    table.setHeader({"predictor", "IPC", "speedup", "coverage",
                     "accuracy"});
    CoreParams params = CoreParams::table1();
    params.maxInsts = 300'000;

    double base_ipc = 0;
    for (VpScheme scheme :
         {VpScheme::None, VpScheme::Lvp, VpScheme::DynamicRvp}) {
        VpConfig vp;
        vp.scheme = scheme;
        vp.loadsOnly = true;
        auto predictor = makePredictor(vp, prog);
        Core core(params, prog, *predictor);
        CoreResult r = core.run();
        if (scheme == VpScheme::None) {
            base_ipc = r.ipc;
            table.addRow({"none", TextTable::num(r.ipc), "1.000", "-",
                          "-"});
        } else {
            table.addRow(
                {scheme == VpScheme::Lvp ? "last-value (8KB buffer)"
                                         : "register VP (no storage)",
                 TextTable::num(r.ipc), TextTable::num(r.ipc / base_ipc),
                 TextTable::percent(r.stats.get("vp.predictions") /
                                    static_cast<double>(r.committed)),
                 TextTable::percent(r.stats.ratio("vp.correct",
                                                  "vp.predictions"))});
        }
    }

    std::cout << "sparse matrix-vector product, " << density
              << "% nonzero entries\n\n";
    table.print(std::cout);
    std::cout << "\nMost coefficient loads return 0.0. RVP keeps the "
                 "constant in the\ndestination register and needs no "
                 "value storage to exploit it.\n";
    return 0;
}
