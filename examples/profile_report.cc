/**
 * @file
 * Profile report: the tool a compiler writer would run first. Profiles
 * a workload and prints, for every interesting static instruction, its
 * register-value-reuse breakdown — the same data the paper's Section-5
 * lists are built from — plus the Figure-1 style dynamic summary.
 *
 *   $ ./examples/profile_report [workload] [min-coverage%]
 */

#include <cstdlib>
#include <iostream>

#include "compiler/arch_liveness.hh"
#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "emu/emulator.hh"
#include "isa/disasm.hh"
#include "profile/reuse_profiler.hh"
#include "sim/tables.hh"
#include "workloads/workloads.hh"

using namespace rvp;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "m88ksim";
    double min_rate = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.5;

    BuiltWorkload wl = buildWorkload(name, InputSet::Train);
    AllocResult alloc = allocateRegisters(wl.func, AllocConfig{});
    if (!alloc.success) {
        std::cerr << "allocation failed\n";
        return 1;
    }
    LowerResult low = lower(wl.func, alloc);
    low.program.dataImage = wl.data;

    std::vector<std::uint64_t> live = archLiveBefore(wl.func, alloc, low);
    ReuseProfiler profiler(low.program, live);
    Emulator emu(low.program);
    DynInst di;
    std::uint64_t n = 0;
    while (n < 300'000) {
        ArchState pre = emu.state();
        if (!emu.step(di))
            break;
        profiler.observe(di, pre);
        ++n;
    }
    ReuseProfile profile = profiler.finish();

    std::cout << "register-value reuse profile: " << name << " (train, "
              << n << " insts)\n\n";

    TextTable table;
    table.setHeader({"static", "instruction", "execs", "same", "lv",
                     "stride", "best source (dead_lv_stride)"});
    for (std::uint32_t s = 0; s < low.program.size(); ++s) {
        const InstReuseCounts &c = profile.counts[s];
        if (c.execs < 100)
            continue;
        double best =
            profile.bestRate(s, AssistLevel::DeadLvStride);
        if (best < min_rate)
            continue;
        StaticPredSpec spec =
            profile.bestSpec(s, AssistLevel::DeadLvStride);
        std::string source;
        switch (spec.source) {
          case PredSource::SameReg:
            source = "same register";
            break;
          case PredSource::OtherReg: {
            bool dead = !((profile.liveBefore[s] >> spec.reg) & 1);
            source = regName(spec.reg) +
                     (dead ? " (dead)" : " (live)");
            break;
          }
          case PredSource::LastValue:
            source = "last value";
            break;
          case PredSource::Stride:
            source = "stride " + std::to_string(spec.stride);
            break;
        }
        double e = static_cast<double>(c.execs);
        table.addRow({std::to_string(s),
                      disassemble(low.program.at(s)),
                      std::to_string(c.execs),
                      TextTable::percent(c.sameRegHits / e, 0),
                      TextTable::percent(c.lastValueHits / e, 0),
                      TextTable::percent(c.strideHits / e, 0),
                      source + " @ " + TextTable::percent(best, 0)});
    }
    table.print(std::cout);

    if (profile.loadExecs) {
        double e = static_cast<double>(profile.loadExecs);
        std::cout << "\ndynamic load summary (Figure-1 columns): same "
                  << TextTable::percent(profile.loadSameReg / e)
                  << ", dead "
                  << TextTable::percent(profile.loadDeadReg / e)
                  << ", any "
                  << TextTable::percent(profile.loadAnyReg / e)
                  << ", reg-or-lvp "
                  << TextTable::percent(profile.loadRegOrLv / e) << "\n";
    }
    return 0;
}
