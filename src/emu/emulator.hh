/**
 * @file
 * In-order functional emulator for SRISC. The emulator executes the
 * committed path and produces one DynInst record per instruction; the
 * out-of-order timing model and the value-prediction oracles consume
 * that stream (execution-driven methodology, as in the paper — the
 * wrong path is modelled as redirect penalty, see DESIGN.md).
 */

#ifndef RVP_EMU_EMULATOR_HH
#define RVP_EMU_EMULATOR_HH

#include <array>
#include <cstdint>

#include "emu/memory.hh"
#include "isa/inst.hh"

namespace rvp
{

/** Architectural register state: flat int+fp banks, zero regs pinned. */
struct ArchState
{
    std::array<std::uint64_t, numArchRegs> regs{};

    std::uint64_t
    read(RegIndex r) const
    {
        return isZeroReg(r) || r == regNone ? 0 : regs[r];
    }

    void
    write(RegIndex r, std::uint64_t value)
    {
        if (r != regNone && !isZeroReg(r))
            regs[r] = value;
    }
};

/**
 * One executed (committed-path) dynamic instruction. Register source
 * fields are normalized: reads of the hardwired zero registers are
 * reported as regNone so the timing model never creates dependence
 * edges on them.
 */
struct DynInst
{
    std::uint64_t seq = 0;         ///< dynamic sequence number (from 0)
    std::uint32_t staticIndex = 0; ///< index into the Program
    std::uint64_t pc = 0;
    Opcode op = Opcode::NOP;

    RegIndex srcA = regNone;       ///< first register source (or none)
    RegIndex srcB = regNone;       ///< second register source (or none)
    RegIndex dest = regNone;       ///< destination register (or none)

    std::uint64_t effAddr = 0;     ///< loads/stores: effective address
    bool isTaken = false;          ///< control: actually taken?
    std::uint64_t nextPc = 0;      ///< actual successor pc

    std::uint64_t oldDestValue = 0;///< dest register value before write
    std::uint64_t newValue = 0;    ///< value produced (stores: data)

    const OpcodeInfo &info() const { return opcodeInfo(op); }
    bool isLoad() const { return info().isLoad; }
    bool isStore() const { return info().isStore; }
    bool isControl() const
    {
        return info().isCondBranch || info().isUncondBranch;
    }
};

/**
 * The functional emulator. Strictly forward: callers that need replay
 * (the timing model's refetch recovery) buffer DynInsts themselves.
 */
class Emulator
{
  public:
    explicit Emulator(const Program &prog);

    /** True once HALT has executed (no further steps possible). */
    bool halted() const { return halted_; }

    /** Current (pre-step) architectural state; read-only. */
    const ArchState &state() const { return state_; }

    /** Current program counter. */
    std::uint64_t pc() const { return pc_; }

    /** Committed-instruction count so far. */
    std::uint64_t instCount() const { return instCount_; }

    /**
     * Execute one instruction and fill out. Returns false (and leaves
     * out untouched) once the program has halted.
     */
    bool step(DynInst &out);

    /** Direct access to data memory (tests and workload setup). */
    SparseMemory &memory() { return mem_; }
    const SparseMemory &memory() const { return mem_; }

  private:
    const Program &prog_;
    SparseMemory mem_;
    ArchState state_;
    std::uint64_t pc_;
    std::uint64_t instCount_ = 0;
    bool halted_ = false;
};

} // namespace rvp

#endif // RVP_EMU_EMULATOR_HH
