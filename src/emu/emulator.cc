#include "emu/emulator.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace rvp
{

namespace
{

double
asDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

std::uint64_t
asBits(double value)
{
    return std::bit_cast<std::uint64_t>(value);
}

/** Normalize a source register: zero regs create no dependences. */
RegIndex
normalizeSrc(RegIndex r)
{
    return (r == regNone || isZeroReg(r)) ? regNone : r;
}

} // namespace

Emulator::Emulator(const Program &prog)
    : prog_(prog), pc_(Program::textBase)
{
    for (const auto &[addr, value] : prog.dataImage)
        mem_.write64(addr, value);
    state_.write(spReg, Program::stackTop);
}

bool
Emulator::step(DynInst &out)
{
    if (halted_)
        return false;

    std::size_t index = Program::indexOf(pc_);
    RVP_ASSERT(index < prog_.size());
    const StaticInst &si = prog_.insts[index];
    const OpcodeInfo &info = si.info();

    out = DynInst{};
    out.seq = instCount_;
    out.staticIndex = static_cast<std::uint32_t>(index);
    out.pc = pc_;
    out.op = si.op;
    out.nextPc = pc_ + 4;

    std::uint64_t a = state_.read(si.ra);
    std::uint64_t b = si.useImm ? static_cast<std::uint64_t>(
                                      static_cast<std::int64_t>(si.imm))
                                : state_.read(si.rb);
    std::int64_t sa = static_cast<std::int64_t>(a);
    std::int64_t sb = static_cast<std::int64_t>(b);
    // FP views are computed lazily inside the FP cases: integer ops
    // dominate every workload, and the bit reinterpretation is pure
    // overhead for them.

    std::uint64_t result = 0;
    bool writes = info.writesRc;

    switch (si.op) {
      case Opcode::ADDQ: result = a + b; break;
      case Opcode::SUBQ: result = a - b; break;
      case Opcode::MULQ: result = a * b; break;
      case Opcode::AND:  result = a & b; break;
      case Opcode::BIS:  result = a | b; break;
      case Opcode::XOR:  result = a ^ b; break;
      case Opcode::SLL:  result = a << (b & 63); break;
      case Opcode::SRL:  result = a >> (b & 63); break;
      case Opcode::SRA:  result = static_cast<std::uint64_t>(sa >> (b & 63));
                         break;
      case Opcode::CMPEQ:  result = a == b; break;
      case Opcode::CMPLT:  result = sa < sb; break;
      case Opcode::CMPLE:  result = sa <= sb; break;
      case Opcode::CMPULT: result = a < b; break;
      case Opcode::LDA:
        result = a + static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(si.imm));
        break;

      case Opcode::LDQ:
      case Opcode::LDT:
      case Opcode::RVP_LDQ:
      case Opcode::RVP_LDT:
        out.effAddr = a + static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(si.imm));
        result = mem_.read64(out.effAddr);
        break;

      case Opcode::STQ:
      case Opcode::STT:
        out.effAddr = a + static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(si.imm));
        out.newValue = state_.read(si.rb);
        mem_.write64(out.effAddr, out.newValue);
        break;

      case Opcode::BEQ: out.isTaken = (a == 0); break;
      case Opcode::BNE: out.isTaken = (a != 0); break;
      case Opcode::BLT: out.isTaken = (sa < 0); break;
      case Opcode::BLE: out.isTaken = (sa <= 0); break;
      case Opcode::BGT: out.isTaken = (sa > 0); break;
      case Opcode::BGE: out.isTaken = (sa >= 0); break;
      case Opcode::FBEQ: out.isTaken = (asDouble(a) == 0.0); break;
      case Opcode::FBNE: out.isTaken = (asDouble(a) != 0.0); break;
      case Opcode::BR:  out.isTaken = true; break;
      case Opcode::JSR:
        out.isTaken = true;
        result = pc_ + 4;          // return address
        out.nextPc = a;
        break;
      case Opcode::RET:
        out.isTaken = true;
        out.nextPc = a;
        break;

      case Opcode::ADDT: result = asBits(asDouble(a) + asDouble(b)); break;
      case Opcode::SUBT: result = asBits(asDouble(a) - asDouble(b)); break;
      case Opcode::MULT: result = asBits(asDouble(a) * asDouble(b)); break;
      case Opcode::DIVT: result = asBits(asDouble(a) / asDouble(b)); break;
      case Opcode::CMPTEQ:
        result = asBits(asDouble(a) == asDouble(b) ? 1.0 : 0.0);
        break;
      case Opcode::CMPTLT:
        result = asBits(asDouble(a) < asDouble(b) ? 1.0 : 0.0);
        break;
      case Opcode::CMPTLE:
        result = asBits(asDouble(a) <= asDouble(b) ? 1.0 : 0.0);
        break;
      case Opcode::CVTQT: result = asBits(static_cast<double>(sa)); break;
      case Opcode::CVTTQ:
        result = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(std::trunc(asDouble(a))));
        break;

      case Opcode::CPYS:
      case Opcode::ITOF:
      case Opcode::FTOI:
        result = a;
        break;

      case Opcode::NOP:
        break;
      case Opcode::HALT:
        halted_ = true;
        break;

      case Opcode::NumOpcodes:
        panic("invalid opcode");
    }

    // Branch target resolution for pc-relative forms.
    if (info.isCondBranch || si.op == Opcode::BR) {
        if (out.isTaken)
            out.nextPc = pc_ + 4 + 4 * static_cast<std::int64_t>(si.imm);
    }

    // Record sources (normalized) and destination effects.
    out.srcA = normalizeSrc(si.ra);
    if (!si.useImm && !info.isLoad && si.op != Opcode::LDA)
        out.srcB = normalizeSrc(si.rb);

    if (writes) {
        out.dest = si.rc;
        out.oldDestValue = state_.read(si.rc);
        out.newValue = result;
        state_.write(si.rc, result);
        if (isZeroReg(si.rc))
            out.dest = regNone;   // writes to zero regs are discarded
    }

    pc_ = out.nextPc;
    ++instCount_;
    return true;
}

} // namespace rvp
