/**
 * @file
 * Sparse byte-addressable memory backing the functional emulator. Pages
 * are allocated on first touch and zero-filled, which matches the
 * "bss + heap" behaviour the synthetic workloads rely on.
 */

#ifndef RVP_EMU_MEMORY_HH
#define RVP_EMU_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace rvp
{

/** Sparse paged memory with 64-bit loads and stores. */
class SparseMemory
{
  public:
    static constexpr std::uint64_t pageBytes = 4096;

    /** Read an aligned 64-bit value; untouched memory reads zero. */
    std::uint64_t read64(std::uint64_t addr) const;

    /** Write an aligned 64-bit value, allocating the page if needed. */
    void write64(std::uint64_t addr, std::uint64_t value);

    /** Read one byte. */
    std::uint8_t read8(std::uint64_t addr) const;

    /** Write one byte. */
    void write8(std::uint64_t addr, std::uint8_t value);

    /** Number of resident pages (for tests). */
    std::size_t residentPages() const { return pages_.size(); }

  private:
    using Page = std::vector<std::uint8_t>;

    Page *pageFor(std::uint64_t addr);
    const Page *pageForConst(std::uint64_t addr) const;

    std::unordered_map<std::uint64_t, Page> pages_;
};

} // namespace rvp

#endif // RVP_EMU_MEMORY_HH
