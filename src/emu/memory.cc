#include "emu/memory.hh"

#include <cstring>

#include "common/logging.hh"

namespace rvp
{

SparseMemory::Page *
SparseMemory::pageFor(std::uint64_t addr)
{
    std::uint64_t page_id = addr / pageBytes;
    auto [it, inserted] = pages_.try_emplace(page_id);
    if (inserted)
        it->second.assign(pageBytes, 0);
    return &it->second;
}

const SparseMemory::Page *
SparseMemory::pageForConst(std::uint64_t addr) const
{
    auto it = pages_.find(addr / pageBytes);
    return it == pages_.end() ? nullptr : &it->second;
}

std::uint64_t
SparseMemory::read64(std::uint64_t addr) const
{
    RVP_ASSERT((addr & 7) == 0);
    const Page *page = pageForConst(addr);
    if (!page)
        return 0;
    std::uint64_t value;
    std::memcpy(&value, page->data() + (addr % pageBytes), 8);
    return value;
}

void
SparseMemory::write64(std::uint64_t addr, std::uint64_t value)
{
    RVP_ASSERT((addr & 7) == 0);
    Page *page = pageFor(addr);
    std::memcpy(page->data() + (addr % pageBytes), &value, 8);
}

std::uint8_t
SparseMemory::read8(std::uint64_t addr) const
{
    const Page *page = pageForConst(addr);
    return page ? (*page)[addr % pageBytes] : 0;
}

void
SparseMemory::write8(std::uint64_t addr, std::uint8_t value)
{
    (*pageFor(addr))[addr % pageBytes] = value;
}

} // namespace rvp
