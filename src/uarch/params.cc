#include "uarch/params.hh"

namespace rvp
{

CoreParams
CoreParams::table1()
{
    return CoreParams{};
}

CoreParams
CoreParams::aggressive16()
{
    CoreParams p;
    p.fetchWidth = 16;
    p.fetchBlocks = 3;      // up to three basic blocks per cycle
    p.renameWidth = 16;
    p.commitWidth = 16;
    p.intIqEntries = 64;
    p.fpIqEntries = 64;
    p.intFus = 12;
    p.ldstPorts = 8;
    p.fpFus = 6;
    p.robEntries = 256;
    p.physIntRegs = 224;    // doubled renaming registers
    p.physFpRegs = 224;
    p.lsqEntries = 128;
    return p;
}

} // namespace rvp
