/**
 * @file
 * Processor parameters. The defaults reproduce Table 1 of the paper:
 * a 9-stage, 8-wide out-of-order core with 32-entry int/fp instruction
 * queues, 6 integer FUs (4 of them load/store capable), 3 FP FUs, a
 * 7-cycle branch-mispredict penalty, gshare + 256-entry BTB, and the
 * 32KB/32KB/512KB cache hierarchy. aggressive16() doubles the queues,
 * functional units, renaming registers, and fetch bandwidth and
 * fetches up to three basic blocks per cycle (the paper's Section 7.4
 * configuration).
 */

#ifndef RVP_UARCH_PARAMS_HH
#define RVP_UARCH_PARAMS_HH

#include <cstdint>

#include "branch/gshare.hh"
#include "mem/hierarchy.hh"

namespace rvp
{

/** Value-misprediction recovery scheme (Section 4.3). */
enum class RecoveryPolicy
{
    Refetch,    ///< treat like a branch mispredict: squash + refetch
    Reissue,    ///< everything after first-use held in the IQ, reissues
    Selective,  ///< only dependent instructions held and reissued
};

/** Full core configuration. */
struct CoreParams
{
    unsigned fetchWidth = 8;
    /** Max predicted-taken branches fetched per cycle (basic blocks). */
    unsigned fetchBlocks = 1;
    /**
     * Cycles from fetch to dispatch. With 1 issue + 1 regread + 1
     * execute cycle this yields the paper's 9-stage pipe and 7-cycle
     * branch-mispredict penalty.
     */
    unsigned frontDepth = 5;
    unsigned renameWidth = 8;
    unsigned commitWidth = 8;

    unsigned intIqEntries = 32;
    unsigned fpIqEntries = 32;
    unsigned intFus = 6;
    unsigned ldstPorts = 4;     ///< of the integer FUs
    unsigned fpFus = 3;

    unsigned robEntries = 128;
    unsigned physIntRegs = 128; ///< 32 architectural + 96 renaming
    unsigned physFpRegs = 128;
    unsigned lsqEntries = 64;

    RecoveryPolicy recovery = RecoveryPolicy::Selective;

    /**
     * Collect latency/occupancy/recovery histograms into the stat
     * dump (StatSet::Distribution). Off by default: the extra stats
     * would break bit-identity with golden snapshots taken without
     * them, and per-cycle sampling costs a little time.
     */
    bool collectHist = false;

    HierarchyConfig mem;
    BranchPredictorConfig bp;

    /** Committed-instruction budget for one run. */
    std::uint64_t maxInsts = 400'000;

    /** The paper's Table-1 next-generation 8-wide core. */
    static CoreParams table1();

    /** The paper's Section-7.4 aggressive 16-wide core. */
    static CoreParams aggressive16();
};

} // namespace rvp

#endif // RVP_UARCH_PARAMS_HH
