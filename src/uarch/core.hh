/**
 * @file
 * Execution-driven out-of-order core timing model. The functional
 * emulator supplies the committed-path instruction stream (with
 * values); this model times it through fetch, rename, the instruction
 * queues, functional units, the memory hierarchy, and in-order
 * commit, including:
 *
 *  - gshare/BTB/RAS branch prediction with squash + 7-cycle redirect
 *  - register renaming with the paper's *speculative mapping* field:
 *    a value-predicted instruction keeps the previous physical mapping
 *    visible so its consumers read the prior register value and issue
 *    immediately (Section 4)
 *  - transitive speculation tracking so all three misprediction
 *    recovery schemes (refetch / reissue / selective reissue) behave
 *    per Section 4.3, including the IQ-occupancy pressure that makes
 *    refetch competitive (Section 7.1.1)
 *  - a load/store queue with perfect address-based disambiguation and
 *    store->load forwarding.
 *
 * Wrong-path instructions are not fetched; a mispredicted branch
 * stalls fetch until it resolves and restarts it the next cycle, which
 * with the front-end depth reproduces the 7-cycle penalty of Table 1.
 */

#ifndef RVP_UARCH_CORE_HH
#define RVP_UARCH_CORE_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "branch/gshare.hh"
#include "common/deadline.hh"
#include "emu/emulator.hh"
#include "mem/hierarchy.hh"
#include "stream/stream.hh"
#include "trace/tracer.hh"
#include "uarch/params.hh"
#include "vp/predictor.hh"

namespace rvp
{

/** Result of a timing run. */
struct CoreResult
{
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;
    double ipc = 0.0;
    StatSet stats;
};

/** The out-of-order core. One instance runs one program once. */
class Core
{
  public:
    /**
     * @param params core configuration
     * @param prog compiled program (with data image)
     * @param predictor value predictor (owned by caller; consulted in
     *        program order at first fetch)
     * @param tracer optional pipeline-lifecycle tracer (owned by the
     *        caller; null disables tracing at the cost of one
     *        predictable branch per hook site)
     * @param source optional committed-stream source (owned by the
     *        caller, e.g. a StreamCursor replaying a cached capture);
     *        null means live functional emulation of prog. Either
     *        source yields bit-identical stats.
     * @param deadline optional wall-clock watchdog (owned by the
     *        caller; checked every few thousand cycles — an expired
     *        deadline throws DeadlineExceeded out of run()). Null
     *        costs one predictable branch per check interval and
     *        leaves stats and timing untouched.
     */
    Core(const CoreParams &params, const Program &prog,
         ValuePredictor &predictor, PipelineTracer *tracer = nullptr,
         InstSource *source = nullptr,
         const RunDeadline *deadline = nullptr);

    /** Run to the committed-instruction budget (or HALT). */
    CoreResult run();

    /**
     * Advance the pipeline by one cycle; false once the run is over
     * (committed budget reached, or the window drained after the
     * stream ended). run() is exactly `while (stepCycle()) {}` +
     * finalize(); an external driver (sim/batchrun.hh) interleaves
     * stepCycle() across many cores so they consume one shared decode
     * of the committed stream in lockstep. At most
     * params.fetchWidth instructions are pulled from the source per
     * call, which is the headroom contract batched replay schedules
     * around.
     */
    bool stepCycle();

    /**
     * Flush the tracer and assemble the CoreResult + exported stats.
     * Call exactly once, after stepCycle() has returned false (run()
     * does both). Bit-identical to the tail of the historical
     * monolithic run().
     */
    CoreResult finalize();

  private:
    static constexpr std::uint64_t noSeq = ~0ull;
    static constexpr std::uint64_t farFuture = ~0ull / 4;

    /** Program-order record produced at first fetch, kept for replay. */
    struct Fetched
    {
        DynInst di;
        /** di.op's static properties (the opcodeInfo() lookup is
         *  out-of-line; one resolution at fetch serves every phase). */
        const OpcodeInfo *info = nullptr;
        VpDecision vp;
        bool isBranch = false;
        bool branchMispredict = false;
        bool predictedTaken = false;
    };

    /** Pipeline state of one in-flight instruction. */
    struct Inflight
    {
        enum class St : std::uint8_t { WaitDispatch, InIQ, Issued, Done };

        std::uint64_t seq = 0;
        /** This seq's Fetched record. Stable: ring slot (seq & mask)
         *  is only reused once this seq has committed (buffer entries
         *  outlive their window entries — popped together at commit,
         *  and squash only drops window entries). */
        const Fetched *f = nullptr;
        St state = St::WaitDispatch;
        std::uint64_t fetchCycle = 0;
        std::uint64_t completeCycle = farFuture;
        std::uint64_t earliestIssue = 0;

        std::uint64_t destTag = 0;
        std::uint64_t srcTag[2] = {0, 0};
        /** Prediction (seq) currently supplying each source, if any. */
        std::uint64_t srcPredSeq[2] = {noSeq, noSeq};
        /** Unresolved predictions this instruction depends on. */
        std::vector<std::uint64_t> specOn;

        bool inIq = false;
        bool usesFpQueue = false;
        bool usesIq = false;
        bool isMemOp = false;
        /** Tracked by releasePending_ (issued but still holding IQ). */
        bool inReleaseList = false;

        // Prediction bookkeeping (when this instruction is predicted).
        bool isPredicted = false;
        bool resolved = false;
        std::uint64_t predOldTag = 0;
        std::uint64_t firstUseSeq = noSeq;
    };

    /** Speculative rename-map entry (Section 4.1). */
    struct MapEntry
    {
        std::uint64_t tag = 0;
        std::uint64_t predSeq = noSeq;   ///< unresolved prediction
        std::uint64_t oldTag = 0;        ///< prior mapping (prediction)
    };

    // ---- pipeline phases (one call each per cycle) ----
    void completePhase();
    void commitPhase();
    void iqReleasePhase();
    void issuePhase();
    void dispatchPhase();
    void fetchPhase();

    // ---- helpers ----
    Inflight *findSeq(std::uint64_t seq);
    const Inflight *findSeq(std::uint64_t seq) const;
    bool predUnresolved(std::uint64_t seq) const;
    void recoverFromValueMispredict(Inflight &pred);
    void squashFrom(std::uint64_t first_bad_seq);
    void rebuildRenameMap();
    void resetIssuedDependent(Inflight &inst, const Inflight &pred);
    bool loadBlockedByStore(const Inflight &load) const;
    unsigned loadLatencyFor(const Inflight &load);
    std::uint64_t allocTag(std::uint64_t producer_seq);
    void iqListInsert(std::uint64_t seq);
    void noteFirstUse(std::uint64_t pred_seq, std::uint64_t user_seq);
    void inheritSpec(Inflight &inst, std::uint64_t tag);
    void scheduleCompletion(std::uint64_t seq, std::uint64_t when);
    void dropFromScoreboard(const Inflight &inst, const Fetched &f);

    const CoreParams params_;
    const Program &prog_;
    ValuePredictor &predictor_;

    /** Live fallback, constructed only when no source is injected (a
     *  replay run skips the emulator's data-image setup entirely). */
    std::unique_ptr<LiveEmulatorSource> ownedSource_;
    InstSource *source_;
    MemoryHierarchy mem_;
    BranchPredictor bp_;

    // ---- seq-indexed rings (replacing the historical deques) ----
    //
    // The window holds the contiguous seqs [winBase_, winBase_ +
    // winCount_) and is bounded by robEntries; the replay buffer holds
    // [bufferBase_, bufferBase_ + bufCount_) with bufferBase_ ==
    // winBase_ (both pop at commit) and the same bound. With a
    // power-of-two capacity >= robEntries, the record for seq lives at
    // slot (seq & mask): findSeq() is one range check plus a masked
    // index, pushes are slot assignments (the slot's specOn vector
    // keeps its capacity), and no deque node hops sit on the per-cycle
    // paths.

    /** Replay buffer: Fetched records for seqs [bufferBase_, ...). */
    std::vector<Fetched> bufRing_;
    std::uint64_t bufferBase_ = 0;
    std::size_t bufCount_ = 0;
    std::uint64_t fetchSeq_ = 0;      ///< next seq to put in the window
    bool streamEnded_ = false;

    /** ROB, oldest first: seqs [winBase_, winBase_ + winCount_). */
    std::vector<Inflight> winRing_;
    std::uint64_t winBase_ = 0;
    std::size_t winCount_ = 0;
    std::uint64_t ringMask_ = 0;      ///< shared by both rings

    Fetched &bufSlot(std::uint64_t seq) { return bufRing_[seq & ringMask_]; }
    Inflight &winSlot(std::uint64_t seq) { return winRing_[seq & ringMask_]; }
    const Inflight &winSlot(std::uint64_t seq) const
    {
        return winRing_[seq & ringMask_];
    }
    /** One past the youngest in-window seq. */
    std::uint64_t winEnd() const { return winBase_ + winCount_; }

    MapEntry map_[numArchRegs];
    std::uint64_t committedTag_[numArchRegs] = {};

    std::vector<std::uint64_t> readyAt_;     ///< per tag: exec-start ready
    std::vector<std::uint64_t> tagProducer_; ///< per tag: producing seq
    std::uint64_t nextTag_ = 1;

    /** Per static inst: tag/seq of its most recent dispatched instance
     *  (the prediction source for LastValue specs). */
    std::vector<std::uint64_t> lastInstanceTag_;
    std::vector<std::uint64_t> lastInstanceSeq_;

    // ---- O(1) scoreboarding (docs/INTERNALS.md, "Simulator
    // performance"): every per-cycle full-window rescan of the seed
    // implementation is replaced by state maintained incrementally at
    // dispatch / issue / release / commit / squash. ----

    /** Instructions holding an IQ slot (inIq), indexed by [fp]. */
    unsigned iqOcc_[2] = {0, 0};
    /** Renamed destination registers in flight, indexed by [fp]. */
    unsigned physOcc_[2] = {0, 0};
    /** Dispatched memory operations in flight (LSQ entries). */
    unsigned lsqOcc_ = 0;

    /**
     * Completion event wheel: bucket (cycle & wheelMask_) holds the
     * seqs scheduled to complete at that cycle. Entries are validated
     * at pop (state == Issued && completeCycle == now), so squashes
     * and reissues simply leave stale entries behind instead of
     * requiring removal.
     */
    std::vector<std::vector<std::uint64_t>> wheel_;
    std::uint64_t wheelMask_ = 0;

    /**
     * Seqs of in-window predicted instructions not yet resolved,
     * ascending. Dispatch happens in seq order (replays re-dispatch
     * above every surviving entry), so inserts are push_backs; the
     * Reissue hold scan iterates this instead of the whole window.
     */
    std::vector<std::uint64_t> unresolvedPreds_;

    /**
     * Seqs with inIq set whose state has left InIQ — the only
     * instructions iqReleasePhase can release. Self-cleaning: entries
     * whose instruction was squashed or released are dropped on the
     * next pass (inReleaseList guards against duplicates).
     */
    std::vector<std::uint64_t> releasePending_;

    /** In-window store seqs (ascending) per effective address. */
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>>
        storesByAddr_;

    /**
     * Seqs with state == InIQ, ascending — the only instructions
     * issuePhase can select, so it walks this (bounded by the IQ
     * sizes) instead of the whole ROB. Entries are added at dispatch
     * and at a reissue reset, removed when they issue, and dropped
     * lazily (like releasePending_) when the instruction was squashed
     * or the seq was reused; iteration order equals window order, so
     * issue decisions are unchanged.
     */
    std::vector<std::uint64_t> iqList_;

    /**
     * Seq of the oldest instruction that can still be WaitDispatch.
     * States only advance and dispatch is in-order, so the
     * undispatched instructions are exactly the window suffix starting
     * here; dispatchPhase begins at this seq instead of rescanning the
     * dispatched prefix. Squash rewinds it alongside fetchSeq_.
     */
    std::uint64_t dispatchSeq_ = 0;

    std::uint64_t cycle_ = 0;
    std::uint64_t committed_ = 0;
    /** Deadlock-watchdog bookkeeping (was local to run(); promoted so
     *  stepCycle() keeps it across external-driver calls). */
    std::uint64_t lastCommitCycle_ = 0;
    std::uint64_t lastCommitted_ = 0;
    /** Committed-path prediction counts (see commitPhase). */
    std::uint64_t vpEligibleCommitted_ = 0;
    std::uint64_t vpPredictedCommitted_ = 0;
    std::uint64_t vpCorrectCommitted_ = 0;
    std::uint64_t fetchResumeCycle_ = 0;
    std::uint64_t pendingRedirectSeq_ = noSeq;
    std::uint64_t lastFetchLine_ = ~0ull;
    /** log2 of the configured L1I line size (fetch-probe granularity). */
    unsigned fetchLineShift_ = 6;
    bool fetchHalted_ = false;

    StatSet stats_;

    /** Optional lifecycle tracer (see trace/tracer.hh); may be null. */
    PipelineTracer *tracer_ = nullptr;

    /** Cycles between watchdog checks (power of two; the check is a
     *  masked compare plus, when due, one steady_clock read). */
    static constexpr std::uint64_t deadlineCheckMask = 4095;
    /** Optional per-run wall-clock watchdog; may be null. */
    const RunDeadline *deadline_ = nullptr;

    /**
     * Interned histogram handles, non-null only when
     * params.collectHist — the off state costs one predictable branch
     * per sample site and emits no stats (golden maps unchanged).
     */
    StatSet::Distribution *histIssueToComplete_ = nullptr;
    StatSet::Distribution *histIqOccupancy_ = nullptr;
    StatSet::Distribution *histLsqOccupancy_ = nullptr;
    StatSet::Distribution *histRecoveryPenalty_ = nullptr;

    /**
     * Interned per-event stat handles (StatSet::counter): one
     * registration in the constructor, then every pipeline event is a
     * lookup-free accumulate. Declared after stats_ (initialization
     * order) and intentionally named like the stats they back.
     */
    struct Counters
    {
        explicit Counters(StatSet &stats);

        StatSet::Counter &branchMispredicts;
        StatSet::Counter &valueMispredicts;
        StatSet::Counter &reissues;
        StatSet::Counter &valueRefetches;
        StatSet::Counter &commitCyclesUsed;
        StatSet::Counter &holdAfterDoneCycles;
        StatSet::Counter &holdsReleased;
        StatSet::Counter &storeForwards;
        StatSet::Counter &issued;
        StatSet::Counter &iqOccupancyInt;
        StatSet::Counter &iqOccupancyFp;
        StatSet::Counter &iqFullStalls;
        StatSet::Counter &physRegStalls;
        StatSet::Counter &lsqFullStalls;
        StatSet::Counter &predictedValueUses;
        StatSet::Counter &predictionsDispatched;
        StatSet::Counter &fetchStallCycles;
        StatSet::Counter &robFullStalls;
        StatSet::Counter &icacheMissStalls;
        StatSet::Counter &fetched;
        StatSet::Counter &squashed;
    };
    Counters ctr_;
};

} // namespace rvp

#endif // RVP_UARCH_CORE_HH
