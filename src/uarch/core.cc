#include "uarch/core.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/bits.hh"
#include "common/logging.hh"

namespace rvp
{

Core::Counters::Counters(StatSet &stats)
    : branchMispredicts(stats.counter("core.branch_mispredicts")),
      valueMispredicts(stats.counter("core.value_mispredicts")),
      reissues(stats.counter("core.reissues")),
      valueRefetches(stats.counter("core.value_refetches")),
      commitCyclesUsed(stats.counter("core.commit_cycles_used")),
      holdAfterDoneCycles(stats.counter("core.hold_after_done_cycles")),
      holdsReleased(stats.counter("core.holds_released")),
      storeForwards(stats.counter("core.store_forwards")),
      issued(stats.counter("core.issued")),
      iqOccupancyInt(stats.counter("core.iq_occupancy_int")),
      iqOccupancyFp(stats.counter("core.iq_occupancy_fp")),
      iqFullStalls(stats.counter("core.iq_full_stalls")),
      physRegStalls(stats.counter("core.phys_reg_stalls")),
      lsqFullStalls(stats.counter("core.lsq_full_stalls")),
      predictedValueUses(stats.counter("core.predicted_value_uses")),
      predictionsDispatched(stats.counter("core.predictions_dispatched")),
      fetchStallCycles(stats.counter("core.fetch_stall_cycles")),
      robFullStalls(stats.counter("core.rob_full_stalls")),
      icacheMissStalls(stats.counter("core.icache_miss_stalls")),
      fetched(stats.counter("core.fetched")),
      squashed(stats.counter("core.squashed"))
{
}

Core::Core(const CoreParams &params, const Program &prog,
           ValuePredictor &predictor, PipelineTracer *tracer,
           InstSource *source, const RunDeadline *deadline)
    : params_(params), prog_(prog), predictor_(predictor),
      mem_(params.mem), bp_(params.bp), tracer_(tracer),
      deadline_(deadline), ctr_(stats_)
{
    if (source) {
        source_ = source;
    } else {
        ownedSource_ = std::make_unique<LiveEmulatorSource>(prog);
        source_ = ownedSource_.get();
    }
    // Fetch probes the I-cache once per new line; the grouping must
    // match the configured geometry (validateCacheConfig guarantees a
    // power-of-two line size).
    fetchLineShift_ = floorLog2(params.mem.l1i.lineBytes);
    if (params.collectHist) {
        histIssueToComplete_ =
            &stats_.distribution("core.issue_to_complete");
        histIqOccupancy_ = &stats_.distribution("core.iq_occupancy");
        histLsqOccupancy_ = &stats_.distribution("core.lsq_occupancy");
        histRecoveryPenalty_ =
            &stats_.distribution("core.recovery_penalty");
    }
    // Tag 0 is the always-ready sentinel (committed/initial values).
    readyAt_.push_back(0);
    tagProducer_.push_back(noSeq);
    lastInstanceTag_.assign(prog.size(), 0);
    lastInstanceSeq_.assign(prog.size(), noSeq);

    // Size the completion wheel to the longest possible issue-to-
    // complete delay: the worst-case load (address generation + L1 +
    // both miss penalties) plus a generous bound on static op
    // latencies. scheduleCompletion() asserts the invariant.
    std::uint64_t span = 2 + params.mem.l1HitLatency +
                         params.mem.l1MissPenalty +
                         params.mem.l2MissPenalty + 64;
    std::uint64_t size = 1;
    while (size < span)
        size <<= 1;
    wheel_.assign(size, {});
    wheelMask_ = size - 1;

    // Seq-indexed rings: the window never exceeds robEntries (fetch
    // stops at a full ROB) and the replay buffer never outgrows it
    // (entries span [winBase_, winBase_ + robEntries) — see core.hh).
    std::size_t cap = 1;
    while (cap < params.robEntries)
        cap <<= 1;
    winRing_.resize(cap);
    bufRing_.resize(cap);
    ringMask_ = cap - 1;
}

// ---------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------

const Core::Inflight *
Core::findSeq(std::uint64_t seq) const
{
    if (seq < winBase_ || seq >= winEnd())
        return nullptr;
    return &winSlot(seq);
}

Core::Inflight *
Core::findSeq(std::uint64_t seq)
{
    return const_cast<Inflight *>(
        static_cast<const Core *>(this)->findSeq(seq));
}

bool
Core::predUnresolved(std::uint64_t seq) const
{
    const Inflight *inst = findSeq(seq);
    return inst && inst->isPredicted && !inst->resolved;
}

std::uint64_t
Core::allocTag(std::uint64_t producer_seq)
{
    readyAt_.push_back(farFuture);
    tagProducer_.push_back(producer_seq);
    return nextTag_++;
}

void
Core::iqListInsert(std::uint64_t seq)
{
    // Dispatch appends in ascending seq order, so the common case is a
    // push_back; a reissue reset re-inserts an older seq, and a stale
    // entry for a reused seq may already be present (dedupe: the one
    // entry then denotes the new instruction).
    if (iqList_.empty() || iqList_.back() < seq) {
        iqList_.push_back(seq);
        return;
    }
    auto it = std::lower_bound(iqList_.begin(), iqList_.end(), seq);
    if (it == iqList_.end() || *it != seq)
        iqList_.insert(it, seq);
}

void
Core::noteFirstUse(std::uint64_t pred_seq, std::uint64_t user_seq)
{
    Inflight *pred = findSeq(pred_seq);
    if (pred && pred->firstUseSeq == noSeq)
        pred->firstUseSeq = user_seq;
}

/** Inherit the (transitive) speculation colouring of a value read. */
void
Core::inheritSpec(Inflight &inst, std::uint64_t tag)
{
    std::uint64_t producer = tagProducer_[tag];
    if (producer == noSeq)
        return;
    Inflight *prod = findSeq(producer);
    if (!prod)
        return;   // committed: its value is architectural
    for (std::uint64_t s : prod->specOn) {
        if (predUnresolved(s) &&
            std::find(inst.specOn.begin(), inst.specOn.end(), s) ==
                inst.specOn.end()) {
            inst.specOn.push_back(s);
        }
    }
}

void
Core::scheduleCompletion(std::uint64_t seq, std::uint64_t when)
{
    RVP_ASSERT(when > cycle_ && when - cycle_ <= wheel_.size(),
               "completion delay %llu overflows the event wheel (%zu)",
               static_cast<unsigned long long>(when - cycle_),
               wheel_.size());
    wheel_[when & wheelMask_].push_back(seq);
}

/**
 * Retire an instruction from every incremental structure: occupancy
 * counters, the unresolved-prediction list, and the in-flight store
 * index. Used by both commit (pops the oldest) and squash (pops the
 * youngest); the completion wheel needs no cleanup because its entries
 * are validated when popped.
 */
void
Core::dropFromScoreboard(const Inflight &inst, const Fetched &f)
{
    if (inst.inIq)
        --iqOcc_[inst.usesFpQueue];
    if (inst.state != Inflight::St::WaitDispatch) {
        if (f.di.dest != regNone)
            --physOcc_[isFpReg(f.di.dest)];
        if (inst.isMemOp)
            --lsqOcc_;
    }
    if (inst.isPredicted && !inst.resolved) {
        auto it = std::lower_bound(unresolvedPreds_.begin(),
                                   unresolvedPreds_.end(), inst.seq);
        RVP_ASSERT(it != unresolvedPreds_.end() && *it == inst.seq);
        unresolvedPreds_.erase(it);
    }
    if (f.info->isStore) {
        auto it = storesByAddr_.find(f.di.effAddr);
        RVP_ASSERT(it != storesByAddr_.end() && !it->second.empty());
        std::vector<std::uint64_t> &seqs = it->second;
        if (seqs.back() == inst.seq)
            seqs.pop_back();            // squash removes the youngest
        else {
            RVP_ASSERT(seqs.front() == inst.seq);
            seqs.erase(seqs.begin());   // commit removes the oldest
        }
        if (seqs.empty())
            storesByAddr_.erase(it);
    }
}

// ---------------------------------------------------------------------
// Complete / recovery
// ---------------------------------------------------------------------

void
Core::completePhase()
{
    std::vector<std::uint64_t> &bucket = wheel_[cycle_ & wheelMask_];
    if (bucket.empty())
        return;
    // Process in window (= seq) order, like the seed's full scan: an
    // older instruction's recovery squashes or resets younger ones
    // before they are looked at, and the state/cycle check below then
    // skips their stale entries.
    std::sort(bucket.begin(), bucket.end());
    for (std::uint64_t seq : bucket) {
        Inflight *ip = findSeq(seq);
        if (!ip || ip->state != Inflight::St::Issued ||
            ip->completeCycle != cycle_) {
            continue;   // stale: squashed, reset, or rescheduled
        }
        Inflight &inst = *ip;
        inst.state = Inflight::St::Done;
        const Fetched &f = *inst.f;
        if (tracer_ && tracer_->sampled(inst.seq))
            tracer_->onComplete(inst.seq, cycle_);

        if (f.isBranch && f.branchMispredict &&
            pendingRedirectSeq_ == inst.seq) {
            // Wrong path was never fetched; resume down the right one.
            pendingRedirectSeq_ = noSeq;
            fetchResumeCycle_ = cycle_ + 1;
            lastFetchLine_ = ~0ull;
            ctr_.branchMispredicts.add();
        }

        if (inst.isPredicted) {
            // A predicted instruction can complete more than once: a
            // reissue recovery resets it to InIQ but leaves `resolved`
            // set, so only the first completion removes it from the
            // unresolved list. The misprediction handling below runs
            // on every completion, as it always has.
            if (!inst.resolved) {
                inst.resolved = true;
                auto it = std::lower_bound(unresolvedPreds_.begin(),
                                           unresolvedPreds_.end(),
                                           inst.seq);
                RVP_ASSERT(it != unresolvedPreds_.end() &&
                           *it == inst.seq);
                unresolvedPreds_.erase(it);
            }
            if (!f.vp.correct) {
                ctr_.valueMispredicts.add();
                recoverFromValueMispredict(inst);
            }
        }
    }
    bucket.clear();   // keeps its capacity: allocation-free steady state
}

void
Core::resetIssuedDependent(Inflight &inst, const Inflight &pred)
{
    // Repair sources supplied by the wrong prediction.
    for (int s = 0; s < 2; ++s) {
        if (inst.srcPredSeq[s] == pred.seq) {
            inst.srcTag[s] = pred.destTag;
            inst.srcPredSeq[s] = noSeq;
        }
    }
    if (inst.state == Inflight::St::Issued ||
        inst.state == Inflight::St::Done) {
        RVP_ASSERT(inst.inIq);   // held by the recovery policy
        // Still in releasePending_ (it was never released); the
        // release pass keeps InIQ entries until they issue again.
        inst.state = Inflight::St::InIQ;
        inst.completeCycle = farFuture;
        // Back in the issue candidate list (it left when it issued).
        iqListInsert(inst.seq);
        // "A dependent instruction will issue one cycle later after a
        // mispredict than it would if the previous instruction were
        // not predicted" (Section 4.3).
        inst.earliestIssue = cycle_ + 1;
        if (inst.destTag)
            readyAt_[inst.destTag] = farFuture;
        ctr_.reissues.add();
        if (tracer_ && tracer_->sampled(inst.seq))
            tracer_->onReissue(inst.seq);
    }
}

void
Core::recoverFromValueMispredict(Inflight &pred)
{
    if (params_.recovery == RecoveryPolicy::Refetch) {
        // Recovery cost = instructions thrown away and refetched.
        std::size_t squashed = 0;
        if (pred.firstUseSeq != noSeq && findSeq(pred.firstUseSeq)) {
            ctr_.valueRefetches.add();
            std::size_t before = winCount_;
            squashFrom(pred.firstUseSeq);
            squashed = before - winCount_;
            fetchResumeCycle_ = cycle_ + 1;
        } else if (map_[pred.f->di.dest].predSeq == pred.seq) {
            // No consumer yet: future consumers read the real result.
            map_[pred.f->di.dest].predSeq = noSeq;
        }
        if (histRecoveryPenalty_)
            histRecoveryPenalty_->sample(static_cast<double>(squashed));
        return;
    }

    // Reissue / selective reissue: every (transitively) dependent
    // instruction re-executes with the correct value.
    std::size_t affected = 0;   // recovery cost = re-executed work
    for (std::uint64_t s = pred.seq + 1; s < winEnd(); ++s) {
        Inflight &inst = winSlot(s);
        auto it = std::find(inst.specOn.begin(), inst.specOn.end(),
                            pred.seq);
        if (it == inst.specOn.end())
            continue;
        inst.specOn.erase(it);
        resetIssuedDependent(inst, pred);
        ++affected;
    }
    if (histRecoveryPenalty_)
        histRecoveryPenalty_->sample(static_cast<double>(affected));
    RegIndex dest = pred.f->di.dest;
    if (map_[dest].predSeq == pred.seq)
        map_[dest].predSeq = noSeq;
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
Core::commitPhase()
{
    unsigned done = 0;
    while (done < params_.commitWidth && winCount_ > 0) {
        Inflight &head = winSlot(winBase_);
        if (head.state != Inflight::St::Done)
            break;
        const Fetched &f = *head.f;

        if (f.info->isStore)
            mem_.storeAccess(f.di.effAddr);
        if (f.di.dest != regNone) {
            committedTag_[f.di.dest] = head.destTag;
            // The map may still point at this tag; that stays valid.
        }
        // Committed-path prediction accounting. The predictor's own
        // counters are taken at fetch and therefore also cover
        // instructions that never commit (the in-flight tail when the
        // budget expires); coverage/accuracy must be computed against
        // what actually committed or Table-2 numbers are inflated.
        if (f.vp.eligible) {
            ++vpEligibleCommitted_;
            if (f.vp.predicted) {
                ++vpPredictedCommitted_;
                vpCorrectCommitted_ += f.vp.correct;
            }
        }
        if (tracer_ && tracer_->sampled(head.seq))
            tracer_->onCommit(head.seq, cycle_);
        dropFromScoreboard(head, f);
        ++committed_;
        ++done;
        ++winBase_;
        --winCount_;
        ++bufferBase_;
        --bufCount_;
    }
    // Idle commit cycles add nothing (and the stat exists from the
    // first cycle that does commit), so skip the no-op accumulate.
    if (done > 0)
        ctr_.commitCyclesUsed.add(1);
}

// ---------------------------------------------------------------------
// IQ release
// ---------------------------------------------------------------------

void
Core::iqReleasePhase()
{
    // For the reissue policy: the oldest first-use of any unresolved
    // prediction; everything at or after it is held in the queues.
    std::uint64_t hold_from = noSeq;
    if (params_.recovery == RecoveryPolicy::Reissue) {
        for (std::uint64_t pred_seq : unresolvedPreds_) {
            const Inflight *pred = findSeq(pred_seq);
            RVP_ASSERT(pred);
            if (pred->firstUseSeq != noSeq)
                hold_from = std::min(hold_from, pred->firstUseSeq);
        }
    }

    // Only instructions that issued while holding their IQ slot can be
    // released; everything else in the window is untouched. (The seed
    // pruned every instruction's specOn each cycle; only release
    // decisions read specOn emptiness, and inheritSpec re-filters per
    // element, so pruning at evaluation here is timing-identical.)
    std::size_t kept = 0;
    for (std::size_t i = 0; i < releasePending_.size(); ++i) {
        std::uint64_t seq = releasePending_[i];
        Inflight *ip = findSeq(seq);
        if (!ip || !ip->inIq) {
            // Committed or squashed since it was queued; a replayed
            // instruction with the same seq starts with a fresh flag.
            continue;
        }
        Inflight &inst = *ip;
        if (inst.state == Inflight::St::InIQ) {
            // Reset by a value mispredict: back in the queue, waiting
            // to issue again. Keep the entry for that reissue.
            releasePending_[kept++] = seq;
            continue;
        }
        std::erase_if(inst.specOn, [&](std::uint64_t s) {
            return !predUnresolved(s);
        });
        bool release = false;
        switch (params_.recovery) {
          case RecoveryPolicy::Refetch:
            release = true;
            break;
          case RecoveryPolicy::Selective:
            release = inst.specOn.empty();
            break;
          case RecoveryPolicy::Reissue:
            release = inst.seq < hold_from;
            break;
        }
        if (!release) {
            releasePending_[kept++] = seq;
            continue;
        }
        inst.inIq = false;
        inst.inReleaseList = false;
        --iqOcc_[inst.usesFpQueue];
        if (inst.state == Inflight::St::Done &&
            cycle_ > inst.completeCycle) {
            ctr_.holdAfterDoneCycles.add(
                static_cast<double>(cycle_ - inst.completeCycle));
            ctr_.holdsReleased.add();
        }
    }
    releasePending_.resize(kept);
}

// ---------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------

bool
Core::loadBlockedByStore(const Inflight &load) const
{
    const Fetched &lf = *load.f;
    auto it = storesByAddr_.find(lf.di.effAddr);
    if (it == storesByAddr_.end() || it->second.empty())
        return false;
    const std::vector<std::uint64_t> &seqs = it->second;
    // Youngest older store to the same address must have executed.
    auto pos = std::lower_bound(seqs.begin(), seqs.end(), load.seq);
    if (pos == seqs.begin())
        return false;   // every same-address store is younger
    const Inflight *store = findSeq(*(pos - 1));
    RVP_ASSERT(store);
    return store->state != Inflight::St::Done;
}

unsigned
Core::loadLatencyFor(const Inflight &load)
{
    const Fetched &lf = *load.f;
    auto it = storesByAddr_.find(lf.di.effAddr);
    if (it != storesByAddr_.end() && !it->second.empty() &&
        it->second.front() < load.seq) {
        ctr_.storeForwards.add();
        return 1;   // store-to-load forward
    }
    return mem_.loadLatency(lf.di.effAddr);
}

void
Core::issuePhase()
{
    // Walk the InIQ candidate list (ascending seq = window order, so
    // selection is identical to the historical full-window scan) with
    // in-place compaction: an entry is dropped when it issues or when
    // it went stale (squashed, or its seq was reused after a squash
    // and the new instruction is not in the queue yet — dispatch
    // re-adds it).
    unsigned int_used = 0, ldst_used = 0, fp_used = 0;
    std::size_t kept = 0, idx = 0, n = iqList_.size();
    for (; idx < n; ++idx) {
        if (int_used >= params_.intFus && fp_used >= params_.fpFus)
            break;
        std::uint64_t seq = iqList_[idx];
        Inflight *ip = findSeq(seq);
        if (!ip || ip->state != Inflight::St::InIQ)
            continue;   // stale: drop
        Inflight &inst = *ip;
        if (cycle_ < inst.earliestIssue) {
            // one-cycle reissue penalty after a mispredict
            iqList_[kept++] = seq;
            continue;
        }

        const Fetched &f = *inst.f;
        FuClass fu = f.info->fuClass;
        bool is_fp = fu == FuClass::FpAdd || fu == FuClass::FpMul ||
                     fu == FuClass::FpDiv;
        bool is_mem = fu == FuClass::Load || fu == FuClass::Store;

        // Functional-unit availability.
        if (is_fp) {
            if (fp_used >= params_.fpFus) {
                iqList_[kept++] = seq;
                continue;
            }
        } else {
            if (int_used >= params_.intFus) {
                iqList_[kept++] = seq;
                continue;
            }
            if (is_mem && ldst_used >= params_.ldstPorts) {
                iqList_[kept++] = seq;
                continue;
            }
        }

        // Operand readiness (full bypass: ready for exec at cycle+1).
        bool ready = true;
        for (int s = 0; s < 2 && ready; ++s)
            ready = readyAt_[inst.srcTag[s]] <= cycle_ + 1;
        if (!ready) {
            iqList_[kept++] = seq;
            continue;
        }

        unsigned latency = f.info->latency;
        if (f.info->isLoad) {
            if (loadBlockedByStore(inst)) {
                iqList_[kept++] = seq;
                continue;
            }
            latency = 1 + loadLatencyFor(inst);
        }

        inst.state = Inflight::St::Issued;
        inst.completeCycle = cycle_ + latency;
        scheduleCompletion(inst.seq, inst.completeCycle);
        if (histIssueToComplete_)
            histIssueToComplete_->sample(static_cast<double>(latency));
        if (tracer_ && tracer_->sampled(inst.seq))
            tracer_->onIssue(inst.seq, cycle_);
        if (inst.inIq && !inst.inReleaseList) {
            inst.inReleaseList = true;
            releasePending_.push_back(inst.seq);
        }
        if (inst.destTag)
            readyAt_[inst.destTag] = cycle_ + latency + 1;
        if (is_fp)
            ++fp_used;
        else
            ++int_used;
        if (is_mem)
            ++ldst_used;
        ctr_.issued.add();
        // Issued: leaves the candidate list (a reissue reset
        // re-inserts it).
    }
    // FU-saturation early break: the unexamined tail stays queued.
    for (; idx < n; ++idx)
        iqList_[kept++] = iqList_[idx];
    iqList_.resize(kept);
}

// ---------------------------------------------------------------------
// Dispatch (rename + queue insert)
// ---------------------------------------------------------------------

void
Core::dispatchPhase()
{
    ctr_.iqOccupancyInt.add(iqOcc_[0]);
    ctr_.iqOccupancyFp.add(iqOcc_[1]);
    if (histIqOccupancy_) {
        histIqOccupancy_->sample(
            static_cast<double>(iqOcc_[0] + iqOcc_[1]));
        histLsqOccupancy_->sample(static_cast<double>(lsqOcc_));
    }

    // States only advance and dispatch is in-order, so the
    // WaitDispatch instructions are exactly the window suffix from
    // dispatchSeq_ on; start there instead of rescanning the
    // dispatched prefix.
    unsigned dispatched = 0;
    for (std::uint64_t s = dispatchSeq_; s < winEnd(); ++s) {
        Inflight &inst = winSlot(s);
        RVP_ASSERT(inst.state == Inflight::St::WaitDispatch &&
                   inst.seq == dispatchSeq_);
        if (dispatched >= params_.renameWidth)
            break;
        if (inst.fetchCycle + params_.frontDepth > cycle_)
            break;   // still in the front end (in-order)

        const Fetched &f = *inst.f;
        const OpcodeInfo &info = *f.info;
        bool is_fp_queue = info.fuClass == FuClass::FpAdd ||
                           info.fuClass == FuClass::FpMul ||
                           info.fuClass == FuClass::FpDiv;
        bool uses_iq = info.fuClass != FuClass::None;
        bool is_mem = info.isLoad || info.isStore;

        // Structural stalls (in-order: stop at the first blocked one).
        if (uses_iq) {
            if (is_fp_queue ? iqOcc_[1] >= params_.fpIqEntries
                            : iqOcc_[0] >= params_.intIqEntries) {
                ctr_.iqFullStalls.add();
                break;
            }
        }
        if (f.di.dest != regNone) {
            bool fp_bank = isFpReg(f.di.dest);
            unsigned in_use = physOcc_[fp_bank];
            unsigned limit = (fp_bank ? params_.physFpRegs
                                      : params_.physIntRegs) -
                             numIntRegs;
            if (in_use >= limit) {
                ctr_.physRegStalls.add();
                break;
            }
        }
        if (is_mem && lsqOcc_ >= params_.lsqEntries) {
            ctr_.lsqFullStalls.add();
            break;
        }

        // ---- rename sources ----
        RegIndex srcs[2] = {f.di.srcA, f.di.srcB};
        for (int s = 0; s < 2; ++s) {
            if (srcs[s] == regNone) {
                inst.srcTag[s] = 0;
                continue;
            }
            MapEntry &entry = map_[srcs[s]];
            if (entry.predSeq != noSeq && predUnresolved(entry.predSeq)) {
                // Speculative mapping: read the *prior* value of the
                // register — this is the prediction.
                inst.srcTag[s] = entry.oldTag;
                inst.srcPredSeq[s] = entry.predSeq;
                if (std::find(inst.specOn.begin(), inst.specOn.end(),
                              entry.predSeq) == inst.specOn.end())
                    inst.specOn.push_back(entry.predSeq);
                noteFirstUse(entry.predSeq, inst.seq);
                inheritSpec(inst, entry.oldTag);
                ctr_.predictedValueUses.add();
            } else {
                inst.srcTag[s] = entry.tag;
                inheritSpec(inst, entry.tag);
            }
        }

        // ---- rename destination ----
        if (f.di.dest != regNone) {
            inst.destTag = allocTag(inst.seq);
            if (f.vp.predicted) {
                inst.isPredicted = true;
                RVP_ASSERT(unresolvedPreds_.empty() ||
                           unresolvedPreds_.back() < inst.seq);
                unresolvedPreds_.push_back(inst.seq);
                // The *prior register value* consumers read. Which
                // physical value that is depends on the compiler
                // assumption behind the prediction: with
                // re-allocation, the correlated register's current
                // value (OtherReg) or this instruction's previous
                // result in a loop-exclusive register (LastValue);
                // without assistance, the destination's old mapping.
                if (predictor_.valueFromBuffer()) {
                    // Buffer-based prediction: the value was read from
                    // the value file at rename — immediately ready.
                    inst.predOldTag = 0;
                } else {
                    StaticPredSpec spec =
                        predictor_.specOf(f.di.staticIndex);
                    switch (spec.source) {
                      case PredSource::SameReg:
                        inst.predOldTag = map_[f.di.dest].tag;
                        break;
                      case PredSource::OtherReg:
                        inst.predOldTag = map_[spec.reg].tag;
                        break;
                      case PredSource::LastValue:
                      case PredSource::Stride:
                        // The loop-exclusive register holds the
                        // previous instance's result (plus, for
                        // Stride, an inserted add the paper treats as
                        // off the critical path).
                        inst.predOldTag =
                            lastInstanceTag_[f.di.staticIndex];
                        break;
                    }
                }
                map_[f.di.dest] =
                    MapEntry{inst.destTag, inst.seq, inst.predOldTag};
                ctr_.predictionsDispatched.add();
            } else {
                map_[f.di.dest] = MapEntry{inst.destTag, noSeq, 0};
            }
            lastInstanceTag_[f.di.staticIndex] = inst.destTag;
            lastInstanceSeq_[f.di.staticIndex] = inst.seq;
            ++physOcc_[isFpReg(f.di.dest)];
        }

        // ---- queue insert ----
        if (uses_iq) {
            inst.state = Inflight::St::InIQ;
            inst.inIq = true;
            inst.usesIq = true;
            inst.usesFpQueue = is_fp_queue;
            ++iqOcc_[is_fp_queue];
            iqListInsert(inst.seq);
        } else {
            // NOP/HALT: completes immediately, consumes nothing.
            inst.state = Inflight::St::Done;
            inst.completeCycle = cycle_;
        }
        inst.isMemOp = is_mem;
        if (is_mem)
            ++lsqOcc_;
        ++dispatched;
        ++dispatchSeq_;
        if (tracer_ && tracer_->sampled(inst.seq)) {
            tracer_->onRename(inst.seq, cycle_);
            // NOP/HALT complete at rename (they never issue).
            if (!uses_iq)
                tracer_->onComplete(inst.seq, cycle_);
        }
    }
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
Core::fetchPhase()
{
    if (fetchHalted_ || cycle_ < fetchResumeCycle_ ||
        pendingRedirectSeq_ != noSeq) {
        ctr_.fetchStallCycles.add();
        return;
    }

    unsigned fetched = 0;
    unsigned taken_branches = 0;
    while (fetched < params_.fetchWidth) {
        if (winCount_ >= params_.robEntries) {
            ctr_.robFullStalls.add();
            break;
        }

        // Materialize the Fetched record (replay or new).
        if (fetchSeq_ >= bufferBase_ + bufCount_) {
            if (streamEnded_) {
                fetchHalted_ = true;
                break;
            }
            Fetched f;
            if (!source_->step(f.di)) {
                streamEnded_ = true;
                fetchHalted_ = true;
                break;
            }
            f.info = &opcodeInfo(f.di.op);
            f.vp = predictor_.onInst(f.di, source_->preState());
            if (f.info->isCondBranch || f.info->isUncondBranch) {
                f.isBranch = true;
                const StaticInst &si = prog_.at(f.di.staticIndex);
                BranchPrediction pred = bp_.predict(f.di.pc, si);
                bool dir_wrong =
                    f.info->isCondBranch && pred.taken != f.di.isTaken;
                bool target_wrong =
                    f.di.isTaken && pred.taken &&
                    (!pred.targetKnown || pred.target != f.di.nextPc);
                f.branchMispredict = dir_wrong || target_wrong;
                f.predictedTaken = pred.taken;
                bp_.update(f.di.pc, si, f.di.isTaken, f.di.nextPc,
                           dir_wrong);
            }
            bufSlot(fetchSeq_) = f;
            ++bufCount_;
        }
        Fetched &f = bufSlot(fetchSeq_);

        // Instruction-cache access, one probe per new line (the line
        // granularity tracks the configured L1I geometry).
        std::uint64_t line = f.di.pc >> fetchLineShift_;
        if (line != lastFetchLine_) {
            unsigned lat = mem_.fetchLatency(f.di.pc);
            lastFetchLine_ = line;
            if (lat > params_.mem.l1HitLatency) {
                // Miss: the group arrives after the miss penalty.
                fetchResumeCycle_ = cycle_ + (lat - 1);
                ctr_.icacheMissStalls.add();
                break;
            }
        }

        Inflight inst;
        inst.seq = fetchSeq_;
        inst.f = &f;
        inst.fetchCycle = cycle_;
        winSlot(fetchSeq_) = inst;   // slot's specOn keeps its capacity
        ++winCount_;
        if (f.info->isStore)
            storesByAddr_[f.di.effAddr].push_back(inst.seq);
        ++fetchSeq_;
        ++fetched;
        ctr_.fetched.add();
        if (tracer_ && tracer_->sampled(inst.seq)) {
            tracer_->onFetch(inst.seq, f.di.pc, f.di.op, cycle_,
                             f.vp.eligible, f.vp.predicted, f.vp.correct);
        }

        if (f.di.op == Opcode::HALT) {
            fetchHalted_ = true;
            break;
        }
        if (f.isBranch) {
            if (f.branchMispredict) {
                pendingRedirectSeq_ = inst.seq;
                break;
            }
            if (f.predictedTaken) {
                ++taken_branches;
                lastFetchLine_ = ~0ull;   // redirected: new line next
                if (taken_branches >= params_.fetchBlocks)
                    break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Squash / rename-map rebuild
// ---------------------------------------------------------------------

void
Core::squashFrom(std::uint64_t first_bad_seq)
{
    while (winCount_ > 0 && winSlot(winEnd() - 1).seq >= first_bad_seq) {
        const Inflight &inst = winSlot(winEnd() - 1);
        dropFromScoreboard(inst, *inst.f);
        ctr_.squashed.add();
        if (tracer_ && tracer_->sampled(inst.seq))
            tracer_->onSquash(inst.seq, TraceExit::ValueSquash);
        --winCount_;
    }
    fetchSeq_ = first_bad_seq;
    // Refetched seqs dispatch anew (stale iqList_ entries for them are
    // deduped or dropped lazily).
    dispatchSeq_ = std::min(dispatchSeq_, first_bad_seq);
    if (pendingRedirectSeq_ != noSeq &&
        pendingRedirectSeq_ >= first_bad_seq) {
        pendingRedirectSeq_ = noSeq;
    }
    fetchHalted_ = false;
    lastFetchLine_ = ~0ull;

    // LastValue prediction sources must not point at squashed tags
    // (their producers will never complete).
    for (std::size_t s = 0; s < lastInstanceSeq_.size(); ++s) {
        if (lastInstanceSeq_[s] != noSeq &&
            lastInstanceSeq_[s] >= first_bad_seq) {
            lastInstanceTag_[s] = 0;
            lastInstanceSeq_[s] = noSeq;
        }
    }

    // Replayed branches re-predict with the (now trained) predictor:
    // model that as a correct prediction of the actual outcome.
    for (std::uint64_t s = first_bad_seq; s < bufferBase_ + bufCount_;
         ++s) {
        Fetched &f = bufSlot(s);
        if (f.isBranch) {
            f.branchMispredict = false;
            f.predictedTaken = f.di.isTaken;
        }
    }
    rebuildRenameMap();
}

void
Core::rebuildRenameMap()
{
    for (RegIndex r = 0; r < numArchRegs; ++r)
        map_[r] = MapEntry{committedTag_[r], noSeq, 0};
    for (std::uint64_t s = winBase_; s < winEnd(); ++s) {
        const Inflight &inst = winSlot(s);
        if (inst.state == Inflight::St::WaitDispatch)
            break;   // not renamed yet (in-order suffix)
        const Fetched &f = *inst.f;
        if (f.di.dest == regNone)
            continue;
        if (inst.isPredicted && !inst.resolved) {
            map_[f.di.dest] =
                MapEntry{inst.destTag, inst.seq, inst.predOldTag};
        } else {
            map_[f.di.dest] = MapEntry{inst.destTag, noSeq, 0};
        }
    }
}

// ---------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------

bool
Core::stepCycle()
{
    if (committed_ >= params_.maxInsts)
        return false;

    // Per-run watchdog (common/deadline.hh): a masked compare per
    // cycle, one clock read per interval. The null fast path is a
    // single predictable branch, so default sweeps keep the golden
    // stats and their wall time.
    if (deadline_ && (cycle_ & deadlineCheckMask) == 0)
        deadline_->check("core loop");
    completePhase();
    commitPhase();
    iqReleasePhase();
    issuePhase();
    dispatchPhase();
    fetchPhase();

    if (committed_ != lastCommitted_) {
        lastCommitted_ = committed_;
        lastCommitCycle_ = cycle_;
    } else if (cycle_ - lastCommitCycle_ > 100'000) {
        panic("core deadlock at cycle %llu (%llu committed)",
              static_cast<unsigned long long>(cycle_),
              static_cast<unsigned long long>(committed_));
    }

    ++cycle_;
    if (winCount_ == 0 && fetchHalted_)
        return false;   // program ran to completion

    // Debug-only window snapshot (RVP_CORE_SNAPSHOT=<cycle>).
    static const char *snap_env = std::getenv("RVP_CORE_SNAPSHOT");
    if (snap_env && cycle_ == std::strtoull(snap_env, nullptr, 10)) {
        std::fprintf(stderr, "=== window @cycle %llu ===\n",
                     static_cast<unsigned long long>(cycle_));
        for (std::uint64_t s = winBase_; s < winEnd(); ++s) {
            const Inflight &inst = winSlot(s);
            const Fetched &f = *inst.f;
            std::fprintf(
                stderr,
                "seq=%llu st=%d iq=%d fp=%d op=%s pred=%d res=%d "
                "spec=%zu src0=%llu@%llu src1=%llu@%llu cmpl=%llu\n",
                static_cast<unsigned long long>(inst.seq),
                static_cast<int>(inst.state), inst.inIq,
                inst.usesFpQueue,
                std::string(f.info->mnemonic).c_str(),
                inst.isPredicted, inst.resolved, inst.specOn.size(),
                static_cast<unsigned long long>(inst.srcTag[0]),
                static_cast<unsigned long long>(
                    readyAt_[inst.srcTag[0]]),
                static_cast<unsigned long long>(inst.srcTag[1]),
                static_cast<unsigned long long>(
                    readyAt_[inst.srcTag[1]]),
                static_cast<unsigned long long>(inst.completeCycle));
        }
    }
    return true;
}

CoreResult
Core::run()
{
    while (stepCycle()) {
    }
    return finalize();
}

CoreResult
Core::finalize()
{
    if (tracer_)
        tracer_->finish();   // records still in flight at the budget

    CoreResult result;
    result.cycles = cycle_;
    result.committed = committed_;
    result.ipc = cycle_ ? static_cast<double>(committed_) /
                              static_cast<double>(cycle_)
                        : 0.0;
    stats_.set("core.cycles", static_cast<double>(cycle_));
    stats_.set("core.committed", static_cast<double>(committed_));
    stats_.set("core.ipc", result.ipc);
    mem_.exportStats(stats_);
    bp_.exportStats(stats_);
    predictor_.exportStats(stats_);
    // The canonical vp.* stats count the committed path only
    // (predicted <= committed always holds); the predictor's raw
    // fetch-time counts stay visible under vp.*_fetched.
    stats_.set("vp.eligible_fetched", stats_.get("vp.eligible"));
    stats_.set("vp.predictions_fetched", stats_.get("vp.predictions"));
    stats_.set("vp.correct_fetched", stats_.get("vp.correct"));
    stats_.set("vp.eligible", static_cast<double>(vpEligibleCommitted_));
    stats_.set("vp.predictions",
               static_cast<double>(vpPredictedCommitted_));
    stats_.set("vp.correct", static_cast<double>(vpCorrectCommitted_));
    stats_.set("vp.incorrect",
               static_cast<double>(vpPredictedCommitted_ -
                                   vpCorrectCommitted_));
    result.stats = stats_;
    return result;
}

} // namespace rvp
