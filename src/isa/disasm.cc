#include "isa/disasm.hh"

#include <sstream>

namespace rvp
{

std::string
regName(RegIndex r)
{
    if (r == regNone)
        return "-";
    std::ostringstream os;
    if (isFpReg(r))
        os << "f" << (r - fpBase);
    else
        os << "r" << static_cast<unsigned>(r);
    return os.str();
}

std::string
disassemble(const StaticInst &inst)
{
    const OpcodeInfo &info = inst.info();
    std::ostringstream os;
    os << info.mnemonic;

    if (inst.op == Opcode::NOP || inst.op == Opcode::HALT)
        return os.str();

    os << " ";
    if (inst.op == Opcode::LDA) {
        os << regName(inst.rc) << ", " << inst.imm
           << "(" << regName(inst.ra) << ")";
    } else if (info.isLoad) {
        os << regName(inst.rc) << ", " << inst.imm
           << "(" << regName(inst.ra) << ")";
    } else if (info.isStore) {
        os << regName(inst.rb) << ", " << inst.imm
           << "(" << regName(inst.ra) << ")";
    } else if (info.isCondBranch) {
        os << regName(inst.ra) << ", " << (inst.imm >= 0 ? "+" : "")
           << inst.imm;
    } else if (inst.op == Opcode::BR) {
        os << (inst.imm >= 0 ? "+" : "") << inst.imm;
    } else if (inst.op == Opcode::JSR) {
        os << regName(inst.rc) << ", (" << regName(inst.ra) << ")";
    } else if (inst.op == Opcode::RET) {
        os << "(" << regName(inst.ra) << ")";
    } else if (inst.op == Opcode::ITOF || inst.op == Opcode::FTOI ||
               inst.op == Opcode::CVTQT || inst.op == Opcode::CVTTQ ||
               inst.op == Opcode::CPYS) {
        os << regName(inst.rc) << ", " << regName(inst.ra);
    } else {
        // generic operate
        os << regName(inst.rc) << ", " << regName(inst.ra) << ", ";
        if (inst.useImm)
            os << "#" << inst.imm;
        else
            os << regName(inst.rb);
    }
    return os.str();
}

std::string
disassemble(const Program &prog)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        os << i << ":\t" << disassemble(prog.insts[i]) << "\n";
    }
    return os.str();
}

} // namespace rvp
