/**
 * @file
 * Binary encoding of SRISC instructions into 32-bit words. The encoding
 * exists so the instruction memory is a real byte-addressable image
 * (the I-cache indexes it) and so tests can check full round-tripping.
 *
 * Word layouts (bit ranges inclusive):
 *  - operate: [31:26] opcode, [25:21] ra, [20:16] rb, [15:11] rc,
 *             [10] useImm, [9:0] imm10 (signed; used when useImm)
 *  - LDA:     [31:26] opcode, [25:21] ra, [20:16] rc, [15:0] imm16
 *  - memory:  [31:26] opcode, [25:21] ra (base), [20:16] rb/rc
 *             (store data / load dest), [15:0] imm16 (signed)
 *  - branch:  [31:26] opcode, [25:21] ra, [20:0] disp21 (signed)
 *  - JSR/RET: [31:26] opcode, [25:21] ra, [20:16] rc
 *
 * Register fields hold the 5-bit within-bank index; the bank for each
 * operand is a static property of the opcode.
 */

#ifndef RVP_ISA_ENCODING_HH
#define RVP_ISA_ENCODING_HH

#include <cstdint>

#include "isa/inst.hh"

namespace rvp
{

/** Encode inst into a 32-bit word. Fails (panic) if a field overflows. */
std::uint32_t encodeInst(const StaticInst &inst);

/** Decode a 32-bit word back into a StaticInst. */
StaticInst decodeInst(std::uint32_t word);

/**
 * True if inst is representable in the binary encoding (immediates in
 * range etc.). The compiler checks this when emitting code.
 */
bool encodable(const StaticInst &inst);

} // namespace rvp

#endif // RVP_ISA_ENCODING_HH
