/**
 * @file
 * SRISC opcode definitions. SRISC is the Alpha-flavoured 64-bit RISC
 * ISA the simulator executes: 32 integer registers (R31 hardwired to
 * zero), 32 floating-point registers (F31 hardwired to zero), and a
 * small load/store instruction set. Static register value prediction
 * is expressed as rvp_* variants of the load opcodes, exactly as the
 * paper proposes ("load R3, 800(R5)" becomes "rvp_load R3, 800(R5)").
 */

#ifndef RVP_ISA_OPCODES_HH
#define RVP_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

namespace rvp
{

/** Functional-unit class an instruction executes on. */
enum class FuClass : std::uint8_t
{
    None,    ///< NOP / HALT: consumes no functional unit
    IntAlu,  ///< single-cycle integer ALU
    IntMul,  ///< pipelined integer multiplier
    FpAdd,   ///< floating-point add/compare/convert
    FpMul,   ///< floating-point multiply
    FpDiv,   ///< unpipelined floating-point divide
    Load,    ///< address generation + data-cache access
    Store,   ///< address generation; data written at commit
    Branch,  ///< conditional and unconditional control transfer
};

/** Every SRISC opcode. The order is frozen: it is the encoding. */
enum class Opcode : std::uint8_t
{
    // Integer operate (rc <- ra OP rb/imm)
    ADDQ, SUBQ, MULQ, AND, BIS, XOR, SLL, SRL, SRA,
    CMPEQ, CMPLT, CMPLE, CMPULT,
    LDA,            ///< rc <- ra + imm (also immediate-move with ra=R31)

    // Memory
    LDQ,            ///< rc <- mem64[ra + imm]
    STQ,            ///< mem64[ra + imm] <- rb
    LDT,            ///< fp rc <- mem64[ra + imm]
    STT,            ///< mem64[ra + imm] <- fp rb
    RVP_LDQ,        ///< LDQ marked for static register value prediction
    RVP_LDT,        ///< LDT marked for static register value prediction

    // Control
    BEQ, BNE, BLT, BLE, BGT, BGE,   ///< branch on ra <cond> 0
    FBEQ, FBNE,                      ///< branch on fp ra <cond> 0.0
    BR,             ///< unconditional pc-relative branch
    JSR,            ///< rc <- return address; jump to ra
    RET,            ///< jump to ra

    // Floating point operate (fp rc <- fp ra OP fp rb)
    ADDT, SUBT, MULT, DIVT,
    CMPTEQ, CMPTLT, CMPTLE,
    CVTQT,          ///< fp rc <- (double) bits-as-int64(fp ra)
    CVTTQ,          ///< fp rc <- int64 bits of trunc(fp ra)

    CPYS,           ///< fp rc <- fp ra (sign-copy move)

    // Cross-file moves
    ITOF,           ///< fp rc <- bits of int ra
    FTOI,           ///< int rc <- bits of fp ra

    NOP,
    HALT,           ///< terminate the simulated program

    NumOpcodes
};

/** Static properties of one opcode. */
struct OpcodeInfo
{
    std::string_view mnemonic;
    FuClass fuClass;
    /** Execution latency in cycles (loads: address generation only). */
    unsigned latency;
    bool isLoad;
    bool isStore;
    bool isCondBranch;
    bool isUncondBranch;   ///< BR / JSR / RET
    bool isIndirect;       ///< JSR / RET (target comes from a register)
    bool writesRc;
    /** Operand register banks: true = floating point. */
    bool raIsFp, rbIsFp, rcIsFp;
    bool isRvpMarked;      ///< static-RVP opcode variant
};

/** Look up the static properties of op. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Total opcode count (for table sizing). */
constexpr unsigned numOpcodes =
    static_cast<unsigned>(Opcode::NumOpcodes);

/** Any control-transfer instruction. */
inline bool
isControl(Opcode op)
{
    const OpcodeInfo &info = opcodeInfo(op);
    return info.isCondBranch || info.isUncondBranch;
}

} // namespace rvp

#endif // RVP_ISA_OPCODES_HH
