#include "isa/opcodes.hh"

#include <array>

#include "common/logging.hh"

namespace rvp
{

namespace
{

// Latencies (cycles): integer ALU 1, integer multiply 3, FP add/compare
// 4, FP multiply 4, FP divide 16, cross-file moves 3. Loads take 1
// cycle of address generation plus the data-cache access time modelled
// by the memory hierarchy.
constexpr unsigned intLat = 1;
constexpr unsigned mulLat = 3;
constexpr unsigned fpAddLat = 4;
constexpr unsigned fpMulLat = 4;
constexpr unsigned fpDivLat = 16;
constexpr unsigned crossLat = 3;

struct Entry
{
    Opcode op;
    OpcodeInfo info;
};

// clang-format off
constexpr std::array<Entry, numOpcodes> table{{
    //                      mnemonic    fuClass          lat      ld     st     cbr    ubr    ind    wrc    raF    rbF    rcF    rvp
    {Opcode::ADDQ,   {"addq",    FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::SUBQ,   {"subq",    FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::MULQ,   {"mulq",    FuClass::IntMul, mulLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::AND,    {"and",     FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::BIS,    {"bis",     FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::XOR,    {"xor",     FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::SLL,    {"sll",     FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::SRL,    {"srl",     FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::SRA,    {"sra",     FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::CMPEQ,  {"cmpeq",   FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::CMPLT,  {"cmplt",   FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::CMPLE,  {"cmple",   FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::CMPULT, {"cmpult",  FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},
    {Opcode::LDA,    {"lda",     FuClass::IntAlu, intLat,   false, false, false, false, false, true,  false, false, false, false}},

    {Opcode::LDQ,    {"ldq",     FuClass::Load,   1,        true,  false, false, false, false, true,  false, false, false, false}},
    {Opcode::STQ,    {"stq",     FuClass::Store,  1,        false, true,  false, false, false, false, false, false, false, false}},
    {Opcode::LDT,    {"ldt",     FuClass::Load,   1,        true,  false, false, false, false, true,  false, false, true,  false}},
    {Opcode::STT,    {"stt",     FuClass::Store,  1,        false, true,  false, false, false, false, false, true,  false, false}},
    {Opcode::RVP_LDQ,{"rvp_ldq", FuClass::Load,   1,        true,  false, false, false, false, true,  false, false, false, true}},
    {Opcode::RVP_LDT,{"rvp_ldt", FuClass::Load,   1,        true,  false, false, false, false, true,  false, false, true,  true}},

    {Opcode::BEQ,    {"beq",     FuClass::Branch, 1,        false, false, true,  false, false, false, false, false, false, false}},
    {Opcode::BNE,    {"bne",     FuClass::Branch, 1,        false, false, true,  false, false, false, false, false, false, false}},
    {Opcode::BLT,    {"blt",     FuClass::Branch, 1,        false, false, true,  false, false, false, false, false, false, false}},
    {Opcode::BLE,    {"ble",     FuClass::Branch, 1,        false, false, true,  false, false, false, false, false, false, false}},
    {Opcode::BGT,    {"bgt",     FuClass::Branch, 1,        false, false, true,  false, false, false, false, false, false, false}},
    {Opcode::BGE,    {"bge",     FuClass::Branch, 1,        false, false, true,  false, false, false, false, false, false, false}},
    {Opcode::FBEQ,   {"fbeq",    FuClass::Branch, 1,        false, false, true,  false, false, false, true,  false, false, false}},
    {Opcode::FBNE,   {"fbne",    FuClass::Branch, 1,        false, false, true,  false, false, false, true,  false, false, false}},
    {Opcode::BR,     {"br",      FuClass::Branch, 1,        false, false, false, true,  false, false, false, false, false, false}},
    {Opcode::JSR,    {"jsr",     FuClass::Branch, 1,        false, false, false, true,  true,  true,  false, false, false, false}},
    {Opcode::RET,    {"ret",     FuClass::Branch, 1,        false, false, false, true,  true,  false, false, false, false, false}},

    {Opcode::ADDT,   {"addt",    FuClass::FpAdd,  fpAddLat, false, false, false, false, false, true,  true,  true,  true,  false}},
    {Opcode::SUBT,   {"subt",    FuClass::FpAdd,  fpAddLat, false, false, false, false, false, true,  true,  true,  true,  false}},
    {Opcode::MULT,   {"mult",    FuClass::FpMul,  fpMulLat, false, false, false, false, false, true,  true,  true,  true,  false}},
    {Opcode::DIVT,   {"divt",    FuClass::FpDiv,  fpDivLat, false, false, false, false, false, true,  true,  true,  true,  false}},
    {Opcode::CMPTEQ, {"cmpteq",  FuClass::FpAdd,  fpAddLat, false, false, false, false, false, true,  true,  true,  true,  false}},
    {Opcode::CMPTLT, {"cmptlt",  FuClass::FpAdd,  fpAddLat, false, false, false, false, false, true,  true,  true,  true,  false}},
    {Opcode::CMPTLE, {"cmptle",  FuClass::FpAdd,  fpAddLat, false, false, false, false, false, true,  true,  true,  true,  false}},
    {Opcode::CVTQT,  {"cvtqt",   FuClass::FpAdd,  fpAddLat, false, false, false, false, false, true,  true,  false, true,  false}},
    {Opcode::CVTTQ,  {"cvttq",   FuClass::FpAdd,  fpAddLat, false, false, false, false, false, true,  true,  false, true,  false}},

    {Opcode::CPYS,   {"cpys",    FuClass::FpAdd,  1,        false, false, false, false, false, true,  true,  false, true,  false}},

    {Opcode::ITOF,   {"itof",    FuClass::IntAlu, crossLat, false, false, false, false, false, true,  false, false, true,  false}},
    {Opcode::FTOI,   {"ftoi",    FuClass::IntAlu, crossLat, false, false, false, false, false, true,  true,  false, false, false}},

    {Opcode::NOP,    {"nop",     FuClass::None,   1,        false, false, false, false, false, false, false, false, false, false}},
    {Opcode::HALT,   {"halt",    FuClass::None,   1,        false, false, false, false, false, false, false, false, false, false}},
}};
// clang-format on

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    unsigned idx = static_cast<unsigned>(op);
    RVP_ASSERT(idx < numOpcodes);
    const Entry &entry = table[idx];
    RVP_ASSERT(entry.op == op); // table order must match enum order
    return entry.info;
}

} // namespace rvp
