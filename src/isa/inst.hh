/**
 * @file
 * SRISC static instruction representation, register-index conventions,
 * and the Program container (the "binary" the simulator executes).
 *
 * Register indices are flat across both banks: 0..31 are the integer
 * registers (R31 reads as zero), 32..63 are the floating-point
 * registers (F31, i.e. index 63, reads as zero). The compiler reserves
 * R30 as the stack pointer and R26 as the return-address register.
 */

#ifndef RVP_ISA_INST_HH
#define RVP_ISA_INST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/opcodes.hh"

namespace rvp
{

/** Flat register index across the int (0..31) and fp (32..63) banks. */
using RegIndex = std::uint8_t;

constexpr RegIndex numIntRegs = 32;
constexpr RegIndex numFpRegs = 32;
constexpr RegIndex numArchRegs = numIntRegs + numFpRegs;

constexpr RegIndex zeroReg = 31;        ///< R31 reads as zero
constexpr RegIndex fpBase = 32;         ///< first fp register index
constexpr RegIndex fpZeroReg = 63;      ///< F31 reads as zero
constexpr RegIndex spReg = 30;          ///< stack pointer (by convention)
constexpr RegIndex raReg = 26;          ///< return address (by convention)
constexpr RegIndex regNone = 255;       ///< "no register" marker

/** True if r names a floating-point register. */
inline bool
isFpReg(RegIndex r)
{
    return r >= fpBase && r < numArchRegs;
}

/** True if r is one of the hardwired zero registers. */
inline bool
isZeroReg(RegIndex r)
{
    return r == zeroReg || r == fpZeroReg;
}

/** Render a register name ("r5", "f12"). */
std::string regName(RegIndex r);

/**
 * One static SRISC instruction.
 *
 * Field conventions by format:
 *  - operate:  rc <- ra OP (useImm ? imm : rb)
 *  - load:     rc <- mem[ra + imm]
 *  - store:    mem[ra + imm] <- rb
 *  - cond br:  test ra against zero; imm = instruction-count displacement
 *              relative to the *next* instruction
 *  - BR:       imm displacement as above
 *  - JSR:      rc <- return address; target in ra
 *  - RET:      target in ra
 */
struct StaticInst
{
    Opcode op = Opcode::NOP;
    RegIndex ra = regNone;
    RegIndex rb = regNone;
    RegIndex rc = regNone;
    std::int32_t imm = 0;
    bool useImm = false;

    const OpcodeInfo &info() const { return opcodeInfo(op); }

    /** Destination register, or regNone. */
    RegIndex
    dest() const
    {
        return info().writesRc ? rc : regNone;
    }

    /** True if this instruction is marked for static RVP. */
    bool isRvpMarked() const { return info().isRvpMarked; }

    bool operator==(const StaticInst &) const = default;
};

/**
 * A compiled SRISC program: a flat instruction array plus the initial
 * data image and entry state. PCs are byte addresses; each instruction
 * occupies 4 bytes starting at textBase.
 */
struct Program
{
    static constexpr std::uint64_t textBase = 0x1000;
    static constexpr std::uint64_t dataBase = 0x100000;
    static constexpr std::uint64_t stackTop = 0x7ff0000;

    std::vector<StaticInst> insts;

    /** Initial data image: (address, 64-bit value) pairs. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> dataImage;

    /** PC of the i-th instruction. */
    static std::uint64_t
    pcOf(std::size_t index)
    {
        return textBase + 4 * index;
    }

    /** Index of the instruction at pc. */
    static std::size_t
    indexOf(std::uint64_t pc)
    {
        return (pc - textBase) / 4;
    }

    std::size_t size() const { return insts.size(); }
    const StaticInst &at(std::size_t index) const { return insts[index]; }
};

} // namespace rvp

#endif // RVP_ISA_INST_HH
