#include "isa/encoding.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace rvp
{

namespace
{

enum class Format { Operate, Lda, Memory, CondBranch, Br, JsrRet, Bare };

Format
formatOf(Opcode op)
{
    const OpcodeInfo &info = opcodeInfo(op);
    if (op == Opcode::LDA)
        return Format::Lda;
    if (info.isLoad || info.isStore)
        return Format::Memory;
    if (info.isCondBranch)
        return Format::CondBranch;
    if (op == Opcode::BR)
        return Format::Br;
    if (op == Opcode::JSR || op == Opcode::RET)
        return Format::JsrRet;
    if (op == Opcode::NOP || op == Opcode::HALT)
        return Format::Bare;
    return Format::Operate;
}

/** Strip the bank from a flat register index: 5-bit field value. */
std::uint32_t
field(RegIndex r)
{
    return r == regNone ? 31u : (r & 31u);
}

/** Rebuild a flat register index from a 5-bit field and a bank flag. */
RegIndex
expand(std::uint32_t f, bool is_fp)
{
    return static_cast<RegIndex>(is_fp ? f + fpBase : f);
}

bool
fitsSigned(std::int64_t value, unsigned bits_wide)
{
    std::int64_t lo = -(1ll << (bits_wide - 1));
    std::int64_t hi = (1ll << (bits_wide - 1)) - 1;
    return value >= lo && value <= hi;
}

} // namespace

bool
encodable(const StaticInst &inst)
{
    switch (formatOf(inst.op)) {
      case Format::Operate:
        return !inst.useImm || fitsSigned(inst.imm, 10);
      case Format::Lda:
      case Format::Memory:
        return fitsSigned(inst.imm, 16);
      case Format::CondBranch:
      case Format::Br:
        return fitsSigned(inst.imm, 21);
      case Format::JsrRet:
      case Format::Bare:
        return true;
    }
    return false;
}

std::uint32_t
encodeInst(const StaticInst &inst)
{
    RVP_ASSERT(encodable(inst));
    std::uint32_t word = 0;
    word = insertBits(word, 31, 26, static_cast<std::uint32_t>(inst.op));

    switch (formatOf(inst.op)) {
      case Format::Operate:
        word = insertBits(word, 25, 21, field(inst.ra));
        word = insertBits(word, 20, 16, field(inst.rb));
        word = insertBits(word, 15, 11, field(inst.rc));
        word = insertBits(word, 10, 10, inst.useImm ? 1 : 0);
        if (inst.useImm)
            word = insertBits(word, 9, 0, static_cast<std::uint32_t>(inst.imm));
        break;
      case Format::Lda:
        word = insertBits(word, 25, 21, field(inst.ra));
        word = insertBits(word, 20, 16, field(inst.rc));
        word = insertBits(word, 15, 0, static_cast<std::uint32_t>(inst.imm));
        break;
      case Format::Memory:
        word = insertBits(word, 25, 21, field(inst.ra));
        word = insertBits(word, 20, 16,
                          field(inst.info().isStore ? inst.rb : inst.rc));
        word = insertBits(word, 15, 0, static_cast<std::uint32_t>(inst.imm));
        break;
      case Format::CondBranch:
      case Format::Br:
        word = insertBits(word, 25, 21, field(inst.ra));
        word = insertBits(word, 20, 0, static_cast<std::uint32_t>(inst.imm));
        break;
      case Format::JsrRet:
        word = insertBits(word, 25, 21, field(inst.ra));
        word = insertBits(word, 20, 16, field(inst.rc));
        break;
      case Format::Bare:
        break;
    }
    return word;
}

StaticInst
decodeInst(std::uint32_t word)
{
    StaticInst inst;
    unsigned op_field = static_cast<unsigned>(bits(word, 31, 26));
    RVP_ASSERT(op_field < numOpcodes);
    inst.op = static_cast<Opcode>(op_field);
    const OpcodeInfo &info = inst.info();

    switch (formatOf(inst.op)) {
      case Format::Operate:
        inst.ra = expand(bits(word, 25, 21), info.raIsFp);
        inst.rc = expand(bits(word, 15, 11), info.rcIsFp);
        inst.useImm = bits(word, 10, 10) != 0;
        if (inst.useImm) {
            inst.imm = static_cast<std::int32_t>(signExtend(word, 10));
            inst.rb = regNone;
        } else {
            inst.rb = expand(bits(word, 20, 16), info.rbIsFp);
        }
        break;
      case Format::Lda:
        inst.ra = expand(bits(word, 25, 21), false);
        inst.rc = expand(bits(word, 20, 16), false);
        inst.imm = static_cast<std::int32_t>(signExtend(word, 16));
        inst.useImm = true;
        break;
      case Format::Memory:
        inst.ra = expand(bits(word, 25, 21), false);
        if (info.isStore)
            inst.rb = expand(bits(word, 20, 16), info.rbIsFp);
        else
            inst.rc = expand(bits(word, 20, 16), info.rcIsFp);
        inst.imm = static_cast<std::int32_t>(signExtend(word, 16));
        break;
      case Format::CondBranch:
        inst.ra = expand(bits(word, 25, 21), info.raIsFp);
        inst.imm = static_cast<std::int32_t>(signExtend(word, 21));
        break;
      case Format::Br:
        inst.imm = static_cast<std::int32_t>(signExtend(word, 21));
        break;
      case Format::JsrRet:
        inst.ra = expand(bits(word, 25, 21), false);
        if (inst.op == Opcode::JSR)
            inst.rc = expand(bits(word, 20, 16), false);
        break;
      case Format::Bare:
        break;
    }
    return inst;
}

} // namespace rvp
