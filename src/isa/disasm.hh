/**
 * @file
 * SRISC disassembler: renders instructions in an Alpha-style assembly
 * syntax for debugging and for the example programs' output.
 */

#ifndef RVP_ISA_DISASM_HH
#define RVP_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"

namespace rvp
{

/** Disassemble one instruction ("addq r1, r2, r3"; "ldq r4, 16(r5)"). */
std::string disassemble(const StaticInst &inst);

/** Disassemble a whole program, one instruction per line with indices. */
std::string disassemble(const Program &prog);

} // namespace rvp

#endif // RVP_ISA_DISASM_HH
