#include "service/store.hh"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

#include "common/framing.hh"
#include "common/jsonlite.hh"
#include "common/logging.hh"
#include "sim/journal.hh"

namespace rvp
{

namespace
{

std::string
putLine(const std::string &key, const std::string &recordLine)
{
    return "{\"type\": \"put\", \"key\": \"" + jsonEscape(key) +
           "\", \"record\": \"" + jsonEscape(recordLine) + "\"}";
}

std::string
headerLine()
{
    return "{\"type\": \"store\", \"version\": 1}";
}

} // namespace

ResultStore::ResultStore(const std::string &path) : path_(path)
{
    // Replay whatever survives on disk first: later duplicates win
    // (a compacted file has none), torn or corrupt lines — the
    // possible last line of a SIGKILLed daemon — are counted and
    // skipped, exactly like RunJournal::load.
    {
        std::ifstream is(path, std::ios::binary);
        std::string line;
        while (is && std::getline(is, line)) {
            if (line.empty())
                continue;
            try {
                std::map<std::string, JsonValue> obj =
                    parseJsonLine(line);
                const std::string &type = jsonField(obj, "type").str;
                if (type == "store")
                    continue;
                if (type != "put")
                    throw std::runtime_error("unknown store line");
                entries_.insert_or_assign(jsonField(obj, "key").str,
                                          jsonField(obj, "record").str);
            } catch (const std::exception &) {
                ++skipped_;
            }
        }
    }
    recovered_ = entries_.size();

    struct stat st;
    bool existed = stat(path.c_str(), &st) == 0;
    fd_ = open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644);
    if (fd_ < 0) {
        warn("cannot open result store '%s': %s", path.c_str(),
             std::strerror(errno));
        return;
    }
    if (!existed) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!appendLineLocked(headerLine()) || !fsyncParentDir(path))
            warn("cannot initialize result store '%s': %s",
                 path.c_str(), std::strerror(errno));
        return;
    }
    // Heal a torn tail: a SIGKILL mid-append can leave the file
    // without a trailing newline. Appending onto that tail would
    // splice the next put into the torn line and lose BOTH on the
    // next replay, so terminate the tear before the first append.
    if (st.st_size > 0) {
        char last = '\n';
        int rfd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
        if (rfd >= 0) {
            if (pread(rfd, &last, 1, st.st_size - 1) != 1)
                last = '\n';
            close(rfd);
        }
        if (last != '\n') {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!writeAll(fd_, "\n", 1) || fsync(fd_) != 0)
                warn("cannot heal torn store tail '%s': %s",
                     path.c_str(), std::strerror(errno));
        }
    }
}

ResultStore::~ResultStore()
{
    if (fd_ >= 0)
        close(fd_);
}

bool
ResultStore::appendLineLocked(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string buf = line;
    buf += '\n';
    if (!writeAll(fd_, buf.data(), buf.size()))
        return false;
    return fsync(fd_) == 0;
}

std::optional<std::string>
ResultStore::get(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

bool
ResultStore::put(const std::string &key, const std::string &recordLine)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!appendLineLocked(putLine(key, recordLine))) {
        warn("result store append failed for key %s: %s", key.c_str(),
             std::strerror(errno));
        return false;
    }
    entries_.insert_or_assign(key, recordLine);
    return true;
}

std::size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

bool
ResultStore::compact()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os << headerLine() << '\n';
    for (const auto &[key, record] : entries_)
        os << putLine(key, record) << '\n';
    if (!writeFileAtomic(path_, os.str()))
        return false;
    // Re-point the append fd at the new file; appends to the old
    // inode would be silently lost.
    if (fd_ >= 0)
        close(fd_);
    fd_ = open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd_ < 0) {
        warn("cannot reopen result store '%s' after compaction: %s",
             path_.c_str(), std::strerror(errno));
        return false;
    }
    return true;
}

} // namespace rvp
