#include "service/protocol.hh"

#include <sstream>

#include "common/jsonlite.hh"
#include "sim/journal.hh"
#include "sim/sweep.hh"
#include "vp/registry.hh"
#include "workloads/workloads.hh"

namespace rvp
{

namespace
{

const struct { const char *name; AssistLevel level; } assistTable[] = {
    {"same", AssistLevel::Same},
    {"dead", AssistLevel::Dead},
    {"live", AssistLevel::Live},
    {"dead_lv", AssistLevel::DeadLv},
    {"live_lv", AssistLevel::LiveLv},
    {"dead_lv_stride", AssistLevel::DeadLvStride},
};

const struct { const char *name; RecoveryPolicy policy; } recoveryTable[] = {
    {"refetch", RecoveryPolicy::Refetch},
    {"reissue", RecoveryPolicy::Reissue},
    {"selective", RecoveryPolicy::Selective},
};

std::optional<AssistLevel>
assistForName(const std::string &name)
{
    for (const auto &e : assistTable)
        if (name == e.name)
            return e.level;
    return std::nullopt;
}

std::optional<RecoveryPolicy>
recoveryForName(const std::string &name)
{
    for (const auto &e : recoveryTable)
        if (name == e.name)
            return e.policy;
    return std::nullopt;
}

bool
knownServiceWorkload(const std::string &name)
{
    for (const WorkloadSpec &w : allWorkloads())
        if (w.name == name)
            return true;
    return false;
}

/** Scheme in canonical registry spelling; the raw text when it does
 *  not resolve (validation reports that separately). */
std::string
canonicalScheme(const std::string &scheme)
{
    if (std::optional<VpScheme> s = schemeForName(scheme))
        return registryNameOf(*s);
    return scheme;
}

void
fail(ServiceError::Code code, const std::string &what)
{
    throw ServiceError(code, what);
}

// --- spec <-> JSON ---------------------------------------------------

std::string
specToJson(const RunSpec &s)
{
    std::ostringstream os;
    os << "{\"workload\": \"" << jsonEscape(s.workload)
       << "\", \"scheme\": \"" << jsonEscape(s.scheme)
       << "\", \"assist\": \"" << jsonEscape(s.assist)
       << "\", \"recovery\": \"" << jsonEscape(s.recovery)
       << "\", \"loads_only\": " << (s.loadsOnly ? "true" : "false")
       << ", \"insts\": " << s.insts
       << ", \"profile_insts\": " << s.profileInsts
       << ", \"profile_threshold\": " << jsonNum(s.profileThreshold)
       << ", \"table_entries\": " << s.tableEntries
       << ", \"counter_threshold\": " << s.counterThreshold
       << ", \"vp_params\": \"" << jsonEscape(s.vpParams) << "\"}";
    return os.str();
}

const JsonValue *
optField(const std::map<std::string, JsonValue> &obj, const char *name)
{
    auto it = obj.find(name);
    return it == obj.end() ? nullptr : &it->second;
}

RunSpec
specFromJson(const std::map<std::string, JsonValue> &obj)
{
    RunSpec s;
    s.workload = jsonField(obj, "workload").str;
    s.scheme = jsonField(obj, "scheme").str;
    if (const JsonValue *v = optField(obj, "assist"))
        s.assist = v->str;
    if (const JsonValue *v = optField(obj, "recovery"))
        s.recovery = v->str;
    if (const JsonValue *v = optField(obj, "loads_only"))
        s.loadsOnly = v->boolean;
    if (const JsonValue *v = optField(obj, "insts"))
        s.insts = v->u64();
    if (const JsonValue *v = optField(obj, "profile_insts"))
        s.profileInsts = v->u64();
    if (const JsonValue *v = optField(obj, "profile_threshold"))
        s.profileThreshold = v->num();
    if (const JsonValue *v = optField(obj, "table_entries"))
        s.tableEntries = static_cast<unsigned>(v->u64());
    if (const JsonValue *v = optField(obj, "counter_threshold"))
        s.counterThreshold = static_cast<unsigned>(v->u64());
    if (const JsonValue *v = optField(obj, "vp_params"))
        s.vpParams = v->str;
    return s;
}

} // namespace

const char *
serviceCodeName(ServiceError::Code code)
{
    switch (code) {
      case ServiceError::Code::Protocol:
        return "protocol";
      case ServiceError::Code::Oversized:
        return "oversized";
      case ServiceError::Code::Validation:
        return "validation";
      case ServiceError::Code::Backpressure:
        return "backpressure";
      case ServiceError::Code::Deadline:
        return "deadline";
      case ServiceError::Code::Draining:
        return "draining";
    }
    return "protocol";
}

ServiceError::Code
serviceCodeFromName(const std::string &name)
{
    for (ServiceError::Code c :
         {ServiceError::Code::Protocol, ServiceError::Code::Oversized,
          ServiceError::Code::Validation,
          ServiceError::Code::Backpressure, ServiceError::Code::Deadline,
          ServiceError::Code::Draining})
        if (name == serviceCodeName(c))
            return c;
    throw ServiceError(ServiceError::Code::Protocol,
                       "unknown error code '" + name + "'");
}

std::string
canonicalSpecText(const RunSpec &spec)
{
    // Frozen v1 grammar: bump the tag if a field is ever added, so old
    // store entries can never alias new specs.
    std::ostringstream os;
    os << "rvp-spec-v1|" << spec.workload << '|'
       << canonicalScheme(spec.scheme) << '|' << spec.assist << '|'
       << spec.recovery << '|' << (spec.loadsOnly ? "loads" : "all")
       << '|' << spec.insts << '|' << spec.profileInsts << '|'
       << jsonNum(spec.profileThreshold) << '|' << spec.tableEntries
       << '|' << spec.counterThreshold << '|' << spec.vpParams;
    return os.str();
}

std::string
runSpecKey(const RunSpec &spec)
{
    return hashHex(fnv1a(canonicalSpecText(spec)));
}

void
validateRunSpec(const RunSpec &spec)
{
    // Mirrors validateExperimentConfig (sim/runner.cc), which uses
    // RVP_ASSERT and would abort the daemon; every constraint a
    // request could trip must be re-checked here with a typed throw
    // before any config reaches that code.
    const auto v = ServiceError::Code::Validation;
    if (!knownServiceWorkload(spec.workload))
        fail(v, "unknown workload '" + spec.workload + "'");
    std::optional<VpScheme> scheme = schemeForName(spec.scheme);
    if (!scheme)
        fail(v, "unknown scheme '" + spec.scheme + "'");
    if (!assistForName(spec.assist))
        fail(v, "unknown assist level '" + spec.assist + "'");
    if (!recoveryForName(spec.recovery))
        fail(v, "unknown recovery policy '" + spec.recovery + "'");
    if (*scheme == VpScheme::StaticRvp && !spec.loadsOnly)
        fail(v, "static RVP predicts opcode-marked loads only; "
                "loads_only=false is contradictory");
    if (spec.insts == 0)
        fail(v, "insts must be > 0");
    if (spec.profileInsts == 0)
        fail(v, "profile_insts must be > 0");
    if (!(spec.profileThreshold >= 0.0 && spec.profileThreshold <= 1.0))
        fail(v, "profile_threshold must be in [0, 1]");
    if (spec.tableEntries == 0)
        fail(v, "table_entries must be > 0");
    if (spec.counterThreshold > 7)
        fail(v, "counter_threshold does not fit the 3-bit resetting "
                "counters (max 7)");
    try {
        PredictorRegistry::instance().checkParams(
            canonicalScheme(spec.scheme), VpParams::parse(spec.vpParams));
    } catch (const VpConfigError &e) {
        fail(v, e.what());
    }
}

ExperimentConfig
configForSpec(const RunSpec &spec)
{
    ExperimentConfig config;
    config.workload = spec.workload;
    config.scheme = *schemeForName(spec.scheme);
    config.assist = *assistForName(spec.assist);
    config.core.recovery = *recoveryForName(spec.recovery);
    config.core.maxInsts = spec.insts;
    config.loadsOnly = spec.loadsOnly;
    config.profileInsts = spec.profileInsts;
    config.profileThreshold = spec.profileThreshold;
    config.tableEntries = spec.tableEntries;
    config.counterThreshold = spec.counterThreshold;
    config.vpParams = spec.vpParams;
    return config;
}

// --- encoders --------------------------------------------------------

std::string
encodeHelloRequest()
{
    return "{\"type\": \"hello\", \"version\": " +
           std::to_string(serviceProtocolVersion) + "}";
}

std::string
encodeSubmitRequest(const std::string &id,
                    const std::vector<RunSpec> &runs)
{
    std::ostringstream os;
    os << "{\"type\": \"submit\", \"id\": \"" << jsonEscape(id)
       << "\", \"runs\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i)
            os << ", ";
        os << specToJson(runs[i]);
    }
    os << "]}";
    return os.str();
}

std::string
encodeStatusRequest()
{
    return "{\"type\": \"status\"}";
}

std::string
encodeShutdownRequest()
{
    return "{\"type\": \"shutdown\"}";
}

std::string
encodeHelloReply(std::uint64_t storeEntries)
{
    return "{\"type\": \"hello\", \"version\": " +
           std::to_string(serviceProtocolVersion) +
           ", \"store_entries\": " + std::to_string(storeEntries) + "}";
}

std::string
encodeResultReply(const std::string &id, std::uint64_t index,
                  const std::string &key, bool cached,
                  const std::string &record)
{
    std::ostringstream os;
    os << "{\"type\": \"result\", \"id\": \"" << jsonEscape(id)
       << "\", \"index\": " << index << ", \"key\": \""
       << jsonEscape(key) << "\", \"cached\": "
       << (cached ? "true" : "false")
       // The record travels as an escaped STRING of the exact stored
       // journal line (jsonlite unescapes only what jsonEscape adds),
       // so the client recovers the store's bytes verbatim — the
       // byte-identity-across-restart guarantee needs no
       // re-serialization anywhere.
       << ", \"record\": \"" << jsonEscape(record) << "\"}";
    return os.str();
}

std::string
encodeErrorReply(ServiceError::Code code, const std::string &message,
                 const std::string &id)
{
    std::ostringstream os;
    os << "{\"type\": \"error\", \"code\": \"" << serviceCodeName(code)
       << "\", \"message\": \"" << jsonEscape(message) << "\"";
    if (!id.empty())
        os << ", \"id\": \"" << jsonEscape(id) << "\"";
    os << "}";
    return os.str();
}

std::string
encodeStatusReply(const ServiceStatus &s)
{
    std::ostringstream os;
    os << "{\"type\": \"status\", \"store_entries\": " << s.storeEntries
       << ", \"queued\": " << s.queued
       << ", \"inflight\": " << s.inflight
       << ", \"clients\": " << s.clients
       << ", \"executed\": " << s.executed
       << ", \"served_cached\": " << s.servedCached
       << ", \"dedup_subscribed\": " << s.dedupSubscribed
       << ", \"draining\": " << (s.draining ? "true" : "false") << "}";
    return os.str();
}

std::string
encodeByeReply()
{
    return "{\"type\": \"bye\"}";
}

// --- decoders --------------------------------------------------------

ClientRequest
decodeClientRequest(const std::string &payload)
{
    try {
        std::map<std::string, JsonValue> obj = parseJsonLine(payload);
        const std::string &type = jsonField(obj, "type").str;
        ClientRequest req;
        if (type == "hello") {
            req.kind = ClientRequest::Kind::Hello;
            req.version =
                static_cast<int>(jsonField(obj, "version").u64());
        } else if (type == "submit") {
            req.kind = ClientRequest::Kind::Submit;
            req.id = jsonField(obj, "id").str;
            const JsonValue &runs = jsonField(obj, "runs");
            if (runs.kind != JsonValue::Kind::Arr)
                throw std::runtime_error("runs is not an array");
            for (const JsonValue &r : runs.arr) {
                if (r.kind != JsonValue::Kind::Obj)
                    throw std::runtime_error("run spec is not an object");
                req.runs.push_back(specFromJson(r.obj));
            }
        } else if (type == "status") {
            req.kind = ClientRequest::Kind::Status;
        } else if (type == "shutdown") {
            req.kind = ClientRequest::Kind::Shutdown;
        } else {
            throw std::runtime_error("unknown request type '" + type +
                                     "'");
        }
        return req;
    } catch (const ServiceError &) {
        throw;
    } catch (const std::exception &e) {
        throw ServiceError(ServiceError::Code::Protocol,
                           std::string("bad request: ") + e.what());
    }
}

ServerMsg
decodeServerMsg(const std::string &payload)
{
    try {
        std::map<std::string, JsonValue> obj = parseJsonLine(payload);
        const std::string &type = jsonField(obj, "type").str;
        ServerMsg msg;
        if (type == "hello") {
            msg.kind = ServerMsg::Kind::Hello;
            msg.version =
                static_cast<int>(jsonField(obj, "version").u64());
            msg.storeEntries = jsonField(obj, "store_entries").u64();
        } else if (type == "result") {
            msg.kind = ServerMsg::Kind::Result;
            msg.id = jsonField(obj, "id").str;
            msg.index = jsonField(obj, "index").u64();
            msg.key = jsonField(obj, "key").str;
            msg.cached = jsonField(obj, "cached").boolean;
            msg.record = jsonField(obj, "record").str;
        } else if (type == "error") {
            msg.kind = ServerMsg::Kind::Error;
            msg.code = serviceCodeFromName(jsonField(obj, "code").str);
            msg.message = jsonField(obj, "message").str;
            if (const JsonValue *v = optField(obj, "id"))
                msg.id = v->str;
        } else if (type == "status") {
            msg.kind = ServerMsg::Kind::Status;
            msg.status.storeEntries =
                jsonField(obj, "store_entries").u64();
            msg.status.queued = jsonField(obj, "queued").u64();
            msg.status.inflight = jsonField(obj, "inflight").u64();
            msg.status.clients = jsonField(obj, "clients").u64();
            msg.status.executed = jsonField(obj, "executed").u64();
            msg.status.servedCached =
                jsonField(obj, "served_cached").u64();
            msg.status.dedupSubscribed =
                jsonField(obj, "dedup_subscribed").u64();
            msg.status.draining = jsonField(obj, "draining").boolean;
        } else if (type == "bye") {
            msg.kind = ServerMsg::Kind::Bye;
        } else {
            throw std::runtime_error("unknown reply type '" + type +
                                     "'");
        }
        return msg;
    } catch (const ServiceError &) {
        throw;
    } catch (const std::exception &e) {
        throw ServiceError(ServiceError::Code::Protocol,
                           std::string("bad reply: ") + e.what());
    }
}

} // namespace rvp
