#include "service/client.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rvp
{

ServiceClient::~ServiceClient()
{
    close();
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    reader_.reset();
}

bool
ServiceClient::connect(const std::string &socketPath)
{
    close();
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        lastError_ = "socket path too long";
        return false;
    }
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        lastError_ = std::strerror(errno);
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        lastError_ = std::strerror(errno);
        ::close(fd);
        return false;
    }
    fd_ = fd;
    reader_ = std::make_unique<FrameReader>(fd_);

    std::optional<ServerMsg> hello;
    try {
        hello = recv();
    } catch (const ServiceError &e) {
        lastError_ = e.what();
        close();
        return false;
    }
    if (!hello || hello->kind != ServerMsg::Kind::Hello) {
        if (lastError_.empty())
            lastError_ = "server did not say hello";
        close();
        return false;
    }
    if (hello->version != serviceProtocolVersion) {
        lastError_ = "protocol version mismatch (server " +
                     std::to_string(hello->version) + ", client " +
                     std::to_string(serviceProtocolVersion) + ")";
        close();
        return false;
    }
    storeEntries_ = hello->storeEntries;
    return true;
}

bool
ServiceClient::send(const std::string &payload)
{
    if (fd_ < 0) {
        lastError_ = "not connected";
        return false;
    }
    if (!writeFrame(fd_, payload)) {
        lastError_ = std::strerror(errno);
        return false;
    }
    return true;
}

std::optional<ServerMsg>
ServiceClient::recv()
{
    if (fd_ < 0) {
        lastError_ = "not connected";
        return std::nullopt;
    }
    try {
        for (;;) {
            if (std::optional<std::string> frame = reader_->next())
                return decodeServerMsg(*frame);
            if (!reader_->fill()) {
                lastError_ = "connection closed by server";
                return std::nullopt;
            }
        }
    } catch (const FrameError &e) {
        lastError_ = e.what();
        return std::nullopt;
    }
}

} // namespace rvp
