/**
 * @file
 * The sweep service: a long-running daemon that listens on a
 * Unix-domain socket, accepts experiment submissions as framed JSONL
 * requests (service/protocol.hh), executes them through runSweep on a
 * background executor thread, and answers from / publishes to a
 * persistent content-addressed result store (service/store.hh).
 *
 * Robustness contract (each clause is fault-injection-tested in
 * tests/test_service.cc):
 *  - malformed or oversized frames get a typed error frame, then the
 *    connection closes; the daemon itself never dies on client input;
 *  - every RunSpec is validated (typed throw, not RVP_ASSERT) before
 *    anything is queued; one bad spec rejects the whole submit;
 *  - per-connection idle deadline and per-request deadline (both
 *    RunDeadline-based) bound slow-loris clients and forgotten
 *    requests;
 *  - identical in-flight runs are deduplicated across clients: the
 *    second submitter subscribes to the first's completion;
 *  - the pending queue is bounded; a submit that does not fit is
 *    rejected whole with a backpressure error (nothing partial);
 *  - SIGTERM (via drainFd) drains gracefully: stop accepting, refuse
 *    new submits, finish in-flight runs, deliver their results,
 *    compact the store, exit; SIGKILL recovery is the store replay on
 *    the next start — completed keys answer byte-identically, from
 *    the store, without re-running.
 */

#ifndef RVP_SERVICE_DAEMON_HH
#define RVP_SERVICE_DAEMON_HH

#include <cstddef>
#include <memory>
#include <string>

#include "common/framing.hh"

namespace rvp
{

struct ServiceOptions
{
    std::string socketPath;
    std::string storePath;
    /** Worker threads of the executor's runSweep batches. */
    unsigned jobs = 1;
    /** Per-run-attempt watchdog, seconds; 0 = none (SweepOptions). */
    double runDeadlineSeconds = 0.0;
    /** Close a connection with no complete frame for this long. */
    double idleSeconds = 30.0;
    /** Error a submit whose results have not all been delivered
     *  within this budget; 0 = none. */
    double requestSeconds = 0.0;
    /** Pending-queue bound: a submit whose fresh runs do not fit is
     *  rejected whole with a backpressure error. */
    std::size_t maxQueuedRuns = 256;
    /** Per-connection frame byte bound (FrameReader). */
    std::size_t maxFrameBytes = defaultMaxFrameBytes;
    /** Per-run progress lines on stderr. */
    bool progress = false;
};

class SweepService
{
  public:
    explicit SweepService(const ServiceOptions &options);
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /** Socket bound and store opened. */
    bool ok() const;

    /**
     * Async-signal-safe drain trigger: write one byte to this fd (a
     * pipe write end) from a signal handler or another thread and the
     * service begins a graceful drain.
     */
    int drainFd() const;

    /** Serve until drained. Returns the process exit code (0 on a
     *  clean drain). */
    int run();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace rvp

#endif // RVP_SERVICE_DAEMON_HH
