#include "service/daemon.hh"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/deadline.hh"
#include "common/logging.hh"
#include "common/subprocess.hh"
#include "service/protocol.hh"
#include "service/store.hh"
#include "sim/journal.hh"
#include "sim/sweep.hh"

namespace rvp
{

namespace
{

std::string
frameBytes(const std::string &payload)
{
    std::string frame = std::to_string(payload.size());
    frame += '\n';
    frame += payload;
    frame += '\n';
    return frame;
}

void
closeIf(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

struct SweepService::Impl
{
    // ---- construction-time state ------------------------------------

    ServiceOptions opts;
    ResultStore store;
    /** One cache across every batch the executor runs, so repeated
     *  grids share compiles/profiles/streams like one big sweep. */
    WorkloadCache cache{WorkloadCache::defaultStreamCacheBytes};
    int listenFd = -1;
    int wakePipe[2] = {-1, -1};   ///< executor -> poll loop
    int drainPipe[2] = {-1, -1};  ///< signal handler -> poll loop

    // ---- main-thread-only connection state --------------------------

    struct Conn
    {
        int fd = -1;
        FrameReader reader;
        std::string out;            ///< unsent frame bytes
        bool closing = false;       ///< close once `out` drains
        std::unique_ptr<RunDeadline> idle;

        Conn(int f, std::size_t maxFrame) : fd(f), reader(f, maxFrame) {}
    };

    struct Sub
    {
        int fd = -1;                ///< subscribing connection
        std::string id;             ///< its submit id
        std::uint64_t index = 0;    ///< run position in that submit
        std::unique_ptr<RunDeadline> deadline;
    };

    std::map<int, Conn> conns;
    std::map<std::string, std::vector<Sub>> subs;  ///< key -> waiters
    bool draining = false;

    // ---- executor-shared state (guarded by mutex) -------------------

    struct PendingRun
    {
        std::string key;
        ExperimentConfig config;
    };

    struct Completion
    {
        std::string key;
        std::string record;   ///< encoded journal line (exact bytes)
    };

    std::mutex mutex;
    std::condition_variable cv;
    std::deque<PendingRun> pendingQ;
    std::set<std::string> pendingKeys;
    std::set<std::string> inflight;
    std::vector<Completion> completions;
    bool stopExecutor = false;
    std::thread executor;

    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> servedCached{0};
    std::atomic<std::uint64_t> dedupSubscribed{0};

    explicit Impl(const ServiceOptions &options)
        : opts(options), store(options.storePath)
    {
        if (::pipe2(wakePipe, O_NONBLOCK | O_CLOEXEC) != 0 ||
            ::pipe2(drainPipe, O_NONBLOCK | O_CLOEXEC) != 0) {
            warn("sweep service: cannot create pipes: %s",
                 std::strerror(errno));
            return;
        }

        sockaddr_un addr = {};
        addr.sun_family = AF_UNIX;
        if (opts.socketPath.size() >= sizeof(addr.sun_path)) {
            warn("sweep service: socket path too long: %s",
                 opts.socketPath.c_str());
            return;
        }
        std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(opts.socketPath.c_str());
        int fd = ::socket(AF_UNIX,
                          SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            warn("sweep service: socket: %s", std::strerror(errno));
            return;
        }
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 64) != 0) {
            warn("sweep service: cannot listen on %s: %s",
                 opts.socketPath.c_str(), std::strerror(errno));
            ::close(fd);
            return;
        }
        listenFd = fd;
    }

    ~Impl()
    {
        // run() joins the executor on every path; this is the
        // never-ran / ctor-failed path.
        if (executor.joinable()) {
            {
                std::lock_guard<std::mutex> lock(mutex);
                stopExecutor = true;
            }
            cv.notify_all();
            executor.join();
        }
        for (auto &[fd, conn] : conns)
            ::close(conn.fd);
        closeIf(listenFd);
        closeIf(wakePipe[0]);
        closeIf(wakePipe[1]);
        closeIf(drainPipe[0]);
        closeIf(drainPipe[1]);
    }

    bool
    ok() const
    {
        return listenFd >= 0 && store.ok();
    }

    // ---- executor ---------------------------------------------------

    void
    wakeMainLoop()
    {
        char b = 'c';
        // Best-effort: a full pipe already guarantees a pending wake.
        (void)!::write(wakePipe[1], &b, 1);
    }

    std::string
    recordFor(const std::string &key, const ExperimentConfig &config,
              const ExperimentResult &result, double runSeconds)
    {
        JournalRecord rec;
        rec.key = key;
        rec.figure = "service";
        rec.variant = describeConfig(config);
        rec.workload = config.workload;
        rec.runSeconds = runSeconds;
        rec.result = result;
        return encodeJournalRecord(rec);
    }

    void
    publishCompletion(const std::string &key, const std::string &record)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            inflight.erase(key);
            completions.push_back({key, record});
        }
        wakeMainLoop();
    }

    void
    executorLoop()
    {
        for (;;) {
            std::vector<PendingRun> batch;
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [&] {
                    return stopExecutor || !pendingQ.empty();
                });
                if (stopExecutor && pendingQ.empty())
                    return;
                while (!pendingQ.empty()) {
                    batch.push_back(std::move(pendingQ.front()));
                    pendingQ.pop_front();
                }
                for (const PendingRun &p : batch) {
                    pendingKeys.erase(p.key);
                    inflight.insert(p.key);
                }
            }

            std::vector<ExperimentConfig> configs;
            configs.reserve(batch.size());
            for (const PendingRun &p : batch)
                configs.push_back(p.config);

            SweepOptions so;
            so.jobs = opts.jobs ? opts.jobs : 1;
            so.progress = opts.progress;
            so.runDeadline = opts.runDeadlineSeconds;
            so.sharedCache = &cache;
            so.onRunRecord = [&](const ExperimentConfig &config,
                                 std::size_t i,
                                 const ExperimentResult &result,
                                 double runSeconds) {
                const std::string &key = batch[i].key;
                std::string record =
                    recordFor(key, config, result, runSeconds);
                // Only successes are memoized: a deadline kill or an
                // OOM is transient and must not poison the key — the
                // next identical request re-executes it.
                if (!result.failed)
                    store.put(key, record);
                executed.fetch_add(1);
                publishCompletion(key, record);
            };
            try {
                runSweep(configs, so);
            } catch (const std::exception &e) {
                // runSweep contains per-run failures itself; this is
                // setup-level. Fail every key still owed a completion
                // so no subscriber waits forever.
                for (std::size_t i = 0; i < batch.size(); ++i) {
                    bool owed;
                    {
                        std::lock_guard<std::mutex> lock(mutex);
                        owed = inflight.count(batch[i].key) > 0;
                    }
                    if (!owed)
                        continue;
                    ExperimentResult failed;
                    failed.failed = true;
                    failed.error = e.what();
                    publishCompletion(batch[i].key,
                                      recordFor(batch[i].key,
                                                batch[i].config, failed,
                                                0.0));
                }
            }
        }
    }

    // ---- connection plumbing (main thread) --------------------------

    void
    armIdle(Conn &conn)
    {
        if (opts.idleSeconds > 0)
            conn.idle = std::make_unique<RunDeadline>(opts.idleSeconds);
    }

    /** Returns false when the connection died mid-write. */
    bool
    flushConn(Conn &conn)
    {
        while (!conn.out.empty()) {
            ssize_t n = ::send(conn.fd, conn.out.data(),
                               conn.out.size(), MSG_NOSIGNAL);
            if (n > 0) {
                conn.out.erase(0, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return true;   // poll for POLLOUT
            return false;
        }
        return true;
    }

    void
    queueFrame(Conn &conn, const std::string &payload)
    {
        conn.out += frameBytes(payload);
    }

    void
    sendError(Conn &conn, ServiceError::Code code,
              const std::string &message, const std::string &id = "")
    {
        queueFrame(conn, encodeErrorReply(code, message, id));
    }

    void
    closeConn(int fd)
    {
        auto it = conns.find(fd);
        if (it == conns.end())
            return;
        ::close(it->second.fd);
        conns.erase(it);
        // Drop this connection's subscriptions; the runs themselves
        // keep executing (their results land in the store, and any
        // other subscriber of the same key still gets its frame).
        for (auto sit = subs.begin(); sit != subs.end();) {
            auto &vec = sit->second;
            vec.erase(std::remove_if(vec.begin(), vec.end(),
                                     [fd](const Sub &s) {
                                         return s.fd == fd;
                                     }),
                      vec.end());
            if (vec.empty())
                sit = subs.erase(sit);
            else
                ++sit;
        }
    }

    void
    acceptNew()
    {
        for (;;) {
            int fd = ::accept4(listenFd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                return;   // EAGAIN or transient failure
            }
            auto [it, inserted] = conns.emplace(
                fd, Conn(fd, opts.maxFrameBytes));
            armIdle(it->second);
            queueFrame(it->second, encodeHelloReply(store.size()));
            if (!flushConn(it->second))
                closeConn(fd);
        }
    }

    ServiceStatus
    currentStatus()
    {
        ServiceStatus s;
        s.storeEntries = store.size();
        {
            std::lock_guard<std::mutex> lock(mutex);
            s.queued = pendingQ.size();
            s.inflight = inflight.size();
        }
        s.clients = conns.size();
        s.executed = executed.load();
        s.servedCached = servedCached.load();
        s.dedupSubscribed = dedupSubscribed.load();
        s.draining = draining;
        return s;
    }

    void
    beginDrain()
    {
        if (draining)
            return;
        draining = true;
        closeIf(listenFd);
        // The executor keeps going until the accepted queue is empty;
        // stopExecutor is only set once everything drained (run()).
        cv.notify_all();
    }

    void
    handleSubmit(Conn &conn, const ClientRequest &req)
    {
        if (draining) {
            sendError(conn, ServiceError::Code::Draining,
                      "daemon is draining; no new work accepted",
                      req.id);
            return;
        }
        if (req.runs.empty()) {
            sendError(conn, ServiceError::Code::Validation,
                      "submit carries no runs", req.id);
            return;
        }
        // Validate EVERY spec before queuing ANY: one bad spec
        // rejects the whole submit, and nothing invalid can ever
        // reach validateExperimentConfig's aborting asserts.
        for (const RunSpec &spec : req.runs) {
            try {
                validateRunSpec(spec);
            } catch (const ServiceError &e) {
                sendError(conn, e.code(), e.what(), req.id);
                return;
            }
        }

        std::vector<std::string> keys;
        std::vector<std::optional<std::string>> cached;
        keys.reserve(req.runs.size());
        for (const RunSpec &spec : req.runs) {
            keys.push_back(runSpecKey(spec));
            cached.push_back(store.get(keys.back()));
        }

        // Admission control: everything not cached and not already
        // running/queued must fit the pending queue, or the whole
        // submit is rejected (no partial acceptance to untangle).
        std::vector<std::size_t> fresh;
        {
            std::lock_guard<std::mutex> lock(mutex);
            std::set<std::string> seen;   // dups within this submit
            for (std::size_t i = 0; i < keys.size(); ++i) {
                if (cached[i])
                    continue;
                if (pendingKeys.count(keys[i]) ||
                    inflight.count(keys[i]) || seen.count(keys[i]))
                    continue;
                seen.insert(keys[i]);
                fresh.push_back(i);
            }
            if (pendingQ.size() + fresh.size() > opts.maxQueuedRuns) {
                sendError(conn, ServiceError::Code::Backpressure,
                          "request queue full (" +
                              std::to_string(pendingQ.size()) + " of " +
                              std::to_string(opts.maxQueuedRuns) +
                              " pending); resubmit later",
                          req.id);
                return;
            }
            for (std::size_t i : fresh) {
                pendingQ.push_back({keys[i], configForSpec(req.runs[i])});
                pendingKeys.insert(keys[i]);
            }
        }
        if (!fresh.empty())
            cv.notify_all();

        std::set<std::size_t> freshSet(fresh.begin(), fresh.end());
        for (std::size_t i = 0; i < keys.size(); ++i) {
            if (cached[i]) {
                // Served from the store: the stored bytes, verbatim.
                queueFrame(conn, encodeResultReply(req.id, i, keys[i],
                                                   true, *cached[i]));
                servedCached.fetch_add(1);
                continue;
            }
            Sub sub;
            sub.fd = conn.fd;
            sub.id = req.id;
            sub.index = i;
            if (opts.requestSeconds > 0)
                sub.deadline =
                    std::make_unique<RunDeadline>(opts.requestSeconds);
            subs[keys[i]].push_back(std::move(sub));
            if (!freshSet.count(i))
                dedupSubscribed.fetch_add(1);
        }
    }

    void
    handleFrame(Conn &conn, const std::string &payload)
    {
        ClientRequest req;
        try {
            req = decodeClientRequest(payload);
        } catch (const ServiceError &e) {
            sendError(conn, e.code(), e.what());
            conn.closing = true;
            return;
        }
        switch (req.kind) {
          case ClientRequest::Kind::Hello:
            if (req.version != serviceProtocolVersion) {
                sendError(conn, ServiceError::Code::Protocol,
                          "unsupported protocol version " +
                              std::to_string(req.version));
                conn.closing = true;
            }
            break;
          case ClientRequest::Kind::Status:
            queueFrame(conn, encodeStatusReply(currentStatus()));
            break;
          case ClientRequest::Kind::Shutdown:
            queueFrame(conn, encodeByeReply());
            conn.closing = true;
            beginDrain();
            break;
          case ClientRequest::Kind::Submit:
            handleSubmit(conn, req);
            break;
        }
    }

    /** Returns false when the connection should be closed. */
    bool
    readConn(Conn &conn)
    {
        char buf[4096];
        for (;;) {
            ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
            if (n > 0) {
                conn.reader.feed(buf, static_cast<std::size_t>(n));
                armIdle(conn);
                if (static_cast<std::size_t>(n) < sizeof(buf))
                    break;
                continue;
            }
            if (n == 0)
                return false;   // peer closed
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            return false;
        }
        try {
            while (std::optional<std::string> f = conn.reader.next())
                handleFrame(conn, *f);
        } catch (const FrameError &e) {
            sendError(conn,
                      e.kind() == FrameError::Kind::Oversized
                          ? ServiceError::Code::Oversized
                          : ServiceError::Code::Protocol,
                      e.what());
            conn.closing = true;
        }
        return true;
    }

    void
    deliverCompletions()
    {
        std::vector<Completion> done;
        {
            std::lock_guard<std::mutex> lock(mutex);
            done.swap(completions);
        }
        for (const Completion &c : done) {
            auto it = subs.find(c.key);
            if (it == subs.end())
                continue;
            std::vector<Sub> waiters = std::move(it->second);
            subs.erase(it);
            for (const Sub &s : waiters) {
                auto cit = conns.find(s.fd);
                if (cit == conns.end())
                    continue;   // subscriber disconnected meanwhile
                queueFrame(cit->second,
                           encodeResultReply(s.id, s.index, c.key,
                                             false, c.record));
            }
        }
    }

    void
    checkDeadlines(std::vector<int> &toClose)
    {
        for (auto &[fd, conn] : conns) {
            if (conn.idle && conn.idle->expired()) {
                sendError(conn, ServiceError::Code::Deadline,
                          "idle deadline exceeded");
                flushConn(conn);
                toClose.push_back(fd);
            }
        }
        for (auto sit = subs.begin(); sit != subs.end();) {
            auto &vec = sit->second;
            for (auto vit = vec.begin(); vit != vec.end();) {
                if (vit->deadline && vit->deadline->expired()) {
                    auto cit = conns.find(vit->fd);
                    if (cit != conns.end())
                        sendError(cit->second,
                                  ServiceError::Code::Deadline,
                                  "request deadline exceeded for key " +
                                      sit->first,
                                  vit->id);
                    vit = vec.erase(vit);
                } else {
                    ++vit;
                }
            }
            if (vec.empty())
                sit = subs.erase(sit);
            else
                ++sit;
        }
    }

    void
    drainPipeBytes(int fd)
    {
        char buf[64];
        while (::read(fd, buf, sizeof(buf)) > 0) {
        }
    }

    int
    run()
    {
        if (!ok())
            return 1;
        ScopedSigpipeIgnore sigpipe;
        executor = std::thread([this] { executorLoop(); });

        for (;;) {
            std::vector<pollfd> pfds;
            pfds.push_back({drainPipe[0], POLLIN, 0});
            pfds.push_back({wakePipe[0], POLLIN, 0});
            // Captured now: beginDrain() (triggered below, this same
            // iteration) closes listenFd, and the index arithmetic
            // must keep describing the pfds we actually built.
            bool hadListen = listenFd >= 0;
            if (hadListen)
                pfds.push_back({listenFd, POLLIN, 0});
            std::vector<int> connFds;
            for (auto &[fd, conn] : conns) {
                short events = POLLIN;
                if (!conn.out.empty())
                    events |= POLLOUT;
                pfds.push_back({fd, events, 0});
                connFds.push_back(fd);
            }

            // Coarse 100ms tick whenever a deadline could be armed or
            // a drain is pending; block indefinitely when fully idle.
            bool needTick = draining || !conns.empty() || !subs.empty();
            int rc = ::poll(pfds.data(), pfds.size(),
                            needTick ? 100 : -1);
            if (rc < 0 && errno != EINTR) {
                warn("sweep service: poll: %s", std::strerror(errno));
                break;
            }

            if (pfds[0].revents & POLLIN) {
                drainPipeBytes(drainPipe[0]);
                beginDrain();
            }
            if (pfds[1].revents & POLLIN)
                drainPipeBytes(wakePipe[0]);
            deliverCompletions();

            std::size_t base = 2;
            if (hadListen) {
                if (listenFd >= 0 && (pfds[base].revents & POLLIN))
                    acceptNew();
                ++base;
            }

            std::vector<int> toClose;
            for (std::size_t i = 0; i < connFds.size(); ++i) {
                const pollfd &p = pfds[base + i];
                auto it = conns.find(connFds[i]);
                if (it == conns.end())
                    continue;
                Conn &conn = it->second;
                if (p.revents & (POLLERR | POLLNVAL)) {
                    toClose.push_back(conn.fd);
                    continue;
                }
                if (p.revents & (POLLIN | POLLHUP)) {
                    if (!readConn(conn)) {
                        toClose.push_back(conn.fd);
                        continue;
                    }
                }
                if (!flushConn(conn)) {
                    toClose.push_back(conn.fd);
                    continue;
                }
                if (conn.closing && conn.out.empty())
                    toClose.push_back(conn.fd);
            }
            checkDeadlines(toClose);
            for (int fd : toClose)
                closeConn(fd);

            if (draining) {
                bool workDone;
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    workDone = pendingQ.empty() && inflight.empty() &&
                               completions.empty();
                }
                bool flushed = true;
                for (auto &[fd, conn] : conns)
                    if (!conn.out.empty())
                        flushed = false;
                if (workDone && flushed)
                    break;
            }
        }

        {
            std::lock_guard<std::mutex> lock(mutex);
            stopExecutor = true;
        }
        cv.notify_all();
        executor.join();
        store.compact();
        std::vector<int> all;
        for (auto &[fd, conn] : conns)
            all.push_back(fd);
        for (int fd : all)
            closeConn(fd);
        ::unlink(opts.socketPath.c_str());
        return 0;
    }
};

SweepService::SweepService(const ServiceOptions &options)
    : impl_(std::make_unique<Impl>(options))
{
}

SweepService::~SweepService() = default;

bool
SweepService::ok() const
{
    return impl_->ok();
}

int
SweepService::drainFd() const
{
    return impl_->drainPipe[1];
}

int
SweepService::run()
{
    return impl_->run();
}

} // namespace rvp
