/**
 * @file
 * Wire protocol of the sweep service (rvpsweepd <-> sweepctl): typed
 * request/response messages carried as length-prefixed JSONL frames
 * (common/framing.hh) over a Unix-domain socket, parsed with the
 * shared single-line JSON grammar (common/jsonlite.hh).
 *
 * A client opens a connection and immediately receives a server hello
 * frame; it then sends any number of submit / status / shutdown
 * requests. Every submitted run is identified by a content-addressed
 * key — the FNV-1a hash of its canonical RunSpec text — which is also
 * the key of the daemon's persistent result store, so identical
 * requests from any client, at any time, before or after a daemon
 * crash, resolve to the same record bytes.
 *
 * Every failure the daemon can hand back is a typed `error` frame with
 * a stable machine-readable code (ServiceError::Code); see
 * docs/INTERNALS.md for the full failure taxonomy.
 */

#ifndef RVP_SERVICE_PROTOCOL_HH
#define RVP_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/runner.hh"

namespace rvp
{

/** Protocol revision spoken by this build; the server advertises its
 *  version in the hello frame and clients refuse a mismatch. */
constexpr int serviceProtocolVersion = 1;

/**
 * A typed service failure. The code is what travels in error frames
 * (stable strings, see codeName()); the message is human-readable
 * detail. Thrown by the decoders and validators, answered as frames
 * by the daemon.
 */
class ServiceError : public std::runtime_error
{
  public:
    enum class Code
    {
        Protocol,      ///< malformed frame / JSON / unknown message type
        Oversized,     ///< frame exceeded the connection's byte bound
        Validation,    ///< RunSpec rejected before any work was queued
        Backpressure,  ///< request queue full; resubmit later
        Deadline,      ///< idle or per-request deadline expired
        Draining,      ///< daemon is shutting down; refuses new work
    };

    ServiceError(Code code, const std::string &what)
        : std::runtime_error(what), code_(code)
    {
    }

    Code code() const { return code_; }

  private:
    Code code_;
};

/** Stable wire string of a code ("protocol", "backpressure", ...). */
const char *serviceCodeName(ServiceError::Code code);

/** Parse a wire string back to a code; throws ServiceError(Protocol)
 *  on an unknown string. */
ServiceError::Code serviceCodeFromName(const std::string &name);

/**
 * One requested experiment, in wire form: every enum travels as its
 * stable lowercase name (schemeName/assistName grammar), so specs are
 * readable, diffable, and independent of enum numbering. Fields not
 * listed here (tracing, realisticRealloc, taggedRvp) are not part of
 * the v1 service surface.
 */
struct RunSpec
{
    std::string workload;
    std::string scheme;              ///< registry name or alias
    std::string assist = "same";
    std::string recovery = "selective";
    bool loadsOnly = true;
    std::uint64_t insts = 400'000;   ///< timed-run commit budget
    std::uint64_t profileInsts = 300'000;
    double profileThreshold = 0.8;
    unsigned tableEntries = 1024;
    unsigned counterThreshold = 7;
    std::string vpParams;            ///< "k=v,k=v" registry param bag

    bool operator==(const RunSpec &) const = default;
};

/**
 * Canonical text of a spec: the byte string whose FNV-1a hash is the
 * run's content-addressed key. Field order and formatting are frozen
 * (part of the store format); the scheme is canonicalized through the
 * registry first, so "drvp" and "rvp-dynamic" share a key.
 */
std::string canonicalSpecText(const RunSpec &spec);

/** Content-addressed run key: hashHex(fnv1a(canonicalSpecText)). */
std::string runSpecKey(const RunSpec &spec);

/**
 * Reject anything validateExperimentConfig would abort on — with a
 * typed throw instead. The daemon calls this on every spec of a
 * submit before queuing any of them; a failure rejects the whole
 * submit and the process never reaches an RVP_ASSERT. Throws
 * ServiceError(Validation).
 */
void validateRunSpec(const RunSpec &spec);

/** Build the ExperimentConfig a validated spec describes. */
ExperimentConfig configForSpec(const RunSpec &spec);

/** A client request, decoded. */
struct ClientRequest
{
    enum class Kind
    {
        Hello,     ///< {type, version}
        Submit,    ///< {type, id, runs: [spec, ...]}
        Status,    ///< {type}
        Shutdown,  ///< {type} — drain and exit
    };

    Kind kind = Kind::Hello;
    int version = 0;          ///< Hello
    std::string id;           ///< Submit: client-chosen request id
    std::vector<RunSpec> runs;///< Submit
};

/** Daemon-side counters reported by status frames. */
struct ServiceStatus
{
    std::uint64_t storeEntries = 0;
    std::uint64_t queued = 0;
    std::uint64_t inflight = 0;
    std::uint64_t clients = 0;
    std::uint64_t executed = 0;      ///< runs actually simulated
    std::uint64_t servedCached = 0;  ///< results answered from the store
    std::uint64_t dedupSubscribed = 0; ///< submits folded onto in-flight runs
    bool draining = false;
};

/** A server message, decoded (client side). */
struct ServerMsg
{
    enum class Kind
    {
        Hello,   ///< {type, version, store_entries}
        Result,  ///< {type, id, index, key, cached, record}
        Error,   ///< {type, code, message, id?}
        Status,  ///< {type, ...ServiceStatus fields}
        Bye,     ///< {type} — ack of shutdown
    };

    Kind kind = Kind::Hello;
    int version = 0;                   ///< Hello
    std::uint64_t storeEntries = 0;    ///< Hello
    std::string id;                    ///< Result / Error
    std::uint64_t index = 0;           ///< Result: position in the submit
    std::string key;                   ///< Result
    bool cached = false;               ///< Result: served from the store
    std::string record;                ///< Result: journal record line
    ServiceError::Code code = ServiceError::Code::Protocol; ///< Error
    std::string message;               ///< Error
    ServiceStatus status;              ///< Status
};

// --- encoders (each returns one frame payload, no trailing newline) --

std::string encodeHelloRequest();
std::string encodeSubmitRequest(const std::string &id,
                                const std::vector<RunSpec> &runs);
std::string encodeStatusRequest();
std::string encodeShutdownRequest();

std::string encodeHelloReply(std::uint64_t storeEntries);
std::string encodeResultReply(const std::string &id, std::uint64_t index,
                              const std::string &key, bool cached,
                              const std::string &record);
std::string encodeErrorReply(ServiceError::Code code,
                             const std::string &message,
                             const std::string &id = "");
std::string encodeStatusReply(const ServiceStatus &status);
std::string encodeByeReply();

// --- decoders (throw ServiceError(Protocol) on anything malformed) --

ClientRequest decodeClientRequest(const std::string &payload);
ServerMsg decodeServerMsg(const std::string &payload);

} // namespace rvp

#endif // RVP_SERVICE_PROTOCOL_HH
