/**
 * @file
 * Blocking client connection to a running rvpsweepd: connect to its
 * Unix-domain socket, verify the server hello, and exchange framed
 * protocol messages (service/protocol.hh). Retry and backoff policy
 * live in the callers (tools/sweepctl.cc) — this class is one
 * connection attempt and one connection's lifetime.
 */

#ifndef RVP_SERVICE_CLIENT_HH
#define RVP_SERVICE_CLIENT_HH

#include <memory>
#include <optional>
#include <string>

#include "common/framing.hh"
#include "service/protocol.hh"

namespace rvp
{

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * Connect and consume the server hello (verifying the protocol
     * version). Returns false — with the connection torn down and the
     * reason in lastError() — on connect failure, a bad hello, or a
     * version mismatch.
     */
    bool connect(const std::string &socketPath);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** Store size the server advertised in its hello. */
    std::uint64_t storeEntries() const { return storeEntries_; }

    /** Send one request frame; false on a dead connection. */
    bool send(const std::string &payload);

    /**
     * Block for the next server frame, decoded. nullopt on EOF or a
     * read error (reason in lastError()); a frame that is valid
     * framing but undecodable protocol throws ServiceError out of
     * decodeServerMsg — callers treat it like a dead server.
     */
    std::optional<ServerMsg> recv();

    const std::string &lastError() const { return lastError_; }

    /** Raw socket fd (tests inject torn/partial bytes through it). */
    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::unique_ptr<FrameReader> reader_;
    std::uint64_t storeEntries_ = 0;
    std::string lastError_;
};

} // namespace rvp

#endif // RVP_SERVICE_CLIENT_HH
