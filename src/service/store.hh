/**
 * @file
 * Persistent content-addressed result store of the sweep service: a
 * crash-safe append-only journal mapping run key (runSpecKey) to the
 * exact journal-record line (sim/journal.hh encodeJournalRecord) the
 * run produced. The daemon answers a repeated request with the stored
 * bytes verbatim, so responses are byte-identical across daemon
 * restarts — including a SIGKILL mid-grid, because every put is one
 * O_APPEND write of a full line followed by fsync (the same recipe as
 * RunJournal), and load() tolerates a torn trailing line.
 *
 * File format (JSONL):
 *   {"type": "store", "version": 1}          — header, written once
 *   {"type": "put", "key": "...", "record": "<escaped record line>"}
 * Later duplicates of a key win on load; compact() rewrites the file
 * with one line per surviving key through writeFileAtomic.
 */

#ifndef RVP_SERVICE_STORE_HH
#define RVP_SERVICE_STORE_HH

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace rvp
{

class ResultStore
{
  public:
    /** Opens (creating or replaying) the store at path. A corrupt or
     *  torn line is skipped and counted, never fatal. */
    explicit ResultStore(const std::string &path);
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    bool ok() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    /** Stored record line for key, if any (the exact bytes put()). */
    std::optional<std::string> get(const std::string &key) const;

    /**
     * Persist key -> recordLine (fsync'd before returning; on the
     * first put of a fresh file the directory entry is fsync'd too).
     * Returns false when the append failed — the entry is then NOT
     * added to the in-memory map either, so the store never claims
     * durability it does not have.
     */
    bool put(const std::string &key, const std::string &recordLine);

    /** Entries resident now. */
    std::size_t size() const;

    /** Entries recovered by the constructor's replay. */
    std::size_t recovered() const { return recovered_; }

    /** Torn / corrupt lines skipped by the replay. */
    std::size_t skippedLines() const { return skipped_; }

    /**
     * Rewrite the file as header + one put line per surviving key
     * (atomic via writeFileAtomic), dropping superseded duplicates.
     * The append fd is reopened on the new file. Safe to call at any
     * quiet point; the daemon compacts on graceful shutdown.
     */
    bool compact();

  private:
    bool appendLineLocked(const std::string &line);

    mutable std::mutex mutex_;
    std::string path_;
    int fd_ = -1;
    std::map<std::string, std::string> entries_;
    std::size_t recovered_ = 0;
    std::size_t skipped_ = 0;
};

} // namespace rvp

#endif // RVP_SERVICE_STORE_HH
