/**
 * @file
 * Register-reuse profiling (Section 5 of the paper). A profiling run
 * observes the functional execution of a compiled workload and
 * produces, per static instruction:
 *
 *  1. same-register value reuse  (result == old destination value)
 *  2. correlation with a value in a *dead* register
 *  3. correlation with a value in a *live* register
 *  4. last-value predictability
 *
 * plus the "primary producer" of each correlated register's value and
 * the dynamic aggregates behind Figure 1 (the fraction of loads whose
 * value is already in the same register / a dead register / any
 * register / a register-or-last-value).
 *
 * Profiles are taken on the train input and applied to the ref input,
 * exactly as in the paper.
 */

#ifndef RVP_PROFILE_REUSE_PROFILER_HH
#define RVP_PROFILE_REUSE_PROFILER_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "emu/emulator.hh"

namespace rvp
{

/** Where a prediction for a static instruction should come from. */
enum class PredSource : std::uint8_t
{
    SameReg,    ///< previous value of the destination register
    OtherReg,   ///< value currently in another register (compiler
                ///< re-allocation turns this into same-register reuse)
    LastValue,  ///< instruction's own previous result (compiler gives
                ///< it a loop-exclusive register)
    Stride,     ///< previous result plus a compile-time stride (the
                ///< paper's Section-3 "Et Cetera": the compiler
                ///< inserts an add to keep the prediction current)
};

/** Per-static-instruction prediction-source specification. */
struct StaticPredSpec
{
    PredSource source = PredSource::SameReg;
    RegIndex reg = regNone;       ///< for OtherReg: which register
    std::int64_t stride = 0;      ///< for Stride: the constant delta
};

/** Compiler-assistance levels, matching the paper's configurations. */
enum class AssistLevel
{
    Same,     ///< no compiler support (srvp_same / drvp)
    Dead,     ///< + dead-register correlation (srvp_dead / drvp_dead)
    Live,     ///< + live-register correlation via moves (srvp_live)
    DeadLv,   ///< dead + last-value reallocation (drvp_dead_lv)
    LiveLv,   ///< live + last-value (srvp_live_lv)
    DeadLvStride, ///< dead + lv + stride-by-inserted-add (an extension
                  ///< the paper sketches in Section 3 but does not
                  ///< evaluate)
};

/** Raw per-static-instruction profile counters. */
struct InstReuseCounts
{
    std::uint64_t execs = 0;
    std::uint64_t sameRegHits = 0;
    std::uint64_t lastValueHits = 0;
    /** Hits for value == previous value + candidate stride. */
    std::uint64_t strideHits = 0;
    /** The (majority-vote) candidate stride; 0 disables. */
    std::int64_t strideValue = 0;
    /** Hits per architectural register (value already in reg r). */
    std::array<std::uint64_t, numArchRegs> regHits{};
};

/** The finished profile. */
class ReuseProfile
{
  public:
    /** Per-static counters (indexed by static instruction index). */
    std::vector<InstReuseCounts> counts;

    /** Live-before mask per static instruction (from the compiler). */
    std::vector<std::uint64_t> liveBefore;

    /** Figure-1 dynamic aggregates over load instructions. */
    std::uint64_t loadExecs = 0;
    std::uint64_t loadSameReg = 0;
    std::uint64_t loadDeadReg = 0;    ///< same or any dead register
    std::uint64_t loadAnyReg = 0;     ///< anywhere in the register file
    std::uint64_t loadRegOrLv = 0;    ///< any register or last value

    /** Primary producer: most frequent last-writer, per (static, reg). */
    std::unordered_map<std::uint64_t, std::uint32_t> primaryProducer;

    /**
     * Build the per-static prediction-source specs for a compiler
     * assistance level: instructions whose best allowed mode reaches
     * the threshold get that mode; everything else keeps SameReg.
     */
    std::vector<StaticPredSpec>
    buildSpecs(AssistLevel level, double threshold) const;

    /**
     * Select loads for *static* RVP marking: the set of static indices
     * whose best allowed mode reaches the threshold (80% by default,
     * 90% for the conservative recovery studies).
     */
    std::vector<std::uint32_t>
    selectStaticLoads(AssistLevel level, double threshold) const;

    /** Best rate for one instruction under a level (for tests). */
    double bestRate(std::uint32_t s, AssistLevel level) const;

    /** Best mode (and register) for one instruction under a level. */
    StaticPredSpec bestSpec(std::uint32_t s, AssistLevel level) const;

    /** Key for the primaryProducer map. */
    static std::uint64_t
    producerKey(std::uint32_t static_idx, RegIndex reg)
    {
        return (static_cast<std::uint64_t>(static_idx) << 8) | reg;
    }

  private:
    const Program *prog_ = nullptr;
    friend class ReuseProfiler;
};

/**
 * The profiler itself: feed it every DynInst (with the pre-execution
 * architectural state) and finalize.
 */
class ReuseProfiler
{
  public:
    /**
     * @param prog the compiled program being profiled
     * @param live_before per-static arch-liveness masks
     *        (archLiveBefore); sizes must match
     */
    ReuseProfiler(const Program &prog,
                  std::vector<std::uint64_t> live_before);

    /** Observe one executed instruction (pre-state = before it ran). */
    void observe(const DynInst &inst, const ArchState &pre_state);

    /** Finish and extract the profile. */
    ReuseProfile finish();

  private:
    const Program &prog_;
    ReuseProfile profile_;
    /** Last value produced per static instruction. */
    std::vector<std::uint64_t> lastValue_;
    std::vector<bool> lastValueValid_;
    /** Majority-vote stride tracking (Boyer–Moore style). */
    std::vector<std::int64_t> strideCandidate_;
    std::vector<std::int64_t> strideVotes_;
    /** Last static writer of each architectural register. */
    std::array<std::uint32_t, numArchRegs> lastWriter_;
    /** (static, reg, producer) hit counts for primary-producer votes. */
    std::unordered_map<std::uint64_t, std::uint64_t> producerVotes_;
};

} // namespace rvp

#endif // RVP_PROFILE_REUSE_PROFILER_HH
