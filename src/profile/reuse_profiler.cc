#include "profile/reuse_profiler.hh"

#include "common/logging.hh"

namespace rvp
{

namespace
{

/** Votes key: (static, reg, producer). */
std::uint64_t
voteKey(std::uint32_t static_idx, RegIndex reg, std::uint32_t producer)
{
    return (static_cast<std::uint64_t>(static_idx) << 40) |
           (static_cast<std::uint64_t>(reg) << 32) | producer;
}

/** Hit rate of one spec against one instruction's counters. */
double
rateOf(const InstReuseCounts &c, const StaticPredSpec &spec)
{
    if (c.execs == 0)
        return 0.0;
    std::uint64_t hits = 0;
    switch (spec.source) {
      case PredSource::SameReg:
        hits = c.sameRegHits;
        break;
      case PredSource::OtherReg:
        hits = c.regHits[spec.reg];
        break;
      case PredSource::LastValue:
        hits = c.lastValueHits;
        break;
      case PredSource::Stride:
        hits = c.strideHits;
        break;
    }
    return static_cast<double>(hits) / static_cast<double>(c.execs);
}

} // namespace

ReuseProfiler::ReuseProfiler(const Program &prog,
                             std::vector<std::uint64_t> live_before)
    : prog_(prog)
{
    RVP_ASSERT(live_before.size() == prog.size());
    profile_.prog_ = &prog;
    profile_.counts.resize(prog.size());
    profile_.liveBefore = std::move(live_before);
    lastValue_.assign(prog.size(), 0);
    lastValueValid_.assign(prog.size(), false);
    strideCandidate_.assign(prog.size(), 0);
    strideVotes_.assign(prog.size(), 0);
    lastWriter_.fill(UINT32_MAX);
}

void
ReuseProfiler::observe(const DynInst &inst, const ArchState &pre_state)
{
    // Only register-writing instructions can be value-predicted.
    if (inst.dest == regNone)
        return;

    std::uint32_t s = inst.staticIndex;
    InstReuseCounts &counts = profile_.counts[s];
    ++counts.execs;

    std::uint64_t value = inst.newValue;
    bool same_hit = inst.oldDestValue == value;
    counts.sameRegHits += same_hit;

    bool lv_hit = lastValueValid_[s] && lastValue_[s] == value;
    counts.lastValueHits += lv_hit;
    if (lastValueValid_[s]) {
        // Stride profiling: majority-vote the per-instance delta, and
        // count hits against the current candidate (nonzero only —
        // stride 0 is last-value reuse).
        std::int64_t delta = static_cast<std::int64_t>(
            value - lastValue_[s]);
        if (delta == strideCandidate_[s]) {
            ++strideVotes_[s];
        } else if (--strideVotes_[s] < 0) {
            strideCandidate_[s] = delta;
            strideVotes_[s] = 1;
        }
        if (delta != 0 && delta == strideCandidate_[s])
            ++counts.strideHits;
        counts.strideValue = strideCandidate_[s];
    }
    lastValue_[s] = value;
    lastValueValid_[s] = true;

    bool any_hit = same_hit;
    bool dead_hit = false;
    std::uint64_t live_mask = profile_.liveBefore[s];
    for (RegIndex r = 0; r < numArchRegs; ++r) {
        if (r == inst.dest)
            continue;   // counted as same-register above
        std::uint64_t reg_value = isZeroReg(r) ? 0 : pre_state.read(r);
        if (reg_value != value)
            continue;
        any_hit = true;
        if (isZeroReg(r))
            continue;   // cannot combine live ranges with r31/f31
        counts.regHits[r] += 1;
        if (!((live_mask >> r) & 1)) {
            dead_hit = true;
            // Vote for this register's current producer.
            if (lastWriter_[r] != UINT32_MAX)
                ++producerVotes_[voteKey(s, r, lastWriter_[r])];
        }
    }

    if (prog_.at(s).info().isLoad) {
        ++profile_.loadExecs;
        profile_.loadSameReg += same_hit;
        profile_.loadDeadReg += same_hit || dead_hit;
        profile_.loadAnyReg += any_hit;
        profile_.loadRegOrLv += any_hit || lv_hit;
    }

    lastWriter_[inst.dest] = s;
}

ReuseProfile
ReuseProfiler::finish()
{
    // Resolve primary producers: majority vote per (static, reg).
    std::unordered_map<std::uint64_t,
                       std::pair<std::uint32_t, std::uint64_t>> best;
    for (const auto &[key, votes] : producerVotes_) {
        std::uint64_t sr = key >> 32;   // (static << 8) | reg
        std::uint32_t producer = static_cast<std::uint32_t>(key);
        auto &slot = best[sr];
        if (votes > slot.second) {
            slot.first = producer;
            slot.second = votes;
        }
    }
    for (const auto &[sr, winner] : best)
        profile_.primaryProducer[sr] = winner.first;
    return std::move(profile_);
}

StaticPredSpec
ReuseProfile::bestSpec(std::uint32_t s, AssistLevel level) const
{
    const InstReuseCounts &c = counts[s];
    StaticPredSpec spec;   // SameReg default
    if (c.execs == 0)
        return spec;

    std::uint64_t best_hits = c.sameRegHits;

    bool allow_dead = level != AssistLevel::Same;
    bool allow_live =
        level == AssistLevel::Live || level == AssistLevel::LiveLv;
    bool allow_lv = level == AssistLevel::DeadLv ||
                    level == AssistLevel::LiveLv ||
                    level == AssistLevel::DeadLvStride;
    bool allow_stride = level == AssistLevel::DeadLvStride;

    if (allow_dead || allow_live) {
        std::uint64_t live_mask = liveBefore[s];
        for (RegIndex r = 0; r < numArchRegs; ++r) {
            if (isZeroReg(r) || c.regHits[r] <= best_hits)
                continue;
            bool live = (live_mask >> r) & 1;
            if (live ? allow_live : allow_dead) {
                best_hits = c.regHits[r];
                spec.source = PredSource::OtherReg;
                spec.reg = r;
            }
        }
    }
    // Prefer LastValue on ties: when an instruction is equally
    // predictable from its own previous result, the compiler's
    // loop-exclusive register gives the prediction the best possible
    // timing (the previous instance has long completed), whereas the
    // destination's old mapping may still be in flight.
    if (allow_lv && c.lastValueHits >= best_hits && c.lastValueHits > 0) {
        best_hits = c.lastValueHits;
        spec.source = PredSource::LastValue;
        spec.reg = regNone;
    }
    if (allow_stride && c.strideValue != 0 &&
        c.strideHits > best_hits) {
        best_hits = c.strideHits;
        spec.source = PredSource::Stride;
        spec.reg = regNone;
        spec.stride = c.strideValue;
    }
    return spec;
}

double
ReuseProfile::bestRate(std::uint32_t s, AssistLevel level) const
{
    return rateOf(counts[s], bestSpec(s, level));
}

std::vector<StaticPredSpec>
ReuseProfile::buildSpecs(AssistLevel level, double threshold) const
{
    std::vector<StaticPredSpec> specs(counts.size());
    for (std::uint32_t s = 0; s < counts.size(); ++s) {
        StaticPredSpec best = bestSpec(s, level);
        if (best.source != PredSource::SameReg &&
            rateOf(counts[s], best) >= threshold) {
            specs[s] = best;
        }
        // else: keep the SameReg default (unlisted instructions only
        // track same-register reuse, per Section 5).
    }
    return specs;
}

std::vector<std::uint32_t>
ReuseProfile::selectStaticLoads(AssistLevel level, double threshold) const
{
    std::vector<std::uint32_t> marked;
    for (std::uint32_t s = 0; s < counts.size(); ++s) {
        if (!prog_->at(s).info().isLoad)
            continue;
        StaticPredSpec best = bestSpec(s, level);
        if (rateOf(counts[s], best) >= threshold)
            marked.push_back(s);
    }
    return marked;
}

} // namespace rvp
