/**
 * @file
 * Critical-path profiling in the spirit of Tullsen & Calder's
 * "Computing Along the Critical Path" (the paper's reference [15]):
 * each static instruction is scored by how often its result extends
 * the longest data-dependence chain observed so far. The RVP
 * reallocation pass uses the scores to decide which reuse candidates
 * to protect when the interference graph must be pruned.
 */

#ifndef RVP_PROFILE_CRITICAL_PATH_HH
#define RVP_PROFILE_CRITICAL_PATH_HH

#include <array>
#include <cstdint>
#include <vector>

#include "emu/emulator.hh"

namespace rvp
{

/** Streaming approximation of per-instruction critical-path weight. */
class CriticalPathProfiler
{
  public:
    explicit CriticalPathProfiler(std::size_t num_static);

    /** Observe one executed instruction. */
    void observe(const DynInst &inst);

    /** Per-static score: times the instruction led the height frontier. */
    const std::vector<double> &scores() const { return scores_; }

  private:
    std::vector<double> scores_;
    /** Dataflow height of each architectural register's current value. */
    std::array<std::uint64_t, numArchRegs> height_{};
    std::uint64_t frontier_ = 0;
};

} // namespace rvp

#endif // RVP_PROFILE_CRITICAL_PATH_HH
