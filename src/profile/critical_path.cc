#include "profile/critical_path.hh"

namespace rvp
{

CriticalPathProfiler::CriticalPathProfiler(std::size_t num_static)
    : scores_(num_static, 0.0)
{
}

void
CriticalPathProfiler::observe(const DynInst &inst)
{
    const OpcodeInfo &info = inst.info();
    std::uint64_t in_height = 0;
    if (inst.srcA != regNone)
        in_height = height_[inst.srcA];
    if (inst.srcB != regNone && height_[inst.srcB] > in_height)
        in_height = height_[inst.srcB];

    // Loads carry the cache-access latency on the chain; everything
    // else its functional-unit latency.
    std::uint64_t latency = info.latency + (info.isLoad ? 2 : 0);
    std::uint64_t out_height = in_height + latency;

    if (inst.dest != regNone)
        height_[inst.dest] = out_height;

    // Score instructions that push the global height frontier: they
    // sit on (a prefix of) the program's critical dependence chain.
    if (out_height >= frontier_) {
        frontier_ = out_height;
        scores_[inst.staticIndex] += 1.0;
    }
}

} // namespace rvp
