#include "vp/balcvp.hh"

#include "common/logging.hh"

namespace rvp
{

BalcvpPredictor::BalcvpPredictor(const BalcvpConfig &config)
    : config_(config), table_(config.entries)
{
    RVP_ASSERT(config.entries > 0,
               "balcvp table needs at least one entry");
    RVP_ASSERT(config.countMax >= 2,
               "balcvp count cap %u too small to halve", config.countMax);
    RVP_ASSERT(config.mediumThreshold <= config.highThreshold,
               "balcvp medium band above the high band");
}

double
BalcvpPredictor::posterior(const Entry &entry)
{
    // Laplace-smoothed posterior mean of a Bernoulli "value repeats"
    // process: uniform prior, so an empty entry starts at 0.5.
    return (entry.hits + 1.0) / (entry.hits + entry.misses + 2.0);
}

void
BalcvpPredictor::applyUpdate(const PendingUpdate &update)
{
    Entry &entry = table_[pcIndex(update.pc, config_.entries)];

    if (!entry.valid || entry.tag != update.pc) {
        // Replace-then-return; a fresh claim of an invalid slot is
        // not interference, so only valid takeovers are counted.
        replacements_ += entry.valid;
        entry.tag = update.pc;
        entry.value = update.value;
        entry.hits = 0;
        entry.misses = 0;
        entry.valid = true;
        return;
    }
    if (entry.value == update.value)
        ++entry.hits;
    else
        ++entry.misses;
    entry.value = update.value;
    if (entry.hits + entry.misses >= config_.countMax) {
        entry.hits /= 2;
        entry.misses /= 2;
    }
}

VpDecision
BalcvpPredictor::onInst(const DynInst &inst, const ArchState &)
{
    while (!pending_.empty() &&
           pending_.front().seq + config_.updateDelayInsts <= inst.seq) {
        applyUpdate(pending_.front());
        pending_.pop_front();
    }

    if (inst.dest == regNone)
        return {};
    if (config_.loadsOnly && !inst.isLoad())
        return {};

    const Entry &entry = table_[pcIndex(inst.pc, config_.entries)];
    bool tag_hit = entry.valid && entry.tag == inst.pc;

    bool predicted = false;
    bool value_hit = false;
    if (tag_hit) {
        double p = posterior(entry);
        bool high = p >= config_.highThreshold;
        bool medium = !high && p >= config_.mediumThreshold;
        bandHigh_ += high;
        bandMedium_ += medium;
        bandLow_ += !high && !medium;
        predicted = high || (medium && config_.predictOnMedium);
        value_hit = entry.value == inst.newValue;
    }

    pending_.push_back({inst.seq, inst.pc, inst.newValue});
    return record(predicted, value_hit);
}

void
BalcvpPredictor::exportStats(StatSet &stats) const
{
    ValuePredictor::exportStats(stats);
    stats.set("vp.tag_replacements",
              static_cast<double>(replacements_));
    stats.set("vp.balcvp_band_low", static_cast<double>(bandLow_));
    stats.set("vp.balcvp_band_medium",
              static_cast<double>(bandMedium_));
    stats.set("vp.balcvp_band_high", static_cast<double>(bandHigh_));
}

} // namespace rvp
