/**
 * @file
 * BALCVP: Bayesian dual-counter last-committed-value predictor
 * (after runezor/BALCVP). Instead of a resetting confidence counter,
 * each tagged entry keeps two event counts — predictions that would
 * have been correct (hits) and incorrect (misses) — and estimates the
 * probability that the stored value repeats with the Laplace-smoothed
 * posterior mean p = (hits + 1) / (hits + misses + 2). The estimate
 * is bucketed into low / medium / high confidence bands; only the
 * high band (optionally medium too) authorizes a prediction. Counts
 * are halved once their sum reaches a cap, so the estimator tracks
 * phase changes instead of averaging over the whole run.
 *
 * Value storage updates are commit-delayed like LVP's, and tag
 * replacement is replace-then-return, matching the rest of the zoo.
 */

#ifndef RVP_VP_BALCVP_HH
#define RVP_VP_BALCVP_HH

#include <deque>
#include <vector>

#include "vp/predictor.hh"

namespace rvp
{

/** Configuration for the BALCVP predictor. */
struct BalcvpConfig
{
    unsigned entries = 1024;
    /** Halve both counts when hits + misses reaches this. */
    unsigned countMax = 64;
    /** Posterior bounds of the confidence bands. */
    double highThreshold = 0.95;
    double mediumThreshold = 0.75;
    /** Predict on the medium band too (default: high only). */
    bool predictOnMedium = false;
    bool loadsOnly = true;
    /** Commit-delay model shared with LvpConfig::updateDelayInsts. */
    unsigned updateDelayInsts = 96;
};

/** Bayesian dual-counter last-committed-value predictor. */
class BalcvpPredictor : public ValuePredictor
{
  public:
    explicit BalcvpPredictor(const BalcvpConfig &config = {});

    VpDecision onInst(const DynInst &inst,
                      const ArchState &pre_state) override;

    /** Predicted values are read from the table: no register wait. */
    bool valueFromBuffer() const override { return true; }

    void exportStats(StatSet &stats) const override;

  private:
    struct Entry
    {
        std::uint64_t tag = ~0ull;
        std::uint64_t value = 0;
        unsigned hits = 0;
        unsigned misses = 0;
        bool valid = false;
    };

    /** A committed result waiting to enter the value table. */
    struct PendingUpdate
    {
        std::uint64_t seq;
        std::uint64_t pc;
        std::uint64_t value;
    };

    static double posterior(const Entry &entry);
    void applyUpdate(const PendingUpdate &update);

    BalcvpConfig config_;
    std::vector<Entry> table_;
    std::deque<PendingUpdate> pending_;
    std::uint64_t replacements_ = 0;
    std::uint64_t bandLow_ = 0;
    std::uint64_t bandMedium_ = 0;
    std::uint64_t bandHigh_ = 0;
};

} // namespace rvp

#endif // RVP_VP_BALCVP_HH
