#include "vp/rvp.hh"

namespace rvp
{

SpecEvaluator::SpecEvaluator(std::vector<StaticPredSpec> specs)
    : specs_(std::move(specs))
{
    lastValue_.assign(specs_.size(), 0);
    lastValid_.assign(specs_.size(), false);
}

bool
SpecEvaluator::wouldBeCorrect(const DynInst &inst,
                              const ArchState &pre_state)
{
    StaticPredSpec spec;   // default SameReg
    std::uint32_t s = inst.staticIndex;
    if (s < specs_.size())
        spec = specs_[s];

    switch (spec.source) {
      case PredSource::SameReg:
        return inst.oldDestValue == inst.newValue;
      case PredSource::OtherReg:
        // The profile says the compiler re-allocated so that this
        // register's value lands in the destination (or a move put it
        // there); the prediction is that register's current value.
        return pre_state.read(spec.reg) == inst.newValue;
      case PredSource::LastValue: {
        // Compiler gave the instruction a loop-exclusive register, so
        // the prior register value is the instruction's own previous
        // result.
        bool hit = lastValid_[s] && lastValue_[s] == inst.newValue;
        lastValue_[s] = inst.newValue;
        lastValid_[s] = true;
        return hit;
      }
      case PredSource::Stride: {
        // Compiler keeps a loop-exclusive register and inserts an add
        // of the profiled stride each iteration (Section 3, "Et
        // Cetera"), so the register holds last result + stride.
        bool hit = lastValid_[s] &&
                   lastValue_[s] + static_cast<std::uint64_t>(
                                       spec.stride) == inst.newValue;
        lastValue_[s] = inst.newValue;
        lastValid_[s] = true;
        return hit;
      }
    }
    return false;
}

StaticRvpPredictor::StaticRvpPredictor(const Program &prog,
                                       std::vector<StaticPredSpec> specs)
    : prog_(prog), eval_(std::move(specs))
{
}

VpDecision
StaticRvpPredictor::onInst(const DynInst &inst, const ArchState &pre_state)
{
    if (inst.dest == regNone)
        return {};
    // Static RVP predicts exactly the opcode-marked loads, always.
    if (!prog_.at(inst.staticIndex).isRvpMarked())
        return {};
    bool correct = eval_.wouldBeCorrect(inst, pre_state);
    return record(true, correct);
}

DynamicRvpPredictor::DynamicRvpPredictor(std::vector<StaticPredSpec> specs,
                                         bool loads_only,
                                         const ConfidenceConfig &confidence)
    : eval_(std::move(specs)), table_(confidence), loadsOnly_(loads_only)
{
}

VpDecision
DynamicRvpPredictor::onInst(const DynInst &inst, const ArchState &pre_state)
{
    if (inst.dest == regNone)
        return {};
    if (loadsOnly_ && !inst.isLoad())
        return {};
    bool correct = eval_.wouldBeCorrect(inst, pre_state);
    bool predicted = table_.confident(inst.pc);
    table_.update(inst.pc, correct);
    return record(predicted, correct);
}

void
DynamicRvpPredictor::exportStats(StatSet &stats) const
{
    ValuePredictor::exportStats(stats);
    // Only a tagged table performs replacements; keep the stat key
    // out of the untagged (default) configuration so existing stat
    // snapshots keep their exact key set.
    if (table_.tagged()) {
        stats.set("vp.tag_replacements",
                  static_cast<double>(table_.replacements()));
    }
}

GabbayRegisterPredictor::GabbayRegisterPredictor(unsigned counter_bits,
                                                 unsigned threshold,
                                                 bool loads_only)
    : loadsOnly_(loads_only)
{
    for (auto &counter : counters_)
        counter = ResettingCounter(counter_bits, threshold);
}

VpDecision
GabbayRegisterPredictor::onInst(const DynInst &inst, const ArchState &)
{
    if (inst.dest == regNone)
        return {};
    if (loadsOnly_ && !inst.isLoad())
        return {};
    // Same storageless same-register prediction, but the confidence
    // counter is shared by *every* instruction writing this register.
    bool correct = inst.oldDestValue == inst.newValue;
    ResettingCounter &counter = counters_[inst.dest];
    bool predicted = counter.confident();
    if (correct)
        counter.recordCorrect();
    else
        counter.recordIncorrect();
    return record(predicted, correct);
}

} // namespace rvp
