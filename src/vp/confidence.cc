#include "vp/confidence.hh"

namespace rvp
{

ConfidenceTable::ConfidenceTable(const ConfidenceConfig &config)
    : config_(config),
      counters_(config.entries,
                ResettingCounter(config.counterBits, config.threshold)),
      tags_(config.tagged ? config.entries : 0, ~0ull)
{
}

unsigned
ConfidenceTable::indexOf(std::uint64_t pc) const
{
    return static_cast<unsigned>((pc >> 2) % config_.entries);
}

bool
ConfidenceTable::confident(std::uint64_t pc) const
{
    unsigned idx = indexOf(pc);
    if (config_.tagged && tags_[idx] != pc)
        return false;
    return counters_[idx].confident();
}

void
ConfidenceTable::update(std::uint64_t pc, bool correct)
{
    unsigned idx = indexOf(pc);
    if (config_.tagged && tags_[idx] != pc) {
        tags_[idx] = pc;
        counters_[idx].reset();
    }
    if (correct)
        counters_[idx].recordCorrect();
    else
        counters_[idx].recordIncorrect();
}

void
ConfidenceTable::reset()
{
    for (auto &counter : counters_)
        counter.reset();
    for (auto &tag : tags_)
        tag = ~0ull;
}

} // namespace rvp
