#include "vp/confidence.hh"

#include "common/logging.hh"
#include "vp/predictor.hh"

namespace rvp
{

void
validateConfidenceConfig(const ConfidenceConfig &config)
{
    RVP_ASSERT(config.entries > 0,
               "confidence table needs at least one entry");
    // counterMax() validates the width bound itself.
    RVP_ASSERT(config.threshold <= counterMax(config.counterBits),
               "confidence threshold %u exceeds the %u-bit maximum %u",
               config.threshold, config.counterBits,
               counterMax(config.counterBits));
}

ConfidenceTable::ConfidenceTable(const ConfidenceConfig &config)
    : config_((validateConfidenceConfig(config), config)),
      counters_(config.entries,
                ResettingCounter(config.counterBits, config.threshold)),
      tags_(config.tagged ? config.entries : 0, ~0ull)
{
}

unsigned
ConfidenceTable::indexOf(std::uint64_t pc) const
{
    return pcIndex(pc, config_.entries);
}

bool
ConfidenceTable::confident(std::uint64_t pc) const
{
    unsigned idx = indexOf(pc);
    if (config_.tagged && tags_[idx] != pc)
        return false;
    return counters_[idx].confident();
}

void
ConfidenceTable::update(std::uint64_t pc, bool correct)
{
    unsigned idx = indexOf(pc);
    if (config_.tagged && tags_[idx] != pc) {
        // Claiming a never-used slot (sentinel tag) is an install,
        // not a takeover; only evictions of a live owner count.
        replacements_ += tags_[idx] != ~0ull;
        tags_[idx] = pc;
        counters_[idx].reset();
        return;
    }
    if (correct)
        counters_[idx].recordCorrect();
    else
        counters_[idx].recordIncorrect();
}

void
ConfidenceTable::reset()
{
    for (auto &counter : counters_)
        counter.reset();
    for (auto &tag : tags_)
        tag = ~0ull;
}

} // namespace rvp
