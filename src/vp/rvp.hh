/**
 * @file
 * Register value prediction — the paper's contribution. Three
 * predictors share a SpecEvaluator that decides whether a prediction
 * drawn from prior register values would be architecturally correct
 * for an instruction, given the instruction's profile-assigned
 * prediction source (same register / correlated other register /
 * own last value, see profile/reuse_profiler.hh):
 *
 *  - StaticRvpPredictor: predicts every rvp_*-marked load, always
 *    (static RVP; the compiler chose the loads via profiling).
 *  - DynamicRvpPredictor: predicts any register-writing instruction
 *    whose PC-indexed untagged 3-bit resetting confidence counter has
 *    reached threshold (dynamic RVP; optionally loads only).
 *  - GabbayRegisterPredictor: the Gabbay & Mendelson register-file
 *    predictor baseline — identical except the confidence counters
 *    are indexed by *destination register number*, so every
 *    instruction that writes a register shares that register's
 *    counter (the interference the paper shows cripples coverage).
 *
 * None of these store values: the prediction is whatever the register
 * file already holds.
 */

#ifndef RVP_VP_RVP_HH
#define RVP_VP_RVP_HH

#include <array>
#include <vector>

#include "profile/reuse_profiler.hh"
#include "vp/confidence.hh"
#include "vp/predictor.hh"

namespace rvp
{

/**
 * Evaluates whether an RVP prediction would be correct for one
 * instruction under its per-static prediction-source spec. Owns the
 * per-static last-value state used by LastValue specs (which model a
 * compiler-provided loop-exclusive register).
 */
class SpecEvaluator
{
  public:
    /**
     * @param specs per-static prediction sources; empty means
     *        same-register for everything
     */
    explicit SpecEvaluator(std::vector<StaticPredSpec> specs);

    /** Would predicting inst from its spec source be correct? */
    bool wouldBeCorrect(const DynInst &inst, const ArchState &pre_state);

    /** The spec assigned to a static instruction (SameReg default). */
    StaticPredSpec
    specOf(std::uint32_t static_index) const
    {
        return static_index < specs_.size() ? specs_[static_index]
                                            : StaticPredSpec{};
    }

  private:
    std::vector<StaticPredSpec> specs_;
    std::vector<std::uint64_t> lastValue_;
    std::vector<bool> lastValid_;
};

/** Static RVP: marked loads are always predicted. */
class StaticRvpPredictor : public ValuePredictor
{
  public:
    StaticRvpPredictor(const Program &prog,
                       std::vector<StaticPredSpec> specs);

    VpDecision onInst(const DynInst &inst,
                      const ArchState &pre_state) override;

    StaticPredSpec
    specOf(std::uint32_t static_index) const override
    {
        return eval_.specOf(static_index);
    }

  private:
    const Program &prog_;
    SpecEvaluator eval_;
};

/** Dynamic RVP: PC-indexed confidence counters, no value storage. */
class DynamicRvpPredictor : public ValuePredictor
{
  public:
    /**
     * @param loads_only restrict prediction to load instructions
     * @param confidence counter-table geometry (untagged by default)
     */
    DynamicRvpPredictor(std::vector<StaticPredSpec> specs,
                        bool loads_only,
                        const ConfidenceConfig &confidence = {});

    VpDecision onInst(const DynInst &inst,
                      const ArchState &pre_state) override;

    StaticPredSpec
    specOf(std::uint32_t static_index) const override
    {
        return eval_.specOf(static_index);
    }

    void exportStats(StatSet &stats) const override;

  private:
    SpecEvaluator eval_;
    ConfidenceTable table_;
    bool loadsOnly_;
};

/** Gabbay & Mendelson register predictor: counters per register. */
class GabbayRegisterPredictor : public ValuePredictor
{
  public:
    GabbayRegisterPredictor(unsigned counter_bits = 3,
                            unsigned threshold = 7,
                            bool loads_only = false);

    VpDecision onInst(const DynInst &inst,
                      const ArchState &pre_state) override;

  private:
    std::array<ResettingCounter, numArchRegs> counters_;
    bool loadsOnly_;
};

} // namespace rvp

#endif // RVP_VP_RVP_HH
