/**
 * @file
 * Tagged stride value predictor with a value-prediction queue (VPQ)
 * and per-entry in-flight instance counting, after the 721sim design
 * (Ashwin-Sarathi/Value-Prediction; SNIPPETS.md 1–3). Each table
 * entry tracks the last *committed* value, the stride between the
 * last two committed values, a saturating confidence counter, and how
 * many same-PC instances are currently in flight. A fetch-time
 * prediction for the (k+1)-th outstanding instance is
 * `last + (k+1)·stride`, so back-to-back instances of a tight loop
 * each get their own extrapolated value even though none of them has
 * committed yet — the property plain last-value prediction loses.
 *
 * Training happens at commit (modelled, as for LVP, by a fixed
 * dynamic-instruction delay): stride-consistent outcomes raise
 * confidence, stride breaks overwrite the stride only while
 * confidence is low, and a tag miss replaces the entry only while
 * confidence is at or below the replacement threshold
 * (confidence-gated replacement, replace-then-return).
 */

#ifndef RVP_VP_STRIDE_HH
#define RVP_VP_STRIDE_HH

#include <deque>
#include <vector>

#include "vp/predictor.hh"

namespace rvp
{

/** Configuration for the stride predictor. */
struct StrideConfig
{
    unsigned entries = 1024;
    /** Confidence saturates here; predictions need predictThreshold. */
    unsigned confMax = 7;
    unsigned confInc = 1;
    /** Confidence loss on a stride break; 0 = full reset. */
    unsigned confDec = 0;
    unsigned predictThreshold = 7;
    /** Tag replacement allowed only while confidence <= this. */
    unsigned replaceThreshold = 1;
    /** Stride overwrite allowed only while confidence <= this. */
    unsigned strideUpdateThreshold = 1;
    bool loadsOnly = true;
    /** Commit-delay model shared with LvpConfig::updateDelayInsts. */
    unsigned updateDelayInsts = 96;
};

/** Tagged stride predictor with VPQ-style in-flight accounting. */
class StridePredictor : public ValuePredictor
{
  public:
    explicit StridePredictor(const StrideConfig &config = {});

    VpDecision onInst(const DynInst &inst,
                      const ArchState &pre_state) override;

    /** Predicted values are read from the table: no register wait. */
    bool valueFromBuffer() const override { return true; }

    void exportStats(StatSet &stats) const override;

  private:
    struct Entry
    {
        std::uint64_t tag = ~0ull;
        std::uint64_t lastValue = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        unsigned inflight = 0;
        bool valid = false;
    };

    /** A committed result queued for training (the VPQ). */
    struct PendingTrain
    {
        std::uint64_t seq;
        std::uint64_t pc;
        std::uint64_t value;
    };

    void train(const PendingTrain &t);
    void claim(Entry &entry, const PendingTrain &t);

    StrideConfig config_;
    std::vector<Entry> table_;
    std::deque<PendingTrain> vpq_;
    std::uint64_t replacements_ = 0;
    std::uint64_t replaceRefused_ = 0;
    std::uint64_t inflightPredictions_ = 0;
    std::uint64_t inflightHits_ = 0;
};

} // namespace rvp

#endif // RVP_VP_STRIDE_HH
