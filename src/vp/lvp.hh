/**
 * @file
 * Last-value prediction baseline (Lipasti & Shen): a 1K-entry,
 * PC-tagged buffer storing each instruction's last value with a 3-bit
 * resetting confidence counter per entry (threshold 7). This is the
 * "much more expensive" mechanism the paper compares RVP against —
 * on a 64-bit machine the value storage alone is 8KB plus tags,
 * versus RVP's 384 bytes of bare counters.
 */

#ifndef RVP_VP_LVP_HH
#define RVP_VP_LVP_HH

#include <deque>
#include <vector>

#include "common/counters.hh"
#include "vp/predictor.hh"

namespace rvp
{

/** Configuration for the last-value predictor. */
struct LvpConfig
{
    unsigned entries = 1024;
    unsigned counterBits = 3;
    unsigned threshold = 7;
    bool tagged = true;     ///< the paper tags LVP entries (helps LVP)
    bool loadsOnly = true;  ///< predict loads, or all reg-writers
    /**
     * Value-file updates are non-speculative: a result enters the
     * buffer only when its instruction commits, so in-flight same-PC
     * instances read stale entries (the paper's Section-1 point 4 —
     * "we must hold off inserting values until they become
     * non-speculative, forcing new instructions to possibly use stale
     * entries"). Modelled as a fixed dynamic-instruction delay of
     * roughly the instruction-window depth. Zero = idealized
     * immediate update (ablation).
     */
    unsigned updateDelayInsts = 96;
};

/** Buffer-based last-value predictor. */
class LastValuePredictor : public ValuePredictor
{
  public:
    explicit LastValuePredictor(const LvpConfig &config = {});

    VpDecision onInst(const DynInst &inst,
                      const ArchState &pre_state) override;

    /** LVP forwards the stored value at rename: no register wait. */
    bool valueFromBuffer() const override { return true; }

    void exportStats(StatSet &stats) const override;

  private:
    struct Entry
    {
        std::uint64_t tag = ~0ull;
        std::uint64_t value = 0;
        ResettingCounter counter;

        explicit Entry(unsigned bits = 3, unsigned threshold = 7)
            : counter(bits, threshold)
        {}
    };

    /** A value-file write waiting for its instruction to commit. */
    struct PendingUpdate
    {
        std::uint64_t seq;
        std::uint64_t pc;
        std::uint64_t value;
    };

    void applyUpdate(const PendingUpdate &update);

    LvpConfig config_;
    std::vector<Entry> table_;
    std::deque<PendingUpdate> pending_;
    std::uint64_t tagMisses_ = 0;
    std::uint64_t replacements_ = 0;
};

} // namespace rvp

#endif // RVP_VP_LVP_HH
