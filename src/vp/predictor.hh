/**
 * @file
 * Common interface for all value predictors. A predictor observes
 * every committed-path instruction in program order (at fetch) and
 * decides whether the pipeline treats the instruction as predicted
 * and, if so, whether the prediction is architecturally correct. The
 * timing model applies the performance consequences (dependence
 * breaking, recovery); the predictor owns its own state (values,
 * confidence counters).
 */

#ifndef RVP_VP_PREDICTOR_HH
#define RVP_VP_PREDICTOR_HH

#include <memory>

#include "common/stats.hh"
#include "emu/emulator.hh"
#include "profile/reuse_profiler.hh"

namespace rvp
{

/**
 * Canonical PC-to-slot mapping shared by every direct-mapped predictor
 * table (confidence tables, LVP, the stride/BALCVP/FCM zoo). All
 * instructions are 4-byte aligned, so the low two PC bits carry no
 * information and are shifted out before the modulo. Keeping one
 * definition guarantees a predictor's predict path and update path
 * index the same entry. `entries` must be non-zero — table
 * constructors validate their geometry before any lookup.
 */
inline unsigned
pcIndex(std::uint64_t pc, unsigned entries)
{
    return static_cast<unsigned>((pc >> 2) % entries);
}

/** Outcome of consulting a predictor for one dynamic instruction. */
struct VpDecision
{
    /** The instruction was a prediction candidate for this scheme. */
    bool eligible = false;
    bool predicted = false;
    bool correct = false;
};

/** Abstract value predictor. */
class ValuePredictor
{
  public:
    virtual ~ValuePredictor() = default;

    /**
     * Observe (and, if applicable, predict) one instruction.
     *
     * @param inst the executed instruction (values known)
     * @param pre_state architectural register state just before inst
     */
    virtual VpDecision onInst(const DynInst &inst,
                              const ArchState &pre_state) = 0;

    /**
     * The prediction source assumed for a static instruction. The
     * timing model uses this to pick *which* prior register value the
     * consumers wait for: with compiler re-allocation the value sits
     * in the correlated register (OtherReg) or in a loop-exclusive
     * register holding the instruction's previous result (LastValue).
     */
    virtual StaticPredSpec
    specOf(std::uint32_t /* static_index */) const
    {
        return {};
    }

    /**
     * True when the predicted value is read out of dedicated value
     * storage at rename (buffer-based prediction, e.g. LVP): the
     * value is available immediately, so consumers need not wait for
     * any register. Storageless RVP returns false — the prediction
     * is a prior register value and consumers wait for that register.
     */
    virtual bool valueFromBuffer() const { return false; }

    /** Export predictor statistics under the "vp." prefix. */
    virtual void exportStats(StatSet &stats) const;

    std::uint64_t eligible() const { return eligible_; }
    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t correct() const { return correct_; }

  protected:
    /** Book-keeping helper for subclasses. */
    VpDecision
    record(bool predicted, bool would_be_correct)
    {
        ++eligible_;
        VpDecision d;
        d.eligible = true;
        d.predicted = predicted;
        d.correct = would_be_correct;
        predictions_ += predicted;
        correct_ += predicted && would_be_correct;
        return d;
    }

  private:
    std::uint64_t eligible_ = 0;
    std::uint64_t predictions_ = 0;
    std::uint64_t correct_ = 0;
};

/** A predictor that never predicts (the no-prediction baseline). */
class NullPredictor : public ValuePredictor
{
  public:
    VpDecision
    onInst(const DynInst &, const ArchState &) override
    {
        return {};
    }
};

} // namespace rvp

#endif // RVP_VP_PREDICTOR_HH
