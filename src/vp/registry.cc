#include "vp/registry.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "vp/balcvp.hh"
#include "vp/fcm.hh"
#include "vp/stride.hh"

namespace rvp
{

namespace
{

/** The base VpConfig a factory seeds its defaults from. */
const VpConfig &
baseOf(const VpFactoryInput &input)
{
    static const VpConfig defaults;
    return input.base ? *input.base : defaults;
}

unsigned
getEntries(const VpParams &params, const std::string &key, unsigned def)
{
    auto v = params.getU64(key, def);
    if (v == 0 || v > (1u << 28))
        throw VpConfigError("param '" + key + "' must be in [1, 2^28]");
    return static_cast<unsigned>(v);
}

unsigned
getUnsigned(const VpParams &params, const std::string &key, unsigned def)
{
    auto v = params.getU64(key, def);
    if (v > ~0u)
        throw VpConfigError("param '" + key + "' out of range");
    return static_cast<unsigned>(v);
}

} // namespace

VpParams
VpParams::parse(const std::string &text)
{
    VpParams params;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find(',', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string item = text.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;
        std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) {
            throw VpConfigError("bad vp param '" + item +
                                "': expected key=value");
        }
        std::string key = item.substr(0, eq);
        if (params.values_.count(key))
            throw VpConfigError("duplicate vp param '" + key + "'");
        params.values_[key] = item.substr(eq + 1);
    }
    return params;
}

const std::string &
VpParams::get(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        throw VpConfigError("missing vp param '" + key + "'");
    return it->second;
}

std::uint64_t
VpParams::getU64(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &text = it->second;
    std::size_t used = 0;
    std::uint64_t value = 0;
    try {
        value = std::stoull(text, &used, 0);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used == 0 || used != text.size() || text[0] == '-') {
        throw VpConfigError("vp param '" + key + "': '" + text +
                            "' is not an unsigned integer");
    }
    return value;
}

double
VpParams::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &text = it->second;
    std::size_t used = 0;
    double value = 0.0;
    try {
        value = std::stod(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used == 0 || used != text.size()) {
        throw VpConfigError("vp param '" + key + "': '" + text +
                            "' is not a number");
    }
    return value;
}

bool
VpParams::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &text = it->second;
    if (text == "1" || text == "true" || text == "on")
        return true;
    if (text == "0" || text == "false" || text == "off")
        return false;
    throw VpConfigError("vp param '" + key + "': '" + text +
                        "' is not a boolean (use 0/1/true/false/on/off)");
}

PredictorRegistry &
PredictorRegistry::instance()
{
    static PredictorRegistry registry;
    return registry;
}

void
PredictorRegistry::add(VpSchemeInfo info)
{
    RVP_ASSERT(!info.name.empty() && info.factory,
               "vp scheme registration needs a name and a factory");
    auto taken = [&](const std::string &name) {
        return schemes_.count(name) || aliasToName_.count(name);
    };
    if (taken(info.name)) {
        throw VpConfigError("vp scheme '" + info.name +
                            "' registered twice");
    }
    for (const auto &alias : info.aliases) {
        if (taken(alias)) {
            throw VpConfigError("vp scheme alias '" + alias +
                                "' registered twice");
        }
    }
    for (const auto &alias : info.aliases)
        aliasToName_[alias] = info.name;
    schemes_.emplace(info.name, std::move(info));
}

const VpSchemeInfo *
PredictorRegistry::find(const std::string &name) const
{
    auto it = schemes_.find(name);
    if (it != schemes_.end())
        return &it->second;
    auto alias = aliasToName_.find(name);
    if (alias != aliasToName_.end())
        return &schemes_.at(alias->second);
    return nullptr;
}

std::vector<const VpSchemeInfo *>
PredictorRegistry::list() const
{
    std::vector<const VpSchemeInfo *> out;
    out.reserve(schemes_.size());
    for (const auto &[name, info] : schemes_)
        out.push_back(&info);
    return out;   // schemes_ is ordered by name already
}

void
PredictorRegistry::checkParams(const std::string &name,
                               const VpParams &params) const
{
    const VpSchemeInfo *info = find(name);
    if (!info)
        throw VpConfigError("unknown vp scheme '" + name + "'");
    for (const auto &[key, value] : params.values()) {
        bool known = std::any_of(
            info->params.begin(), info->params.end(),
            [&](const VpParamDoc &doc) { return doc.key == key; });
        if (known)
            continue;
        std::ostringstream os;
        os << "vp scheme '" << info->name << "' does not accept param '"
           << key << "'";
        if (info->params.empty()) {
            os << " (it takes no params)";
        } else {
            os << " (accepted:";
            for (const auto &doc : info->params)
                os << " " << doc.key;
            os << ")";
        }
        throw VpConfigError(os.str());
    }
}

std::unique_ptr<ValuePredictor>
PredictorRegistry::make(const std::string &name, const VpParams &params,
                        const VpFactoryInput &input) const
{
    checkParams(name, params);
    return find(name)->factory(params, input);
}

PredictorRegistry::PredictorRegistry()
{
    // --- Built-in schemes. Factories seed their defaults from the
    // legacy VpConfig fields so a no-param build constructs exactly
    // the object the pre-registry makePredictor() switch built.

    add({"none",
         {},
         "no value prediction (baseline)",
         {},
         [](const VpParams &, const VpFactoryInput &) {
             return std::make_unique<NullPredictor>();
         }});

    add({"lvp",
         {},
         "last-value prediction, PC-tagged value buffer (Lipasti)",
         {{"entries", "1024", "value-buffer entries"},
          {"bits", "3", "confidence counter width"},
          {"threshold", "7", "confidence threshold"},
          {"tagged", "true", "tag the buffer entries"},
          {"loads_only", "base", "predict loads only"},
          {"update_delay", "96", "commit delay in dynamic insts"}},
         [](const VpParams &params, const VpFactoryInput &input) {
             const VpConfig &base = baseOf(input);
             LvpConfig lvp;
             lvp.entries =
                 getEntries(params, "entries", base.tableEntries);
             lvp.counterBits =
                 getUnsigned(params, "bits", base.counterBits);
             lvp.threshold =
                 getUnsigned(params, "threshold", base.threshold);
             lvp.tagged = params.getBool("tagged", base.taggedLvp);
             lvp.loadsOnly =
                 params.getBool("loads_only", base.loadsOnly);
             lvp.updateDelayInsts = getUnsigned(params, "update_delay",
                                                lvp.updateDelayInsts);
             return std::make_unique<LastValuePredictor>(lvp);
         }});

    add({"rvp-static",
         {"srvp"},
         "static RVP: profile-marked loads always predicted (paper)",
         {},
         [](const VpParams &, const VpFactoryInput &input) {
             RVP_ASSERT(input.prog,
                        "rvp-static needs the timed program");
             return std::make_unique<StaticRvpPredictor>(
                 *input.prog, baseOf(input).specs);
         }});

    add({"rvp-dynamic",
         {"drvp"},
         "dynamic RVP: PC-indexed confidence, storageless (paper)",
         {{"entries", "1024", "confidence-table entries"},
          {"bits", "3", "confidence counter width"},
          {"threshold", "7", "confidence threshold"},
          {"tagged", "false", "tag the confidence table"},
          {"loads_only", "base", "predict loads only"}},
         [](const VpParams &params, const VpFactoryInput &input) {
             const VpConfig &base = baseOf(input);
             ConfidenceConfig conf;
             conf.entries =
                 getEntries(params, "entries", base.tableEntries);
             conf.counterBits =
                 getUnsigned(params, "bits", base.counterBits);
             conf.threshold =
                 getUnsigned(params, "threshold", base.threshold);
             conf.tagged = params.getBool("tagged", base.taggedRvp);
             return std::make_unique<DynamicRvpPredictor>(
                 base.specs,
                 params.getBool("loads_only", base.loadsOnly), conf);
         }});

    add({"gabbay",
         {"grp"},
         "Gabbay/Mendelson register predictor (per-register counters)",
         {{"bits", "3", "confidence counter width"},
          {"threshold", "7", "confidence threshold"},
          {"loads_only", "base", "predict loads only"}},
         [](const VpParams &params, const VpFactoryInput &input) {
             const VpConfig &base = baseOf(input);
             return std::make_unique<GabbayRegisterPredictor>(
                 getUnsigned(params, "bits", base.counterBits),
                 getUnsigned(params, "threshold", base.threshold),
                 params.getBool("loads_only", base.loadsOnly));
         }});

    add({"stride",
         {},
         "tagged stride table with VPQ in-flight instances (721sim)",
         {{"entries", "1024", "stride-table entries"},
          {"conf_max", "7", "confidence saturation"},
          {"conf_inc", "1", "confidence gain per stride hit"},
          {"conf_dec", "0", "confidence loss per break (0 = reset)"},
          {"predict_threshold", "7", "confidence needed to predict"},
          {"replace_threshold", "1", "max confidence still replaceable"},
          {"stride_update_threshold", "1",
           "max confidence still stride-writable"},
          {"loads_only", "base", "predict loads only"},
          {"update_delay", "96", "commit delay in dynamic insts"}},
         [](const VpParams &params, const VpFactoryInput &input) {
             const VpConfig &base = baseOf(input);
             StrideConfig conf;
             conf.entries =
                 getEntries(params, "entries", base.tableEntries);
             conf.confMax =
                 getUnsigned(params, "conf_max", conf.confMax);
             conf.confInc =
                 getUnsigned(params, "conf_inc", conf.confInc);
             conf.confDec =
                 getUnsigned(params, "conf_dec", conf.confDec);
             conf.predictThreshold = getUnsigned(
                 params, "predict_threshold", conf.predictThreshold);
             conf.replaceThreshold = getUnsigned(
                 params, "replace_threshold", conf.replaceThreshold);
             conf.strideUpdateThreshold =
                 getUnsigned(params, "stride_update_threshold",
                             conf.strideUpdateThreshold);
             conf.loadsOnly =
                 params.getBool("loads_only", base.loadsOnly);
             conf.updateDelayInsts = getUnsigned(
                 params, "update_delay", conf.updateDelayInsts);
             if (conf.predictThreshold > conf.confMax) {
                 throw VpConfigError(
                     "stride predict_threshold exceeds conf_max");
             }
             return std::make_unique<StridePredictor>(conf);
         }});

    add({"balcvp",
         {},
         "Bayesian dual-counter last-committed-value (BALCVP)",
         {{"entries", "1024", "value-table entries"},
          {"count_max", "64", "halve counts at this sum"},
          {"high", "0.95", "high-band posterior bound"},
          {"medium", "0.75", "medium-band posterior bound"},
          {"predict_on_medium", "false", "predict on the medium band"},
          {"loads_only", "base", "predict loads only"},
          {"update_delay", "96", "commit delay in dynamic insts"}},
         [](const VpParams &params, const VpFactoryInput &input) {
             const VpConfig &base = baseOf(input);
             BalcvpConfig conf;
             conf.entries =
                 getEntries(params, "entries", base.tableEntries);
             conf.countMax =
                 getUnsigned(params, "count_max", conf.countMax);
             conf.highThreshold =
                 params.getDouble("high", conf.highThreshold);
             conf.mediumThreshold =
                 params.getDouble("medium", conf.mediumThreshold);
             conf.predictOnMedium = params.getBool(
                 "predict_on_medium", conf.predictOnMedium);
             conf.loadsOnly =
                 params.getBool("loads_only", base.loadsOnly);
             conf.updateDelayInsts = getUnsigned(
                 params, "update_delay", conf.updateDelayInsts);
             if (conf.countMax < 2)
                 throw VpConfigError("balcvp count_max must be >= 2");
             if (conf.mediumThreshold > conf.highThreshold) {
                 throw VpConfigError(
                     "balcvp medium band above the high band");
             }
             return std::make_unique<BalcvpPredictor>(conf);
         }});

    add({"fcm",
         {},
         "finite context method, hashed order-2 value history",
         {{"history_entries", "1024", "level-1 (per-PC) entries"},
          {"value_entries", "4096", "level-2 (context) entries"},
          {"order", "2", "context length in values"},
          {"bits", "3", "confidence counter width"},
          {"threshold", "7", "confidence threshold"},
          {"loads_only", "base", "predict loads only"},
          {"update_delay", "96", "commit delay in dynamic insts"}},
         [](const VpParams &params, const VpFactoryInput &input) {
             const VpConfig &base = baseOf(input);
             FcmConfig conf;
             conf.historyEntries = getEntries(params, "history_entries",
                                              conf.historyEntries);
             conf.valueEntries = getEntries(params, "value_entries",
                                            conf.valueEntries);
             conf.order = getUnsigned(params, "order", conf.order);
             conf.counterBits =
                 getUnsigned(params, "bits", conf.counterBits);
             conf.threshold =
                 getUnsigned(params, "threshold", conf.threshold);
             conf.loadsOnly =
                 params.getBool("loads_only", base.loadsOnly);
             conf.updateDelayInsts = getUnsigned(
                 params, "update_delay", conf.updateDelayInsts);
             if (conf.order < 1 || conf.order > 8)
                 throw VpConfigError("fcm order outside [1, 8]");
             return std::make_unique<FcmPredictor>(conf);
         }});

    add({"oracle",
         {},
         "perfect value prediction (upper bound)",
         {{"loads_only", "base", "predict loads only"}},
         [](const VpParams &params, const VpFactoryInput &input) {
             return std::make_unique<OraclePredictor>(params.getBool(
                 "loads_only", baseOf(input).loadsOnly));
         }});
}

void
listSchemes(std::ostream &os)
{
    for (const VpSchemeInfo *info : PredictorRegistry::instance().list()) {
        os << info->name;
        for (const auto &alias : info->aliases)
            os << " | " << alias;
        os << "\n    " << info->description << "\n";
        for (const auto &doc : info->params) {
            os << "    " << doc.key << "=" << doc.def << "  " << doc.desc
               << "\n";
        }
    }
}

const char *
registryNameOf(VpScheme scheme)
{
    switch (scheme) {
      case VpScheme::None: return "none";
      case VpScheme::Lvp: return "lvp";
      case VpScheme::StaticRvp: return "rvp-static";
      case VpScheme::DynamicRvp: return "rvp-dynamic";
      case VpScheme::GabbayRp: return "gabbay";
      case VpScheme::Stride: return "stride";
      case VpScheme::Balcvp: return "balcvp";
      case VpScheme::Fcm: return "fcm";
      case VpScheme::Oracle: return "oracle";
    }
    panic("unknown vp scheme");
}

std::optional<VpScheme>
schemeForName(const std::string &name)
{
    const VpSchemeInfo *info = PredictorRegistry::instance().find(name);
    if (!info)
        return std::nullopt;
    static const std::pair<const char *, VpScheme> mapping[] = {
        {"none", VpScheme::None},
        {"lvp", VpScheme::Lvp},
        {"rvp-static", VpScheme::StaticRvp},
        {"rvp-dynamic", VpScheme::DynamicRvp},
        {"gabbay", VpScheme::GabbayRp},
        {"stride", VpScheme::Stride},
        {"balcvp", VpScheme::Balcvp},
        {"fcm", VpScheme::Fcm},
        {"oracle", VpScheme::Oracle},
    };
    for (const auto &[canonical, scheme] : mapping) {
        if (info->name == canonical)
            return scheme;
    }
    return std::nullopt;
}

} // namespace rvp
