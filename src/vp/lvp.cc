#include "vp/lvp.hh"

namespace rvp
{

LastValuePredictor::LastValuePredictor(const LvpConfig &config)
    : config_(config),
      table_(config.entries, Entry(config.counterBits, config.threshold))
{
}

void
LastValuePredictor::applyUpdate(const PendingUpdate &update)
{
    unsigned idx =
        static_cast<unsigned>((update.pc >> 2) % config_.entries);
    Entry &entry = table_[idx];

    bool tag_hit = !config_.tagged || entry.tag == update.pc;
    if (!tag_hit) {
        // Interference: take the entry over and restart confidence.
        ++tagMisses_;
        entry.tag = update.pc;
        entry.counter.reset();
        entry.value = update.value;
        return;
    }
    if (entry.value == update.value)
        entry.counter.recordCorrect();
    else
        entry.counter.recordIncorrect();
    entry.value = update.value;
}

VpDecision
LastValuePredictor::onInst(const DynInst &inst, const ArchState &)
{
    // Retire value-file updates whose instructions have committed
    // (modelled as an instruction-count delay; see LvpConfig).
    while (!pending_.empty() &&
           pending_.front().seq + config_.updateDelayInsts <= inst.seq) {
        applyUpdate(pending_.front());
        pending_.pop_front();
    }

    // Only register-writing instructions are candidates.
    if (inst.dest == regNone)
        return {};
    if (config_.loadsOnly && !inst.isLoad())
        return {};

    unsigned idx = static_cast<unsigned>((inst.pc >> 2) % config_.entries);
    const Entry &entry = table_[idx];

    bool tag_hit = !config_.tagged || entry.tag == inst.pc;
    bool predicted = tag_hit && entry.counter.confident();
    bool value_hit = tag_hit && entry.value == inst.newValue;

    pending_.push_back({inst.seq, inst.pc, inst.newValue});
    return record(predicted, value_hit);
}

void
LastValuePredictor::exportStats(StatSet &stats) const
{
    ValuePredictor::exportStats(stats);
    stats.set("vp.lvp_tag_misses", static_cast<double>(tagMisses_));
}

} // namespace rvp
