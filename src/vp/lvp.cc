#include "vp/lvp.hh"

#include "common/logging.hh"

namespace rvp
{

LastValuePredictor::LastValuePredictor(const LvpConfig &config)
    : config_(config),
      table_(config.entries, Entry(config.counterBits, config.threshold))
{
    RVP_ASSERT(config.entries > 0,
               "last-value table needs at least one entry");
}

void
LastValuePredictor::applyUpdate(const PendingUpdate &update)
{
    unsigned idx = pcIndex(update.pc, config_.entries);
    Entry &entry = table_[idx];

    bool tag_hit = !config_.tagged || entry.tag == update.pc;
    if (!tag_hit) {
        // Interference: take the entry over and restart confidence.
        // tagMisses_ keeps its historical meaning (every miss, first
        // installs included); replacements_ counts only evictions of
        // a live owner, matching the rest of the zoo.
        ++tagMisses_;
        replacements_ += entry.tag != ~0ull;
        entry.tag = update.pc;
        entry.counter.reset();
        entry.value = update.value;
        return;
    }
    if (entry.value == update.value)
        entry.counter.recordCorrect();
    else
        entry.counter.recordIncorrect();
    entry.value = update.value;
}

VpDecision
LastValuePredictor::onInst(const DynInst &inst, const ArchState &)
{
    // Retire value-file updates whose instructions have committed
    // (modelled as an instruction-count delay; see LvpConfig).
    while (!pending_.empty() &&
           pending_.front().seq + config_.updateDelayInsts <= inst.seq) {
        applyUpdate(pending_.front());
        pending_.pop_front();
    }

    // Only register-writing instructions are candidates.
    if (inst.dest == regNone)
        return {};
    if (config_.loadsOnly && !inst.isLoad())
        return {};

    unsigned idx = pcIndex(inst.pc, config_.entries);
    const Entry &entry = table_[idx];

    bool tag_hit = !config_.tagged || entry.tag == inst.pc;
    bool predicted = tag_hit && entry.counter.confident();
    bool value_hit = tag_hit && entry.value == inst.newValue;

    pending_.push_back({inst.seq, inst.pc, inst.newValue});
    return record(predicted, value_hit);
}

void
LastValuePredictor::exportStats(StatSet &stats) const
{
    ValuePredictor::exportStats(stats);
    stats.set("vp.lvp_tag_misses", static_cast<double>(tagMisses_));
    // Zoo-wide name: every tagged predictor reports live-entry
    // takeovers as vp.tag_replacements (first installs excluded).
    stats.set("vp.tag_replacements", static_cast<double>(replacements_));
}

} // namespace rvp
