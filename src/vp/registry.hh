/**
 * @file
 * Pluggable value-predictor registry: every prediction scheme is a
 * named plug-in selected by a stable config string ("none", "lvp",
 * "rvp-dynamic", "stride", ...) and built by a factory that takes a
 * small key/value param bag. The experiment runner, both CLI tools,
 * and the conformance tests all resolve predictors through here, so a
 * new scheme registered once rides the whole sweep / stream-replay /
 * batching / sharding stack for free.
 *
 * The legacy VpScheme enum (vp/oracle.hh) is kept as a thin alias
 * layer on top: each enumerator maps to one canonical registry name
 * (plus the historical short aliases "srvp"/"drvp"/"grp"), and
 * makePredictor() routes through the registry, so existing configs,
 * schemeName(), journal run keys, and golden stats are unchanged.
 */

#ifndef RVP_VP_REGISTRY_HH
#define RVP_VP_REGISTRY_HH

#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "vp/oracle.hh"

namespace rvp
{

/**
 * A predictor-configuration error: unknown scheme name, malformed
 * param bag, unaccepted param key, or an out-of-range value. Thrown
 * (not asserted) so CLIs can report it and the conformance tests can
 * exercise the failure paths without dying.
 */
class VpConfigError : public std::runtime_error
{
  public:
    explicit VpConfigError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Parsed key/value param bag. The concrete grammar is
 * "key=value,key=value,..." (no spaces; empty text = no params); keys
 * are scheme-specific and validated against the scheme's declared
 * param list by PredictorRegistry::make().
 */
class VpParams
{
  public:
    VpParams() = default;

    /** Parse the "k=v,k2=v2" grammar; throws VpConfigError on a
     *  missing '=' or an empty/duplicate key. */
    static VpParams parse(const std::string &text);

    bool empty() const { return values_.empty(); }
    bool has(const std::string &key) const { return values_.count(key); }

    /** Raw value of key; throws VpConfigError when absent. */
    const std::string &get(const std::string &key) const;

    /** Typed getters returning `def` when the key is absent and
     *  throwing VpConfigError on a malformed value. */
    std::uint64_t getU64(const std::string &key, std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    /** Accepts 0/1/true/false/on/off. */
    bool getBool(const std::string &key, bool def) const;

    const std::map<std::string, std::string> &values() const
    {
        return values_;
    }

  private:
    std::map<std::string, std::string> values_;
};

/** Documentation of one accepted param key (shown by --list-vp). */
struct VpParamDoc
{
    std::string key;
    std::string def;   ///< default, as the user would type it
    std::string desc;
};

/**
 * Everything a factory may need besides its params: the timed binary
 * (StaticRvp keeps a reference into it) and the legacy VpConfig whose
 * geometry fields (tableEntries, counterBits, threshold, loadsOnly,
 * tagged*) and profile specs seed the factory defaults — params
 * override them per scheme.
 */
struct VpFactoryInput
{
    const Program *prog = nullptr;
    const VpConfig *base = nullptr;
};

/** One registered scheme. */
struct VpSchemeInfo
{
    std::string name;                  ///< canonical config string
    std::vector<std::string> aliases;  ///< historical short names
    std::string description;           ///< one-liner for --list-vp
    std::vector<VpParamDoc> params;    ///< accepted param keys
    std::function<std::unique_ptr<ValuePredictor>(
        const VpParams &, const VpFactoryInput &)>
        factory;
};

/**
 * The process-wide scheme table. Built-in schemes self-register on
 * first use; libraries linking extra predictors call add() before
 * resolving names (registration is not thread safe — do it during
 * startup, as the built-ins do).
 */
class PredictorRegistry
{
  public:
    static PredictorRegistry &instance();

    /** Register a scheme; throws VpConfigError on a name or alias
     *  collision (including colliding with an existing alias). */
    void add(VpSchemeInfo info);

    /** Look up by canonical name or alias; null when unknown. */
    const VpSchemeInfo *find(const std::string &name) const;

    /** All schemes, sorted by canonical name. */
    std::vector<const VpSchemeInfo *> list() const;

    /**
     * Validate that `params` only uses keys the scheme declares;
     * throws VpConfigError naming the offending key and listing the
     * accepted ones. Unknown scheme names also throw.
     */
    void checkParams(const std::string &name,
                     const VpParams &params) const;

    /** Build a predictor: find + checkParams + factory. */
    std::unique_ptr<ValuePredictor>
    make(const std::string &name, const VpParams &params,
         const VpFactoryInput &input) const;

  private:
    PredictorRegistry();

    std::map<std::string, VpSchemeInfo> schemes_;
    std::map<std::string, std::string> aliasToName_;
};

/**
 * Human-readable listing of every registered scheme with its aliases
 * and accepted params — the body of `--list-vp` in both CLI tools.
 */
void listSchemes(std::ostream &os);

/** Canonical registry name of a legacy enum value ("rvp-dynamic"). */
const char *registryNameOf(VpScheme scheme);

/** Resolve a registry name or alias back to the legacy enum. */
std::optional<VpScheme> schemeForName(const std::string &name);

} // namespace rvp

#endif // RVP_VP_REGISTRY_HH
