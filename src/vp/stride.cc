#include "vp/stride.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rvp
{

StridePredictor::StridePredictor(const StrideConfig &config)
    : config_(config), table_(config.entries)
{
    RVP_ASSERT(config.entries > 0,
               "stride table needs at least one entry");
    RVP_ASSERT(config.predictThreshold <= config.confMax,
               "stride predict threshold %u exceeds confidence max %u",
               config.predictThreshold, config.confMax);
}

void
StridePredictor::train(const PendingTrain &t)
{
    Entry &entry = table_[pcIndex(t.pc, config_.entries)];

    if (!entry.valid || entry.tag == t.pc) {
        if (!entry.valid) {
            // First claim of an empty slot: same bookkeeping as a
            // replacement takeover, minus the interference counter.
            claim(entry, t);
            return;
        }
        std::int64_t new_stride = static_cast<std::int64_t>(
            t.value - entry.lastValue);
        if (entry.stride == new_stride) {
            entry.confidence = std::min(
                entry.confidence + config_.confInc, config_.confMax);
        } else {
            // Stride break: overwrite the stride only while the entry
            // has not proven itself, and lose confidence either way.
            if (entry.confidence <= config_.strideUpdateThreshold)
                entry.stride = new_stride;
            entry.confidence =
                config_.confDec == 0
                    ? 0
                    : (entry.confidence > config_.confDec
                           ? entry.confidence - config_.confDec
                           : 0);
        }
        entry.lastValue = t.value;
        if (entry.inflight > 0)
            --entry.inflight;
        return;
    }

    // Tag miss at train time: confidence-gated replacement,
    // replace-then-return (the outcome belongs to the old owner's
    // stream, so nothing is recorded for the new one).
    if (entry.confidence > config_.replaceThreshold) {
        ++replaceRefused_;
        return;
    }
    ++replacements_;
    claim(entry, t);
}

void
StridePredictor::claim(Entry &entry, const PendingTrain &t)
{
    entry.tag = t.pc;
    entry.lastValue = t.value;
    entry.stride = 0;
    entry.confidence = 0;
    entry.valid = true;
    // The new owner may already have instances in flight that never
    // bumped the (previously foreign or invalid) entry's counter;
    // recount them from the VPQ so its next predictions extrapolate
    // the right number of strides. The front element is the instance
    // being trained right now (popped after train() returns), so it
    // no longer counts as in flight.
    entry.inflight = static_cast<unsigned>(std::count_if(
        std::next(vpq_.begin()), vpq_.end(),
        [&](const PendingTrain &p) { return p.pc == t.pc; }));
}

VpDecision
StridePredictor::onInst(const DynInst &inst, const ArchState &)
{
    // Retire VPQ entries whose instructions have committed.
    while (!vpq_.empty() &&
           vpq_.front().seq + config_.updateDelayInsts <= inst.seq) {
        train(vpq_.front());
        vpq_.pop_front();
    }

    if (inst.dest == regNone)
        return {};
    if (config_.loadsOnly && !inst.isLoad())
        return {};

    Entry &entry = table_[pcIndex(inst.pc, config_.entries)];
    bool tag_hit = entry.valid && entry.tag == inst.pc;

    bool predicted = false;
    bool value_hit = false;
    unsigned inflight = 0;
    if (tag_hit) {
        // The (inflight+1)-th outstanding instance since the last
        // committed one: extrapolate that many strides ahead.
        inflight = entry.inflight;
        std::uint64_t predicted_value =
            entry.lastValue +
            static_cast<std::uint64_t>(entry.stride) * (inflight + 1);
        predicted = entry.confidence >= config_.predictThreshold;
        value_hit = predicted_value == inst.newValue;
        ++entry.inflight;
    }

    vpq_.push_back({inst.seq, inst.pc, inst.newValue});

    if (predicted && inflight > 0) {
        ++inflightPredictions_;
        inflightHits_ += value_hit;
    }
    return record(predicted, value_hit);
}

void
StridePredictor::exportStats(StatSet &stats) const
{
    ValuePredictor::exportStats(stats);
    stats.set("vp.tag_replacements",
              static_cast<double>(replacements_));
    stats.set("vp.stride_replace_refused",
              static_cast<double>(replaceRefused_));
    stats.set("vp.stride_inflight_predictions",
              static_cast<double>(inflightPredictions_));
    stats.set("vp.stride_inflight_hits",
              static_cast<double>(inflightHits_));
}

} // namespace rvp
