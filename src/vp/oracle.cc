#include "vp/oracle.hh"

#include "common/logging.hh"
#include "vp/registry.hh"

namespace rvp
{

void
ValuePredictor::exportStats(StatSet &stats) const
{
    stats.set("vp.eligible", static_cast<double>(eligible_));
    stats.set("vp.predictions", static_cast<double>(predictions_));
    stats.set("vp.correct", static_cast<double>(correct_));
    stats.set("vp.incorrect",
              static_cast<double>(predictions_ - correct_));
}

VpDecision
OraclePredictor::onInst(const DynInst &inst, const ArchState &)
{
    if (inst.dest == regNone)
        return {};
    if (loadsOnly_ && !inst.isLoad())
        return {};
    return record(true, true);
}

std::unique_ptr<ValuePredictor>
makePredictor(const VpConfig &config, const Program &prog)
{
    VpFactoryInput input;
    input.prog = &prog;
    input.base = &config;
    return PredictorRegistry::instance().make(
        registryNameOf(config.scheme), VpParams::parse(config.params),
        input);
}

} // namespace rvp
