#include "vp/oracle.hh"

#include "common/logging.hh"

namespace rvp
{

void
ValuePredictor::exportStats(StatSet &stats) const
{
    stats.set("vp.eligible", static_cast<double>(eligible_));
    stats.set("vp.predictions", static_cast<double>(predictions_));
    stats.set("vp.correct", static_cast<double>(correct_));
    stats.set("vp.incorrect",
              static_cast<double>(predictions_ - correct_));
}

std::unique_ptr<ValuePredictor>
makePredictor(const VpConfig &config, const Program &prog)
{
    switch (config.scheme) {
      case VpScheme::None:
        return std::make_unique<NullPredictor>();
      case VpScheme::Lvp: {
        LvpConfig lvp;
        lvp.entries = config.tableEntries;
        lvp.counterBits = config.counterBits;
        lvp.threshold = config.threshold;
        lvp.tagged = config.taggedLvp;
        lvp.loadsOnly = config.loadsOnly;
        return std::make_unique<LastValuePredictor>(lvp);
      }
      case VpScheme::StaticRvp:
        return std::make_unique<StaticRvpPredictor>(prog, config.specs);
      case VpScheme::DynamicRvp: {
        ConfidenceConfig conf;
        conf.entries = config.tableEntries;
        conf.counterBits = config.counterBits;
        conf.threshold = config.threshold;
        conf.tagged = config.taggedRvp;
        return std::make_unique<DynamicRvpPredictor>(
            config.specs, config.loadsOnly, conf);
      }
      case VpScheme::GabbayRp:
        return std::make_unique<GabbayRegisterPredictor>(
            config.counterBits, config.threshold, config.loadsOnly);
    }
    panic("unknown vp scheme");
}

} // namespace rvp
