/**
 * @file
 * Finite-context-method (FCM) value predictor, order 2 (Sazeides &
 * Smith). Two levels: a PC-indexed value-history table records each
 * static instruction's last `order` committed values; the hashed
 * history (the *context*) indexes a shared value table whose entries
 * store the value that followed that context last time, filtered by a
 * resetting confidence counter. FCM captures arbitrary repeating
 * value sequences (periodic patterns, pointer chains re-walked per
 * outer iteration) that both last-value and stride prediction miss —
 * at the cost of two serial table lookups and by far the most storage
 * in the zoo, which is exactly the trade-off the paper's storageless
 * argument is about.
 *
 * History and value-table updates are commit-delayed like LVP's
 * value file: in-flight instances see the context as of the last
 * commit.
 */

#ifndef RVP_VP_FCM_HH
#define RVP_VP_FCM_HH

#include <deque>
#include <vector>

#include "common/counters.hh"
#include "vp/predictor.hh"

namespace rvp
{

/** Configuration for the FCM predictor. */
struct FcmConfig
{
    /** Level-1 (per-PC value history) entries. */
    unsigned historyEntries = 1024;
    /** Level-2 (hashed context -> value) entries. */
    unsigned valueEntries = 4096;
    /** Context length in values. */
    unsigned order = 2;
    unsigned counterBits = 3;
    unsigned threshold = 7;
    bool loadsOnly = true;
    /** Commit-delay model shared with LvpConfig::updateDelayInsts. */
    unsigned updateDelayInsts = 96;
};

/** Order-N finite-context-method predictor. */
class FcmPredictor : public ValuePredictor
{
  public:
    explicit FcmPredictor(const FcmConfig &config = {});

    VpDecision onInst(const DynInst &inst,
                      const ArchState &pre_state) override;

    /** Predicted values are read from the table: no register wait. */
    bool valueFromBuffer() const override { return true; }

    void exportStats(StatSet &stats) const override;

  private:
    struct History
    {
        /** Most recent last, config order values once filled. */
        std::vector<std::uint64_t> values;
        unsigned filled = 0;
    };

    struct ValueEntry
    {
        std::uint64_t value = 0;
        ResettingCounter counter;

        explicit ValueEntry(unsigned bits = 3, unsigned threshold = 7)
            : counter(bits, threshold)
        {
        }
    };

    /** A committed result waiting to update both levels. */
    struct PendingUpdate
    {
        std::uint64_t seq;
        std::uint64_t pc;
        std::uint64_t value;
    };

    unsigned contextIndex(const History &hist) const;
    void applyUpdate(const PendingUpdate &update);

    FcmConfig config_;
    std::vector<History> historyTable_;
    std::vector<ValueEntry> valueTable_;
    std::deque<PendingUpdate> pending_;
    std::uint64_t coldLookups_ = 0;
};

} // namespace rvp

#endif // RVP_VP_FCM_HH
