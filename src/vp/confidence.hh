/**
 * @file
 * PC-indexed confidence-counter table for value prediction: a
 * direct-mapped array of 3-bit resetting counters with threshold 7
 * (the paper's configuration for both dynamic RVP and the LVP
 * baseline). RVP's table is untagged — the paper shows untagged
 * counters actually outperform tagged ones for RVP because positive
 * interference (two instructions that both exhibit register reuse
 * sharing a counter) is common, unlike for LVP where the stored
 * values would also have to match. A tagged variant exists for the
 * ablation benchmark.
 */

#ifndef RVP_VP_CONFIDENCE_HH
#define RVP_VP_CONFIDENCE_HH

#include <cstdint>
#include <vector>

#include "common/counters.hh"

namespace rvp
{

/** Configuration of a confidence table. */
struct ConfidenceConfig
{
    unsigned entries = 1024;
    unsigned counterBits = 3;
    unsigned threshold = 7;
    bool tagged = false;
};

/**
 * Abort on a non-simulable geometry: a zero-entry table would make
 * every PC index compute `% 0`, and counter widths/thresholds outside
 * the ResettingCounter range would misconfigure every slot. Called by
 * the constructor; exposed so config validation can reject bad
 * experiment configs before any table is built.
 */
void validateConfidenceConfig(const ConfidenceConfig &config);

/** Direct-mapped table of resetting confidence counters. */
class ConfidenceTable
{
  public:
    explicit ConfidenceTable(const ConfidenceConfig &config = {});

    /**
     * Would the table authorize a prediction for pc right now?
     * Tagged tables refuse on a tag mismatch.
     */
    bool confident(std::uint64_t pc) const;

    /**
     * Record the outcome for pc. A tagged table that misses on the
     * tag replaces the entry (new tag, counter reset to zero) and
     * returns without recording the outcome — the outcome belongs to
     * a prediction the new owner never made (replace-then-return,
     * matching LastValuePredictor::applyUpdate).
     */
    void update(std::uint64_t pc, bool correct);

    void reset();
    unsigned entryCount() const { return config_.entries; }
    bool tagged() const { return config_.tagged; }
    /** Tagged-entry takeovers performed by update(). */
    std::uint64_t replacements() const { return replacements_; }

  private:
    unsigned indexOf(std::uint64_t pc) const;

    ConfidenceConfig config_;
    std::vector<ResettingCounter> counters_;
    std::vector<std::uint64_t> tags_;
    std::uint64_t replacements_ = 0;
};

} // namespace rvp

#endif // RVP_VP_CONFIDENCE_HH
