#include "vp/fcm.hh"

#include "common/logging.hh"

namespace rvp
{

FcmPredictor::FcmPredictor(const FcmConfig &config)
    : config_(config),
      historyTable_(config.historyEntries),
      valueTable_(config.valueEntries,
                  ValueEntry(config.counterBits, config.threshold))
{
    RVP_ASSERT(config.historyEntries > 0,
               "fcm history table needs at least one entry");
    RVP_ASSERT(config.valueEntries > 0,
               "fcm value table needs at least one entry");
    RVP_ASSERT(config.order >= 1 && config.order <= 8,
               "fcm order %u outside [1, 8]", config.order);
    for (auto &hist : historyTable_)
        hist.values.assign(config.order, 0);
}

unsigned
FcmPredictor::contextIndex(const History &hist) const
{
    // FNV-1a over the context values, order-sensitive so the
    // sequences (a, b) and (b, a) map to different entries.
    std::uint64_t h = 14695981039346656037ull;
    for (std::uint64_t v : hist.values) {
        for (unsigned byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return static_cast<unsigned>(h % config_.valueEntries);
}

void
FcmPredictor::applyUpdate(const PendingUpdate &update)
{
    History &hist =
        historyTable_[pcIndex(update.pc, config_.historyEntries)];

    // Train the value table at the *old* context first: "after this
    // sequence, that value followed".
    if (hist.filled >= config_.order) {
        ValueEntry &entry = valueTable_[contextIndex(hist)];
        if (entry.value == update.value) {
            entry.counter.recordCorrect();
        } else {
            entry.counter.recordIncorrect();
            entry.value = update.value;
        }
    }

    // Then shift the committed value into the history.
    for (unsigned i = 0; i + 1 < config_.order; ++i)
        hist.values[i] = hist.values[i + 1];
    hist.values[config_.order - 1] = update.value;
    if (hist.filled < config_.order)
        ++hist.filled;
}

VpDecision
FcmPredictor::onInst(const DynInst &inst, const ArchState &)
{
    while (!pending_.empty() &&
           pending_.front().seq + config_.updateDelayInsts <= inst.seq) {
        applyUpdate(pending_.front());
        pending_.pop_front();
    }

    if (inst.dest == regNone)
        return {};
    if (config_.loadsOnly && !inst.isLoad())
        return {};

    const History &hist =
        historyTable_[pcIndex(inst.pc, config_.historyEntries)];

    bool predicted = false;
    bool value_hit = false;
    if (hist.filled >= config_.order) {
        const ValueEntry &entry = valueTable_[contextIndex(hist)];
        predicted = entry.counter.confident();
        value_hit = entry.value == inst.newValue;
    } else {
        ++coldLookups_;
    }

    pending_.push_back({inst.seq, inst.pc, inst.newValue});
    return record(predicted, value_hit);
}

void
FcmPredictor::exportStats(StatSet &stats) const
{
    ValuePredictor::exportStats(stats);
    stats.set("vp.fcm_cold_lookups",
              static_cast<double>(coldLookups_));
}

} // namespace rvp
