/**
 * @file
 * Value-predictor factory: builds a configured predictor from a
 * scheme description. This is the configuration surface the
 * experiment runner and the benchmark harness use.
 */

#ifndef RVP_VP_ORACLE_HH
#define RVP_VP_ORACLE_HH

#include <memory>

#include "vp/lvp.hh"
#include "vp/rvp.hh"

namespace rvp
{

/**
 * Which value-prediction mechanism to simulate. This enum is a thin
 * alias layer over the predictor registry (vp/registry.hh): each
 * enumerator maps to one canonical registry name via
 * registryNameOf(), and makePredictor() builds through the registry
 * factory of that name. Configs, sweep grids, and journal run keys
 * keep speaking the enum; new schemes appear in both places.
 */
enum class VpScheme
{
    None,        ///< no prediction baseline
    Lvp,         ///< buffer-based last-value prediction
    StaticRvp,   ///< opcode-marked loads, always predicted
    DynamicRvp,  ///< PC-indexed confidence counters, no value storage
    GabbayRp,    ///< register-indexed confidence counters (baseline)
    Stride,      ///< tagged stride table + VPQ in-flight instances
    Balcvp,      ///< Bayesian dual-counter last-committed-value
    Fcm,         ///< finite context method, order 2
    Oracle,      ///< perfect prediction upper bound
};

/** Full predictor configuration. */
struct VpConfig
{
    VpScheme scheme = VpScheme::None;
    bool loadsOnly = true;
    unsigned tableEntries = 1024;
    unsigned counterBits = 3;
    unsigned threshold = 7;
    /** Tag the table (LVP default: yes; RVP default: no). */
    bool taggedLvp = true;
    bool taggedRvp = false;
    /**
     * Scheme-specific overrides as a "key=value,key=value" bag (the
     * registry param grammar; empty = factory defaults). Invalid
     * text or keys make makePredictor throw VpConfigError.
     */
    std::string params;
    /** Per-static prediction sources (RVP schemes). */
    std::vector<StaticPredSpec> specs;
};

/**
 * Perfect value prediction: every candidate instruction is predicted
 * and every prediction is architecturally correct, with the value
 * available at rename (buffer semantics). The upper bound any real
 * predictor in the zoo is compared against.
 */
class OraclePredictor : public ValuePredictor
{
  public:
    explicit OraclePredictor(bool loads_only = false)
        : loadsOnly_(loads_only)
    {
    }

    VpDecision onInst(const DynInst &inst,
                      const ArchState &pre_state) override;

    bool valueFromBuffer() const override { return true; }

  private:
    bool loadsOnly_;
};

/**
 * Build a predictor through the registry entry named by
 * config.scheme. prog must outlive the predictor for StaticRvp.
 * Throws VpConfigError when config.params is malformed or uses keys
 * the scheme does not accept.
 */
std::unique_ptr<ValuePredictor>
makePredictor(const VpConfig &config, const Program &prog);

} // namespace rvp

#endif // RVP_VP_ORACLE_HH
