/**
 * @file
 * Value-predictor factory: builds a configured predictor from a
 * scheme description. This is the configuration surface the
 * experiment runner and the benchmark harness use.
 */

#ifndef RVP_VP_ORACLE_HH
#define RVP_VP_ORACLE_HH

#include <memory>

#include "vp/lvp.hh"
#include "vp/rvp.hh"

namespace rvp
{

/** Which value-prediction mechanism to simulate. */
enum class VpScheme
{
    None,        ///< no prediction baseline
    Lvp,         ///< buffer-based last-value prediction
    StaticRvp,   ///< opcode-marked loads, always predicted
    DynamicRvp,  ///< PC-indexed confidence counters, no value storage
    GabbayRp,    ///< register-indexed confidence counters (baseline)
};

/** Full predictor configuration. */
struct VpConfig
{
    VpScheme scheme = VpScheme::None;
    bool loadsOnly = true;
    unsigned tableEntries = 1024;
    unsigned counterBits = 3;
    unsigned threshold = 7;
    /** Tag the table (LVP default: yes; RVP default: no). */
    bool taggedLvp = true;
    bool taggedRvp = false;
    /** Per-static prediction sources (RVP schemes). */
    std::vector<StaticPredSpec> specs;
};

/**
 * Build a predictor. prog must outlive the predictor for StaticRvp.
 */
std::unique_ptr<ValuePredictor>
makePredictor(const VpConfig &config, const Program &prog);

} // namespace rvp

#endif // RVP_VP_ORACLE_HH
