#include "sim/tables.hh"

#include <iomanip>
#include <sstream>

namespace rvp
{

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::percent(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << "%";
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i >= width.size())
                width.resize(i + 1, 0);
            width[i] = std::max(width[i], row[i].size());
        }
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(width[i]) + 2)
               << row[i];
        }
        os << "\n";
    };
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
}

} // namespace rvp
