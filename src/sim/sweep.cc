#include "sim/sweep.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>

#include "common/logging.hh"

namespace rvp
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Memoize build() under key in map: the first requester installs a
 * shared_future and builds outside the lock; later requesters (racing
 * or not) wait on the same future. hit/miss counters are updated
 * under the lock.
 */
template <typename Map, typename Key, typename Build>
std::invoke_result_t<Build>
memoize(std::mutex &mutex, Map &map, const Key &key,
        std::uint64_t &hits, std::uint64_t &misses, Build &&build)
{
    using Ptr = std::invoke_result_t<Build>;
    std::promise<Ptr> promise;
    std::shared_future<Ptr> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = map.find(key);
        if (it == map.end()) {
            future = promise.get_future().share();
            map.emplace(key, future);
            builder = true;
            ++misses;
        } else {
            future = it->second;
            ++hits;
        }
    }
    if (builder) {
        // Propagate a throwing build to every waiter instead of
        // leaving them blocked on a never-satisfied future.
        try {
            promise.set_value(build());
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

} // namespace

const char *
schemeName(VpScheme scheme)
{
    switch (scheme) {
      case VpScheme::None:
        return "none";
      case VpScheme::Lvp:
        return "lvp";
      case VpScheme::StaticRvp:
        return "srvp";
      case VpScheme::DynamicRvp:
        return "drvp";
      case VpScheme::GabbayRp:
        return "grp";
    }
    return "?";
}

const char *
assistName(AssistLevel level)
{
    switch (level) {
      case AssistLevel::Same:
        return "same";
      case AssistLevel::Dead:
        return "dead";
      case AssistLevel::Live:
        return "live";
      case AssistLevel::DeadLv:
        return "dead_lv";
      case AssistLevel::LiveLv:
        return "live_lv";
      case AssistLevel::DeadLvStride:
        return "dead_lv_stride";
    }
    return "?";
}

std::string
describeConfig(const ExperimentConfig &config)
{
    std::string s = config.workload;
    s += '/';
    s += schemeName(config.scheme);
    if (config.scheme == VpScheme::StaticRvp ||
        config.scheme == VpScheme::DynamicRvp) {
        s += '-';
        s += assistName(config.assist);
    }
    if (config.realisticRealloc)
        s += "-realloc";
    if (config.taggedRvp)
        s += "-tagged";
    s += config.loadsOnly ? "-loads" : "-all";
    return s;
}

std::shared_ptr<const CompiledWorkload>
WorkloadCache::compiled(const std::string &workload, InputSet input)
{
    CompileKey key{workload, static_cast<int>(input)};
    return memoize(mutex_, compiled_, key, stats_.compileHits,
                   stats_.compileMisses, [&]() -> CompiledPtr {
                       return std::make_shared<const CompiledWorkload>(
                           compileWorkload(workload, input));
                   });
}

std::shared_ptr<const ProfileRun>
WorkloadCache::profiled(const std::string &workload, InputSet input,
                        std::uint64_t insts)
{
    // Resolve the compiled binary first so the profile build itself
    // (outside the lock) never recursively takes the cache mutex.
    CompiledPtr c = compiled(workload, input);
    ProfileKey key{workload, static_cast<int>(input), insts};
    return memoize(mutex_, profiled_, key, stats_.profileHits,
                   stats_.profileMisses, [&]() -> ProfilePtr {
                       return std::make_shared<const ProfileRun>(
                           profileCompiled(*c, insts));
                   });
}

WorkloadCache::StreamPtr
WorkloadCache::stream(const StreamKey &key, std::uint64_t minInsts,
                      const std::function<StreamPtr(std::uint64_t)> &build)
{
    if (streamBudget_ == 0)
        return nullptr;
    // The loop re-enters when a shared build resolves to a stream
    // truncated below this caller's bound (a smaller-budget run built
    // it first): the entry is then replaced and rebuilt at ours.
    for (;;) {
        std::promise<StreamPtr> promise;
        std::shared_future<StreamPtr> future;
        bool builder = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = streams_.find(key);
            bool rebuild = it != streams_.end() && it->second.resolved &&
                           it->second.future.get() &&
                           !it->second.future.get()->covers(minInsts);
            if (it == streams_.end() || rebuild) {
                if (rebuild) {
                    // A capture truncated below this run's bound is
                    // useless to it — replace, don't count an evict.
                    stats_.streamBytesResident -= it->second.bytes;
                    streams_.erase(it);
                }
                future = promise.get_future().share();
                StreamEntry entry;
                entry.future = future;
                streams_.emplace(key, std::move(entry));
                ++stats_.streamMisses;
                builder = true;
            } else {
                StreamEntry &entry = it->second;
                if (entry.resolved) {
                    entry.lastUse = ++streamStamp_;
                    if (!entry.future.get()) {
                        // Negative entry: too big for the budget.
                        ++stats_.streamMisses;
                        return nullptr;
                    }
                    ++stats_.streamHits;
                    return entry.future.get();
                }
                future = entry.future;   // share the in-flight build
                ++stats_.streamHits;
            }
        }
        if (builder) {
            StreamPtr built;
            try {
                built = build(streamBudget_);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    streams_.erase(key);
                }
                promise.set_exception(std::current_exception());
                throw;
            }
            promise.set_value(built);
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = streams_.find(key);
            if (it != streams_.end()) {
                StreamEntry &entry = it->second;
                entry.resolved = true;
                entry.lastUse = ++streamStamp_;
                if (built) {
                    entry.bytes = built->encodedBytes();
                    entry.insts = built->instCount();
                    stats_.streamBytesResident += entry.bytes;
                    stats_.streamBytesBuilt += entry.bytes;
                    stats_.streamInstsBuilt += entry.insts;
                    evictStreamsOverBudget(key);
                }
            }
            return built;
        }
        StreamPtr got = future.get();
        if (!got)
            return nullptr;
        if (got->covers(minInsts))
            return got;
    }
}

void
WorkloadCache::evictStreamsOverBudget(const StreamKey &keep)
{
    while (stats_.streamBytesResident > streamBudget_) {
        auto victim = streams_.end();
        for (auto it = streams_.begin(); it != streams_.end(); ++it) {
            if (!it->second.resolved || !it->second.future.get() ||
                it->first == keep) {
                continue;   // pending, negative, or the new arrival
            }
            if (victim == streams_.end() ||
                it->second.lastUse < victim->second.lastUse) {
                victim = it;
            }
        }
        if (victim == streams_.end())
            break;   // nothing evictable (the new stream alone fits)
        stats_.streamBytesResident -= victim->second.bytes;
        ++stats_.streamEvicted;
        streams_.erase(victim);
    }
}

WorkloadCacheStats
WorkloadCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

unsigned
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
parallelFor(std::size_t count, unsigned jobs,
            const std::function<void(std::size_t)> &body)
{
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            body(i);
        }
    };
    std::vector<std::thread> pool;
    unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(jobs, count));
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
}

std::vector<ExperimentResult>
runSweep(const std::vector<ExperimentConfig> &configs,
         const SweepOptions &options, SweepReport *report)
{
    unsigned jobs = options.jobs ? options.jobs : defaultJobs();

    // Fail fast on a bad grid before spending any cycles on it.
    for (const ExperimentConfig &config : configs)
        validateExperimentConfig(config);

    std::vector<ExperimentResult> results(configs.size());
    std::vector<double> run_seconds(configs.size(), 0.0);
    WorkloadCache cache(options.streamCapture ? options.streamCacheBytes
                                              : 0);
    std::atomic<std::size_t> completed{0};
    std::mutex progress_mutex;
    auto sweep_start = std::chrono::steady_clock::now();

    parallelFor(configs.size(), jobs, [&](std::size_t i) {
        auto run_start = std::chrono::steady_clock::now();
        // parallelFor bodies must not throw (an escaping exception
        // would std::terminate the worker thread and take the whole
        // sweep down), so contain failures here: the run is recorded
        // as failed and every other run proceeds.
        try {
            results[i] = options.runFn
                             ? options.runFn(configs[i], cache)
                             : runExperiment(configs[i], &cache);
        } catch (const std::exception &e) {
            results[i] = ExperimentResult{};
            results[i].failed = true;
            results[i].error = e.what();
        } catch (...) {
            results[i] = ExperimentResult{};
            results[i].failed = true;
            results[i].error = "unknown exception";
        }
        run_seconds[i] = secondsSince(run_start);
        std::size_t done = completed.fetch_add(1) + 1;
        if (options.progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            if (results[i].failed)
                std::fprintf(stderr, "  [%zu/%zu] %s: FAILED: %s\n",
                             done, configs.size(),
                             describeConfig(configs[i]).c_str(),
                             results[i].error.c_str());
            else
                std::fprintf(stderr,
                             "  [%zu/%zu] %s: ipc %.3f (%.2fs)\n",
                             done, configs.size(),
                             describeConfig(configs[i]).c_str(),
                             results[i].ipc, run_seconds[i]);
        }
    });

    if (report) {
        report->wallSeconds = secondsSince(sweep_start);
        report->runSeconds = std::move(run_seconds);
        report->jobs = jobs;
        report->cache = cache.stats();
    }
    return results;
}

} // namespace rvp
