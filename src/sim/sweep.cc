#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <optional>
#include <thread>

#include "common/logging.hh"
#include "sim/batchrun.hh"

namespace rvp
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * Memoize build() under key in map: the first requester installs a
 * shared_future and builds outside the lock; later requesters (racing
 * or not) wait on the same future. hit/miss counters are updated
 * under the lock. A build that throws is evicted from the map before
 * the exception is published, so the failure reaches exactly the
 * requesters that shared this build — a later request (e.g. a retry
 * with a fresh deadline) rebuilds instead of inheriting a poisoned
 * entry for the rest of the sweep.
 */
template <typename Map, typename Key, typename Build>
std::invoke_result_t<Build>
memoize(std::mutex &mutex, Map &map, const Key &key,
        std::uint64_t &hits, std::uint64_t &misses, Build &&build)
{
    using Ptr = std::invoke_result_t<Build>;
    std::promise<Ptr> promise;
    std::shared_future<Ptr> future;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = map.find(key);
        if (it == map.end()) {
            future = promise.get_future().share();
            map.emplace(key, future);
            builder = true;
            ++misses;
        } else {
            future = it->second;
            ++hits;
        }
    }
    if (builder) {
        // Propagate a throwing build to every waiter instead of
        // leaving them blocked on a never-satisfied future.
        try {
            promise.set_value(build());
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(mutex);
                map.erase(key);
            }
            promise.set_exception(std::current_exception());
        }
    }
    return future.get();
}

} // namespace

const char *
schemeName(VpScheme scheme)
{
    switch (scheme) {
      case VpScheme::None:
        return "none";
      case VpScheme::Lvp:
        return "lvp";
      case VpScheme::StaticRvp:
        return "srvp";
      case VpScheme::DynamicRvp:
        return "drvp";
      case VpScheme::GabbayRp:
        return "grp";
      case VpScheme::Stride:
        return "stride";
      case VpScheme::Balcvp:
        return "balcvp";
      case VpScheme::Fcm:
        return "fcm";
      case VpScheme::Oracle:
        return "oracle";
    }
    return "?";
}

const char *
assistName(AssistLevel level)
{
    switch (level) {
      case AssistLevel::Same:
        return "same";
      case AssistLevel::Dead:
        return "dead";
      case AssistLevel::Live:
        return "live";
      case AssistLevel::DeadLv:
        return "dead_lv";
      case AssistLevel::LiveLv:
        return "live_lv";
      case AssistLevel::DeadLvStride:
        return "dead_lv_stride";
    }
    return "?";
}

std::string
describeConfig(const ExperimentConfig &config)
{
    std::string s = config.workload;
    s += '/';
    s += schemeName(config.scheme);
    if (config.scheme == VpScheme::StaticRvp ||
        config.scheme == VpScheme::DynamicRvp) {
        s += '-';
        s += assistName(config.assist);
    }
    if (config.realisticRealloc)
        s += "-realloc";
    if (config.taggedRvp)
        s += "-tagged";
    s += config.loadsOnly ? "-loads" : "-all";
    return s;
}

std::shared_ptr<const CompiledWorkload>
WorkloadCache::compiled(const std::string &workload, InputSet input,
                        const RunDeadline *deadline)
{
    CompileKey key{workload, static_cast<int>(input)};
    return memoize(mutex_, compiled_, key, stats_.compileHits,
                   stats_.compileMisses, [&]() -> CompiledPtr {
                       return std::make_shared<const CompiledWorkload>(
                           compileWorkload(workload, input, deadline));
                   });
}

std::shared_ptr<const ProfileRun>
WorkloadCache::profiled(const std::string &workload, InputSet input,
                        std::uint64_t insts, const RunDeadline *deadline)
{
    // Resolve the compiled binary first so the profile build itself
    // (outside the lock) never recursively takes the cache mutex.
    CompiledPtr c = compiled(workload, input, deadline);
    ProfileKey key{workload, static_cast<int>(input), insts};
    return memoize(mutex_, profiled_, key, stats_.profileHits,
                   stats_.profileMisses, [&]() -> ProfilePtr {
                       return std::make_shared<const ProfileRun>(
                           profileCompiled(*c, insts, deadline));
                   });
}

WorkloadCache::StreamPtr
WorkloadCache::stream(const StreamKey &key, std::uint64_t minInsts,
                      const std::function<StreamPtr(std::uint64_t)> &build)
{
    std::uint64_t budget = streamBudget_.load(std::memory_order_relaxed);
    if (budget == 0)
        return nullptr;
    // The loop re-enters when a shared build resolves to a stream
    // truncated below this caller's bound (a smaller-budget run built
    // it first): the entry is then replaced and rebuilt at ours.
    for (;;) {
        std::promise<StreamPtr> promise;
        std::shared_future<StreamPtr> future;
        bool builder = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = streams_.find(key);
            bool rebuild = it != streams_.end() && it->second.resolved &&
                           it->second.future.get() &&
                           !it->second.future.get()->covers(minInsts);
            if (it == streams_.end() || rebuild) {
                if (rebuild) {
                    // A capture truncated below this run's bound is
                    // useless to it — replace, don't count an evict.
                    stats_.streamBytesResident -= it->second.bytes;
                    streams_.erase(it);
                }
                future = promise.get_future().share();
                StreamEntry entry;
                entry.future = future;
                streams_.emplace(key, std::move(entry));
                ++stats_.streamMisses;
                builder = true;
            } else {
                StreamEntry &entry = it->second;
                if (entry.resolved) {
                    entry.lastUse = ++streamStamp_;
                    if (!entry.future.get()) {
                        // Negative entry: too big for the budget.
                        ++stats_.streamMisses;
                        return nullptr;
                    }
                    ++stats_.streamHits;
                    return entry.future.get();
                }
                future = entry.future;   // share the in-flight build
                ++stats_.streamHits;
            }
        }
        if (builder) {
            StreamPtr built;
            try {
                built = build(budget);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    streams_.erase(key);
                }
                promise.set_exception(std::current_exception());
                throw;
            }
            promise.set_value(built);
            std::lock_guard<std::mutex> lock(mutex_);
            auto it = streams_.find(key);
            if (it != streams_.end()) {
                StreamEntry &entry = it->second;
                entry.resolved = true;
                entry.lastUse = ++streamStamp_;
                if (built) {
                    entry.bytes = built->encodedBytes();
                    entry.insts = built->instCount();
                    stats_.streamBytesResident += entry.bytes;
                    stats_.streamBytesBuilt += entry.bytes;
                    stats_.streamInstsBuilt += entry.insts;
                    evictStreamsOverBudget(key);
                }
            }
            return built;
        }
        StreamPtr got = future.get();
        if (!got)
            return nullptr;
        if (got->covers(minInsts))
            return got;
    }
}

void
WorkloadCache::evictStreamsOverBudget(const StreamKey &keep)
{
    while (stats_.streamBytesResident > streamBudget_) {
        auto victim = streams_.end();
        for (auto it = streams_.begin(); it != streams_.end(); ++it) {
            if (!it->second.resolved || !it->second.future.get() ||
                it->first == keep) {
                continue;   // pending, negative, or the new arrival
            }
            if (victim == streams_.end() ||
                it->second.lastUse < victim->second.lastUse) {
                victim = it;
            }
        }
        if (victim == streams_.end())
            break;   // nothing evictable (the new stream alone fits)
        stats_.streamBytesResident -= victim->second.bytes;
        ++stats_.streamEvicted;
        streams_.erase(victim);
    }
}

void
WorkloadCache::noteCaptureOom(const StreamKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = streams_.find(key);
    if (it != streams_.end()) {
        if (it->second.resolved)
            stats_.streamBytesResident -= it->second.bytes;
        streams_.erase(it);
    }
    // Pin the key to live emulation: a resolved-null (negative) entry.
    std::promise<StreamPtr> promise;
    StreamEntry entry;
    entry.future = promise.get_future().share();
    entry.resolved = true;
    entry.lastUse = ++streamStamp_;
    promise.set_value(nullptr);
    streams_.insert_or_assign(key, std::move(entry));
    streamBudget_.store(streamBudget_.load(std::memory_order_relaxed) / 2,
                        std::memory_order_relaxed);
    ++stats_.streamCaptureOoms;
}

void
WorkloadCache::noteStreamIntegrityFailure(const StreamKey &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = streams_.find(key);
    if (it != streams_.end() && it->second.resolved) {
        stats_.streamBytesResident -= it->second.bytes;
        streams_.erase(it);
    }
    ++stats_.streamIntegrityFailures;
}

WorkloadCacheStats
WorkloadCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

unsigned
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
parallelFor(std::size_t count, unsigned jobs,
            const std::function<void(std::size_t)> &body)
{
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            body(i);
        }
    };
    std::vector<std::thread> pool;
    unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(jobs, count));
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
}

KipsSummary
summarizeKips(const std::vector<ExperimentResult> &results)
{
    KipsSummary s;
    for (const ExperimentResult &r : results) {
        if (r.failed)
            continue;
        if (!s.any || r.kips < s.minKips)
            s.minKips = r.kips;
        if (!s.any || r.kips > s.maxKips)
            s.maxKips = r.kips;
        s.any = true;
    }
    return s;
}

std::vector<ExperimentResult>
runSweep(const std::vector<ExperimentConfig> &configs,
         const SweepOptions &options, SweepReport *report)
{
    unsigned jobs = options.jobs ? options.jobs : defaultJobs();

    // Fail fast on a bad grid before spending any cycles on it.
    for (const ExperimentConfig &config : configs)
        validateExperimentConfig(config);

    std::vector<ExperimentResult> results(configs.size());
    std::vector<double> run_seconds(configs.size(), 0.0);
    WorkloadCache local_cache(options.streamCapture
                                  ? options.streamCacheBytes
                                  : 0);
    WorkloadCache &cache =
        options.sharedCache ? *options.sharedCache : local_cache;
    std::atomic<std::size_t> completed{0};
    std::atomic<std::uint64_t> batch_groups{0};
    std::atomic<std::uint64_t> batched_runs{0};
    std::atomic<std::uint64_t> batch_fallouts{0};
    std::mutex progress_mutex;
    auto sweep_start = std::chrono::steady_clock::now();

    // ---- per-run bookkeeping shared by the solo and batched paths --

    auto finishRun = [&](std::size_t i) {
        if (options.onRunRecord)
            options.onRunRecord(configs[i], i, results[i], run_seconds[i]);
        if (options.onRunComplete)
            options.onRunComplete(i, results[i], run_seconds[i]);
        std::size_t done = completed.fetch_add(1) + 1;
        if (options.progress) {
            std::lock_guard<std::mutex> lock(progress_mutex);
            if (results[i].failed)
                std::fprintf(stderr, "  [%zu/%zu] %s: FAILED: %s\n",
                             done, configs.size(),
                             describeConfig(configs[i]).c_str(),
                             results[i].error.c_str());
            else
                std::fprintf(stderr,
                             "  [%zu/%zu] %s: ipc %.3f (%.2fs)%s\n",
                             done, configs.size(),
                             describeConfig(configs[i]).c_str(),
                             results[i].ipc, run_seconds[i],
                             results[i].degraded ? " [degraded]" : "");
        }
    };

    auto retryNotice = [&](std::size_t i, unsigned attempt) {
        if (!options.progress)
            return;
        std::lock_guard<std::mutex> lock(progress_mutex);
        std::fprintf(stderr,
                     "  %s: attempt %u failed (%s); retrying "
                     "degraded\n",
                     describeConfig(configs[i]).c_str(), attempt + 1,
                     results[i].error.c_str());
    };

    // Bounded backoff: doubled per attempt, capped at 1s.
    auto backoffSleep = [&](unsigned attempt) {
        double backoff = options.retryBackoff;
        for (unsigned b = 0; b < attempt; ++b)
            backoff *= 2.0;
        backoff = std::min(backoff, 1.0);
        if (backoff > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff));
        }
    };

    // One run's contained attempt loop, entered at first_attempt.
    // Precondition for first_attempt > 0 (a batch fall-out): the
    // caller stored the failed attempt in results[i], printed the
    // retry notice, and slept the backoff. Bodies must not throw
    // (parallelFor), so every attempt is caught here; if the last
    // allowed attempt fails the run is recorded as failed while every
    // other run proceeds.
    auto runAttempts = [&](std::size_t i, unsigned first_attempt) {
        for (unsigned attempt = first_attempt;; ++attempt) {
            bool degraded = attempt > 0;
            RunContext context;
            context.cache = &cache;
            context.runIndex = i;
            context.attempt = attempt;
            context.bypassStream = degraded;
            // Each attempt gets a fresh wall-clock budget; the null
            // fast path (runDeadline == 0) never reads the clock.
            std::optional<RunDeadline> deadline;
            if (options.runDeadline > 0.0) {
                deadline.emplace(options.runDeadline);
                context.deadline = &*deadline;
            }
            ExperimentConfig config = configs[i];
            if (degraded) {
                // Degraded profile: live emulation only, no tracing,
                // no histograms. Keeps the retry's peak memory and
                // failure surface minimal; the headline stats are
                // unaffected (tracing/hist are observers).
                config.traceOut.clear();
                config.core.collectHist = false;
            }
            try {
                if (options.onAttemptStart)
                    options.onAttemptStart(config, context);
                results[i] = options.runFn
                                 ? options.runFn(config, cache, context)
                                 : runExperiment(config, context);
                results[i].retries = attempt;
                results[i].degraded = degraded;
                break;
            } catch (const std::exception &e) {
                results[i] = ExperimentResult{};
                results[i].failed = true;
                results[i].error = e.what();
            } catch (...) {
                results[i] = ExperimentResult{};
                results[i].failed = true;
                results[i].error = "unknown exception";
            }
            results[i].retries = attempt;
            results[i].degraded = degraded;
            if (attempt >= options.maxRetries)
                break;
            retryNotice(i, attempt);
            backoffSleep(attempt);
        }
    };

    auto runSolo = [&](std::size_t i) {
        auto run_start = std::chrono::steady_clock::now();
        runAttempts(i, 0);
        run_seconds[i] = secondsSince(run_start);
        finishRun(i);
    };

    // ---- scheduling: group by stream key when batching applies ----
    //
    // Batching needs the real run body (the batch IS the run) and a
    // stream cache to share, so a custom runFn or disabled capture
    // falls back to per-run scheduling. Grouping uses the presumed
    // key (reallocFailed=false — cheap, no compilation); a member
    // whose actual key diverges at prepare falls out to a solo run.
    bool batching = options.batchReplay && options.streamCapture &&
                    !options.runFn;
    std::vector<std::vector<std::size_t>> groups;
    if (batching) {
        std::map<StreamKey, std::size_t> by_key;
        std::vector<std::vector<std::size_t>> whole;
        for (std::size_t i = 0; i < configs.size(); ++i) {
            auto [it, inserted] =
                by_key.try_emplace(streamKeyFor(configs[i], false),
                                   whole.size());
            if (inserted)
                whole.emplace_back();
            whole[it->second].push_back(i);
        }
        // Chunk oversized groups so one giant group cannot serialize
        // the tail of the sweep across jobs. Bit-identical: members
        // of a batch never interact, and each chunk replays the same
        // cached stream the whole group would have.
        for (std::vector<std::size_t> &group : whole) {
            std::size_t chunk = options.maxBatchGroupRuns == 0
                                    ? group.size()
                                    : options.maxBatchGroupRuns;
            for (std::size_t at = 0; at < group.size(); at += chunk) {
                std::size_t n = std::min(chunk, group.size() - at);
                groups.emplace_back(group.begin() + at,
                                    group.begin() + at + n);
            }
        }
    } else {
        groups.resize(configs.size());
        for (std::size_t i = 0; i < configs.size(); ++i)
            groups[i].push_back(i);
    }

    parallelFor(groups.size(), jobs, [&](std::size_t gi) {
        const std::vector<std::size_t> &group = groups[gi];
        if (group.size() <= 1) {
            for (std::size_t i : group)
                runSolo(i);
            return;
        }
        auto group_start = std::chrono::steady_clock::now();
        batch_groups.fetch_add(1, std::memory_order_relaxed);
        std::vector<ExperimentConfig> group_configs;
        group_configs.reserve(group.size());
        for (std::size_t i : group)
            group_configs.push_back(configs[i]);
        BatchRunOptions bopts;
        bopts.runDeadline = options.runDeadline;
        bopts.onAttemptStart = options.onAttemptStart;
        std::vector<BatchMemberOutcome> outcomes = runBatchedGroup(
            group_configs, group, streamKeyFor(configs[group[0]], false),
            cache, bopts);
        for (std::size_t j = 0; j < group.size(); ++j) {
            std::size_t i = group[j];
            BatchMemberOutcome &o = outcomes[j];
            if (!o.ran) {
                // No batched stream for this member: solo, attempt 0
                // (the same live fallback the solo path would take).
                runSolo(i);
                continue;
            }
            results[i] = std::move(o.result);
            results[i].retries = 0;
            results[i].degraded = false;
            if (!results[i].failed) {
                batched_runs.fetch_add(1, std::memory_order_relaxed);
                run_seconds[i] = secondsSince(group_start);
                finishRun(i);
                continue;
            }
            // Fell out of the batch with attempt 0 consumed: retry
            // solo under the degraded profile (or keep the recorded
            // failure when retries are disabled).
            batch_fallouts.fetch_add(1, std::memory_order_relaxed);
            if (options.maxRetries > 0) {
                retryNotice(i, 0);
                backoffSleep(0);
                runAttempts(i, 1);
            }
            run_seconds[i] = secondsSince(group_start);
            finishRun(i);
        }
    });

    if (report) {
        report->wallSeconds = secondsSince(sweep_start);
        report->runSeconds = std::move(run_seconds);
        report->jobs = jobs;
        report->cache = cache.stats();
        report->batchGroups =
            batch_groups.load(std::memory_order_relaxed);
        report->batchedRuns =
            batched_runs.load(std::memory_order_relaxed);
        report->batchFallouts =
            batch_fallouts.load(std::memory_order_relaxed);
    }
    return results;
}

} // namespace rvp
