#include "sim/journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/framing.hh"
#include "common/jsonlite.hh"
#include "common/logging.hh"

namespace rvp
{

std::uint64_t
fnv1a(std::string_view bytes, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ull;
    }
    // Field separator so concatenated fields cannot alias ("ab"+"c"
    // vs "a"+"bc" hash differently when chained).
    h ^= 0xff;
    h *= 1099511628211ull;
    return h;
}

std::string
hashHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
jsonNum(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

// ---------------------------------------------------------------------
// Atomic file replacement
// ---------------------------------------------------------------------

bool
fsyncParentDir(const std::string &path)
{
    std::string dir = ".";
    if (std::size_t slash = path.rfind('/'); slash != std::string::npos)
        dir = slash == 0 ? "/" : path.substr(0, slash);
    int dirfd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd < 0)
        return false;
    bool ok = fsync(dirfd) == 0;
    close(dirfd);
    return ok;
}

bool
writeFileAtomic(const std::string &path, const std::string &contents)
{
    std::string tmp = path + ".tmp.XXXXXX";
    std::vector<char> tmpl(tmp.begin(), tmp.end());
    tmpl.push_back('\0');
    int fd = mkstemp(tmpl.data());
    if (fd < 0)
        return false;
    tmp.assign(tmpl.data());

    if (!writeAll(fd, contents.data(), contents.size())) {
        close(fd);
        unlink(tmp.c_str());
        return false;
    }
    if (fsync(fd) != 0 || close(fd) != 0) {
        unlink(tmp.c_str());
        return false;
    }
    if (rename(tmp.c_str(), path.c_str()) != 0) {
        unlink(tmp.c_str());
        return false;
    }
    // The rename is only durable once the parent directory's entry is
    // on disk: without this fsync a crash right after return could
    // roll the path back to the OLD file even though the caller was
    // promised the new contents.
    return fsyncParentDir(path);
}

bool
appendLineAtomic(const std::string &path, const std::string &line)
{
    std::string existing;
    {
        std::ifstream is(path, std::ios::binary);
        if (is) {
            std::ostringstream ss;
            ss << is.rdbuf();
            existing = ss.str();
        }
    }
    existing += line;
    if (existing.empty() || existing.back() != '\n')
        existing += '\n';
    return writeFileAtomic(path, existing);
}

// ---------------------------------------------------------------------
// Journal append side
// ---------------------------------------------------------------------

RunJournal::RunJournal(const std::string &path) : path_(path)
{
    struct stat st;
    bool existed = stat(path.c_str(), &st) == 0;
    fd_ = open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ < 0) {
        warn("cannot open run journal '%s': %s", path.c_str(),
             std::strerror(errno));
        return;
    }
    // A freshly created journal needs its directory entry on disk
    // before the first fsync'd append can be called durable — the
    // same guarantee writeFileAtomic makes for renames.
    if (!existed && !fsyncParentDir(path))
        warn("cannot fsync journal directory for '%s': %s", path.c_str(),
             std::strerror(errno));
}

RunJournal::~RunJournal()
{
    if (fd_ >= 0)
        close(fd_);
}

void
RunJournal::writeLine(const std::string &line)
{
    if (fd_ < 0)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    std::string buf = line;
    buf += '\n';
    if (!writeAll(fd_, buf.data(), buf.size())) {
        warn("run journal write failed: %s", std::strerror(errno));
        return;
    }
    // The fsync is the crash-safety contract: once append() returns,
    // the record survives a SIGKILL of this process.
    if (fsync(fd_) != 0)
        warn("run journal fsync failed: %s", std::strerror(errno));
}

void
RunJournal::appendSweepHeader(const std::string &sweepHash)
{
    writeLine("{\"type\": \"sweep\", \"version\": 1, \"sweep_hash\": \"" +
              jsonEscape(sweepHash) + "\"}");
}

std::string
encodeJournalRecord(const JournalRecord &rec)
{
    const ExperimentResult &r = rec.result;
    std::ostringstream os;
    os << "{\"type\": \"run\", \"key\": \"" << jsonEscape(rec.key)
       << "\", \"figure\": \"" << jsonEscape(rec.figure)
       << "\", \"variant\": \"" << jsonEscape(rec.variant)
       << "\", \"workload\": \"" << jsonEscape(rec.workload)
       << "\", \"run_seconds\": " << jsonNum(rec.runSeconds)
       << ", \"ipc\": " << jsonNum(r.ipc)
       << ", \"cycles\": " << r.cycles
       << ", \"committed\": " << r.committed
       << ", \"predicted_frac\": " << jsonNum(r.predictedFrac)
       << ", \"accuracy\": " << jsonNum(r.accuracy)
       << ", \"realloc_failed\": " << (r.reallocFailed ? "true" : "false")
       << ", \"host_seconds\": " << jsonNum(r.hostSeconds)
       << ", \"kips\": " << jsonNum(r.kips)
       << ", \"failed\": " << (r.failed ? "true" : "false")
       << ", \"error\": \"" << jsonEscape(r.error) << "\""
       << ", \"retries\": " << r.retries
       << ", \"degraded\": " << (r.degraded ? "true" : "false")
       << ", \"stats\": {";
    bool first = true;
    for (const auto &[name, value] : r.stats.values()) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << jsonEscape(name) << "\": " << jsonNum(value);
    }
    os << "}}";
    return os.str();
}

namespace
{

/** Field extraction shared by load() and parseJournalRunLine(); the
 *  caller has already checked type == "run". Throws on any missing or
 *  mistyped field (jsonField's contract). */
JournalRecord
recordFromJson(const std::map<std::string, JsonValue> &obj)
{
    JournalRecord rec;
    rec.key = jsonField(obj, "key").str;
    rec.figure = jsonField(obj, "figure").str;
    rec.variant = jsonField(obj, "variant").str;
    rec.workload = jsonField(obj, "workload").str;
    rec.runSeconds = jsonField(obj, "run_seconds").num();
    ExperimentResult &r = rec.result;
    r.ipc = jsonField(obj, "ipc").num();
    r.cycles = jsonField(obj, "cycles").u64();
    r.committed = jsonField(obj, "committed").u64();
    r.predictedFrac = jsonField(obj, "predicted_frac").num();
    r.accuracy = jsonField(obj, "accuracy").num();
    r.reallocFailed = jsonField(obj, "realloc_failed").boolean;
    r.hostSeconds = jsonField(obj, "host_seconds").num();
    r.kips = jsonField(obj, "kips").num();
    r.failed = jsonField(obj, "failed").boolean;
    r.error = jsonField(obj, "error").str;
    r.retries = static_cast<unsigned>(jsonField(obj, "retries").u64());
    r.degraded = jsonField(obj, "degraded").boolean;
    for (const auto &[name, value] : jsonField(obj, "stats").obj)
        r.stats.set(name, value.num());
    return rec;
}

} // namespace

std::optional<JournalRecord>
parseJournalRunLine(const std::string &line)
{
    try {
        std::map<std::string, JsonValue> obj = parseJsonLine(line);
        if (jsonField(obj, "type").str != "run")
            return std::nullopt;
        return recordFromJson(obj);
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

void
RunJournal::append(const JournalRecord &rec)
{
    writeLine(encodeJournalRecord(rec));
}

// ---------------------------------------------------------------------
// Journal load side: lines are parsed with the shared single-line JSON
// parser (common/jsonlite.hh), which throws on any deviation — a torn
// line from a killed writer, hand-edited garbage — and load() skips
// the line rather than aborting the resume.
// ---------------------------------------------------------------------

RunJournal::Loaded
RunJournal::load(const std::string &path)
{
    Loaded out;
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return out;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        try {
            std::map<std::string, JsonValue> obj = parseJsonLine(line);
            const std::string &type = jsonField(obj, "type").str;
            if (type == "sweep") {
                out.sweepHash = jsonField(obj, "sweep_hash").str;
                continue;
            }
            if (type != "run")
                throw std::runtime_error("unknown record type");
            JournalRecord rec = recordFromJson(obj);
            out.runs.insert_or_assign(rec.key, std::move(rec));
        } catch (const std::exception &) {
            ++out.skippedLines;
        }
    }
    return out;
}

} // namespace rvp
