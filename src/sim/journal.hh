/**
 * @file
 * Crash-safe run journal for sweeps. Every finished run (success or
 * recorded failure) is appended to a side file as one JSONL record,
 * flushed and fsync'd before the scheduler moves on, keyed by an
 * FNV-1a hash of the run's identity. A killed sweep therefore loses at
 * most the runs that were in flight: `sweep_all --resume` loads the
 * journal, skips every run journaled as successful, re-runs the rest,
 * and assembles a final output bit-identical to an uninterrupted sweep
 * (host-timing fields are carried in the journal so even they survive).
 *
 * Durability recipe:
 *  - journal appends: O_APPEND write of one full line + fsync, so a
 *    crash can tear at most the final line, and load() skips torn or
 *    corrupt lines instead of failing;
 *  - final artifacts (results JSON, bench rows): write-temp-then-
 *    rename(2) in the target directory (writeFileAtomic), so readers
 *    never observe a partial file.
 */

#ifndef RVP_SIM_JOURNAL_HH
#define RVP_SIM_JOURNAL_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "sim/runner.hh"

namespace rvp
{

/** FNV-1a over a byte string; `seed` chains multi-field hashes. */
std::uint64_t fnv1a(std::string_view bytes,
                    std::uint64_t seed = 1469598103934665603ull);

/** Lower-case 16-digit hex of a 64-bit hash (stable key format). */
std::string hashHex(std::uint64_t h);

/** JSON string-escape (quotes and backslashes; the only characters
 *  our serialized fields can contain that need it). */
std::string jsonEscape(const std::string &s);

/** Shortest round-trip double formatting (%.17g): parsing the result
 *  with strtod yields the identical bit pattern. */
std::string jsonNum(double value);

/**
 * fsync the directory containing path (the path's parent, or "." when
 * path has no slash). Needed after creating or renaming a directory
 * entry: fsync of the file itself covers only the inode, not the
 * directory that names it, so without this a crash can forget the
 * file ever existed. Returns false on any error.
 */
bool fsyncParentDir(const std::string &path);

/**
 * Write contents to path atomically: a temp file beside the target is
 * written, flushed, fsync'd, and rename(2)'d over path. Returns false
 * (with the temp file cleaned up) on any I/O error.
 */
bool writeFileAtomic(const std::string &path, const std::string &contents);

/**
 * Append one line to path through the same atomic path: the existing
 * contents plus the new line are written to a temp file and renamed
 * over the original, so a crash can never leave a torn trailing row.
 * Used for the append-only bench trail (BENCH_perf.json).
 */
bool appendLineAtomic(const std::string &path, const std::string &line);

/** One journaled run: identity key plus everything the final report
 *  needs to reprint the run without re-executing it. */
struct JournalRecord
{
    std::string key;        ///< hashHex of the run identity
    std::string figure;     ///< human context (not used for matching)
    std::string variant;
    std::string workload;
    double runSeconds = 0.0;
    ExperimentResult result;   ///< stats map included, bit-exact
};

/**
 * Serialize one record to its canonical journal line (no trailing
 * newline). This is THE byte format: RunJournal::append writes it,
 * the sweep-service result store persists it verbatim, and service
 * clients receive the stored bytes unchanged — so "byte-identical
 * across a daemon restart" is a property of the store, not of
 * re-serialization.
 */
std::string encodeJournalRecord(const JournalRecord &rec);

/**
 * Parse one line as a `type:"run"` journal record. Returns nullopt on
 * anything else — torn trailing lines, corruption, header lines —
 * mirroring RunJournal::load's skip-don't-abort contract.
 */
std::optional<JournalRecord> parseJournalRunLine(const std::string &line);

/**
 * Append-side journal handle. Thread safe: append() serializes under
 * an internal mutex, and each record is one write(2) of a full line
 * followed by fsync(2), so concurrent sweep workers cannot interleave
 * bytes and a SIGKILL can tear at most the line in flight.
 */
class RunJournal
{
  public:
    /** Opens (creating or appending) the journal at path. */
    explicit RunJournal(const std::string &path);
    ~RunJournal();

    RunJournal(const RunJournal &) = delete;
    RunJournal &operator=(const RunJournal &) = delete;

    bool ok() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    /** Sweep-identity header: --resume refuses a journal whose sweep
     *  hash does not match the current invocation's options. */
    void appendSweepHeader(const std::string &sweepHash);

    /** Append one finished run (fsync'd before returning). */
    void append(const JournalRecord &rec);

    /** Everything load() recovered from a journal file. */
    struct Loaded
    {
        std::string sweepHash;   ///< empty when no header line survived
        std::map<std::string, JournalRecord> runs;  ///< by identity key
        std::size_t skippedLines = 0;  ///< torn / corrupt lines ignored
    };

    /**
     * Parse a journal file. Missing file -> empty result. Torn or
     * corrupt lines (the possible last line of a killed process) are
     * counted in skippedLines and otherwise ignored; a duplicate key
     * keeps the later record (a resumed sweep may re-run a previously
     * failed run and journal it again).
     */
    static Loaded load(const std::string &path);

  private:
    void writeLine(const std::string &line);

    std::string path_;
    int fd_ = -1;
    std::mutex mutex_;
};

} // namespace rvp

#endif // RVP_SIM_JOURNAL_HH
