/**
 * @file
 * Lockstep driver for config-batched stream replay.
 *
 * runBatchedGroup() takes every pending sweep run that shares one
 * StreamKey, prepares each (compile/profile/predictor — memoized
 * through the WorkloadCache exactly like solo runs), attaches each to
 * a Consumer of one BatchedStreamRun (stream/batch.hh), and steps the
 * N timing cores in bursts off the shared decode ring. The captured
 * stream is decoded once per *group* instead of once per run.
 *
 * Semantics preserved from the solo path:
 *
 *  - results are bit-identical to solo replay (each member owns its
 *    Core, predictor, tracer, and reconstructed ArchState; predictor
 *    consultation happens at that member's own fetch, in its program
 *    order)
 *  - per-member wall-clock deadlines (RunDeadline) are armed at
 *    member preparation and checked inside each member's core loop;
 *    wall-clock is shared, so co-members' bursts count against a
 *    member's budget — an overrun throws out of that member only
 *  - a member that throws (prepare, mid-lockstep, or finalize) falls
 *    out of the batch with a recorded attempt-0 failure; the
 *    scheduler (sim/sweep.cc) then retries it solo under the degraded
 *    profile while the other members finish unaffected
 *  - when no batched stream is available (capture OOM, over-budget
 *    stream, integrity failure at attach), members return with
 *    ran=false and the scheduler runs them solo from attempt 0 — the
 *    same live-emulation fallbacks the solo path takes, never a
 *    failure
 */

#ifndef RVP_SIM_BATCHRUN_HH
#define RVP_SIM_BATCHRUN_HH

#include <functional>
#include <vector>

#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "stream/batch.hh"

namespace rvp
{

/** What the batch did with one member. */
struct BatchMemberOutcome
{
    /**
     * The batch produced this member's attempt-0 state: a result
     * (result.failed == false) or a consumed failed attempt
     * (result.failed == true, error set — the scheduler retries solo
     * at attempt 1). false = the member never ran here (no batched
     * stream, or its stream key diverged at prepare); run it solo
     * from attempt 0.
     */
    bool ran = false;
    ExperimentResult result;
};

/** Driver knobs (plumbed from SweepOptions by the scheduler). */
struct BatchRunOptions
{
    /** Per-member wall-clock budget, seconds; 0 disables. */
    double runDeadline = 0.0;
    /** Decode-ring capacity (stream/batch.hh). */
    std::size_t ringSlots = BatchedStreamRun::defaultRingSlots;
    /** Test seam forwarded from SweepOptions::onAttemptStart. */
    std::function<void(const ExperimentConfig &, const RunContext &)>
        onAttemptStart;
};

/**
 * Run one stream-key group in lockstep. configs and gridIndices are
 * parallel (gridIndices holds each member's position in the sweep
 * grid, for RunContext and fault addressing); groupKey is the
 * presumed stream key the scheduler grouped by.
 */
std::vector<BatchMemberOutcome>
runBatchedGroup(const std::vector<ExperimentConfig> &configs,
                const std::vector<std::size_t> &gridIndices,
                const StreamKey &groupKey, WorkloadCache &cache,
                const BatchRunOptions &options);

} // namespace rvp

#endif // RVP_SIM_BATCHRUN_HH
