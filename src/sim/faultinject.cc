#include "sim/faultinject.hh"

#include <chrono>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>

#include "stream/stream.hh"

namespace rvp
{

namespace
{

std::atomic<std::uint64_t> captureOomAfter{~0ull};

void
captureOomHook(std::uint64_t instsSoFar)
{
    if (instsSoFar >= captureOomAfter.load(std::memory_order_relaxed))
        throw std::bad_alloc();
}

} // namespace

void
armCaptureBadAlloc(std::uint64_t afterInsts)
{
    captureOomAfter.store(afterInsts, std::memory_order_relaxed);
    CapturedStream::captureHook.store(&captureOomHook,
                                      std::memory_order_release);
}

void
disarmCaptureFaults()
{
    CapturedStream::captureHook.store(nullptr,
                                      std::memory_order_release);
    captureOomAfter.store(~0ull, std::memory_order_relaxed);
}

std::function<ExperimentResult(const ExperimentConfig &, WorkloadCache &,
                               const RunContext &)>
makeFaultInjectingRunFn(const FaultPlan &plan,
                        std::shared_ptr<FaultLog> log)
{
    return [plan, log](const ExperimentConfig &config, WorkloadCache &cache,
                       const RunContext &context) -> ExperimentResult {
        auto it = plan.faults.find(context.runIndex);
        bool fires = it != plan.faults.end() &&
                     (plan.persistent || context.attempt == 0);
        if (!fires)
            return runExperiment(config, context);
        if (log)
            log->fired.fetch_add(1, std::memory_order_relaxed);
        switch (it->second) {
          case FaultKind::Throw:
            throw std::runtime_error(
                "injected fault (run " +
                std::to_string(context.runIndex) + ")");
          case FaultKind::SleepPastDeadline:
            std::this_thread::sleep_for(
                std::chrono::duration<double>(plan.sleepSeconds));
            // An armed deadline is now expired; runExperiment's
            // entry check throws DeadlineExceeded.
            return runExperiment(config, context);
          case FaultKind::BadAlloc: {
            CaptureFaultGuard guard;
            armCaptureBadAlloc(plan.oomAfterInsts);
            return runExperiment(config, context);
          }
          case FaultKind::CorruptStream:
          case FaultKind::TruncateStream: {
            // The stream must already be resolved (an earlier run
            // with the same key captured it); minInsts=0 makes this
            // a pure lookup for any resolved entry.
            StreamKey key = streamKeyFor(config, false);
            auto stream = cache.stream(
                key, 0,
                [](std::uint64_t) -> WorkloadCache::StreamPtr {
                    return nullptr;
                });
            if (!stream) {
                throw std::logic_error(
                    "fault plan error: no cached stream to corrupt "
                    "for run " + std::to_string(context.runIndex));
            }
            if (it->second == FaultKind::CorruptStream) {
                corruptStreamForTest(*stream, plan.corruptLane,
                                     plan.corruptOffset, plan.corruptXor);
            } else {
                truncateStreamForTest(*stream, plan.corruptLane, 1);
            }
            return runExperiment(config, context);
          }
        }
        return runExperiment(config, context);   // unreachable
    };
}

} // namespace rvp
