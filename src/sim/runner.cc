#include "sim/runner.hh"

#include <unordered_set>

#include "common/logging.hh"
#include "compiler/arch_liveness.hh"
#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "compiler/rvp_realloc.hh"
#include "profile/critical_path.hh"
#include "workloads/workloads.hh"

namespace rvp
{

namespace
{

/** A compiled workload instance. */
struct CompiledWorkload
{
    BuiltWorkload wl;
    AllocResult alloc;
    LowerResult low;
};

CompiledWorkload
compile(const std::string &name, InputSet input)
{
    CompiledWorkload c;
    c.wl = buildWorkload(name, input);
    c.alloc = allocateRegisters(c.wl.func, AllocConfig{});
    RVP_ASSERT(c.alloc.success);
    c.low = lower(c.wl.func, c.alloc);
    c.low.program.dataImage = c.wl.data;
    return c;
}

/** Profile + critical-path scores over one compiled workload. */
struct ProfileRun
{
    ReuseProfile profile;
    std::vector<double> cpScores;
};

ProfileRun
runProfiler(CompiledWorkload &c, std::uint64_t insts)
{
    std::vector<std::uint64_t> live =
        archLiveBefore(c.wl.func, c.alloc, c.low);
    ReuseProfiler profiler(c.low.program, live);
    CriticalPathProfiler cp(c.low.program.size());
    Emulator emu(c.low.program);
    DynInst di;
    std::uint64_t n = 0;
    while (n < insts) {
        ArchState pre = emu.state();
        if (!emu.step(di))
            break;
        profiler.observe(di, pre);
        cp.observe(di);
        ++n;
    }
    return {profiler.finish(), cp.scores()};
}

/** Map train-profile reuse into Section-7.3 reallocation candidates. */
std::vector<ReuseCandidate>
buildCandidates(const ProfileRun &pr, const LowerResult &low,
                double threshold)
{
    std::vector<ReuseCandidate> cands;
    const ReuseProfile &p = pr.profile;
    for (std::uint32_t s = 0; s < p.counts.size(); ++s) {
        if (p.counts[s].execs == 0)
            continue;
        StaticPredSpec spec = p.bestSpec(s, AssistLevel::DeadLv);
        double rate = p.bestRate(s, AssistLevel::DeadLv);
        if (rate < threshold)
            continue;
        ReuseCandidate cand;
        cand.consumerIr = low.irIdOfStatic[s];
        cand.priority = pr.cpScores[s];
        if (spec.source == PredSource::OtherReg) {
            auto it = p.primaryProducer.find(
                ReuseProfile::producerKey(s, spec.reg));
            if (it == p.primaryProducer.end())
                continue;
            cand.producerIr = low.irIdOfStatic[it->second];
        } else if (spec.source == PredSource::LastValue) {
            cand.isLvr = true;
        } else {
            continue;   // already same-register: nothing to re-allocate
        }
        cands.push_back(cand);
    }
    return cands;
}

} // namespace

ReuseProfile
profileWorkload(const std::string &workload, std::uint64_t insts,
                InputSet input)
{
    CompiledWorkload c = compile(workload, input);
    return runProfiler(c, insts).profile;
}

ExperimentResult
runExperiment(const ExperimentConfig &config)
{
    // The needs-profile schemes: static RVP always; dynamic RVP when a
    // compiler-assistance level beyond plain same-register is assumed;
    // and any realistic re-allocation.
    bool needs_profile =
        config.scheme == VpScheme::StaticRvp ||
        (config.scheme == VpScheme::DynamicRvp &&
         config.assist != AssistLevel::Same) ||
        config.realisticRealloc;

    // Profile the *train* input. The compiled train binary must stay
    // alive as long as the profile (which references its program).
    CompiledWorkload train;
    ProfileRun train_profile;
    if (needs_profile) {
        train = compile(config.workload, InputSet::Train);
        train_profile = runProfiler(train, config.profileInsts);
    }

    // Compile the *ref* input. Workload construction and allocation
    // are deterministic, so static indices line up with the train
    // binary (asserted below).
    CompiledWorkload ref = compile(config.workload, InputSet::Ref);
    if (needs_profile) {
        RVP_ASSERT(train_profile.profile.counts.size() ==
                   ref.low.program.size());
    }

    VpConfig vp;
    vp.scheme = config.scheme;
    vp.loadsOnly = config.loadsOnly;
    vp.tableEntries = config.tableEntries;
    vp.taggedRvp = config.taggedRvp;
    vp.threshold = config.counterThreshold;

    if (config.realisticRealloc) {
        // Figure 7: re-colour the registers to honour the profiled
        // reuses, then run plain same-register dynamic RVP on the
        // re-allocated binary — no optimistic profile application.
        std::vector<ReuseCandidate> cands = buildCandidates(
            train_profile, ref.low, config.profileThreshold);
        ReallocResult rr =
            reallocForReuse(ref.wl.func, AllocConfig{}, cands);
        if (rr.success) {
            ref.alloc = std::move(rr.alloc);
            ref.low = lower(ref.wl.func, ref.alloc);
            ref.low.program.dataImage = ref.wl.data;
        } else {
            warn("register re-allocation failed for %s; keeping the "
                 "baseline allocation",
                 config.workload.c_str());
        }
        vp.scheme = VpScheme::DynamicRvp;
        vp.specs.clear();   // same-register only: reuse is in the binary
    } else if (config.scheme == VpScheme::StaticRvp) {
        // Mark the profiled loads with rvp_* opcodes and apply the
        // profile's prediction sources.
        auto marked_vec = train_profile.profile.selectStaticLoads(
            config.assist, config.profileThreshold);
        std::unordered_set<std::uint32_t> marked_ir;
        for (std::uint32_t s : marked_vec)
            marked_ir.insert(ref.low.irIdOfStatic[s]);
        ref.low = lower(ref.wl.func, ref.alloc, &marked_ir);
        ref.low.program.dataImage = ref.wl.data;
        vp.specs = train_profile.profile.buildSpecs(
            config.assist, config.profileThreshold);
    } else if (config.scheme == VpScheme::DynamicRvp &&
               config.assist != AssistLevel::Same) {
        vp.specs = train_profile.profile.buildSpecs(
            config.assist, config.profileThreshold);
    }

    auto predictor = makePredictor(vp, ref.low.program);
    Core core(config.core, ref.low.program, *predictor);
    CoreResult cr = core.run();

    ExperimentResult result;
    result.ipc = cr.ipc;
    result.cycles = cr.cycles;
    result.committed = cr.committed;
    result.stats = cr.stats;
    double committed = static_cast<double>(cr.committed);
    double predictions = cr.stats.get("vp.predictions");
    result.predictedFrac = committed > 0 ? predictions / committed : 0.0;
    result.accuracy =
        predictions > 0 ? cr.stats.get("vp.correct") / predictions : 0.0;
    return result;
}

} // namespace rvp
