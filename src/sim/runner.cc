#include "sim/runner.hh"

#include <bit>
#include <chrono>
#include <fstream>
#include <memory>
#include <unordered_set>

#include "common/logging.hh"
#include "compiler/arch_liveness.hh"
#include "compiler/rvp_realloc.hh"
#include "profile/critical_path.hh"
#include "sim/sweep.hh"
#include "trace/tracer.hh"
#include "vp/registry.hh"

namespace rvp
{

namespace
{

/** Map train-profile reuse into Section-7.3 reallocation candidates. */
std::vector<ReuseCandidate>
buildCandidates(const ProfileRun &pr, const LowerResult &low,
                double threshold)
{
    std::vector<ReuseCandidate> cands;
    const ReuseProfile &p = pr.profile;
    for (std::uint32_t s = 0; s < p.counts.size(); ++s) {
        if (p.counts[s].execs == 0)
            continue;
        StaticPredSpec spec = p.bestSpec(s, AssistLevel::DeadLv);
        double rate = p.bestRate(s, AssistLevel::DeadLv);
        if (rate < threshold)
            continue;
        ReuseCandidate cand;
        cand.consumerIr = low.irIdOfStatic[s];
        cand.priority = pr.cpScores[s];
        if (spec.source == PredSource::OtherReg) {
            auto it = p.primaryProducer.find(
                ReuseProfile::producerKey(s, spec.reg));
            if (it == p.primaryProducer.end())
                continue;
            cand.producerIr = low.irIdOfStatic[it->second];
        } else if (spec.source == PredSource::LastValue) {
            cand.isLvr = true;
        } else {
            continue;   // already same-register: nothing to re-allocate
        }
        cands.push_back(cand);
    }
    return cands;
}

bool
knownWorkload(const std::string &name)
{
    for (const WorkloadSpec &spec : allWorkloads())
        if (spec.name == name)
            return true;
    return false;
}

} // namespace

CompiledWorkload
compileWorkload(const std::string &name, InputSet input,
                const RunDeadline *deadline)
{
    CompiledWorkload c;
    if (deadline)
        deadline->check("compile");
    c.wl = buildWorkload(name, input);
    if (deadline)
        deadline->check("compile");
    c.alloc = allocateRegisters(c.wl.func, AllocConfig{});
    RVP_ASSERT(c.alloc.success);
    if (deadline)
        deadline->check("compile");
    c.low = lower(c.wl.func, c.alloc);
    c.low.program.dataImage = c.wl.data;
    return c;
}

ProfileRun
profileCompiled(const CompiledWorkload &c, std::uint64_t insts,
                const RunDeadline *deadline)
{
    std::vector<std::uint64_t> live =
        archLiveBefore(c.wl.func, c.alloc, c.low);
    ReuseProfiler profiler(c.low.program, live);
    CriticalPathProfiler cp(c.low.program.size());
    Emulator emu(c.low.program);
    DynInst di;
    std::uint64_t n = 0;
    while (n < insts) {
        if (deadline && (n & 4095u) == 0)
            deadline->check("profile");
        ArchState pre = emu.state();
        if (!emu.step(di))
            break;
        profiler.observe(di, pre);
        cp.observe(di);
        ++n;
    }
    return {profiler.finish(), cp.scores()};
}

ReuseProfile
profileWorkload(const std::string &workload, std::uint64_t insts,
                InputSet input)
{
    CompiledWorkload c = compileWorkload(workload, input);
    return profileCompiled(c, insts).profile;
}

void
validateExperimentConfig(const ExperimentConfig &config)
{
    RVP_ASSERT(knownWorkload(config.workload),
               "unknown workload '%s' (see allWorkloads())",
               config.workload.c_str());
    RVP_ASSERT(!(config.realisticRealloc &&
                 config.scheme != VpScheme::DynamicRvp),
               "realisticRealloc re-colours the registers for "
               "same-register dynamic RVP and would discard scheme %s; "
               "use VpScheme::DynamicRvp",
               schemeName(config.scheme));
    RVP_ASSERT(!(config.realisticRealloc &&
                 config.assist != AssistLevel::Same),
               "realisticRealloc replaces the %s profile application "
               "with a real re-allocation; assist must stay Same",
               assistName(config.assist));
    RVP_ASSERT(!(config.scheme == VpScheme::StaticRvp && !config.loadsOnly),
               "static RVP predicts opcode-marked loads only; "
               "loadsOnly=false is contradictory");
    RVP_ASSERT(config.tableEntries > 0,
               "predictor table must have at least one entry");
    RVP_ASSERT(config.counterThreshold <= 7,
               "confidence threshold %u does not fit the 3-bit "
               "resetting counters (max 7)",
               config.counterThreshold);
    RVP_ASSERT(config.profileThreshold >= 0.0 &&
                   config.profileThreshold <= 1.0,
               "profile selection threshold %g is not a rate in [0, 1]",
               config.profileThreshold);
    RVP_ASSERT(config.traceOut.empty() || config.traceSample > 0,
               "traceSample must be > 0 when tracing (it is the "
               "sample divisor seq %% N == 0)");
    // Scheme-specific params: parse the bag and check every key
    // against the registry's declaration for this scheme. Throws
    // VpConfigError (not an assert) so CLIs and tests can catch it.
    PredictorRegistry::instance().checkParams(
        registryNameOf(config.scheme),
        VpParams::parse(config.vpParams));
    validateCacheConfig(config.core.mem.l1i);
    validateCacheConfig(config.core.mem.l1d);
    validateCacheConfig(config.core.mem.l2);
}

StreamKey
streamKeyFor(const ExperimentConfig &config, bool reallocFailed)
{
    StreamKey key;
    key.workload = config.workload;
    key.input = InputSet::Ref;
    if (config.realisticRealloc && !reallocFailed) {
        key.binary = StreamKey::Binary::Realloc;
        key.profileInsts = config.profileInsts;
        key.thresholdBits =
            std::bit_cast<std::uint64_t>(config.profileThreshold);
    } else if (config.scheme == VpScheme::StaticRvp) {
        key.binary = StreamKey::Binary::SrvpMarked;
        key.assist = config.assist;
        key.profileInsts = config.profileInsts;
        key.thresholdBits =
            std::bit_cast<std::uint64_t>(config.profileThreshold);
    }
    return key;
}

PreparedRun
prepareExperiment(const ExperimentConfig &config, const RunContext &context)
{
    validateExperimentConfig(config);
    WorkloadCache *cache = context.cache;
    const RunDeadline *deadline = context.deadline;
    // Check promptly so an attempt that starts past its budget (e.g. a
    // worker wedged elsewhere) fails before compiling anything.
    if (deadline)
        deadline->check("run start");

    PreparedRun prep;
    prep.config = config;

    // The needs-profile schemes: static RVP always; dynamic RVP when a
    // compiler-assistance level beyond plain same-register is assumed;
    // and any realistic re-allocation.
    bool needs_profile =
        config.scheme == VpScheme::StaticRvp ||
        (config.scheme == VpScheme::DynamicRvp &&
         config.assist != AssistLevel::Same) ||
        config.realisticRealloc;

    // Profile the *train* input. The profile points into the compiled
    // train binary (ReuseProfile keeps a Program pointer), so that
    // binary must outlive every use of the profile: the cache keeps its
    // instance alive for the whole sweep; the uncached path anchors a
    // keepalive in the PreparedRun.
    if (needs_profile) {
        if (cache) {
            prep.trainProfile =
                cache->profiled(config.workload, InputSet::Train,
                                config.profileInsts, deadline);
        } else {
            prep.trainKeepalive =
                std::make_shared<const CompiledWorkload>(
                    compileWorkload(config.workload, InputSet::Train,
                                    deadline));
            prep.trainProfile = std::make_shared<const ProfileRun>(
                profileCompiled(*prep.trainKeepalive,
                                config.profileInsts, deadline));
        }
    }

    // Compile the *ref* input. Workload construction and allocation
    // are deterministic, so static indices line up with the train
    // binary (asserted below) and a cached instance is bit-identical
    // to a fresh compile.
    prep.refShared =
        cache ? cache->compiled(config.workload, InputSet::Ref, deadline)
              : std::make_shared<const CompiledWorkload>(
                    compileWorkload(config.workload, InputSet::Ref,
                                    deadline));
    if (needs_profile) {
        RVP_ASSERT(prep.trainProfile->profile.counts.size() ==
                   prep.refShared->low.program.size());
    }

    prep.vp.scheme = config.scheme;
    prep.vp.loadsOnly = config.loadsOnly;
    prep.vp.tableEntries = config.tableEntries;
    prep.vp.taggedRvp = config.taggedRvp;
    prep.vp.threshold = config.counterThreshold;
    prep.vp.params = config.vpParams;

    // Schemes that rewrite the binary work on a private copy; the
    // cached instance stays pristine for concurrent runs.
    if (config.realisticRealloc) {
        // Figure 7: re-colour the registers to honour the profiled
        // reuses, then run plain same-register dynamic RVP on the
        // re-allocated binary — no optimistic profile application.
        prep.mutated =
            std::make_unique<CompiledWorkload>(*prep.refShared);
        prep.useMutated = true;
        std::vector<ReuseCandidate> cands = buildCandidates(
            *prep.trainProfile, prep.mutated->low,
            config.profileThreshold);
        ReallocResult rr = reallocForReuse(prep.mutated->wl.func,
                                           AllocConfig{}, cands);
        prep.reallocStats.set("realloc.attempted", 1.0);
        prep.reallocStats.set("realloc.candidates",
                              static_cast<double>(cands.size()));
        prep.reallocStats.set("realloc.failed", rr.success ? 0.0 : 1.0);
        if (rr.success) {
            std::uint64_t honored = 0;
            for (bool h : rr.honored)
                honored += h;
            prep.reallocStats.set("realloc.honored",
                                  static_cast<double>(honored));
            prep.reallocStats.set(
                "realloc.dropped_legality",
                static_cast<double>(rr.droppedForLegality));
            prep.reallocStats.set(
                "realloc.dropped_coloring",
                static_cast<double>(rr.droppedForColoring));
            prep.mutated->alloc = std::move(rr.alloc);
            prep.mutated->low =
                lower(prep.mutated->wl.func, prep.mutated->alloc);
            prep.mutated->low.program.dataImage = prep.mutated->wl.data;
        } else {
            prep.reallocFailed = true;
            warn("register re-allocation failed for %s; keeping the "
                 "baseline allocation",
                 config.workload.c_str());
        }
        prep.vp.specs.clear();  // same-register only: reuse is in the
                                // binary
    } else if (config.scheme == VpScheme::StaticRvp) {
        // Mark the profiled loads with rvp_* opcodes and apply the
        // profile's prediction sources.
        prep.mutated =
            std::make_unique<CompiledWorkload>(*prep.refShared);
        prep.useMutated = true;
        auto marked_vec = prep.trainProfile->profile.selectStaticLoads(
            config.assist, config.profileThreshold);
        std::unordered_set<std::uint32_t> marked_ir;
        for (std::uint32_t s : marked_vec)
            marked_ir.insert(prep.mutated->low.irIdOfStatic[s]);
        prep.mutated->low = lower(prep.mutated->wl.func,
                                  prep.mutated->alloc, &marked_ir);
        prep.mutated->low.program.dataImage = prep.mutated->wl.data;
        prep.vp.specs = prep.trainProfile->profile.buildSpecs(
            config.assist, config.profileThreshold);
    } else if (config.scheme == VpScheme::DynamicRvp &&
               config.assist != AssistLevel::Same) {
        prep.vp.specs = prep.trainProfile->profile.buildSpecs(
            config.assist, config.profileThreshold);
    }

    prep.predictor = makePredictor(prep.vp, prep.timedProgram());
    if (!config.traceOut.empty())
        prep.tracer = std::make_unique<PipelineTracer>(config.traceSample);

    // Fetch runs at most robEntries ahead of commit, and commit can
    // overshoot the budget by one commit group in its final cycle,
    // which bounds what any run can pull from the source.
    prep.minInsts = config.core.maxInsts + config.core.robEntries +
                    config.core.commitWidth;
    prep.key = streamKeyFor(config, prep.reallocFailed);
    return prep;
}

ExperimentResult
finishExperiment(PreparedRun &prep, CoreResult cr, double hostSeconds)
{
    const ExperimentConfig &config = prep.config;
    if (prep.tracer) {
        std::ofstream out(config.traceOut,
                          std::ios::out | std::ios::trunc);
        RVP_ASSERT(out.is_open(), "cannot open trace output '%s'",
                   config.traceOut.c_str());
        const std::string &path = config.traceOut;
        bool jsonl = path.size() >= 6 &&
                     path.compare(path.size() - 6, 6, ".jsonl") == 0;
        if (jsonl)
            prep.tracer->writeJsonl(out);
        else
            prep.tracer->writeChromeJson(out);
        // Trace bookkeeping goes into the stat map only when tracing
        // is on, so a tracing-off run stays bit-identical to golden
        // snapshots.
        cr.stats.set("trace.records",
                     static_cast<double>(prep.tracer->recordedTotal()));
        cr.stats.set("trace.sample_interval",
                     static_cast<double>(config.traceSample));
    }

    ExperimentResult result;
    result.ipc = cr.ipc;
    result.cycles = cr.cycles;
    result.committed = cr.committed;
    result.reallocFailed = prep.reallocFailed;
    result.hostSeconds = hostSeconds;
    result.kips = result.hostSeconds > 0.0
                      ? static_cast<double>(cr.committed) /
                            result.hostSeconds / 1000.0
                      : 0.0;
    result.stats = std::move(cr.stats);
    result.stats.merge(prep.reallocStats);
    // vp.predictions / vp.correct count the committed path only (the
    // core re-bases them at commit), so coverage can never exceed 1.
    double committed = static_cast<double>(cr.committed);
    double predictions = result.stats.get("vp.predictions");
    result.predictedFrac = committed > 0 ? predictions / committed : 0.0;
    result.accuracy =
        predictions > 0 ? result.stats.get("vp.correct") / predictions
                        : 0.0;
    return result;
}

ExperimentResult
runExperiment(const ExperimentConfig &config, const RunContext &context)
{
    WorkloadCache *cache = context.cache;
    const RunDeadline *deadline = context.deadline;
    PreparedRun prep = prepareExperiment(config, context);

    // With a sweep cache, replay the committed stream instead of
    // re-emulating it: functional execution and SparseMemory traffic
    // happen once per distinct binary; every other run replays the
    // encoded capture (bit-identical — capture verifies every derived
    // field against the live emulator). Null stream = run live (cache
    // disabled, or this binary's stream exceeds the byte budget).
    WorkloadCache::StreamPtr stream;
    std::unique_ptr<StreamCursor> cursor;
    if (cache && !context.bypassStream) {
        const Program &timed = prep.timedProgram();
        try {
            stream = cache->stream(
                prep.key, prep.minInsts, [&](std::uint64_t max_bytes) {
                    return CapturedStream::capture(timed, prep.minInsts,
                                                   max_bytes, deadline);
                });
        } catch (const std::bad_alloc &) {
            // Capture ran out of memory: shrink the stream budget so
            // later captures are bounded tighter, remember the key as
            // uncacheable, and run this attempt live. Never a failure.
            cache->noteCaptureOom(prep.key);
            warn("stream capture ran out of memory for %s; shrinking "
                 "the cache budget and running live",
                 config.workload.c_str());
            stream = nullptr;
        }
        if (stream) {
            try {
                // Attach verifies the stream's sealed header and
                // per-lane checksums (stream/stream.hh).
                cursor = std::make_unique<StreamCursor>(stream);
            } catch (const StreamIntegrityError &e) {
                // A corrupt capture must never be replayed: drop the
                // cached entry (the next run re-captures) and fall
                // back to live emulation, which is bit-identical.
                cache->noteStreamIntegrityFailure(prep.key);
                warn("%s for %s; falling back to live emulation",
                     e.what(), config.workload.c_str());
                stream = nullptr;
            }
        }
    }
    Core core(config.core, prep.timedProgram(), *prep.predictor,
              prep.tracer.get(), cursor.get(), deadline);
    auto t0 = std::chrono::steady_clock::now();
    CoreResult cr = core.run();
    auto t1 = std::chrono::steady_clock::now();
    return finishExperiment(
        prep, std::move(cr),
        std::chrono::duration<double>(t1 - t0).count());
}

ExperimentResult
runExperiment(const ExperimentConfig &config, WorkloadCache *cache)
{
    RunContext context;
    context.cache = cache;
    return runExperiment(config, context);
}

ExperimentResult
runExperiment(const ExperimentConfig &config)
{
    return runExperiment(config, RunContext{});
}

} // namespace rvp
