/**
 * @file
 * Multi-process sharded sweeps with a work-stealing coordinator.
 *
 * One thread pool tops out at one machine's cores AND one address
 * space; ROADMAP item 3 (100k+ config grids) wants neither limit. The
 * coordinator here partitions a sweep grid into work units — chunks of
 * a stream-key group, so batched replay's decode amortization
 * (sim/batchrun.hh) survives sharding — and drives N `sweep_all
 * --worker` child processes over pipes with length-prefixed JSONL
 * frames (common/subprocess.hh, common/jsonlite.hh).
 *
 * Work stealing: units live in one central queue and a worker is
 * handed the next unit the moment it finishes its previous one, so a
 * worker stuck with a slow unit never strands the rest of the queue.
 * A worker that dies (EOF/waitpid) or hangs (per-unit deadline →
 * SIGKILL) has its in-flight unit pushed back on the queue for the
 * next idle worker, and a replacement process is spawned while
 * respawn budget remains.
 *
 * Results deliberately do NOT travel over the pipe: each worker
 * appends finished runs to its own fsync'd journal (`<out>.journal.w<k>`,
 * PR 5 format), and the coordinator merges all shard journals by run
 * key — success never loses to a failure, otherwise later wins —
 * into the final report. The pipe is a control plane only, so a torn
 * pipe loses nothing a journal didn't already capture, and `--resume`
 * works across the whole sharded sweep by merging whatever journals
 * survive.
 */

#ifndef RVP_SIM_SHARD_HH
#define RVP_SIM_SHARD_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/journal.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"

namespace rvp
{

/** One schedulable chunk of the sweep grid: indices into the caller's
 *  full grid, all sharing one committed-stream key so the worker's
 *  batched replay decodes their stream once. */
struct WorkUnit
{
    std::uint64_t id = 0;            ///< queue position, stable for logs
    std::vector<std::size_t> indices; ///< grid indices, input order
};

/**
 * Partition the pending runs of a grid into work units: group by the
 * stream key of each run's timed binary (first-appearance order, the
 * same grouping batched replay uses), chunk any group larger than
 * maxUnitRuns (0 = unchunked), then order units largest-first so the
 * biggest chunks start earliest (classic LPT — a 40-run unit handed
 * out last would dominate the tail). Unit ids number the final order.
 */
std::vector<WorkUnit>
partitionWork(const std::vector<ExperimentConfig> &gridConfigs,
              const std::vector<std::size_t> &pending,
              unsigned maxUnitRuns);

/** Coordinator knobs. */
struct ShardOptions
{
    /** Worker process target (>= 1). Fewer run when units < workers. */
    unsigned workers = 1;
    /**
     * Builds the argv for worker slot `slot` writing its runs to
     * journal `journalPath`. argv[0] must be an executable path
     * (execv, no PATH search).
     */
    std::function<std::vector<std::string>(unsigned slot,
                                           const std::string &journalPath)>
        workerCommand;
    /** Per-worker journals are `<journalPrefix><slot>`. */
    std::string journalPrefix;
    /** Sweep-identity hash every worker's hello must echo; a worker
     *  built from different options would journal alien runs. */
    std::string sweepHash;
    /**
     * Wall-clock seconds a worker may hold one unit (also bounds
     * spawn-to-hello). 0 = no watchdog. On expiry the worker is
     * SIGKILLed and its unit reassigned.
     */
    double unitDeadline = 0.0;
    /** Replacement processes allowed after deaths; 0 = same as
     *  workers. Exhausting the budget with units left fails the sweep. */
    unsigned maxRespawns = 0;
    /** Per-unit progress lines on stderr. */
    bool progress = true;
};

/** What the coordinator observed; merged journals carry the results. */
struct ShardReport
{
    unsigned workersSpawned = 0;    ///< incl. replacements
    unsigned workerDeaths = 0;      ///< EOF, waitpid, bad frame, deadline
    std::uint64_t unitsReassigned = 0;
    /** Batched-replay effectiveness summed over worker `done` frames. */
    std::uint64_t batchGroups = 0;
    std::uint64_t batchedRuns = 0;
    std::uint64_t batchFallouts = 0;
    /** Cache counters summed over worker `bye` frames (workers that
     *  died without a bye contribute nothing). */
    WorkloadCacheStats cache;
    /** Shard journal paths actually written, slot order. */
    std::vector<std::string> journalPaths;
    /** Why runShardedSweep returned false (empty on success). */
    std::string error;
};

/**
 * Drive `units` to completion across worker processes. Returns false
 * when the sweep could not be completed — respawn budget exhausted
 * with units still queued, a worker built from mismatched sweep
 * options, or spawn failure — with report.error set. Individual RUN
 * failures do not fail the sweep; they are journaled as failed records
 * and surface through the merge.
 */
bool runShardedSweep(const std::vector<WorkUnit> &units,
                     const ShardOptions &options, ShardReport &report);

/**
 * All journal paths a sharded sweep at mainJournalPath may have left
 * behind: the main journal first (if present; single-process sweeps
 * and workers resumed in-process write there), then every existing
 * `<mainJournalPath>.w<k>` in slot order.
 */
std::vector<std::string>
findShardJournals(const std::string &mainJournalPath);

/** Union of several shard journals. */
struct MergedJournal
{
    std::map<std::string, JournalRecord> runs;  ///< by run key
    std::size_t skippedLines = 0;  ///< torn/corrupt lines across files
};

/**
 * Merge journals in path order under PR 5 semantics extended across
 * files: for a duplicate run key, a successful record never loses to
 * a failed one; otherwise the later record (later file, or later line
 * within a file) wins. Throws std::runtime_error if any journal's
 * sweep-hash header is non-empty and differs from expectSweepHash —
 * merging runs from a different sweep would corrupt the report.
 */
MergedJournal
mergeShardJournals(const std::vector<std::string> &paths,
                   const std::string &expectSweepHash);

// ---------------------------------------------------------------------
// Wire protocol (framed JSONL; framing in common/subprocess.hh).
//
//   worker -> coord   hello {version, sweep_hash, grid_runs}
//   coord  -> worker  unit  {id, indices}
//   worker -> coord   done  {id, ok, failed, batch_* counters}
//   coord  -> worker  shutdown {}
//   worker -> coord   bye   {cache counters}, then exit 0
//
// Results never ride the pipe — they are in the worker's journal
// before its `done` frame is sent, so a `done` is a promise that the
// unit's records are fsync'd on disk.
// ---------------------------------------------------------------------

/** Any decoded protocol message (fields valid per `type`). */
struct ShardMsg
{
    std::string type;          ///< hello | unit | done | shutdown | bye
    // hello
    unsigned version = 0;
    std::string sweepHash;
    std::uint64_t gridRuns = 0;
    // unit / done
    std::uint64_t id = 0;
    std::vector<std::size_t> indices;
    std::uint64_t okRuns = 0;
    std::uint64_t failedRuns = 0;
    std::uint64_t batchGroups = 0;
    std::uint64_t batchedRuns = 0;
    std::uint64_t batchFallouts = 0;
    // bye
    WorkloadCacheStats cache;
};

constexpr unsigned shardProtocolVersion = 1;

std::string encodeHello(const std::string &sweepHash,
                        std::uint64_t gridRuns);
std::string encodeUnit(const WorkUnit &unit);
std::string encodeDone(std::uint64_t id, std::uint64_t okRuns,
                       std::uint64_t failedRuns, std::uint64_t batchGroups,
                       std::uint64_t batchedRuns,
                       std::uint64_t batchFallouts);
std::string encodeShutdown();
std::string encodeBye(const WorkloadCacheStats &cache);

/** Parse one protocol payload; throws std::runtime_error on garbage
 *  (unknown type, missing fields, malformed JSON). */
ShardMsg decodeShardMsg(const std::string &payload);

} // namespace rvp

#endif // RVP_SIM_SHARD_HH
