/**
 * @file
 * Plain-text table formatting for the benchmark harness: every figure
 * and table binary prints its rows through this, so the output format
 * is uniform and diffable.
 */

#ifndef RVP_SIM_TABLES_HH
#define RVP_SIM_TABLES_HH

#include <ostream>
#include <string>
#include <vector>

namespace rvp
{

/** A simple right-padded text table. */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (column counts should match the header). */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision. */
    static std::string num(double value, int precision = 3);

    /** Format "x.xx%" from a fraction. */
    static std::string percent(double fraction, int precision = 1);

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rvp

#endif // RVP_SIM_TABLES_HH
