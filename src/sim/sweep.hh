/**
 * @file
 * Parallel experiment scheduler with compile/profile memoization.
 *
 * The paper's evaluation is a grid of independent ExperimentConfigs
 * (workload x predictor variant); every run used to recompile and
 * re-profile its workload from scratch and the grid ran serially.
 * runSweep() executes a grid on a pool of worker threads and shares
 * one WorkloadCache across all runs, so each (workload, input) is
 * compiled once and each (workload, input, profileInsts) is profiled
 * once per sweep instead of once per config.
 *
 * Determinism guarantee: compilation, profiling, and simulation are
 * pure functions of their configuration (no shared mutable state
 * between runs — each run owns its Core/Emulator/predictor, and
 * cached artifacts are immutable), so the results are bit-identical
 * regardless of the job count or the order workers pick runs up.
 */

#ifndef RVP_SIM_SWEEP_HH
#define RVP_SIM_SWEEP_HH

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "sim/runner.hh"

namespace rvp
{

/** Human-readable scheme name (stable, lowercase). */
const char *schemeName(VpScheme scheme);

/** Human-readable assist-level name (stable, lowercase). */
const char *assistName(AssistLevel level);

/** One-line description of a config for progress lines and reports. */
std::string describeConfig(const ExperimentConfig &config);

/** Snapshot of the cache-effectiveness counters. */
struct WorkloadCacheStats
{
    std::uint64_t compileHits = 0;
    std::uint64_t compileMisses = 0;
    std::uint64_t profileHits = 0;
    std::uint64_t profileMisses = 0;
};

/**
 * Process-wide-shareable memo cache for compiled workloads and train
 * profiles. Thread safe: concurrent requests for the same key block
 * on one shared build (shared_future) instead of duplicating work.
 * Cached artifacts are immutable — callers copy before mutating.
 */
class WorkloadCache
{
  public:
    /** Compiled (workload, input), built at most once per cache. */
    std::shared_ptr<const CompiledWorkload>
    compiled(const std::string &workload, InputSet input);

    /** ProfileRun of (workload, input, insts), built at most once. */
    std::shared_ptr<const ProfileRun>
    profiled(const std::string &workload, InputSet input,
             std::uint64_t insts);

    WorkloadCacheStats stats() const;

  private:
    using CompiledPtr = std::shared_ptr<const CompiledWorkload>;
    using ProfilePtr = std::shared_ptr<const ProfileRun>;
    using CompileKey = std::pair<std::string, int>;
    using ProfileKey = std::tuple<std::string, int, std::uint64_t>;

    mutable std::mutex mutex_;
    std::map<CompileKey, std::shared_future<CompiledPtr>> compiled_;
    std::map<ProfileKey, std::shared_future<ProfilePtr>> profiled_;
    WorkloadCacheStats stats_;
};

/** Scheduler knobs. */
struct SweepOptions
{
    /** Worker threads; 0 means defaultJobs(). */
    unsigned jobs = 0;
    /** Emit a per-run progress line to stderr. */
    bool progress = true;
    /**
     * The per-config run body; null means runExperiment. A seam for
     * tests that need to exercise the scheduler itself (e.g. inject a
     * throwing run and check the sweep contains it) without standing
     * up a full simulation.
     */
    std::function<ExperimentResult(const ExperimentConfig &,
                                   WorkloadCache &)>
        runFn;
};

/** Per-sweep observability (timings and cache effectiveness). */
struct SweepReport
{
    /** End-to-end sweep wall-clock, seconds. */
    double wallSeconds = 0.0;
    /** Per-config run wall-clock, seconds, in input order. */
    std::vector<double> runSeconds;
    unsigned jobs = 0;
    WorkloadCacheStats cache;
};

/** Worker threads to use by default (hardware_concurrency, min 1). */
unsigned defaultJobs();

/**
 * Run body(i) for every i in [0, count) on up to `jobs` threads
 * (inline when jobs <= 1). Blocks until all iterations finish. The
 * body must not throw — an escaping exception would unwind a worker
 * thread and std::terminate the process, so callers with fallible
 * bodies must catch per iteration (as runSweep does). Iteration order
 * across threads is unspecified, so bodies must only touch disjoint
 * state (e.g. results[i]).
 */
void parallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)> &body);

/**
 * Run every config in the grid and return results in input order.
 * All configs are validated up front (fail fast before any work).
 * A run body that throws does not take the sweep down: the exception
 * is caught per iteration, the run's result comes back with
 * failed=true and the message in error, and every other run completes
 * normally.
 */
std::vector<ExperimentResult>
runSweep(const std::vector<ExperimentConfig> &configs,
         const SweepOptions &options = {}, SweepReport *report = nullptr);

} // namespace rvp

#endif // RVP_SIM_SWEEP_HH
