/**
 * @file
 * Parallel experiment scheduler with compile/profile memoization.
 *
 * The paper's evaluation is a grid of independent ExperimentConfigs
 * (workload x predictor variant); every run used to recompile and
 * re-profile its workload from scratch and the grid ran serially.
 * runSweep() executes a grid on a pool of worker threads and shares
 * one WorkloadCache across all runs, so each (workload, input) is
 * compiled once and each (workload, input, profileInsts) is profiled
 * once per sweep instead of once per config.
 *
 * Determinism guarantee: compilation, profiling, and simulation are
 * pure functions of their configuration (no shared mutable state
 * between runs — each run owns its Core/Emulator/predictor, and
 * cached artifacts are immutable), so the results are bit-identical
 * regardless of the job count or the order workers pick runs up.
 */

#ifndef RVP_SIM_SWEEP_HH
#define RVP_SIM_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "sim/runner.hh"
#include "stream/stream.hh"

namespace rvp
{

/** Human-readable scheme name (stable, lowercase). */
const char *schemeName(VpScheme scheme);

/** Human-readable assist-level name (stable, lowercase). */
const char *assistName(AssistLevel level);

/** One-line description of a config for progress lines and reports. */
std::string describeConfig(const ExperimentConfig &config);

/** Snapshot of the cache-effectiveness counters. */
struct WorkloadCacheStats
{
    std::uint64_t compileHits = 0;
    std::uint64_t compileMisses = 0;
    std::uint64_t profileHits = 0;
    std::uint64_t profileMisses = 0;
    /** Committed-stream cache (stream/stream.hh): a hit replays a
     *  captured stream, a miss runs (and usually captures) live. */
    std::uint64_t streamHits = 0;
    std::uint64_t streamMisses = 0;
    std::uint64_t streamEvicted = 0;
    /** Cached streams that failed header/checksum verification at
     *  cursor attach: each one was dropped from the cache and its run
     *  fell back to live emulation (bit-identical results). */
    std::uint64_t streamIntegrityFailures = 0;
    /** Captures that threw std::bad_alloc: each halves the stream
     *  byte budget and pins the key to live emulation. */
    std::uint64_t streamCaptureOoms = 0;
    /** Capture totals, monotonic: encoded bytes / instructions over
     *  every stream built (bytes/inst = the encoding density). */
    std::uint64_t streamBytesBuilt = 0;
    std::uint64_t streamInstsBuilt = 0;
    /** Encoded bytes currently resident (kept <= the byte budget). */
    std::uint64_t streamBytesResident = 0;
};

/**
 * Process-wide-shareable memo cache for compiled workloads and train
 * profiles. Thread safe: concurrent requests for the same key block
 * on one shared build (shared_future) instead of duplicating work.
 * Cached artifacts are immutable — callers copy before mutating.
 */
class WorkloadCache
{
  public:
    using StreamPtr = std::shared_ptr<const CapturedStream>;

    /**
     * Default committed-stream byte budget. The full paper grid keeps
     * a few dozen ~400K-instruction streams at a few bytes per
     * instruction resident, so this holds everything with headroom;
     * eviction exists for tighter custom budgets.
     */
    static constexpr std::uint64_t defaultStreamCacheBytes =
        256ull * 1024 * 1024;

    WorkloadCache() = default;
    /** Committed-stream budget in bytes; 0 disables stream caching
     *  entirely (every run uses live emulation). */
    explicit WorkloadCache(std::uint64_t streamCacheBytes)
        : streamBudget_(streamCacheBytes)
    {
    }

    /**
     * Compiled (workload, input), built at most once per cache. The
     * first requester's deadline (may be null) governs the shared
     * build; a build that throws (deadline, OOM) is evicted so a
     * later attempt can rebuild instead of inheriting the failure.
     */
    std::shared_ptr<const CompiledWorkload>
    compiled(const std::string &workload, InputSet input,
             const RunDeadline *deadline = nullptr);

    /** ProfileRun of (workload, input, insts), built at most once
     *  (same deadline and failure-eviction semantics as compiled()). */
    std::shared_ptr<const ProfileRun>
    profiled(const std::string &workload, InputSet input,
             std::uint64_t insts, const RunDeadline *deadline = nullptr);

    /**
     * Committed stream for key, covering at least minInsts
     * instructions, built at most once via build(maxBytes) (capture
     * returns null above maxBytes). Returns null when the caller
     * should fall back to live emulation: caching disabled, or the
     * stream is too big for the budget. A cached-but-truncated stream
     * shorter than minInsts is rebuilt at the larger bound. The
     * returned stream is immutable and safe to replay concurrently;
     * it stays valid after eviction (shared ownership).
     */
    StreamPtr stream(const StreamKey &key, std::uint64_t minInsts,
                     const std::function<StreamPtr(std::uint64_t)> &build);

    /** Current committed-stream byte budget (0 = disabled). Starts at
     *  the configured value; halved by each capture OOM. */
    std::uint64_t streamBudgetBytes() const
    {
        return streamBudget_.load(std::memory_order_relaxed);
    }

    /**
     * A capture for key threw std::bad_alloc: halve the stream byte
     * budget (graceful degradation under memory pressure — repeated
     * OOMs walk the budget down to 0, i.e. replay disabled) and pin
     * key as a negative entry so it runs live from now on.
     */
    void noteCaptureOom(const StreamKey &key);

    /**
     * A cached stream for key failed integrity verification at cursor
     * attach (StreamIntegrityError): drop it so the next request
     * re-captures (a miss), and count the failure. The reporting run
     * falls back to live emulation.
     */
    void noteStreamIntegrityFailure(const StreamKey &key);

    WorkloadCacheStats stats() const;

  private:
    using CompiledPtr = std::shared_ptr<const CompiledWorkload>;
    using ProfilePtr = std::shared_ptr<const ProfileRun>;
    using CompileKey = std::pair<std::string, int>;
    using ProfileKey = std::tuple<std::string, int, std::uint64_t>;

    /** One stream slot: pending (future unset-yet) or resolved. A
     *  resolved null future value is a negative entry — the stream
     *  exceeded the budget and the key always runs live. */
    struct StreamEntry
    {
        std::shared_future<StreamPtr> future;
        std::uint64_t bytes = 0;
        std::uint64_t insts = 0;
        std::uint64_t lastUse = 0;
        bool resolved = false;
    };

    /** Evict least-recently-used streams (never `keep`, never pending
     *  builds) until the resident total fits the budget. Locked. */
    void evictStreamsOverBudget(const StreamKey &keep);

    mutable std::mutex mutex_;
    std::map<CompileKey, std::shared_future<CompiledPtr>> compiled_;
    std::map<ProfileKey, std::shared_future<ProfilePtr>> profiled_;
    std::map<StreamKey, StreamEntry> streams_;
    /** Atomic: read lock-free on the capture path, halved (under the
     *  lock, but racing readers are benign) by noteCaptureOom. */
    std::atomic<std::uint64_t> streamBudget_{defaultStreamCacheBytes};
    std::uint64_t streamStamp_ = 0;
    WorkloadCacheStats stats_;
};

/** Scheduler knobs. */
struct SweepOptions
{
    /** Worker threads; 0 means defaultJobs(). */
    unsigned jobs = 0;
    /** Emit a per-run progress line to stderr. */
    bool progress = true;
    /**
     * The per-config run body; null means runExperiment. A seam for
     * tests that need to exercise the scheduler itself (e.g. inject a
     * throwing run and check the sweep contains it) without standing
     * up a full simulation. The RunContext carries the grid index,
     * the attempt's deadline, and the degraded-retry switches.
     */
    std::function<ExperimentResult(const ExperimentConfig &,
                                   WorkloadCache &, const RunContext &)>
        runFn;
    /**
     * Capture each distinct binary's committed stream once and replay
     * it in every run sharing that binary (bit-identical stats; see
     * stream/stream.hh). Off = always live emulation.
     */
    bool streamCapture = true;
    /** Total (and per-stream) encoded-stream byte budget; least-
     *  recently-used streams are evicted back to live emulation. */
    std::uint64_t streamCacheBytes =
        WorkloadCache::defaultStreamCacheBytes;
    /**
     * Per-attempt wall-clock watchdog, seconds; 0 disables (the null
     * fast path leaves the golden stats and the sweep wall time
     * unchanged). An attempt that overruns fails with error
     * "deadline exceeded (...)" instead of wedging its worker; the
     * retry (below) gets a fresh budget.
     */
    double runDeadline = 0.0;
    /**
     * Retry attempts for a failed run (deadline, exception, OOM),
     * each under the degraded profile: stream replay bypassed (live
     * emulation), tracing and histograms off. The result records
     * `retries` and `degraded`. 0 restores fail-on-first-error.
     */
    unsigned maxRetries = 1;
    /** Sleep before each retry, seconds (bounded backoff: doubled per
     *  attempt, capped at 1s). */
    double retryBackoff = 0.05;
    /**
     * Config-batched replay (sim/batchrun.hh): group pending runs by
     * the stream key of their timed binary and drive each multi-run
     * group's timing models in lockstep off ONE decode of the
     * captured stream, instead of decoding it once per run. Results
     * are bit-identical to solo replay, and per-run journaling,
     * deadlines, and retry-with-degradation are preserved — a batched
     * run that fails falls out of its batch and retries solo under
     * the degraded profile. Only applies when streamCapture is on and
     * no custom runFn is installed (the batch *is* the run body);
     * single-member groups take the solo path unchanged.
     */
    bool batchReplay = true;
    /**
     * Upper bound on runs driven in one batched-replay group. The
     * paper grid concentrates 268 of 308 runs in 18 stream-key
     * groups; unchunked, each group is one indivisible scheduling
     * unit and the tail of a parallel sweep serializes behind the
     * biggest ones. Chunks are bit-identical to the whole group (each
     * chunk decodes the same captured stream; members never interact).
     * 0 = unchunked. Single-run chunks take the solo path unchanged.
     */
    unsigned maxBatchGroupRuns = 16;
    /**
     * Use this cache instead of a sweep-local one (stream budget and
     * hit counters then span sweeps). A sharded-sweep worker keeps
     * one cache across all the work units it is handed, so its
     * compile/profile/stream work is shared exactly like a
     * single-process sweep's. Null = per-sweep cache, constructed
     * from streamCapture/streamCacheBytes.
     */
    WorkloadCache *sharedCache = nullptr;
    /**
     * Test seam: invoked at the start of every solo attempt and of
     * every batch-member preparation, with that attempt's RunContext.
     * A throw is contained exactly like a run-body throw (the attempt
     * fails and the usual retry path runs). Null in production.
     */
    std::function<void(const ExperimentConfig &, const RunContext &)>
        onAttemptStart;
    /**
     * Called after each run reaches its final state (post-retry),
     * from the worker thread that ran it, before the sweep moves on.
     * sweep_all journals the run here so a killed sweep can resume.
     * Serialize internally if the callback touches shared state.
     */
    std::function<void(std::size_t index, const ExperimentResult &result,
                       double runSeconds)>
        onRunComplete;
    /**
     * Like onRunComplete but handed the run's config too, so a
     * consumer that needs the run's identity (the sweep service
     * publishing records to its content-addressed store under the
     * config's run key) does not have to carry an index-to-config
     * side table. Invoked just before onRunComplete, from the same
     * worker thread, under the same serialization caveat.
     */
    std::function<void(const ExperimentConfig &config, std::size_t index,
                       const ExperimentResult &result, double runSeconds)>
        onRunRecord;
};

/** Per-sweep observability (timings and cache effectiveness). */
struct SweepReport
{
    /** End-to-end sweep wall-clock, seconds. */
    double wallSeconds = 0.0;
    /** Per-config run wall-clock, seconds, in input order. */
    std::vector<double> runSeconds;
    unsigned jobs = 0;
    WorkloadCacheStats cache;
    /** Config-batched replay effectiveness (all 0 when batching was
     *  off or every group was a singleton). */
    std::uint64_t batchGroups = 0;   ///< multi-run groups run in lockstep
    std::uint64_t batchedRuns = 0;   ///< runs resolved inside a batch
    std::uint64_t batchFallouts = 0; ///< members that fell out to solo
};

/**
 * Min/max simulator throughput over the runs that completed (failed
 * runs are excluded — their kips is a meaningless default 0). `any`
 * is false when no run completed; callers must not report the
 * zero-initialized minimum as a measured one. A legitimately-zero
 * kips value from a completed run (e.g. a degraded retry under
 * --stable-output) IS a valid minimum and is not skipped.
 */
struct KipsSummary
{
    double minKips = 0.0;
    double maxKips = 0.0;
    bool any = false;
};

KipsSummary summarizeKips(const std::vector<ExperimentResult> &results);

/** Worker threads to use by default (hardware_concurrency, min 1). */
unsigned defaultJobs();

/**
 * Run body(i) for every i in [0, count) on up to `jobs` threads
 * (inline when jobs <= 1). Blocks until all iterations finish. The
 * body must not throw — an escaping exception would unwind a worker
 * thread and std::terminate the process, so callers with fallible
 * bodies must catch per iteration (as runSweep does). Iteration order
 * across threads is unspecified, so bodies must only touch disjoint
 * state (e.g. results[i]).
 */
void parallelFor(std::size_t count, unsigned jobs,
                 const std::function<void(std::size_t)> &body);

/**
 * Run every config in the grid and return results in input order.
 * All configs are validated up front (fail fast before any work).
 * A run body that throws does not take the sweep down: the exception
 * is caught per attempt, the run is retried up to options.maxRetries
 * times under the degraded profile (live emulation, no tracing or
 * histograms), and if every attempt fails the result comes back with
 * failed=true and the last message in error while every other run
 * completes normally.
 */
std::vector<ExperimentResult>
runSweep(const std::vector<ExperimentConfig> &configs,
         const SweepOptions &options = {}, SweepReport *report = nullptr);

} // namespace rvp

#endif // RVP_SIM_SWEEP_HH
