/**
 * @file
 * Experiment runner: the end-to-end recipe the paper's evaluation
 * uses. One experiment = build workload -> compile (graph-colouring
 * register allocation) -> profile the *train* input -> configure a
 * value predictor (and optionally re-allocate registers per Section
 * 7.3) -> run the *ref* input through the out-of-order core.
 *
 * Compilation and profiling are deterministic functions of
 * (workload, input[, profileInsts]), so a sweep over many experiment
 * configurations can share them; see sim/sweep.hh for the memoizing
 * parallel scheduler built on the hooks exposed here.
 */

#ifndef RVP_SIM_RUNNER_HH
#define RVP_SIM_RUNNER_HH

#include <string>
#include <tuple>

#include "common/deadline.hh"
#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "profile/reuse_profiler.hh"
#include "uarch/core.hh"
#include "vp/oracle.hh"
#include "workloads/workloads.hh"

namespace rvp
{

/** Configuration of one experiment run. */
struct ExperimentConfig
{
    std::string workload = "go";
    CoreParams core;
    VpScheme scheme = VpScheme::None;
    /** Compiler-assistance level for RVP schemes. */
    AssistLevel assist = AssistLevel::Same;
    /** Restrict prediction to loads. */
    bool loadsOnly = true;
    /** Profiler selection threshold (0.8; 0.9 for Figure 4). */
    double profileThreshold = 0.8;
    /** Instructions profiled on the train input. */
    std::uint64_t profileInsts = 300'000;
    /**
     * Figure 7: replace the optimistic profile application with a real
     * register re-allocation (Section 7.3) and plain same-register
     * dynamic RVP on the re-allocated binary.
     */
    bool realisticRealloc = false;
    /** Ablation: tag the RVP confidence counters. */
    bool taggedRvp = false;
    /**
     * Predictor table entries (LVP values / RVP counters; the paper
     * gives both mechanisms the same 1K-entry budget). Note: our
     * synthetic workloads have a few hundred static instructions, so
     * unlike the paper's SPEC95 binaries they never pressure the
     * table — this makes the LVP baseline here slightly *stronger*
     * than the paper's (see EXPERIMENTS.md); the ablation benchmarks
     * sweep the size.
     */
    unsigned tableEntries = 1024;
    /** Confidence threshold (paper: 7 on 3-bit resetting counters). */
    unsigned counterThreshold = 7;
    /**
     * Scheme-specific predictor overrides in the registry param-bag
     * grammar "key=value,key=value" (vp/registry.hh; empty = factory
     * defaults). Validated against the scheme's declared params by
     * validateExperimentConfig, which throws VpConfigError on
     * malformed text or unaccepted keys.
     */
    std::string vpParams;
    /**
     * Write a sampled pipeline-lifecycle trace of the timed run to
     * this path (empty = tracing off; the core then pays a single
     * predictable null-pointer branch per hook). A ".jsonl" suffix
     * selects the line-delimited format, anything else gets Chrome
     * trace-event JSON (load in chrome://tracing or ui.perfetto.dev).
     */
    std::string traceOut;
    /**
     * Trace every Nth dynamic instruction (by fetch sequence number,
     * so the sample set is identical across job counts). Must be > 0
     * when tracing is on.
     */
    std::uint64_t traceSample = 64;
};

/** Results of one experiment run. */
struct ExperimentResult
{
    double ipc = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;
    /** Fraction of committed instructions that were predicted. */
    double predictedFrac = 0.0;
    /** Prediction accuracy (correct / predicted). */
    double accuracy = 0.0;
    /**
     * A requested Section-7.3 re-allocation could not colour the graph
     * and the run silently kept the baseline allocation (so the
     * numbers measure plain same-register dynamic RVP, not the
     * re-allocated binary). Also recorded as the realloc.failed stat.
     */
    bool reallocFailed = false;
    /** Host wall-clock seconds spent inside Core::run(). */
    double hostSeconds = 0.0;
    /**
     * Simulator throughput: committed kilo-instructions per host
     * second. Deliberately NOT a StatSet entry — stat maps are
     * compared bit-for-bit across runs (golden snapshots, parallel
     * vs. serial sweeps) and host timing is nondeterministic.
     */
    double kips = 0.0;
    /**
     * The run body threw (set by runSweep's per-iteration containment,
     * never by runExperiment itself, which propagates). A failed run
     * keeps default-initialized metrics; `error` holds the exception
     * message. Checked by sweep_all when writing result rows.
     */
    bool failed = false;
    std::string error;
    /**
     * Recovery trail (set by runSweep, journaled by sweep_all): how
     * many retry attempts this result consumed, and whether it was
     * produced under the degraded profile (stream replay bypassed,
     * tracing and histograms off). A degraded success is still exact
     * for every stat the original configuration would have emitted
     * without tracing/histograms — replay is bit-identical to live.
     */
    unsigned retries = 0;
    bool degraded = false;
    StatSet stats;
};

/** A compiled workload instance (immutable once built). */
struct CompiledWorkload
{
    BuiltWorkload wl;
    AllocResult alloc;
    LowerResult low;
};

/**
 * Identity of a committed instruction stream (stream/stream.hh): the
 * emulator is deterministic, so the stream is keyed by exactly what
 * determines the bits of the executed binary — and by nothing that
 * only changes the timing model or the predictor around it (recovery
 * policy, table sizes, loadsOnly, core geometry all share one stream).
 */
struct StreamKey
{
    /** Which compiler pipeline produced the timed binary. */
    enum class Binary : std::uint8_t
    {
        Base,        ///< plain ref compile (incl. failed reallocs)
        SrvpMarked,  ///< rvp_*-marked loads (StaticRvp)
        Realloc,     ///< Section-7.3 register re-allocation
    };

    std::string workload;
    InputSet input = InputSet::Ref;
    Binary binary = Binary::Base;
    /** Mutated binaries only: the profile that shaped them. */
    AssistLevel assist = AssistLevel::Same;
    std::uint64_t profileInsts = 0;
    std::uint64_t thresholdBits = 0;   ///< profileThreshold bit pattern

    bool
    operator<(const StreamKey &o) const
    {
        return std::tie(workload, input, binary, assist, profileInsts,
                        thresholdBits) <
               std::tie(o.workload, o.input, o.binary, o.assist,
                        o.profileInsts, o.thresholdBits);
    }
    bool operator==(const StreamKey &) const = default;
};

/**
 * Stream identity of config's timed (ref) binary. reallocFailed runs
 * kept the baseline allocation, so they fold onto the Base key.
 */
StreamKey streamKeyFor(const ExperimentConfig &config,
                       bool reallocFailed);

/** Profile + critical-path scores over one compiled workload. */
struct ProfileRun
{
    ReuseProfile profile;
    std::vector<double> cpScores;
};

/** Build + register-allocate + lower one workload input. A non-null
 *  deadline is checked between the compilation phases. */
CompiledWorkload compileWorkload(const std::string &name, InputSet input,
                                 const RunDeadline *deadline = nullptr);

/** Run the reuse + critical-path profilers over a compiled workload.
 *  A non-null deadline is checked periodically in the profiling loop. */
ProfileRun profileCompiled(const CompiledWorkload &c, std::uint64_t insts,
                           const RunDeadline *deadline = nullptr);

/**
 * Fail fast (RVP_ASSERT) on contradictory experiment configurations —
 * combinations the runner would otherwise silently reinterpret, such
 * as realisticRealloc with a non-DynamicRvp scheme or StaticRvp with
 * loadsOnly=false.
 */
void validateExperimentConfig(const ExperimentConfig &config);

class WorkloadCache;   // sim/sweep.hh

/**
 * Everything about *how* one run executes that is not part of the
 * experiment's identity: shared caches, the watchdog deadline of this
 * attempt, and the degraded-retry switches. Plumbed (not stored in
 * ExperimentConfig) so the same config can be retried under a
 * different context without changing what it measures.
 */
struct RunContext
{
    /** Shared memo cache; null = compile/profile/capture from scratch. */
    WorkloadCache *cache = nullptr;
    /** Wall-clock budget of this attempt; null = no watchdog. */
    const RunDeadline *deadline = nullptr;
    /**
     * Degraded retry: skip committed-stream replay and run live
     * emulation even when a cache is present (a corrupt or
     * unbuildable stream must not fail the run twice).
     */
    bool bypassStream = false;
    /** Position in the sweep grid (fault-injection seam addressing). */
    std::size_t runIndex = 0;
    /** 0 = first attempt, 1 = the degraded retry. */
    unsigned attempt = 0;
};

/**
 * Everything a run builds *before* its timed Core exists: compiled
 * binaries, profiles, the predictor, the tracer, and the stream
 * identity of the timed binary. Splitting this out of runExperiment
 * lets config-batched replay (sim/batchrun.hh) prepare N runs, attach
 * them to one shared stream decode, and finish each with
 * finishExperiment() — while the solo path composes the same pieces
 * byte-identically.
 */
struct PreparedRun
{
    ExperimentConfig config;
    /** Train profile + the binary it points into (kept alive). */
    std::shared_ptr<const ProfileRun> trainProfile;
    std::shared_ptr<const CompiledWorkload> trainKeepalive;
    /** Pristine ref compile (shared, possibly cached). */
    std::shared_ptr<const CompiledWorkload> refShared;
    /** Private rewritten copy for binary-mutating schemes. Heap-held
     *  so moving a PreparedRun never relocates the Program the
     *  predictor references (StaticRvpPredictor keeps a reference to
     *  the marked binary). */
    std::unique_ptr<CompiledWorkload> mutated;
    bool useMutated = false;
    bool reallocFailed = false;
    StatSet reallocStats;
    VpConfig vp;
    std::unique_ptr<ValuePredictor> predictor;
    std::unique_ptr<PipelineTracer> tracer;
    /** Stream identity of the timed binary (realloc failures folded). */
    StreamKey key;
    /** Instructions a replay must cover: the commit budget plus the
     *  fetch-ahead window (ROB) and the final commit group. */
    std::uint64_t minInsts = 0;

    /** The binary the timed Core runs. */
    const Program &
    timedProgram() const
    {
        return useMutated ? mutated->low.program
                          : refShared->low.program;
    }
};

/**
 * Build everything up to (but not including) the timed Core: compile,
 * profile, apply the scheme's binary rewrite, construct the predictor
 * and tracer. Memoized through context.cache when present. Throws on
 * the same failures runExperiment would (deadline, validation, OOM).
 */
PreparedRun prepareExperiment(const ExperimentConfig &config,
                              const RunContext &context);

/**
 * Turn a finished timed run into an ExperimentResult: write the trace
 * (if any), assemble stats, attribute hostSeconds. `cr` is taken by
 * value because trace bookkeeping lands in its stat map.
 */
ExperimentResult finishExperiment(PreparedRun &prep, CoreResult cr,
                                  double hostSeconds);

/**
 * Run one experiment end to end under an explicit context. With a
 * non-null context.cache, compilation and train-profiling are memoized
 * across runs (bit-identical results; see sim/sweep.hh).
 */
ExperimentResult runExperiment(const ExperimentConfig &config,
                               const RunContext &context);

/** Convenience overload: cache only, default context otherwise. */
ExperimentResult runExperiment(const ExperimentConfig &config,
                               WorkloadCache *cache);

/** Run one experiment end to end (no memoization). */
ExperimentResult runExperiment(const ExperimentConfig &config);

/**
 * Run the profiler only (Figure 1): returns the ReuseProfile of the
 * named workload's *ref* input.
 */
ReuseProfile profileWorkload(const std::string &workload,
                             std::uint64_t insts, InputSet input);

} // namespace rvp

#endif // RVP_SIM_RUNNER_HH
