#include "sim/shard.hh"

#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "common/jsonlite.hh"
#include "common/logging.hh"
#include "common/subprocess.hh"

namespace rvp
{

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

std::vector<WorkUnit>
partitionWork(const std::vector<ExperimentConfig> &gridConfigs,
              const std::vector<std::size_t> &pending,
              unsigned maxUnitRuns)
{
    // Group by stream key in first-appearance order — the same
    // grouping batched replay performs inside each worker, so a unit
    // never mixes runs that would decode different streams.
    std::map<StreamKey, std::size_t> byKey;
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t idx : pending) {
        RVP_ASSERT(idx < gridConfigs.size(),
                   "pending index out of grid range");
        StreamKey key = streamKeyFor(gridConfigs[idx], false);
        auto [it, fresh] = byKey.emplace(key, groups.size());
        if (fresh)
            groups.emplace_back();
        groups[it->second].push_back(idx);
    }

    // Chunk oversized groups. Each chunk keeps input order so the
    // worker's journal appends land in a deterministic per-unit order.
    std::vector<WorkUnit> units;
    for (const std::vector<std::size_t> &group : groups) {
        std::size_t chunk = maxUnitRuns == 0 ? group.size() : maxUnitRuns;
        for (std::size_t at = 0; at < group.size(); at += chunk) {
            WorkUnit unit;
            std::size_t n = std::min(chunk, group.size() - at);
            unit.indices.assign(group.begin() + at,
                                group.begin() + at + n);
            units.push_back(std::move(unit));
        }
    }

    // Largest first (LPT): a big unit handed out last would serialize
    // the whole tail behind one worker. stable_sort keeps equal-sized
    // units in grid order, so the partition is deterministic.
    std::stable_sort(units.begin(), units.end(),
                     [](const WorkUnit &a, const WorkUnit &b) {
                         return a.indices.size() > b.indices.size();
                     });
    for (std::size_t i = 0; i < units.size(); ++i)
        units[i].id = i;
    return units;
}

// ---------------------------------------------------------------------
// Protocol codec
// ---------------------------------------------------------------------

std::string
encodeHello(const std::string &sweepHash, std::uint64_t gridRuns)
{
    std::string s = "{\"type\": \"hello\", \"version\": ";
    s += std::to_string(shardProtocolVersion);
    s += ", \"sweep_hash\": \"" + jsonEscape(sweepHash) + "\"";
    s += ", \"grid_runs\": " + std::to_string(gridRuns) + "}";
    return s;
}

std::string
encodeUnit(const WorkUnit &unit)
{
    std::string s = "{\"type\": \"unit\", \"id\": ";
    s += std::to_string(unit.id);
    s += ", \"indices\": [";
    for (std::size_t i = 0; i < unit.indices.size(); ++i) {
        if (i)
            s += ", ";
        s += std::to_string(unit.indices[i]);
    }
    s += "]}";
    return s;
}

std::string
encodeDone(std::uint64_t id, std::uint64_t okRuns,
           std::uint64_t failedRuns, std::uint64_t batchGroups,
           std::uint64_t batchedRuns, std::uint64_t batchFallouts)
{
    std::string s = "{\"type\": \"done\", \"id\": " + std::to_string(id);
    s += ", \"ok\": " + std::to_string(okRuns);
    s += ", \"failed\": " + std::to_string(failedRuns);
    s += ", \"batch_groups\": " + std::to_string(batchGroups);
    s += ", \"batched_runs\": " + std::to_string(batchedRuns);
    s += ", \"batch_fallouts\": " + std::to_string(batchFallouts) + "}";
    return s;
}

std::string
encodeShutdown()
{
    return "{\"type\": \"shutdown\"}";
}

std::string
encodeBye(const WorkloadCacheStats &cache)
{
    std::string s = "{\"type\": \"bye\"";
    auto add = [&s](const char *name, std::uint64_t v) {
        s += ", \"";
        s += name;
        s += "\": " + std::to_string(v);
    };
    add("compile_hits", cache.compileHits);
    add("compile_misses", cache.compileMisses);
    add("profile_hits", cache.profileHits);
    add("profile_misses", cache.profileMisses);
    add("stream_hits", cache.streamHits);
    add("stream_misses", cache.streamMisses);
    add("stream_evicted", cache.streamEvicted);
    add("stream_integrity_failures", cache.streamIntegrityFailures);
    add("stream_capture_ooms", cache.streamCaptureOoms);
    add("stream_bytes_built", cache.streamBytesBuilt);
    add("stream_insts_built", cache.streamInstsBuilt);
    add("stream_bytes_resident", cache.streamBytesResident);
    s += "}";
    return s;
}

ShardMsg
decodeShardMsg(const std::string &payload)
{
    std::map<std::string, JsonValue> obj = parseJsonLine(payload);
    ShardMsg msg;
    msg.type = jsonField(obj, "type").str;
    if (msg.type == "hello") {
        msg.version =
            static_cast<unsigned>(jsonField(obj, "version").u64());
        msg.sweepHash = jsonField(obj, "sweep_hash").str;
        msg.gridRuns = jsonField(obj, "grid_runs").u64();
    } else if (msg.type == "unit") {
        msg.id = jsonField(obj, "id").u64();
        for (const JsonValue &v : jsonField(obj, "indices").arr) {
            if (v.kind != JsonValue::Kind::Num)
                throw std::runtime_error("non-numeric unit index");
            msg.indices.push_back(static_cast<std::size_t>(v.u64()));
        }
    } else if (msg.type == "done") {
        msg.id = jsonField(obj, "id").u64();
        msg.okRuns = jsonField(obj, "ok").u64();
        msg.failedRuns = jsonField(obj, "failed").u64();
        msg.batchGroups = jsonField(obj, "batch_groups").u64();
        msg.batchedRuns = jsonField(obj, "batched_runs").u64();
        msg.batchFallouts = jsonField(obj, "batch_fallouts").u64();
    } else if (msg.type == "shutdown") {
        // no fields
    } else if (msg.type == "bye") {
        msg.cache.compileHits = jsonField(obj, "compile_hits").u64();
        msg.cache.compileMisses = jsonField(obj, "compile_misses").u64();
        msg.cache.profileHits = jsonField(obj, "profile_hits").u64();
        msg.cache.profileMisses = jsonField(obj, "profile_misses").u64();
        msg.cache.streamHits = jsonField(obj, "stream_hits").u64();
        msg.cache.streamMisses = jsonField(obj, "stream_misses").u64();
        msg.cache.streamEvicted = jsonField(obj, "stream_evicted").u64();
        msg.cache.streamIntegrityFailures =
            jsonField(obj, "stream_integrity_failures").u64();
        msg.cache.streamCaptureOoms =
            jsonField(obj, "stream_capture_ooms").u64();
        msg.cache.streamBytesBuilt =
            jsonField(obj, "stream_bytes_built").u64();
        msg.cache.streamInstsBuilt =
            jsonField(obj, "stream_insts_built").u64();
        msg.cache.streamBytesResident =
            jsonField(obj, "stream_bytes_resident").u64();
    } else {
        throw std::runtime_error("unknown shard message type '" +
                                 msg.type + "'");
    }
    return msg;
}

// ---------------------------------------------------------------------
// Journal discovery and merge
// ---------------------------------------------------------------------

std::vector<std::string>
findShardJournals(const std::string &mainJournalPath)
{
    std::vector<std::string> paths;
    struct stat st;
    if (::stat(mainJournalPath.c_str(), &st) == 0)
        paths.push_back(mainJournalPath);

    namespace fs = std::filesystem;
    fs::path main(mainJournalPath);
    fs::path dir = main.parent_path();
    if (dir.empty())
        dir = ".";
    std::string stem = main.filename().string() + ".w";

    std::vector<std::pair<unsigned long, std::string>> shards;
    std::error_code ec;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir, ec)) {
        std::string name = entry.path().filename().string();
        if (name.size() <= stem.size() ||
            name.compare(0, stem.size(), stem) != 0)
            continue;
        std::string suffix = name.substr(stem.size());
        // Only all-digit slot suffixes: ".w3" yes, ".w3.tmp" no.
        if (suffix.find_first_not_of("0123456789") != std::string::npos)
            continue;
        shards.emplace_back(std::strtoul(suffix.c_str(), nullptr, 10),
                            (dir / name).string());
    }
    std::sort(shards.begin(), shards.end());
    for (auto &[slot, path] : shards)
        paths.push_back(std::move(path));
    return paths;
}

MergedJournal
mergeShardJournals(const std::vector<std::string> &paths,
                   const std::string &expectSweepHash)
{
    MergedJournal merged;
    for (const std::string &path : paths) {
        RunJournal::Loaded loaded = RunJournal::load(path);
        if (!loaded.sweepHash.empty() &&
            loaded.sweepHash != expectSweepHash)
            throw std::runtime_error(
                "journal '" + path +
                "' belongs to a different sweep configuration (hash " +
                loaded.sweepHash + " != " + expectSweepHash + ")");
        merged.skippedLines += loaded.skippedLines;
        for (auto &[key, rec] : loaded.runs) {
            auto it = merged.runs.find(key);
            // A successful record never loses to a failed one (a
            // reassigned unit may be journaled failed by the worker
            // that died mid-run and ok by the one that redid it, in
            // either file order); otherwise the later file wins.
            if (it != merged.runs.end() && !it->second.result.failed &&
                rec.result.failed)
                continue;
            merged.runs.insert_or_assign(key, std::move(rec));
        }
    }
    return merged;
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** One worker process slot as the coordinator sees it. */
struct WorkerSlot
{
    unsigned slot = 0;
    ChildProcess proc;
    std::unique_ptr<FrameReader> reader;
    bool helloed = false;
    bool hasUnit = false;
    bool shutdownSent = false;
    WorkUnit unit;
    /** Start of the current obligation (spawn -> hello, or unit ->
     *  done); the unit deadline measures from here. */
    Clock::time_point busySince;
};

void
reapWorker(WorkerSlot &w)
{
    if (!w.proc.ok())
        return;
    // The worker runs in its own process group (spawnProcess), so a
    // negative-pid kill also takes out any grandchildren that would
    // otherwise keep our pipe ends open as orphans.
    ::kill(-w.proc.pid, SIGKILL);
    ::kill(w.proc.pid, SIGKILL);
    closeChildPipes(w.proc);
    int status = 0;
    while (::waitpid(w.proc.pid, &status, 0) < 0 && errno == EINTR) {
    }
    w.proc.pid = -1;
}

} // namespace

bool
runShardedSweep(const std::vector<WorkUnit> &units,
                const ShardOptions &options, ShardReport &report)
{
    report = ShardReport();
    if (units.empty())
        return true;
    RVP_ASSERT(options.workers >= 1, "sharded sweep needs >= 1 worker");
    RVP_ASSERT(options.workerCommand, "sharded sweep needs a command");

    // A dead worker's pipe write must EPIPE, not kill the coordinator.
    ScopedSigpipeIgnore sigpipe;

    std::deque<WorkUnit> queue(units.begin(), units.end());
    std::size_t totalUnits = units.size();
    std::size_t unitsDone = 0;
    std::vector<WorkerSlot> workers;
    unsigned nextSlot = 0;
    unsigned initialTarget = static_cast<unsigned>(
        std::min<std::size_t>(options.workers, queue.size()));
    unsigned respawnBudget =
        options.maxRespawns ? options.maxRespawns : options.workers;
    unsigned spawnAllowance = initialTarget + respawnBudget;

    auto abortAll = [&](const std::string &why) {
        for (WorkerSlot &w : workers)
            reapWorker(w);
        report.error = why;
        return false;
    };

    // Kill the process, reclaim its unit, count the death.
    auto failWorker = [&](WorkerSlot &w, const char *why) {
        if (options.progress)
            std::fprintf(stderr, "[shard] worker %u lost (%s)\n", w.slot,
                         why);
        reapWorker(w);
        ++report.workerDeaths;
        if (w.hasUnit) {
            queue.push_front(std::move(w.unit));
            ++report.unitsReassigned;
            w.hasUnit = false;
        }
    };

    auto spawnOne = [&]() -> bool {
        if (report.workersSpawned >= spawnAllowance)
            return false;
        WorkerSlot w;
        w.slot = nextSlot++;
        std::string journal =
            options.journalPrefix + std::to_string(w.slot);
        w.proc = options.workerCommand
                     ? spawnProcess(options.workerCommand(w.slot, journal))
                     : ChildProcess();
        if (!w.proc.ok())
            return false;
        w.reader = std::make_unique<FrameReader>(w.proc.fromChild);
        w.busySince = Clock::now();
        report.journalPaths.push_back(journal);
        ++report.workersSpawned;
        workers.push_back(std::move(w));
        return true;
    };

    // Returns false only on a sweep-fatal condition (report.error set).
    auto handleMsg = [&](WorkerSlot &w, const ShardMsg &msg) -> bool {
        if (msg.type == "hello") {
            if (msg.version != shardProtocolVersion)
                return abortAll("worker speaks protocol version " +
                                std::to_string(msg.version) +
                                ", coordinator speaks " +
                                std::to_string(shardProtocolVersion));
            if (msg.sweepHash != options.sweepHash)
                return abortAll(
                    "worker reported a different sweep configuration "
                    "(hash " + msg.sweepHash + " != " +
                    options.sweepHash + ")");
            w.helloed = true;
            return true;
        }
        if (msg.type == "done") {
            if (!w.hasUnit || msg.id != w.unit.id)
                throw std::runtime_error("done for a unit not held");
            w.hasUnit = false;
            w.busySince = Clock::now();
            ++unitsDone;
            report.batchGroups += msg.batchGroups;
            report.batchedRuns += msg.batchedRuns;
            report.batchFallouts += msg.batchFallouts;
            if (options.progress)
                std::fprintf(stderr,
                             "[shard] unit %llu done on worker %u "
                             "(%llu ok, %llu failed) [%zu/%zu]\n",
                             static_cast<unsigned long long>(msg.id),
                             w.slot,
                             static_cast<unsigned long long>(msg.okRuns),
                             static_cast<unsigned long long>(
                                 msg.failedRuns),
                             unitsDone, totalUnits);
            return true;
        }
        if (msg.type == "bye") {
            auto add = [](std::uint64_t &into, std::uint64_t v) {
                into += v;
            };
            add(report.cache.compileHits, msg.cache.compileHits);
            add(report.cache.compileMisses, msg.cache.compileMisses);
            add(report.cache.profileHits, msg.cache.profileHits);
            add(report.cache.profileMisses, msg.cache.profileMisses);
            add(report.cache.streamHits, msg.cache.streamHits);
            add(report.cache.streamMisses, msg.cache.streamMisses);
            add(report.cache.streamEvicted, msg.cache.streamEvicted);
            add(report.cache.streamIntegrityFailures,
                msg.cache.streamIntegrityFailures);
            add(report.cache.streamCaptureOoms,
                msg.cache.streamCaptureOoms);
            add(report.cache.streamBytesBuilt,
                msg.cache.streamBytesBuilt);
            add(report.cache.streamInstsBuilt,
                msg.cache.streamInstsBuilt);
            add(report.cache.streamBytesResident,
                msg.cache.streamBytesResident);
            return true;
        }
        throw std::runtime_error("unexpected message type '" + msg.type +
                                 "'");
    };

    bool shuttingDown = false;
    Clock::time_point shutdownStart;
    constexpr double shutdownGraceSeconds = 10.0;

    for (;;) {
        // Retire reaped slots.
        workers.erase(std::remove_if(workers.begin(), workers.end(),
                                     [](const WorkerSlot &w) {
                                         return !w.proc.ok();
                                     }),
                      workers.end());

        bool anyBusy = std::any_of(workers.begin(), workers.end(),
                                   [](const WorkerSlot &w) {
                                       return w.hasUnit;
                                   });
        if (!shuttingDown && queue.empty() && !anyBusy) {
            // All units accounted for: ask everyone to report cache
            // stats and exit.
            shuttingDown = true;
            shutdownStart = Clock::now();
            for (WorkerSlot &w : workers) {
                w.shutdownSent = true;
                if (!writeFrame(w.proc.toChild, encodeShutdown()))
                    reapWorker(w);   // already done its work; no death
            }
        }
        if (shuttingDown) {
            if (workers.empty())
                break;
            if (secondsSince(shutdownStart) > shutdownGraceSeconds) {
                for (WorkerSlot &w : workers)
                    reapWorker(w);
                continue;
            }
        } else {
            // Keep the pool at strength while work remains (never more
            // processes than outstanding units). Exhausting the spawn
            // allowance with units still queued means the grid cannot
            // finish — fail loudly rather than hang.
            std::size_t busyCount = static_cast<std::size_t>(
                std::count_if(workers.begin(), workers.end(),
                              [](const WorkerSlot &w) {
                                  return w.hasUnit;
                              }));
            std::size_t wanted = std::min<std::size_t>(
                options.workers, queue.size() + busyCount);
            while (workers.size() < wanted) {
                if (spawnOne())
                    continue;
                // Out of respawn budget (or fork failed): any still-
                // alive workers can drain the queue alone; with none
                // left the grid cannot finish — fail loudly.
                if (workers.empty())
                    return abortAll(
                        "worker pool exhausted with " +
                        std::to_string(queue.size()) +
                        " unit(s) still queued (respawn budget " +
                        std::to_string(respawnBudget) + " used up)");
                break;
            }

            // Hand units to idle workers (work stealing: first idle
            // worker takes the head of the queue).
            for (WorkerSlot &w : workers) {
                if (queue.empty())
                    break;
                if (!w.helloed || w.hasUnit)
                    continue;
                WorkUnit unit = std::move(queue.front());
                queue.pop_front();
                if (!writeFrame(w.proc.toChild, encodeUnit(unit))) {
                    queue.push_front(std::move(unit));
                    failWorker(w, "pipe write failed");
                    continue;
                }
                w.unit = std::move(unit);
                w.hasUnit = true;
                w.busySince = Clock::now();
                if (options.progress)
                    std::fprintf(
                        stderr,
                        "[shard] unit %llu (%zu runs) -> worker %u\n",
                        static_cast<unsigned long long>(w.unit.id),
                        w.unit.indices.size(), w.slot);
            }
        }

        // Wait for frames.
        std::vector<struct pollfd> fds;
        fds.reserve(workers.size());
        for (WorkerSlot &w : workers)
            fds.push_back({w.proc.fromChild, POLLIN, 0});
        int timeoutMs = options.unitDeadline > 0.0 ? 50 : 200;
        int rc = ::poll(fds.data(), fds.size(), timeoutMs);
        if (rc < 0 && errno != EINTR)
            return abortAll(std::string("poll failed: ") +
                            std::strerror(errno));

        for (std::size_t i = 0; i < workers.size(); ++i) {
            WorkerSlot &w = workers[i];
            if (!w.proc.ok() || !(fds[i].revents & (POLLIN | POLLHUP |
                                                    POLLERR)))
                continue;
            bool alive = w.reader->fill();
            try {
                while (w.proc.ok()) {
                    std::optional<std::string> payload = w.reader->next();
                    if (!payload)
                        break;
                    if (!handleMsg(w, decodeShardMsg(*payload)))
                        return false;   // abortAll already ran
                }
            } catch (const std::exception &e) {
                failWorker(w, e.what());
                continue;
            }
            if (!alive) {
                if (w.shutdownSent)
                    reapWorker(w);   // clean exit after bye
                else
                    failWorker(w, "pipe closed");
            }
        }

        // Watchdog: a worker that sits on one obligation (hello or
        // unit) past the deadline is hung — kill and reassign.
        if (!shuttingDown && options.unitDeadline > 0.0) {
            for (WorkerSlot &w : workers) {
                if (!w.proc.ok())
                    continue;
                bool obligated = !w.helloed || w.hasUnit;
                if (obligated &&
                    secondsSince(w.busySince) > options.unitDeadline)
                    failWorker(w, "unit deadline exceeded");
            }
        }
    }

    return true;
}

} // namespace rvp
