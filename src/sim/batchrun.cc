#include "sim/batchrun.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <new>
#include <optional>

#include "common/logging.hh"

namespace rvp
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Per-member driver state (beyond the PreparedRun). */
struct Member
{
    PreparedRun prep;
    /** This member's wall-clock budget, armed at preparation (shared
     *  wall clock: co-members' bursts count against it). */
    std::optional<RunDeadline> deadline;
    std::unique_ptr<Core> core;
    BatchedStreamRun::Consumer *consumer = nullptr;
    unsigned fetchWidth = 1;
    double hostSeconds = 0.0;
    bool alive = false;
    bool coreDone = false;
};

} // namespace

std::vector<BatchMemberOutcome>
runBatchedGroup(const std::vector<ExperimentConfig> &configs,
                const std::vector<std::size_t> &gridIndices,
                const StreamKey &groupKey, WorkloadCache &cache,
                const BatchRunOptions &options)
{
    const std::size_t n = configs.size();
    RVP_ASSERT(gridIndices.size() == n);
    std::vector<BatchMemberOutcome> out(n);
    std::vector<Member> members(n);

    auto failMember = [&](std::size_t j, const std::string &what) {
        members[j].alive = false;
        out[j].ran = true;
        out[j].result = ExperimentResult{};
        out[j].result.failed = true;
        out[j].result.error = what;
    };

    // ---- Phase 1: prepare every member (attempt 0 starts here, so a
    // prepare failure is a consumed attempt and the deadline is armed
    // before any compilation, exactly like the solo path). ----
    for (std::size_t j = 0; j < n; ++j) {
        Member &m = members[j];
        RunContext context;
        context.cache = &cache;
        context.runIndex = gridIndices[j];
        context.attempt = 0;
        if (options.runDeadline > 0.0) {
            m.deadline.emplace(options.runDeadline);
            context.deadline = &*m.deadline;
        }
        try {
            if (options.onAttemptStart)
                options.onAttemptStart(configs[j], context);
            m.prep = prepareExperiment(configs[j], context);
            if (m.prep.key == groupKey) {
                m.alive = true;
            } else {
                // The actual key diverged from the presumed one (a
                // failed re-allocation folds onto the Base binary):
                // this member belongs to a different stream, so it
                // runs solo from attempt 0.
                out[j].ran = false;
            }
        } catch (const std::exception &e) {
            failMember(j, e.what());
        } catch (...) {
            failMember(j, "unknown exception");
        }
    }

    std::size_t first_alive = n;
    std::uint64_t max_min_insts = 0;
    for (std::size_t j = 0; j < n; ++j) {
        if (!members[j].alive)
            continue;
        if (first_alive == n)
            first_alive = j;
        max_min_insts =
            std::max(max_min_insts, members[j].prep.minInsts);
    }
    if (first_alive == n)
        return out;

    // ---- Phase 2: acquire the shared stream. Built once at the
    // largest member bound; every member still makes its own cache
    // lookup so the hit/miss counters match a solo sweep. ----
    const RunDeadline *build_deadline =
        members[first_alive].deadline ? &*members[first_alive].deadline
                                      : nullptr;
    const Program &timed = members[first_alive].prep.timedProgram();
    WorkloadCache::StreamPtr stream;
    try {
        stream = cache.stream(
            groupKey, max_min_insts, [&](std::uint64_t max_bytes) {
                return CapturedStream::capture(timed, max_min_insts,
                                               max_bytes,
                                               build_deadline);
            });
    } catch (const std::bad_alloc &) {
        // Same recovery as the solo path: shrink the budget, pin the
        // key live, and let every member run solo (never a failure).
        cache.noteCaptureOom(groupKey);
        warn("stream capture ran out of memory for %s; shrinking the "
             "cache budget and running the batch live",
             configs[first_alive].workload.c_str());
        stream = nullptr;
    } catch (const std::exception &e) {
        // The shared capture failed (e.g. the builder's deadline
        // expired): every member of the batch shared that build, so
        // each consumed attempt 0 — mirroring how solo runs sharing a
        // memoized build all receive its exception.
        for (std::size_t j = 0; j < n; ++j)
            if (members[j].alive)
                failMember(j, e.what());
        return out;
    }
    for (std::size_t j = 0; j < n; ++j) {
        if (!members[j].alive || j == first_alive)
            continue;
        // Normally a pure lookup (the entry is resolved): counts the
        // same cache hit/miss a solo run of this member would. If a
        // concurrent group's build evicted the entry meanwhile, the
        // already-built stream is reinstalled instead of re-captured.
        cache.stream(members[j].prep.key, members[j].prep.minInsts,
                     [&](std::uint64_t) { return stream; });
    }
    if (!stream) {
        // Over-budget or OOM-pinned: live emulation, solo, attempt 0.
        for (std::size_t j = 0; j < n; ++j)
            if (members[j].alive)
                out[j].ran = false;
        return out;
    }

    // ---- Phase 3: attach the batch (integrity-verified) and the
    // per-member cores. ----
    std::optional<BatchedStreamRun> batch;
    try {
        batch.emplace(stream, options.ringSlots);
    } catch (const StreamIntegrityError &e) {
        cache.noteStreamIntegrityFailure(groupKey);
        warn("%s for %s; falling back to live emulation",
             e.what(), configs[first_alive].workload.c_str());
        for (std::size_t j = 0; j < n; ++j)
            if (members[j].alive)
                out[j].ran = false;
        return out;
    }

    std::size_t started = 0;
    std::size_t live = 0;
    for (std::size_t j = 0; j < n; ++j) {
        Member &m = members[j];
        if (!m.alive)
            continue;
        m.fetchWidth = m.prep.config.core.fetchWidth;
        m.consumer = batch->addConsumer();
        m.core = std::make_unique<Core>(
            m.prep.config.core, m.prep.timedProgram(),
            *m.prep.predictor, m.prep.tracer.get(), m.consumer,
            m.deadline ? &*m.deadline : nullptr);
        ++started;
        ++live;
    }

    // ---- Phase 4: lockstep. Each pass refills the decode ring as
    // far as the slowest live member allows, then bursts every member
    // until it would outrun the frontier (or finishes). The laggard
    // can always burst (ring >> fetchWidth), so every pass makes
    // progress; once decoding is done, members free-run to the end.
    // ----
    double decode_seconds = 0.0;
    while (live > 0) {
        auto d0 = std::chrono::steady_clock::now();
        batch->refill();
        decode_seconds += secondsSince(d0);
        for (std::size_t j = 0; j < n; ++j) {
            Member &m = members[j];
            if (!m.alive || m.coreDone)
                continue;
            auto t0 = std::chrono::steady_clock::now();
            try {
                while (!m.coreDone &&
                       (batch->decodeDone() ||
                        m.consumer->position() + m.fetchWidth <=
                            batch->decodedCount())) {
                    if (!m.core->stepCycle())
                        m.coreDone = true;
                }
            } catch (const std::exception &e) {
                m.hostSeconds += secondsSince(t0);
                failMember(j, e.what());
                m.consumer->detach();
                --live;
                continue;
            } catch (...) {
                m.hostSeconds += secondsSince(t0);
                failMember(j, "unknown exception");
                m.consumer->detach();
                --live;
                continue;
            }
            m.hostSeconds += secondsSince(t0);
            if (m.coreDone) {
                m.consumer->detach();
                --live;
            }
        }
    }

    // ---- Phase 5: finalize the members that completed. The shared
    // decode time is attributed evenly across the members that ran
    // (the solo path would have paid a full decode each). ----
    double decode_share =
        started > 0 ? decode_seconds / static_cast<double>(started)
                    : 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        Member &m = members[j];
        if (!m.alive || !m.coreDone)
            continue;
        auto t0 = std::chrono::steady_clock::now();
        try {
            CoreResult cr = m.core->finalize();
            m.hostSeconds += secondsSince(t0);
            out[j].result = finishExperiment(
                m.prep, std::move(cr), m.hostSeconds + decode_share);
            out[j].ran = true;
        } catch (const std::exception &e) {
            failMember(j, e.what());
        } catch (...) {
            failMember(j, "unknown exception");
        }
    }
    return out;
}

} // namespace rvp
