/**
 * @file
 * Fault injection for robustness tests. Builds on the scheduler's
 * SweepOptions::runFn seam: makeFaultInjectingRunFn wraps the real
 * runExperiment with a plan that makes chosen grid indices misbehave
 * in controlled ways — throw, sleep past the watchdog deadline,
 * simulate allocation failure during stream capture, or corrupt /
 * truncate the cached committed stream so cursor attach fails
 * integrity verification.
 *
 * Every fault maps to a production recovery path:
 *
 *   Throw            -> retry under the degraded profile, or a
 *                       recorded failure when persistent
 *   SleepPastDeadline-> DeadlineExceeded out of the run, same retry
 *   BadAlloc         -> WorkloadCache::noteCaptureOom (budget halved,
 *                       key pinned live), run completes via live
 *                       emulation with identical stats
 *   CorruptStream /
 *   TruncateStream   -> StreamIntegrityError at cursor attach,
 *                       noteStreamIntegrityFailure, live fallback
 *
 * Test-only: nothing here is linked into sweep_all. The capture hook
 * is process-global, so BadAlloc plans require jobs=1 (documented on
 * armCaptureBadAlloc).
 */

#ifndef RVP_SIM_FAULTINJECT_HH
#define RVP_SIM_FAULTINJECT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "sim/sweep.hh"

namespace rvp
{

// Test-only corruption seams defined in stream/stream.cc (friends of
// CapturedStream). lane: 0=index 1=value 2=address 3=taken.
void corruptStreamForTest(const CapturedStream &stream, unsigned lane,
                          std::size_t offset, std::uint8_t xorMask);
void truncateStreamForTest(const CapturedStream &stream, unsigned lane,
                           std::size_t dropBytes);

/** What a targeted run does instead of (or on the way to) running. */
enum class FaultKind
{
    /** Throw std::runtime_error before the run starts. */
    Throw,
    /** Sleep plan.sleepSeconds, then run — an armed watchdog deadline
     *  (SweepOptions::runDeadline < sleepSeconds) expires and the run
     *  fails with DeadlineExceeded at its first check. */
    SleepPastDeadline,
    /** Arm the capture hook to throw std::bad_alloc mid-capture, then
     *  run. Requires jobs=1 (the hook is process-global). */
    BadAlloc,
    /** XOR one byte of the already-cached stream for this config's
     *  StreamKey, then run: cursor attach fails verification and the
     *  run falls back to live emulation. The stream must already be
     *  resolved in the cache (schedule an earlier run with the same
     *  key), otherwise the probe pins a negative entry. */
    CorruptStream,
    /** Drop tail bytes of a cached lane; same recovery path. */
    TruncateStream,
};

/** Which runs fault, and how. */
struct FaultPlan
{
    /** Grid index -> fault. Untargeted indices delegate untouched. */
    std::map<std::size_t, FaultKind> faults;
    /** false: the fault fires on attempt 0 only, so the degraded
     *  retry succeeds (transient fault). true: every attempt faults
     *  (persistent fault -> recorded failure). */
    bool persistent = false;
    /** SleepPastDeadline sleep length, seconds. */
    double sleepSeconds = 0.05;
    /** Corruption target: lane (0..3), byte offset, XOR mask. */
    unsigned corruptLane = 1;
    std::size_t corruptOffset = 0;
    std::uint8_t corruptXor = 0x40;
    /** BadAlloc: capture throws once this many insts are encoded. */
    std::uint64_t oomAfterInsts = 0;
};

/**
 * Arm CapturedStream::captureHook to throw std::bad_alloc once a
 * capture has encoded afterInsts instructions. Process-global: only
 * one capture may run at a time while armed (jobs=1). Pair with
 * disarmCaptureFaults() (RAII: CaptureFaultGuard).
 */
void armCaptureBadAlloc(std::uint64_t afterInsts);

/** Clear the capture hook. Safe to call when not armed. */
void disarmCaptureFaults();

/** Scope guard: disarms the capture hook on destruction. */
struct CaptureFaultGuard
{
    CaptureFaultGuard() = default;
    ~CaptureFaultGuard() { disarmCaptureFaults(); }
    CaptureFaultGuard(const CaptureFaultGuard &) = delete;
    CaptureFaultGuard &operator=(const CaptureFaultGuard &) = delete;
};

/**
 * Shared observer for a fault-injecting runFn: how many faults
 * actually fired (tests assert the fault was exercised, not skipped).
 */
struct FaultLog
{
    std::atomic<unsigned> fired{0};
};

/**
 * Build a SweepOptions::runFn that injects plan's faults and
 * delegates everything else to runExperiment(config, context). The
 * returned callable owns a copy of the plan; log (optional) counts
 * fired faults.
 */
std::function<ExperimentResult(const ExperimentConfig &, WorkloadCache &,
                               const RunContext &)>
makeFaultInjectingRunFn(const FaultPlan &plan,
                        std::shared_ptr<FaultLog> log = nullptr);

} // namespace rvp

#endif // RVP_SIM_FAULTINJECT_HH
