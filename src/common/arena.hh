/**
 * @file
 * Monotonic bump allocator. Config-batched replay (sim/batchrun.hh)
 * steps N per-config timing models off one decode ring; the ring, the
 * per-config stream consumers, and the batch bookkeeping are packed
 * into one arena so the N working sets sit contiguously instead of
 * scattering across the general heap.
 *
 * Lifetime contract: allocations are never freed individually — the
 * whole arena is released at once by the destructor, and *no
 * destructors are run* for objects placed in it. Only place objects
 * whose destructor has no observable effect (PODs, or classes owning
 * no resources).
 */

#ifndef RVP_COMMON_ARENA_HH
#define RVP_COMMON_ARENA_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

namespace rvp
{

class MonotonicArena
{
  public:
    explicit MonotonicArena(std::size_t blockBytes = 1u << 20)
        : blockBytes_(blockBytes)
    {
    }

    MonotonicArena(const MonotonicArena &) = delete;
    MonotonicArena &operator=(const MonotonicArena &) = delete;

    ~MonotonicArena()
    {
        for (Block &b : blocks_)
            ::operator delete(b.base, std::align_val_t{kAlign});
    }

    /** Raw storage, aligned to alignof(std::max_align_t) at most. */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        std::size_t at = (used_ + (align - 1)) & ~(align - 1);
        if (blocks_.empty() || at + bytes > blocks_.back().size) {
            std::size_t size = std::max(blockBytes_, bytes);
            Block b;
            b.base = static_cast<std::uint8_t *>(
                ::operator new(size, std::align_val_t{kAlign}));
            b.size = size;
            blocks_.push_back(b);
            at = 0;
        }
        used_ = at + bytes;
        return blocks_.back().base + at;
    }

    /** Construct one T in the arena (its destructor will NOT run). */
    template <typename T, typename... Args>
    T *
    make(Args &&...args)
    {
        void *p = allocate(sizeof(T), alignof(T));
        return ::new (p) T(std::forward<Args>(args)...);
    }

    /** Value-initialized array of n T (destructors will NOT run). */
    template <typename T>
    T *
    makeArray(std::size_t n)
    {
        void *p = allocate(sizeof(T) * n, alignof(T));
        return ::new (p) T[n]();
    }

    std::size_t
    bytesAllocated() const
    {
        std::size_t total = 0;
        for (const Block &b : blocks_)
            total += b.size;
        return total;
    }

  private:
    static constexpr std::size_t kAlign = alignof(std::max_align_t);

    struct Block
    {
        std::uint8_t *base = nullptr;
        std::size_t size = 0;
    };

    std::vector<Block> blocks_;
    std::size_t blockBytes_;
    std::size_t used_ = 0;
};

} // namespace rvp

#endif // RVP_COMMON_ARENA_HH
