/**
 * @file
 * Per-run wall-clock watchdog. A RunDeadline is armed when a sweep run
 * starts and checked cooperatively from the long-running loops
 * (compile, profile, stream capture, and the core cycle loop), so one
 * pathological configuration cannot wedge a worker thread forever: the
 * run fails with a typed DeadlineExceeded that the sweep scheduler
 * contains like any other run failure.
 *
 * The null-deadline fast path is a single pointer test at every seam
 * (callers hold `const RunDeadline *`, null = no budget), so sweeps
 * with watchdogs disabled pay nothing and stay bit-identical.
 */

#ifndef RVP_COMMON_DEADLINE_HH
#define RVP_COMMON_DEADLINE_HH

#include <chrono>
#include <stdexcept>
#include <string>

namespace rvp
{

/** Thrown when a RunDeadline expires; caught per run by the sweep
 *  scheduler, which records the run as failed (and retries it once
 *  under a degraded profile). */
class DeadlineExceeded : public std::runtime_error
{
  public:
    explicit DeadlineExceeded(const std::string &where)
        : std::runtime_error("deadline exceeded (" + where + ")")
    {
    }
};

/** One run attempt's wall-clock budget, armed at construction. */
class RunDeadline
{
  public:
    /** Budget in seconds from now; must be > 0 (a disabled watchdog is
     *  a null RunDeadline pointer, not a zero budget). */
    explicit RunDeadline(double seconds)
        : deadline_(std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds)))
    {
    }

    bool
    expired() const
    {
        return std::chrono::steady_clock::now() > deadline_;
    }

    /** Throw DeadlineExceeded (tagged with the checking site) if the
     *  budget has run out. */
    void
    check(const char *where) const
    {
        if (expired())
            throw DeadlineExceeded(where);
    }

  private:
    std::chrono::steady_clock::time_point deadline_;
};

} // namespace rvp

#endif // RVP_COMMON_DEADLINE_HH
