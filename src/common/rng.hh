/**
 * @file
 * Deterministic xorshift64* pseudo-random number generator. The
 * workload generators and property tests need reproducible streams
 * independent of the host libstdc++, so we carry our own.
 */

#ifndef RVP_COMMON_RNG_HH
#define RVP_COMMON_RNG_HH

#include <cstdint>

namespace rvp
{

/** xorshift64* generator (Vigna); full 64-bit period, tiny state. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dull;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            nextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return nextBelow(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t state_;
};

} // namespace rvp

#endif // RVP_COMMON_RNG_HH
