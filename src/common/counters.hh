/**
 * @file
 * Small saturating and resetting counters used throughout the branch and
 * value predictors. The paper's confidence counters are 3-bit *resetting*
 * counters with a threshold of 7: a correct outcome increments (saturating
 * at 7), an incorrect outcome resets to zero, and a prediction is made
 * only when the counter has reached the threshold.
 */

#ifndef RVP_COMMON_COUNTERS_HH
#define RVP_COMMON_COUNTERS_HH

#include <cstdint>

#include "common/logging.hh"

namespace rvp
{

/**
 * Maximum value of a `bits`-wide counter, validating the width first.
 * Both counter classes funnel through this so the bound is enforced
 * *before* the shift: `1u << bits` is undefined behaviour at bits >=
 * 32, and a member-initializer-list shift would run before any assert
 * in the constructor body could catch it.
 */
inline unsigned
counterMax(unsigned bits)
{
    RVP_ASSERT(bits >= 1 && bits <= 16,
               "counter width %u outside [1, 16]", bits);
    return (1u << bits) - 1;
}

/** Classic n-bit saturating up/down counter (branch-predictor style). */
class SaturatingCounter
{
  public:
    explicit SaturatingCounter(unsigned bits = 2, unsigned initial = 0)
        : max_(counterMax(bits)), value_(initial)
    {
        RVP_ASSERT(initial <= max_,
                   "initial value %u exceeds the %u-bit maximum %u",
                   initial, bits, max_);
    }

    /** Move the counter one step toward its maximum. */
    void increment() { if (value_ < max_) ++value_; }
    /** Move the counter one step toward zero. */
    void decrement() { if (value_ > 0) --value_; }

    unsigned value() const { return value_; }
    unsigned max() const { return max_; }
    /** True when the counter is in its upper half (predict-taken). */
    bool isSet() const { return value_ > max_ / 2; }

  private:
    unsigned max_;
    unsigned value_;
};

/**
 * n-bit resetting confidence counter. Correct outcomes saturate upward;
 * a single incorrect outcome resets to zero. This is the filter the
 * paper uses for both LVP and dynamic RVP (3 bits, threshold 7), i.e.
 * predict only after seven consecutive correct outcomes.
 */
class ResettingCounter
{
  public:
    explicit ResettingCounter(unsigned bits = 3, unsigned threshold = 7)
        : max_(counterMax(bits)), threshold_(threshold), value_(0)
    {
        RVP_ASSERT(threshold_ <= max_,
                   "threshold %u exceeds the %u-bit maximum %u",
                   threshold_, bits, max_);
    }

    /** Record a correct outcome. */
    void recordCorrect() { if (value_ < max_) ++value_; }
    /** Record an incorrect outcome: full reset. */
    void recordIncorrect() { value_ = 0; }

    /** True when the counter authorizes a prediction. */
    bool confident() const { return value_ >= threshold_; }

    unsigned value() const { return value_; }
    unsigned threshold() const { return threshold_; }
    void reset() { value_ = 0; }

  private:
    unsigned max_;
    unsigned threshold_;
    unsigned value_;
};

} // namespace rvp

#endif // RVP_COMMON_COUNTERS_HH
