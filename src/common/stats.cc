#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <set>

namespace rvp
{

namespace
{

/** Derived-scalar suffixes a distribution materializes, in order. */
constexpr const char *distSuffixes[] = {
    ".count", ".sum", ".mean", ".min", ".max", ".p50", ".p90", ".p99",
};

} // namespace

std::size_t
StatSet::Distribution::bucketOf(double value)
{
    if (value < 1.0)
        return 0;
    // floor(log2(v)) + 1, capped to the last bucket. Huge samples
    // (beyond 2^62) all land in bucket 63.
    std::size_t b = 1;
    while (b < numBuckets - 1 && value >= static_cast<double>(1ull << b))
        ++b;
    return b;
}

double
StatSet::Distribution::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    if (p <= 0.0)
        return min_;
    if (p >= 1.0)
        return max_;
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(count_)));
    if (rank < 1)
        rank = 1;
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < numBuckets; ++b) {
        cum += buckets_[b];
        if (cum >= rank) {
            // Upper edge of the bucket, clamped to the observed range.
            double edge = b == 0
                              ? 0.0
                              : static_cast<double>((1ull << b) - 1);
            return std::max(min_, std::min(edge, max_));
        }
    }
    return max_;
}

void
StatSet::Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t b = 0; b < numBuckets; ++b)
        buckets_[b] += other.buckets_[b];
    if (count_ == 0 || other.min_ < min_)
        min_ = other.min_;
    if (count_ == 0 || other.max_ > max_)
        max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
}

StatSet::Counter &
StatSet::counter(const std::string &name)
{
    auto it = counterIndex_.find(name);
    if (it != counterIndex_.end())
        return counters_[it->second];
    counterIndex_.emplace(name, counters_.size());
    counters_.push_back(Counter(name));
    return counters_.back();
}

StatSet::Distribution &
StatSet::distribution(const std::string &name)
{
    auto it = distIndex_.find(name);
    if (it != distIndex_.end())
        return distributions_[it->second];
    distIndex_.emplace(name, distributions_.size());
    distributions_.push_back(Distribution(name));
    return distributions_.back();
}

void
StatSet::fold() const
{
    for (Counter &c : counters_) {
        if (!c.touched_)
            continue;
        values_[c.name_] += c.value_;
        c.value_ = 0.0;
        c.touched_ = false;
    }
    // Distributions are not reset on fold: their derived scalars are
    // recomputed wholesale (overwrite, not accumulate), so folding is
    // idempotent and later samples simply refresh the same entries.
    for (const Distribution &d : distributions_) {
        if (d.count_ == 0)
            continue;
        values_[d.name_ + ".count"] = static_cast<double>(d.count_);
        values_[d.name_ + ".sum"] = d.sum_;
        values_[d.name_ + ".mean"] = d.mean();
        values_[d.name_ + ".min"] = d.min_;
        values_[d.name_ + ".max"] = d.max_;
        values_[d.name_ + ".p50"] = d.percentile(0.50);
        values_[d.name_ + ".p90"] = d.percentile(0.90);
        values_[d.name_ + ".p99"] = d.percentile(0.99);
    }
}

void
StatSet::add(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    // Fold first so a pending interned accumulation cannot later be
    // added on top of the overwritten value.
    fold();
    values_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    fold();
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    fold();
    return values_.count(name) != 0;
}

double
StatSet::ratio(const std::string &numer, const std::string &denom) const
{
    double d = get(denom);
    return d == 0.0 ? 0.0 : get(numer) / d;
}

void
StatSet::merge(const StatSet &other)
{
    fold();
    // Distributions merge bucket-wise so percentiles over the combined
    // sample set stay correct; their derived scalars in other.values()
    // are skipped below (the next fold overwrites ours wholesale).
    std::set<std::string> derived;
    for (const auto &[name, index] : other.distIndex_) {
        if (other.distributions_[index].count_ == 0)
            continue;
        distribution(name).merge(other.distributions_[index]);
        for (const char *suffix : distSuffixes)
            derived.insert(name + suffix);
    }
    for (const auto &[name, value] : other.values()) {
        if (!derived.empty() && derived.count(name))
            continue;
        values_[name] += value;
    }
    fold();
}

void
StatSet::dump(std::ostream &os) const
{
    fold();
    for (const auto &[name, value] : values_) {
        os << std::left << std::setw(40) << name << " "
           << std::setprecision(6) << value << "\n";
    }
}

} // namespace rvp
