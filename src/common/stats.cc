#include "common/stats.hh"

#include <iomanip>

namespace rvp
{

StatSet::Counter &
StatSet::counter(const std::string &name)
{
    auto it = counterIndex_.find(name);
    if (it != counterIndex_.end())
        return counters_[it->second];
    counterIndex_.emplace(name, counters_.size());
    counters_.push_back(Counter(name));
    return counters_.back();
}

void
StatSet::fold() const
{
    for (Counter &c : counters_) {
        if (!c.touched_)
            continue;
        values_[c.name_] += c.value_;
        c.value_ = 0.0;
        c.touched_ = false;
    }
}

void
StatSet::add(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    // Fold first so a pending interned accumulation cannot later be
    // added on top of the overwritten value.
    fold();
    values_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    fold();
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    fold();
    return values_.count(name) != 0;
}

double
StatSet::ratio(const std::string &numer, const std::string &denom) const
{
    double d = get(denom);
    return d == 0.0 ? 0.0 : get(numer) / d;
}

void
StatSet::merge(const StatSet &other)
{
    fold();
    for (const auto &[name, value] : other.values())
        values_[name] += value;
}

void
StatSet::dump(std::ostream &os) const
{
    fold();
    for (const auto &[name, value] : values_) {
        os << std::left << std::setw(40) << name << " "
           << std::setprecision(6) << value << "\n";
    }
}

} // namespace rvp
