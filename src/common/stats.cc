#include "common/stats.hh"

#include <iomanip>

namespace rvp
{

void
StatSet::add(const std::string &name, double delta)
{
    values_[name] += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    values_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.count(name) != 0;
}

double
StatSet::ratio(const std::string &numer, const std::string &denom) const
{
    double d = get(denom);
    return d == 0.0 ? 0.0 : get(numer) / d;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other.values_)
        values_[name] += value;
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, value] : values_) {
        os << std::left << std::setw(40) << name << " "
           << std::setprecision(6) << value << "\n";
    }
}

} // namespace rvp
