#include "common/subprocess.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>

namespace rvp
{

namespace
{

void
closeFd(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

ChildProcess
spawnProcess(const std::vector<std::string> &argv)
{
    ChildProcess child;
    if (argv.empty())
        return child;

    // [0] = read end, [1] = write end. Parent-side ends are
    // close-on-exec so a later sibling fork never holds them open.
    int toChild[2] = {-1, -1};
    int fromChild[2] = {-1, -1};
    if (::pipe2(toChild, O_CLOEXEC) != 0)
        return child;
    if (::pipe2(fromChild, O_CLOEXEC) != 0) {
        ::close(toChild[0]);
        ::close(toChild[1]);
        return child;
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(toChild[0]);
        ::close(toChild[1]);
        ::close(fromChild[0]);
        ::close(fromChild[1]);
        return child;
    }

    if (pid == 0) {
        // Child: own process group, so kill(-pid) reaches any
        // grandchildren (a /bin/sh wrapper that forked its command
        // would otherwise leave an orphan holding our pipes open).
        ::setpgid(0, 0);
        // stdin <- toChild, stdout -> fromChild. dup2 clears
        // O_CLOEXEC on the duplicates, so exactly fds 0/1 survive exec.
        if (::dup2(toChild[0], STDIN_FILENO) < 0 ||
            ::dup2(fromChild[1], STDOUT_FILENO) < 0)
            ::_exit(127);
        std::vector<char *> args;
        args.reserve(argv.size() + 1);
        for (const std::string &a : argv)
            args.push_back(const_cast<char *>(a.c_str()));
        args.push_back(nullptr);
        ::execv(args[0], args.data());
        ::_exit(127);
    }

    // Mirror the child's setpgid so the group exists before any
    // kill(-pid) regardless of who wins the post-fork race. EACCES
    // (child already exec'd, so it set the group itself) is fine.
    ::setpgid(pid, pid);
    ::close(toChild[0]);
    ::close(fromChild[1]);
    child.pid = pid;
    child.toChild = toChild[1];
    child.fromChild = fromChild[0];
    return child;
}

void
closeChildPipes(ChildProcess &child)
{
    closeFd(child.toChild);
    closeFd(child.fromChild);
}

ScopedSigpipeIgnore::ScopedSigpipeIgnore()
{
    struct sigaction ign = {};
    ign.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ign, &old_);
}

ScopedSigpipeIgnore::~ScopedSigpipeIgnore()
{
    ::sigaction(SIGPIPE, &old_, nullptr);
}

} // namespace rvp
