/**
 * @file
 * Length-prefixed frame codec shared by every framed byte stream in
 * the tree: the sharded-sweep worker pipes (sim/shard.hh via
 * common/subprocess.hh) and the sweep-service Unix socket
 * (service/daemon.hh). A frame is either delivered whole or detectably
 * torn — never silently spliced — and a peer that writes garbage is
 * reported with a typed FrameError instead of a giant allocation or a
 * misread.
 *
 * Frame wire format: ASCII decimal payload length, '\n', the payload
 * bytes, '\n'. The trailing newline is verified on read, so a
 * truncated write from a killed peer fails the frame instead of
 * bleeding into the next one.
 *
 * Also home to the EINTR-and-short-write-safe writeAll()/readAll()
 * loops every raw fd writer in the tree shares (frames, journal
 * appends, atomic file publication).
 */

#ifndef RVP_COMMON_FRAMING_HH
#define RVP_COMMON_FRAMING_HH

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>

namespace rvp
{

/**
 * Malformed framing from a peer: a non-numeric or over-long length
 * header, a frame larger than the reader's bound, or a missing
 * terminator (a torn write). Derives std::runtime_error, so existing
 * callers that treat any exception as peer death keep working; the
 * kind lets the service answer with a precise typed error before
 * dropping the connection.
 */
class FrameError : public std::runtime_error
{
  public:
    enum class Kind
    {
        BadLength,     ///< length line empty / non-numeric / over-long
        Oversized,     ///< declared length exceeds the reader's bound
        BadTerminator, ///< payload not followed by '\n' (torn/spliced)
    };

    FrameError(Kind kind, const std::string &what)
        : std::runtime_error(what), kind_(kind)
    {
    }

    Kind kind() const { return kind_; }

  private:
    Kind kind_;
};

/**
 * Default per-frame byte bound. Control-plane frames (shard protocol,
 * service requests) are hundreds of bytes; the largest legitimate
 * frames are service result records with full stat maps, a few tens
 * of KiB. 16 MiB leaves three orders of magnitude of headroom while
 * refusing to even attempt the multi-GiB allocation a hostile or
 * corrupt length header would otherwise demand.
 */
constexpr std::size_t defaultMaxFrameBytes = std::size_t{16} << 20;

/**
 * Write exactly len bytes, retrying EINTR and short writes. Returns
 * false on any other write error (with SIGPIPE ignored — see
 * ScopedSigpipeIgnore in common/subprocess.hh — a dead peer reports
 * EPIPE here instead of killing the process).
 */
bool writeAll(int fd, const void *data, std::size_t len);

/**
 * Read exactly len bytes, retrying EINTR and short reads. Returns
 * false on EOF or any read error before len bytes arrived (the
 * partial prefix may have been consumed — callers treat false as a
 * dead peer, not a resumable state).
 */
bool readAll(int fd, void *data, std::size_t len);

/** Write one framed payload (header + payload + terminator) via
 *  writeAll. Returns false on any write error. */
bool writeFrame(int fd, const std::string &payload);

/**
 * Incremental frame reader over one fd. fill() performs a single
 * read(2) (call it after poll() says readable, or freely on a
 * blocking fd); next() extracts the next complete payload from the
 * buffer. next() throws FrameError on malformed framing — including
 * any frame whose declared length exceeds maxFrameBytes, rejected
 * BEFORE buffering or allocating the payload — which callers treat
 * as peer death (pipes) or answer with a typed protocol error
 * (service connections).
 */
class FrameReader
{
  public:
    explicit FrameReader(int fd,
                         std::size_t maxFrameBytes = defaultMaxFrameBytes)
        : fd_(fd), maxFrame_(maxFrameBytes)
    {
    }

    /** One read(2) into the buffer; false on EOF or a fatal error. */
    bool fill();

    /**
     * Append bytes read elsewhere (a non-blocking recv loop that must
     * distinguish EAGAIN from EOF does its own reads and feeds the
     * reader; fill() cannot tell those apart).
     */
    void feed(const char *data, std::size_t len)
    {
        buf_.append(data, len);
    }

    /** Next complete frame payload, if buffered. */
    std::optional<std::string> next();

    /** Bytes buffered but not yet returned (diagnostics). */
    std::size_t buffered() const { return buf_.size(); }

  private:
    int fd_;
    std::size_t maxFrame_;
    std::string buf_;
};

} // namespace rvp

#endif // RVP_COMMON_FRAMING_HH
