/**
 * @file
 * Error-reporting helpers in the gem5 tradition: panic() for internal
 * invariant violations (aborts), fatal() for user/configuration errors
 * (clean exit), warn()/inform() for status messages.
 */

#ifndef RVP_COMMON_LOGGING_HH
#define RVP_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdlib>
#include <string>

namespace rvp
{

/** Print a formatted message and abort; use for simulator bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted warning to stderr; simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a formatted status message to stderr; simulation continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Print an assertion-failure report (with an optional explanatory
 * printf-style message) and abort. Used by RVP_ASSERT.
 */
[[noreturn]] void assertFail(const char *file, int line, const char *cond,
                             const char *fmt = nullptr, ...)
    __attribute__((format(printf, 4, 5)));

/**
 * Assert-like helper that survives NDEBUG builds. Use for invariants
 * whose failure means the simulator (not the simulated program) is
 * broken. An optional printf-style message explains the violated
 * expectation: RVP_ASSERT(ok, "workload %s not compiled", name).
 */
#define RVP_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rvp::assertFail(__FILE__, __LINE__,                           \
                              #cond __VA_OPT__(, ) __VA_ARGS__);            \
        }                                                                   \
    } while (0)

} // namespace rvp

#endif // RVP_COMMON_LOGGING_HH
