/**
 * @file
 * Bit-manipulation helpers shared by the ISA encoder and the cache and
 * predictor indexing logic.
 */

#ifndef RVP_COMMON_BITS_HH
#define RVP_COMMON_BITS_HH

#include <cstdint>

namespace rvp
{

/** A mask of n low bits (n in [0, 64]). */
constexpr std::uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~0ull : (1ull << n) - 1;
}

/** Extract bits [first, last] (inclusive, first <= last) of value. */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned last, unsigned first)
{
    return (value >> first) & mask(last - first + 1);
}

/** Insert the low (last-first+1) bits of field at [first, last] of value. */
constexpr std::uint64_t
insertBits(std::uint64_t value, unsigned last, unsigned first,
           std::uint64_t field)
{
    std::uint64_t m = mask(last - first + 1);
    return (value & ~(m << first)) | ((field & m) << first);
}

/** Sign-extend the low n bits of value to 64 bits. */
constexpr std::int64_t
signExtend(std::uint64_t value, unsigned n)
{
    std::uint64_t m = 1ull << (n - 1);
    value &= mask(n);
    return static_cast<std::int64_t>((value ^ m) - m);
}

/** True iff value is a power of two (zero excluded). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** floor(log2(value)) for nonzero value. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    unsigned result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

} // namespace rvp

#endif // RVP_COMMON_BITS_HH
