/**
 * @file
 * Process helpers for the sharded-sweep coordinator (sim/shard.hh):
 * fork/exec a child with its stdin/stdout wired to fresh pipes, plus
 * scoped SIGPIPE suppression for the writers. The length-prefixed
 * frame codec the pipes speak lives in common/framing.hh (shared with
 * the sweep-service socket); it is included here so historical users
 * of writeFrame/FrameReader via this header keep compiling.
 */

#ifndef RVP_COMMON_SUBPROCESS_HH
#define RVP_COMMON_SUBPROCESS_HH

#include <sys/types.h>

#include <string>
#include <vector>

#include <signal.h>

#include "common/framing.hh"

namespace rvp
{

/** A spawned child with both pipe ends owned by the parent. */
struct ChildProcess
{
    pid_t pid = -1;
    int toChild = -1;     ///< write end of the child's stdin
    int fromChild = -1;   ///< read end of the child's stdout

    bool ok() const { return pid > 0; }
};

/**
 * fork/execv argv[0] with argv as its argument vector. The child's
 * stdin/stdout are fresh pipes (stderr is inherited, so worker
 * progress lines land on the parent's stderr); the parent-side fds
 * are close-on-exec, so later children never inherit a sibling's pipe
 * ends (which would defeat EOF-based death detection). Returns a
 * ChildProcess with pid -1 on fork/pipe failure; an exec failure
 * surfaces as the child exiting 127 (and EOF on fromChild).
 */
ChildProcess spawnProcess(const std::vector<std::string> &argv);

/** Close both parent-side pipe ends (idempotent). */
void closeChildPipes(ChildProcess &child);

/**
 * Ignore SIGPIPE for this object's lifetime (restoring the previous
 * disposition), so writes to a dead peer fail with EPIPE instead of
 * terminating the process mid-sweep.
 */
class ScopedSigpipeIgnore
{
  public:
    ScopedSigpipeIgnore();
    ~ScopedSigpipeIgnore();

    ScopedSigpipeIgnore(const ScopedSigpipeIgnore &) = delete;
    ScopedSigpipeIgnore &operator=(const ScopedSigpipeIgnore &) = delete;

  private:
    struct sigaction old_ = {};
};

} // namespace rvp

#endif // RVP_COMMON_SUBPROCESS_HH
