/**
 * @file
 * Process and pipe helpers for the sharded-sweep coordinator
 * (sim/shard.hh): fork/exec a child with its stdin/stdout wired to
 * fresh pipes, and a length-prefixed frame codec so JSONL messages
 * survive arbitrary pipe fragmentation (a frame is either delivered
 * whole or detectably torn — never silently spliced).
 *
 * Frame wire format: ASCII decimal payload length, '\n', the payload
 * bytes, '\n'. The trailing newline is verified on read, so a
 * truncated write from a killed peer fails the frame instead of
 * bleeding into the next one.
 */

#ifndef RVP_COMMON_SUBPROCESS_HH
#define RVP_COMMON_SUBPROCESS_HH

#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

#include <signal.h>

namespace rvp
{

/** A spawned child with both pipe ends owned by the parent. */
struct ChildProcess
{
    pid_t pid = -1;
    int toChild = -1;     ///< write end of the child's stdin
    int fromChild = -1;   ///< read end of the child's stdout

    bool ok() const { return pid > 0; }
};

/**
 * fork/execv argv[0] with argv as its argument vector. The child's
 * stdin/stdout are fresh pipes (stderr is inherited, so worker
 * progress lines land on the parent's stderr); the parent-side fds
 * are close-on-exec, so later children never inherit a sibling's pipe
 * ends (which would defeat EOF-based death detection). Returns a
 * ChildProcess with pid -1 on fork/pipe failure; an exec failure
 * surfaces as the child exiting 127 (and EOF on fromChild).
 */
ChildProcess spawnProcess(const std::vector<std::string> &argv);

/** Close both parent-side pipe ends (idempotent). */
void closeChildPipes(ChildProcess &child);

/**
 * Write one framed payload, handling short writes and EINTR. Returns
 * false on any write error — with SIGPIPE ignored (ScopedSigpipeIgnore)
 * a dead peer reports EPIPE here instead of killing the process.
 */
bool writeFrame(int fd, const std::string &payload);

/**
 * Incremental frame reader over one fd. fill() performs a single
 * read(2) (call it after poll() says readable, or freely on a
 * blocking fd); next() extracts the next complete payload from the
 * buffer. next() throws std::runtime_error on malformed framing (a
 * peer that wrote garbage), which callers treat as peer death.
 */
class FrameReader
{
  public:
    explicit FrameReader(int fd) : fd_(fd) {}

    /** One read(2) into the buffer; false on EOF or a fatal error. */
    bool fill();

    /** Next complete frame payload, if buffered. */
    std::optional<std::string> next();

  private:
    int fd_;
    std::string buf_;
};

/**
 * Ignore SIGPIPE for this object's lifetime (restoring the previous
 * disposition), so writes to a dead peer fail with EPIPE instead of
 * terminating the process mid-sweep.
 */
class ScopedSigpipeIgnore
{
  public:
    ScopedSigpipeIgnore();
    ~ScopedSigpipeIgnore();

    ScopedSigpipeIgnore(const ScopedSigpipeIgnore &) = delete;
    ScopedSigpipeIgnore &operator=(const ScopedSigpipeIgnore &) = delete;

  private:
    struct sigaction old_ = {};
};

} // namespace rvp

#endif // RVP_COMMON_SUBPROCESS_HH
