/**
 * @file
 * Minimal single-line JSON parser for exactly the subset this repo's
 * own serializers emit: one object per line; string / number / bool
 * values; nested objects (journal "stats" maps) and flat arrays of
 * numbers (shard work units). Any deviation — a torn line from a
 * killed writer, hand-edited garbage, trailing bytes — throws, and
 * callers skip or refuse the line instead of misreading it.
 *
 * Shared by the run journal (sim/journal.cc) and the sharded-sweep
 * worker protocol (sim/shard.cc), so the two sides of every file and
 * pipe format in the tree agree on one grammar.
 */

#ifndef RVP_COMMON_JSONLITE_HH
#define RVP_COMMON_JSONLITE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rvp
{

/** One parsed JSON value (string / number / bool / object / array). */
struct JsonValue
{
    enum class Kind { Str, Num, Bool, Obj, Arr };
    Kind kind = Kind::Num;
    std::string str;   ///< Str: unescaped text; Num: raw token
    bool boolean = false;
    std::map<std::string, JsonValue> obj;
    std::vector<JsonValue> arr;

    double num() const;
    std::uint64_t u64() const;
};

/**
 * Parse one complete JSON object line. Throws std::runtime_error on
 * any syntax error, unsupported construct, or trailing non-space
 * bytes after the closing brace (a torn journal line).
 */
std::map<std::string, JsonValue> parseJsonLine(const std::string &line);

/** Required-field lookup; throws std::runtime_error when absent. */
const JsonValue &jsonField(const std::map<std::string, JsonValue> &obj,
                           const char *name);

} // namespace rvp

#endif // RVP_COMMON_JSONLITE_HH
