/**
 * @file
 * Minimal named-statistics registry. Modules register scalar counters
 * and formulas; the simulation driver dumps them in a stable order.
 * This is deliberately much smaller than gem5's stats package — just
 * enough to make every experiment's raw numbers inspectable.
 *
 * Two write paths share one namespace:
 *
 *  - add(name, delta) / set(name, value): by-name access, a map lookup
 *    per call. Fine for cold paths (end-of-run exports, per-experiment
 *    bookkeeping).
 *  - counter(name) -> Counter&: an *interned handle*. Registration
 *    resolves the name once; every subsequent Counter::add() is a
 *    single inlined double accumulation with no lookup and no
 *    allocation. This is what per-pipeline-event stats use (the core
 *    fires ~10 of these per simulated cycle).
 *
 * Handle-backed counters are folded into the named map lazily, on the
 * first read (get/dump/values/merge), so readers always see one
 * coherent map. A counter appears in the map only once add() has been
 * called on it — exactly matching the by-name behaviour, where the
 * first add(name, 0) materializes the stat at zero.
 *
 * Distributions (fixed log2-bucket histograms) follow the same model:
 * distribution(name) interns a handle whose sample() is lookup-free,
 * and the first read materializes derived scalars (<name>.count, .sum,
 * .mean, .min, .max, .p50, .p90, .p99) into the named map. A never-
 * sampled distribution contributes nothing, so stat maps stay
 * bit-identical when histogram collection is off. merge() combines
 * the underlying buckets, not the derived scalars, so merged
 * percentiles are computed over the union of samples.
 */

#ifndef RVP_COMMON_STATS_HH
#define RVP_COMMON_STATS_HH

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>

namespace rvp
{

/** A flat, ordered collection of named scalar statistics. */
class StatSet
{
  public:
    /**
     * Interned counter handle. Obtained once from counter(); add() is
     * then lookup-free. The reference stays valid for the lifetime of
     * the owning StatSet (but is not carried across copies — a copied
     * StatSet re-interns, and its counters start from the copied
     * values).
     */
    class Counter
    {
      public:
        /** Add delta (materializes the stat even when delta is 0). */
        void
        add(double delta = 1.0)
        {
            value_ += delta;
            touched_ = true;
        }

      private:
        friend class StatSet;
        explicit Counter(std::string name) : name_(std::move(name)) {}

        std::string name_;
        double value_ = 0.0;
        /** add() was called at least once since the last fold. */
        bool touched_ = false;
    };

    /**
     * Fixed-size log2-bucket histogram. Bucket 0 holds samples < 1
     * (occupancy zero, zero-cycle latencies); bucket b >= 1 holds
     * [2^(b-1), 2^b). 64 buckets cover every uint64-sized sample, so
     * recording never allocates and merging is bucket-wise addition.
     * Percentiles are bucket-resolution estimates: the upper edge of
     * the bucket containing the requested rank, clamped to the exact
     * observed min/max.
     */
    class Distribution
    {
      public:
        static constexpr std::size_t numBuckets = 64;

        /** Record one sample (negative values clamp to 0). */
        void
        sample(double value)
        {
            if (value < 0.0)
                value = 0.0;
            ++buckets_[bucketOf(value)];
            ++count_;
            sum_ += value;
            if (count_ == 1 || value < min_)
                min_ = value;
            if (count_ == 1 || value > max_)
                max_ = value;
        }

        std::uint64_t count() const { return count_; }
        double sum() const { return sum_; }
        double mean() const { return count_ ? sum_ / count_ : 0.0; }
        double min() const { return min_; }
        double max() const { return max_; }

        /** Bucket-resolution percentile estimate, p in [0, 1]. */
        double percentile(double p) const;

        /** Log2 bucket index of a (non-negative) sample. */
        static std::size_t bucketOf(double value);

        /** Add another distribution's samples into this one. */
        void merge(const Distribution &other);

      private:
        friend class StatSet;
        explicit Distribution(std::string name) : name_(std::move(name)) {}

        std::string name_;
        std::array<std::uint64_t, numBuckets> buckets_{};
        std::uint64_t count_ = 0;
        double sum_ = 0.0;
        double min_ = 0.0;
        double max_ = 0.0;
    };

    StatSet() = default;
    StatSet(const StatSet &) = default;
    StatSet &operator=(const StatSet &) = default;

    /**
     * Intern a dense counter for `name` (register-once: the same name
     * returns the same handle). The counter's accumulated value is
     * resolved into the named map at the first read after it was
     * touched.
     */
    Counter &counter(const std::string &name);

    /**
     * Intern a histogram for `name` (register-once, like counter()).
     * Its derived scalars are materialized under "<name>.<suffix>" at
     * the first read after it holds at least one sample.
     */
    Distribution &distribution(const std::string &name);

    /** Add delta to the named counter (creating it at zero). */
    void add(const std::string &name, double delta = 1.0);

    /** Overwrite the named value. */
    void set(const std::string &name, double value);

    /** Read a value; returns 0 for unknown names. */
    double get(const std::string &name) const;

    /** True if the stat has ever been touched. */
    bool has(const std::string &name) const;

    /** Ratio helper: numer/denom, 0 when the denominator is zero. */
    double ratio(const std::string &numer, const std::string &denom) const;

    /** Merge another set into this one (summing counters). */
    void merge(const StatSet &other);

    /** Dump "name value" lines in lexicographic order. */
    void dump(std::ostream &os) const;

    const std::map<std::string, double> &
    values() const
    {
        fold();
        return values_;
    }

  private:
    /** Resolve touched interned counters into the named map. */
    void fold() const;

    mutable std::map<std::string, double> values_;
    /** Interned counters; deque for stable Counter& across interning. */
    mutable std::deque<Counter> counters_;
    /** Registration index (name -> position in counters_). */
    std::map<std::string, std::size_t> counterIndex_;
    /** Interned histograms; deque for stable Distribution&. */
    std::deque<Distribution> distributions_;
    /** Registration index (name -> position in distributions_). */
    std::map<std::string, std::size_t> distIndex_;
};

} // namespace rvp

#endif // RVP_COMMON_STATS_HH
