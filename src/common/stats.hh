/**
 * @file
 * Minimal named-statistics registry. Modules register scalar counters
 * and formulas; the simulation driver dumps them in a stable order.
 * This is deliberately much smaller than gem5's stats package — just
 * enough to make every experiment's raw numbers inspectable.
 */

#ifndef RVP_COMMON_STATS_HH
#define RVP_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace rvp
{

/** A flat, ordered collection of named scalar statistics. */
class StatSet
{
  public:
    /** Add delta to the named counter (creating it at zero). */
    void add(const std::string &name, double delta = 1.0);

    /** Overwrite the named value. */
    void set(const std::string &name, double value);

    /** Read a value; returns 0 for unknown names. */
    double get(const std::string &name) const;

    /** True if the stat has ever been touched. */
    bool has(const std::string &name) const;

    /** Ratio helper: numer/denom, 0 when the denominator is zero. */
    double ratio(const std::string &numer, const std::string &denom) const;

    /** Merge another set into this one (summing counters). */
    void merge(const StatSet &other);

    /** Dump "name value" lines in lexicographic order. */
    void dump(std::ostream &os) const;

    const std::map<std::string, double> &values() const { return values_; }

  private:
    std::map<std::string, double> values_;
};

} // namespace rvp

#endif // RVP_COMMON_STATS_HH
