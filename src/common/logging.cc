#include "common/logging.hh"

#include <cstdio>

namespace rvp
{

namespace
{

// One fprintf per report so lines from concurrent sweep workers never
// interleave mid-message (stdio locks the stream per call).
void
vreport(const char *prefix, const char *fmt, va_list args)
{
    char body[1024];
    std::vsnprintf(body, sizeof(body), fmt, args);
    std::fprintf(stderr, "%s: %s\n", prefix, body);
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
assertFail(const char *file, int line, const char *cond,
           const char *fmt, ...)
{
    std::fprintf(stderr, "panic: assertion failed at %s:%d: %s\n", file,
                 line, cond);
    if (fmt) {
        va_list args;
        va_start(args, fmt);
        std::fprintf(stderr, "panic: ");
        std::vfprintf(stderr, fmt, args);
        std::fprintf(stderr, "\n");
        va_end(args);
    }
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace rvp
