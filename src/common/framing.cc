#include "common/framing.hh"

#include <unistd.h>

#include <cerrno>

namespace rvp
{

bool
writeAll(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    std::size_t off = 0;
    while (off < len) {
        ssize_t n = ::write(fd, p + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
readAll(int fd, void *data, std::size_t len)
{
    char *p = static_cast<char *>(data);
    std::size_t off = 0;
    while (off < len) {
        ssize_t n = ::read(fd, p + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;   // EOF before len bytes
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeFrame(int fd, const std::string &payload)
{
    std::string frame = std::to_string(payload.size());
    frame += '\n';
    frame += payload;
    frame += '\n';
    return writeAll(fd, frame.data(), frame.size());
}

bool
FrameReader::fill()
{
    char chunk[4096];
    for (;;) {
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;   // EOF
        buf_.append(chunk, static_cast<std::size_t>(n));
        return true;
    }
}

std::optional<std::string>
FrameReader::next()
{
    // Frame: "<decimal len>\n<payload>\n". A peer that writes
    // anything else is broken; callers treat the throw as death.
    std::size_t nl = buf_.find('\n');
    if (nl == std::string::npos) {
        // The length line is at most 12 digits; anything longer
        // without a newline is garbage.
        if (buf_.size() > 32)
            throw FrameError(FrameError::Kind::BadLength,
                             "frame header too long");
        return std::nullopt;
    }
    if (nl == 0 || nl > 12)
        throw FrameError(FrameError::Kind::BadLength, "bad frame length");
    std::size_t len = 0;
    for (std::size_t i = 0; i < nl; ++i) {
        char c = buf_[i];
        if (c < '0' || c > '9')
            throw FrameError(FrameError::Kind::BadLength,
                             "bad frame length");
        len = len * 10 + static_cast<std::size_t>(c - '0');
    }
    // Reject before buffering/allocating the payload: a hostile or
    // corrupt header must not cost a giant allocation.
    if (len > maxFrame_)
        throw FrameError(FrameError::Kind::Oversized,
                         "frame of " + std::to_string(len) +
                             " bytes exceeds cap of " +
                             std::to_string(maxFrame_));
    // Need the payload plus its trailing newline.
    if (buf_.size() < nl + 1 + len + 1)
        return std::nullopt;
    if (buf_[nl + 1 + len] != '\n')
        throw FrameError(FrameError::Kind::BadTerminator,
                         "missing frame terminator");
    std::string payload = buf_.substr(nl + 1, len);
    buf_.erase(0, nl + 1 + len + 1);
    return payload;
}

} // namespace rvp
