#include "common/jsonlite.hh"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace rvp
{

double
JsonValue::num() const
{
    return std::strtod(str.c_str(), nullptr);
}

std::uint64_t
JsonValue::u64() const
{
    return std::strtoull(str.c_str(), nullptr, 10);
}

namespace
{

struct LineParser
{
    const char *p;
    const char *end;

    explicit LineParser(const std::string &line)
        : p(line.data()), end(line.data() + line.size())
    {
    }

    [[noreturn]] void fail() { throw std::runtime_error("bad json line"); }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t'))
            ++p;
    }

    char
    peek()
    {
        skipWs();
        if (p >= end)
            fail();
        return *p;
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail();
        ++p;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (p < end && *p != '"') {
            char c = *p++;
            if (c == '\\') {
                if (p >= end)
                    fail();
                c = *p++;
            }
            out += c;
        }
        if (p >= end)
            fail();
        ++p;   // closing quote
        return out;
    }

    JsonValue
    parseValue()
    {
        JsonValue v;
        char c = peek();
        if (c == '"') {
            v.kind = JsonValue::Kind::Str;
            v.str = parseString();
        } else if (c == '{') {
            v.kind = JsonValue::Kind::Obj;
            v.obj = parseObject();
        } else if (c == '[') {
            v.kind = JsonValue::Kind::Arr;
            v.arr = parseArray();
        } else if (c == 't' || c == 'f') {
            v.kind = JsonValue::Kind::Bool;
            const char *word = c == 't' ? "true" : "false";
            std::size_t len = std::strlen(word);
            if (end - p < static_cast<std::ptrdiff_t>(len) ||
                std::strncmp(p, word, len) != 0)
                fail();
            p += len;
            v.boolean = c == 't';
        } else if (c == '-' || (c >= '0' && c <= '9')) {
            v.kind = JsonValue::Kind::Num;
            const char *start = p;
            while (p < end &&
                   (*p == '-' || *p == '+' || *p == '.' || *p == 'e' ||
                    *p == 'E' || (*p >= '0' && *p <= '9')))
                ++p;
            v.str.assign(start, p);
        } else {
            fail();
        }
        return v;
    }

    std::vector<JsonValue>
    parseArray()
    {
        std::vector<JsonValue> arr;
        expect('[');
        if (peek() == ']') {
            ++p;
            return arr;
        }
        for (;;) {
            arr.push_back(parseValue());
            char c = peek();
            ++p;
            if (c == ']')
                return arr;
            if (c != ',')
                fail();
        }
    }

    std::map<std::string, JsonValue>
    parseObject()
    {
        std::map<std::string, JsonValue> obj;
        expect('{');
        if (peek() == '}') {
            ++p;
            return obj;
        }
        for (;;) {
            std::string key = parseString();
            expect(':');
            obj.emplace(std::move(key), parseValue());
            char c = peek();
            ++p;
            if (c == '}')
                return obj;
            if (c != ',')
                fail();
        }
    }
};

} // namespace

std::map<std::string, JsonValue>
parseJsonLine(const std::string &line)
{
    LineParser parser(line);
    std::map<std::string, JsonValue> obj = parser.parseObject();
    // Trailing garbage after the closing brace = torn line.
    parser.skipWs();
    if (parser.p != parser.end)
        throw std::runtime_error("trailing bytes");
    return obj;
}

const JsonValue &
jsonField(const std::map<std::string, JsonValue> &obj, const char *name)
{
    auto it = obj.find(name);
    if (it == obj.end())
        throw std::runtime_error(std::string("missing field ") + name);
    return it->second;
}

} // namespace rvp
