#include "ir/liveness.hh"

#include "common/logging.hh"

namespace rvp
{

UseDef
useDef(const IRInst &inst)
{
    UseDef ud;
    const OpcodeInfo &info = inst.info();
    unsigned n = 0;
    if (inst.srcA != noVReg)
        ud.uses[n++] = inst.srcA;
    if (inst.srcB != noVReg && !inst.useImm)
        ud.uses[n++] = inst.srcB;
    if (info.writesRc && inst.dst != noVReg)
        ud.def = inst.dst;
    return ud;
}

Liveness::Liveness(const IRFunction &func, const Cfg &cfg)
    : func_(func), cfg_(cfg)
{
    std::uint32_t n = func.numBlocks();
    std::uint32_t v = func.numVRegs();
    liveIn_.assign(n, VRegSet(v));
    liveOut_.assign(n, VRegSet(v));

    // Per-block gen (upward-exposed uses) and kill (defs).
    std::vector<VRegSet> gen(n, VRegSet(v));
    std::vector<VRegSet> kill(n, VRegSet(v));
    for (BlockId b = 0; b < n; ++b) {
        for (const IRInst &inst : func.blocks()[b].insts) {
            UseDef ud = useDef(inst);
            for (VReg u : ud.uses) {
                if (u != noVReg && !kill[b].contains(u))
                    gen[b].insert(u);
            }
            if (ud.def != noVReg)
                kill[b].insert(ud.def);
        }
    }

    // Backward iteration to fixpoint (postorder would converge faster;
    // simple round-robin is fine at our function sizes).
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::uint32_t i = n; i-- > 0;) {
            BlockId b = i;
            for (BlockId s : cfg.succs(b))
                changed |= liveOut_[b].unionWith(liveIn_[s]);
            // liveIn = gen | (liveOut - kill)
            VRegSet in = gen[b];
            liveOut_[b].forEach([&](VReg r) {
                if (!kill[b].contains(r))
                    in.insert(r);
            });
            changed |= liveIn_[b].unionWith(in);
        }
    }
}

VRegSet
Liveness::liveBefore(std::uint32_t inst_id) const
{
    VRegSet live = liveAfter(inst_id);
    UseDef ud = useDef(func_.instAt(inst_id));
    if (ud.def != noVReg)
        live.erase(ud.def);
    for (VReg u : ud.uses)
        if (u != noVReg)
            live.insert(u);
    return live;
}

VRegSet
Liveness::liveAfter(std::uint32_t inst_id) const
{
    BlockId b = func_.blockOf(inst_id);
    const BasicBlock &block = func_.blocks()[b];
    std::uint32_t local = inst_id - func_.instId(b, 0);

    VRegSet live = liveOut_[b];
    // Walk backward from the block end to just after inst_id.
    for (std::uint32_t i = static_cast<std::uint32_t>(block.insts.size());
         i-- > local + 1;) {
        UseDef ud = useDef(block.insts[i]);
        if (ud.def != noVReg)
            live.erase(ud.def);
        for (VReg u : ud.uses)
            if (u != noVReg)
                live.insert(u);
    }
    return live;
}

} // namespace rvp
