/**
 * @file
 * Virtual-register intermediate representation. Workloads are written
 * against this IR; the compiler (liveness, interference, colouring,
 * and the paper's RVP register-reallocation pass) runs on it and then
 * lowers it to SRISC machine code.
 *
 * An IRFunction is a list of basic blocks over an unbounded set of
 * virtual registers, each belonging to the integer or floating-point
 * bank. Control flow is expressed with block-id branch targets; the
 * lowering pass resolves them to pc-relative displacements.
 */

#ifndef RVP_IR_IR_HH
#define RVP_IR_IR_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "isa/opcodes.hh"

namespace rvp
{

/** Virtual register id. The bank is a property kept by the function. */
using VReg = std::uint32_t;
constexpr VReg noVReg = std::numeric_limits<VReg>::max();

/** Basic-block id within a function. */
using BlockId = std::uint32_t;
constexpr BlockId noBlock = std::numeric_limits<BlockId>::max();

/**
 * One IR instruction. Field roles mirror StaticInst:
 *  - operate: dst <- srcA OP (useImm ? imm : srcB)
 *  - load:    dst <- mem[srcA + imm]
 *  - store:   mem[srcA + imm] <- srcB
 *  - cond branch: test srcA; target = block id
 *  - BR: target block id
 *  - JSR: dst <- link; jump to srcA;  RET: jump to srcA
 */
struct IRInst
{
    Opcode op = Opcode::NOP;
    VReg dst = noVReg;
    VReg srcA = noVReg;
    VReg srcB = noVReg;
    std::int32_t imm = 0;
    bool useImm = false;
    BlockId target = noBlock;   ///< branch target block

    const OpcodeInfo &info() const { return opcodeInfo(op); }
};

/** A basic block: straight-line instructions, fallthrough to next. */
struct BasicBlock
{
    std::vector<IRInst> insts;
};

/**
 * A function in SSA-free, mutable-vreg form. Blocks are laid out in
 * emission order; block i falls through to block i+1 unless its last
 * instruction transfers control unconditionally.
 */
class IRFunction
{
  public:
    /** Create a fresh virtual register in the given bank. */
    VReg
    newVReg(bool is_fp)
    {
        vregIsFp_.push_back(is_fp);
        return static_cast<VReg>(vregIsFp_.size() - 1);
    }

    VReg newIntVReg() { return newVReg(false); }
    VReg newFpVReg() { return newVReg(true); }

    bool vregIsFp(VReg v) const { return vregIsFp_[v]; }
    std::uint32_t numVRegs() const
    {
        return static_cast<std::uint32_t>(vregIsFp_.size());
    }

    /**
     * Allocate an empty block id. The block has no position in the
     * emitted code until place() is called (so forward-branch labels
     * can be created before the code they name).
     */
    BlockId
    newBlock()
    {
        blocks_.emplace_back();
        return static_cast<BlockId>(blocks_.size() - 1);
    }

    /** Fix block b's position: it is emitted after all placed blocks. */
    void
    place(BlockId b)
    {
        layout_.push_back(b);
    }

    /** Emission order of placed blocks. */
    const std::vector<BlockId> &layout() const { return layout_; }

    /** Block following b in emission order, or noBlock. */
    BlockId nextInLayout(BlockId b) const;

    std::vector<BasicBlock> &blocks() { return blocks_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    std::uint32_t numBlocks() const
    {
        return static_cast<std::uint32_t>(blocks_.size());
    }

    /**
     * Global instruction id of instruction inst_idx in block b, under
     * layout-order numbering. Valid after numberInsts().
     */
    std::uint32_t
    instId(BlockId b, std::uint32_t inst_idx) const
    {
        return blockStart_[b] + inst_idx;
    }

    /** (Re)compute the layout-order instruction numbering. */
    void numberInsts();

    /** Total instruction count (valid after numberInsts()). */
    std::uint32_t numInsts() const { return numInsts_; }

    /** Locate an instruction by global id (valid after numberInsts). */
    const IRInst &instAt(std::uint32_t id) const;
    IRInst &instAt(std::uint32_t id);

    /** Block containing global instruction id. */
    BlockId blockOf(std::uint32_t id) const { return instBlock_[id]; }

  private:
    std::vector<bool> vregIsFp_;
    std::vector<BasicBlock> blocks_;
    std::vector<BlockId> layout_;
    std::vector<std::uint32_t> blockStart_;
    std::vector<BlockId> instBlock_;
    std::uint32_t numInsts_ = 0;
};

/**
 * Convenience builder used by the workload generators. Tracks the
 * current block; helpers create common instruction shapes.
 */
class IRBuilder
{
  public:
    explicit IRBuilder(IRFunction &func) : func_(func) {}

    /** Allocate a forward label (an unplaced block id). */
    BlockId label() { return func_.newBlock(); }

    /** Place label b here and start appending to it. */
    void
    place(BlockId b)
    {
        func_.place(b);
        current_ = b;
    }

    BlockId currentBlock() const { return current_; }

    /** Create, place, and switch to a fresh block. */
    BlockId
    startBlock()
    {
        BlockId b = func_.newBlock();
        place(b);
        return b;
    }

    VReg newInt() { return func_.newIntVReg(); }
    VReg newFp() { return func_.newFpVReg(); }

    /** dst <- srcA OP srcB */
    void
    op3(Opcode op, VReg dst, VReg a, VReg b)
    {
        IRInst inst;
        inst.op = op;
        inst.dst = dst;
        inst.srcA = a;
        inst.srcB = b;
        append(inst);
    }

    /** dst <- srcA OP imm */
    void
    opImm(Opcode op, VReg dst, VReg a, std::int32_t imm)
    {
        IRInst inst;
        inst.op = op;
        inst.dst = dst;
        inst.srcA = a;
        inst.useImm = true;
        inst.imm = imm;
        append(inst);
    }

    /** dst <- imm (LDA off the zero register). */
    void
    loadImm(VReg dst, std::int32_t imm)
    {
        IRInst inst;
        inst.op = Opcode::LDA;
        inst.dst = dst;
        inst.useImm = true;
        inst.imm = imm;
        append(inst);
    }

    /** dst <- base + imm */
    void
    lea(VReg dst, VReg base, std::int32_t imm)
    {
        IRInst inst;
        inst.op = Opcode::LDA;
        inst.dst = dst;
        inst.srcA = base;
        inst.useImm = true;
        inst.imm = imm;
        append(inst);
    }

    /** dst <- mem[base + imm] (LDQ or LDT by dst bank). */
    void
    load(VReg dst, VReg base, std::int32_t imm)
    {
        IRInst inst;
        inst.op = func_.vregIsFp(dst) ? Opcode::LDT : Opcode::LDQ;
        inst.dst = dst;
        inst.srcA = base;
        inst.imm = imm;
        append(inst);
    }

    /** mem[base + imm] <- value (STQ or STT by value bank). */
    void
    store(VReg value, VReg base, std::int32_t imm)
    {
        IRInst inst;
        inst.op = func_.vregIsFp(value) ? Opcode::STT : Opcode::STQ;
        inst.srcA = base;
        inst.srcB = value;
        inst.imm = imm;
        append(inst);
    }

    /** dst <- src (integer BIS-with-zero or fp CPYS move). */
    void
    move(VReg dst, VReg src)
    {
        if (func_.vregIsFp(dst))
            op3(Opcode::CPYS, dst, src, noVReg);
        else
            opImm(Opcode::BIS, dst, src, 0);
    }

    /** Conditional branch testing src against zero. */
    void
    branch(Opcode op, VReg src, BlockId target)
    {
        IRInst inst;
        inst.op = op;
        inst.srcA = src;
        inst.target = target;
        append(inst);
    }

    /** Unconditional branch. */
    void
    jump(BlockId target)
    {
        IRInst inst;
        inst.op = Opcode::BR;
        inst.target = target;
        append(inst);
    }

    /**
     * dst <- address of the first instruction of block (patched during
     * lowering). Used to build call targets and jump tables.
     */
    void
    labelAddr(VReg dst, BlockId block)
    {
        IRInst inst;
        inst.op = Opcode::LDA;
        inst.dst = dst;
        inst.useImm = true;
        inst.target = block;   // lowering replaces imm with the block pc
        append(inst);
    }

    /**
     * dst <- an arbitrary 64-bit address constant (expands to an
     * LDA/SLL/LDA sequence; addr must be below 2^28).
     */
    void
    loadAddr(VReg dst, std::uint64_t addr)
    {
        loadImm(dst, static_cast<std::int32_t>(addr >> 13));
        opImm(Opcode::SLL, dst, dst, 13);
        lea(dst, dst, static_cast<std::int32_t>(addr & 0x1fff));
    }

    /**
     * Call through a register, linking into link_dst. The callee's
     * entry block is recorded for the CFG; a JSR must be the last
     * instruction of its block (start a new block for the return
     * continuation).
     */
    void
    call(VReg link_dst, VReg target_addr, BlockId callee)
    {
        IRInst inst;
        inst.op = Opcode::JSR;
        inst.dst = link_dst;
        inst.srcA = target_addr;
        inst.target = callee;
        append(inst);
    }

    /** Return through a register. */
    void
    ret(VReg target)
    {
        IRInst inst;
        inst.op = Opcode::RET;
        inst.srcA = target;
        append(inst);
    }

    void
    halt()
    {
        IRInst inst;
        inst.op = Opcode::HALT;
        append(inst);
    }

    void append(const IRInst &inst);

  private:
    IRFunction &func_;
    BlockId current_ = noBlock;
};

} // namespace rvp

#endif // RVP_IR_IR_HH
