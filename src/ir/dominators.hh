/**
 * @file
 * Dominator-tree computation (Cooper–Harvey–Kennedy iterative
 * algorithm) over a Cfg. Used by the natural-loop finder, which in
 * turn drives the paper's last-value-reuse register reallocation.
 */

#ifndef RVP_IR_DOMINATORS_HH
#define RVP_IR_DOMINATORS_HH

#include <vector>

#include "ir/cfg.hh"

namespace rvp
{

/** Immediate-dominator relation for every reachable block. */
class Dominators
{
  public:
    explicit Dominators(const Cfg &cfg);

    /** Immediate dominator of b (the entry block dominates itself). */
    BlockId idom(BlockId b) const { return idom_[b]; }

    /** True iff a dominates b (reflexive). */
    bool dominates(BlockId a, BlockId b) const;

  private:
    const Cfg &cfg_;
    std::vector<BlockId> idom_;
};

} // namespace rvp

#endif // RVP_IR_DOMINATORS_HH
