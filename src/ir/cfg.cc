#include "ir/cfg.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rvp
{

Cfg::Cfg(const IRFunction &func)
{
    std::uint32_t n = func.numBlocks();
    succs_.resize(n);
    preds_.resize(n);
    rpoIndex_.assign(n, UINT32_MAX);

    // Call continuations: a JSR ends its block and control eventually
    // returns to the following block via some RET. We model RET blocks
    // as branching to *every* call continuation — a conservative
    // over-approximation that is safe for liveness and interference.
    std::vector<BlockId> continuations;
    for (BlockId b = 0; b < n; ++b) {
        const BasicBlock &block = func.blocks()[b];
        if (!block.insts.empty() &&
            block.insts.back().op == Opcode::JSR &&
            func.nextInLayout(b) != noBlock) {
            continuations.push_back(func.nextInLayout(b));
        }
    }

    for (BlockId b = 0; b < n; ++b) {
        const BasicBlock &block = func.blocks()[b];
        bool falls_through = true;
        if (!block.insts.empty()) {
            const IRInst &last = block.insts.back();
            const OpcodeInfo &info = last.info();
            if (info.isCondBranch) {
                succs_[b].push_back(last.target);
                // fallthrough added below
            } else if (last.op == Opcode::BR) {
                succs_[b].push_back(last.target);
                falls_through = false;
            } else if (last.op == Opcode::JSR) {
                // The builder records the callee entry block as target.
                RVP_ASSERT(last.target != noBlock);
                succs_[b].push_back(last.target);
                falls_through = false;
            } else if (last.op == Opcode::RET) {
                succs_[b] = continuations;
                falls_through = false;
            } else if (last.op == Opcode::HALT) {
                falls_through = false;
            }
        }
        if (falls_through && func.nextInLayout(b) != noBlock)
            succs_[b].push_back(func.nextInLayout(b));
        // Deduplicate (a branch may target the fallthrough block).
        std::sort(succs_[b].begin(), succs_[b].end());
        succs_[b].erase(std::unique(succs_[b].begin(), succs_[b].end()),
                        succs_[b].end());
    }

    for (BlockId b = 0; b < n; ++b)
        for (BlockId s : succs_[b])
            preds_[s].push_back(b);

    // Iterative postorder DFS from the entry block (first in layout).
    if (n == 0 || func.layout().empty())
        return;
    BlockId entry = func.layout().front();
    std::vector<std::uint8_t> state(n, 0);   // 0=unseen 1=open 2=done
    std::vector<std::pair<BlockId, std::size_t>> stack;
    std::vector<BlockId> postorder;
    stack.emplace_back(entry, 0);
    state[entry] = 1;
    while (!stack.empty()) {
        auto &[b, next] = stack.back();
        if (next < succs_[b].size()) {
            BlockId s = succs_[b][next++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            state[b] = 2;
            postorder.push_back(b);
            stack.pop_back();
        }
    }
    rpo_.assign(postorder.rbegin(), postorder.rend());
    for (std::uint32_t i = 0; i < rpo_.size(); ++i)
        rpoIndex_[rpo_[i]] = i;
}

} // namespace rvp
