#include "ir/ir.hh"

#include "common/logging.hh"

namespace rvp
{

BlockId
IRFunction::nextInLayout(BlockId b) const
{
    for (std::size_t i = 0; i + 1 < layout_.size(); ++i)
        if (layout_[i] == b)
            return layout_[i + 1];
    return noBlock;
}

void
IRFunction::numberInsts()
{
    blockStart_.assign(blocks_.size(), 0);
    instBlock_.clear();
    std::uint32_t count = 0;
    for (BlockId b : layout_) {
        blockStart_[b] = count;
        for (std::size_t i = 0; i < blocks_[b].insts.size(); ++i)
            instBlock_.push_back(b);
        count += static_cast<std::uint32_t>(blocks_[b].insts.size());
    }
    numInsts_ = count;
}

const IRInst &
IRFunction::instAt(std::uint32_t id) const
{
    return const_cast<IRFunction *>(this)->instAt(id);
}

IRInst &
IRFunction::instAt(std::uint32_t id)
{
    RVP_ASSERT(id < numInsts_);
    BlockId b = instBlock_[id];
    return blocks_[b].insts[id - blockStart_[b]];
}

void
IRBuilder::append(const IRInst &inst)
{
    RVP_ASSERT(current_ != noBlock);
    func_.blocks()[current_].insts.push_back(inst);
}

} // namespace rvp
