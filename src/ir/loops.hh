/**
 * @file
 * Natural-loop detection from back edges (an edge t->h where h
 * dominates t). Produces loop bodies, nesting depth, and the innermost
 * loop of every block — inputs to the paper's last-value-reuse
 * reallocation, which must give an LVR instruction a register that is
 * exclusive within its innermost loop.
 */

#ifndef RVP_IR_LOOPS_HH
#define RVP_IR_LOOPS_HH

#include <cstdint>
#include <vector>

#include "ir/cfg.hh"
#include "ir/dominators.hh"

namespace rvp
{

/** Id of a natural loop. */
using LoopId = std::uint32_t;
constexpr LoopId noLoop = UINT32_MAX;

/** One natural loop: header plus member blocks. */
struct Loop
{
    BlockId header = noBlock;
    std::vector<BlockId> blocks;   ///< includes the header
    LoopId parent = noLoop;        ///< immediately-enclosing loop
    unsigned depth = 1;            ///< 1 = outermost
};

/** The loop forest of a function. */
class LoopInfo
{
  public:
    LoopInfo(const Cfg &cfg, const Dominators &doms);

    const std::vector<Loop> &loops() const { return loops_; }

    /** Innermost loop containing block b, or noLoop. */
    LoopId innermost(BlockId b) const { return innermost_[b]; }

    /** Nesting depth of block b (0 = not in any loop). */
    unsigned depth(BlockId b) const
    {
        return innermost_[b] == noLoop ? 0 : loops_[innermost_[b]].depth;
    }

    /** True iff block b belongs to loop l (directly or nested). */
    bool contains(LoopId l, BlockId b) const;

  private:
    std::vector<Loop> loops_;
    std::vector<LoopId> innermost_;
};

} // namespace rvp

#endif // RVP_IR_LOOPS_HH
