#include "ir/dominators.hh"

#include "common/logging.hh"

namespace rvp
{

Dominators::Dominators(const Cfg &cfg)
    : cfg_(cfg), idom_(cfg.numBlocks(), noBlock)
{
    if (cfg.numBlocks() == 0)
        return;

    const std::vector<BlockId> &rpo = cfg.rpo();
    BlockId entry = rpo.empty() ? 0 : rpo.front();
    idom_[entry] = entry;

    auto intersect = [&](BlockId a, BlockId b) {
        while (a != b) {
            while (cfg_.rpoIndex(a) > cfg_.rpoIndex(b))
                a = idom_[a];
            while (cfg_.rpoIndex(b) > cfg_.rpoIndex(a))
                b = idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : rpo) {
            if (b == entry)
                continue;
            BlockId new_idom = noBlock;
            for (BlockId p : cfg_.preds(b)) {
                if (!cfg_.reachable(p) || idom_[p] == noBlock)
                    continue;
                new_idom = (new_idom == noBlock) ? p
                                                 : intersect(p, new_idom);
            }
            if (new_idom != noBlock && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
}

bool
Dominators::dominates(BlockId a, BlockId b) const
{
    if (!cfg_.reachable(b) || idom_[b] == noBlock)
        return false;
    BlockId cur = b;
    while (true) {
        if (cur == a)
            return true;
        BlockId up = idom_[cur];
        if (up == cur)
            return false;   // reached entry
        cur = up;
    }
}

} // namespace rvp
