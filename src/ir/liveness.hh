/**
 * @file
 * Virtual-register liveness via backward dataflow over the CFG, plus
 * per-instruction live sets. The interference graph, the register
 * allocator, the reuse profiler's dead-register classification, and
 * the paper's reallocation pass all consume this analysis.
 */

#ifndef RVP_IR_LIVENESS_HH
#define RVP_IR_LIVENESS_HH

#include <cstdint>
#include <vector>

#include "ir/cfg.hh"

namespace rvp
{

/** A dense bitset over virtual registers. */
class VRegSet
{
  public:
    explicit VRegSet(std::uint32_t num_vregs = 0)
        : bits_((num_vregs + 63) / 64, 0), size_(num_vregs)
    {}

    bool
    contains(VReg v) const
    {
        return (bits_[v / 64] >> (v % 64)) & 1;
    }

    void insert(VReg v) { bits_[v / 64] |= 1ull << (v % 64); }
    void erase(VReg v) { bits_[v / 64] &= ~(1ull << (v % 64)); }

    /** this |= other; returns true if anything changed. */
    bool
    unionWith(const VRegSet &other)
    {
        bool changed = false;
        for (std::size_t i = 0; i < bits_.size(); ++i) {
            std::uint64_t merged = bits_[i] | other.bits_[i];
            changed |= merged != bits_[i];
            bits_[i] = merged;
        }
        return changed;
    }

    /** Iterate set members (ascending). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t word = 0; word < bits_.size(); ++word) {
            std::uint64_t w = bits_[word];
            while (w) {
                unsigned bit = static_cast<unsigned>(__builtin_ctzll(w));
                fn(static_cast<VReg>(word * 64 + bit));
                w &= w - 1;
            }
        }
    }

    std::uint32_t universe() const { return size_; }

  private:
    std::vector<std::uint64_t> bits_;
    std::uint32_t size_;
};

/** Uses and definition of one IR instruction. */
struct UseDef
{
    VReg uses[2] = {noVReg, noVReg};
    VReg def = noVReg;
};

/** Extract the use/def sets of an instruction. */
UseDef useDef(const IRInst &inst);

/** Block-level live-in/out plus per-instruction queries. */
class Liveness
{
  public:
    Liveness(const IRFunction &func, const Cfg &cfg);

    const VRegSet &liveIn(BlockId b) const { return liveIn_[b]; }
    const VRegSet &liveOut(BlockId b) const { return liveOut_[b]; }

    /**
     * Live set just *before* global instruction id executes (its own
     * uses are live; its def is not, unless also live across).
     */
    VRegSet liveBefore(std::uint32_t inst_id) const;

    /** Live set just after global instruction id executes. */
    VRegSet liveAfter(std::uint32_t inst_id) const;

  private:
    const IRFunction &func_;
    const Cfg &cfg_;
    std::vector<VRegSet> liveIn_;
    std::vector<VRegSet> liveOut_;
};

} // namespace rvp

#endif // RVP_IR_LIVENESS_HH
