#include "ir/loops.hh"

#include <algorithm>

namespace rvp
{

LoopInfo::LoopInfo(const Cfg &cfg, const Dominators &doms)
{
    std::uint32_t n = cfg.numBlocks();
    innermost_.assign(n, noLoop);

    // Find back edges and collect each loop's body with the classic
    // backward walk from the latch to the header.
    for (BlockId t = 0; t < n; ++t) {
        if (!cfg.reachable(t))
            continue;
        for (BlockId h : cfg.succs(t)) {
            if (!doms.dominates(h, t))
                continue;
            // Merge multiple back edges to the same header into one loop.
            LoopId existing = noLoop;
            for (LoopId l = 0; l < loops_.size(); ++l) {
                if (loops_[l].header == h) {
                    existing = l;
                    break;
                }
            }
            if (existing == noLoop) {
                loops_.push_back(Loop{h, {h}, noLoop, 1});
                existing = static_cast<LoopId>(loops_.size() - 1);
            }
            Loop &loop = loops_[existing];
            std::vector<BlockId> worklist{t};
            while (!worklist.empty()) {
                BlockId b = worklist.back();
                worklist.pop_back();
                if (std::find(loop.blocks.begin(), loop.blocks.end(), b) !=
                    loop.blocks.end()) {
                    continue;
                }
                loop.blocks.push_back(b);
                for (BlockId p : cfg.preds(b))
                    if (cfg.reachable(p))
                        worklist.push_back(p);
            }
        }
    }

    // Parent links: loop A is the parent of B if A contains B's header
    // and A is the smallest such loop.
    for (LoopId inner = 0; inner < loops_.size(); ++inner) {
        LoopId best = noLoop;
        for (LoopId outer = 0; outer < loops_.size(); ++outer) {
            if (outer == inner)
                continue;
            const Loop &o = loops_[outer];
            bool contains_header =
                std::find(o.blocks.begin(), o.blocks.end(),
                          loops_[inner].header) != o.blocks.end();
            if (contains_header &&
                (best == noLoop ||
                 o.blocks.size() < loops_[best].blocks.size())) {
                best = outer;
            }
        }
        loops_[inner].parent = best;
    }

    // Depths via parent chains.
    for (LoopId l = 0; l < loops_.size(); ++l) {
        unsigned d = 1;
        LoopId p = loops_[l].parent;
        while (p != noLoop) {
            ++d;
            p = loops_[p].parent;
        }
        loops_[l].depth = d;
    }

    // Innermost loop per block = deepest loop containing it.
    for (LoopId l = 0; l < loops_.size(); ++l) {
        for (BlockId b : loops_[l].blocks) {
            if (innermost_[b] == noLoop ||
                loops_[innermost_[b]].depth < loops_[l].depth) {
                innermost_[b] = l;
            }
        }
    }
}

bool
LoopInfo::contains(LoopId l, BlockId b) const
{
    const Loop &loop = loops_[l];
    return std::find(loop.blocks.begin(), loop.blocks.end(), b) !=
           loop.blocks.end();
}

} // namespace rvp
