/**
 * @file
 * Control-flow graph over an IRFunction's basic blocks: successor and
 * predecessor edges plus a reverse-postorder numbering used by the
 * dataflow passes.
 */

#ifndef RVP_IR_CFG_HH
#define RVP_IR_CFG_HH

#include <cstdint>
#include <vector>

#include "ir/ir.hh"

namespace rvp
{

/** Immutable CFG snapshot of a function. */
class Cfg
{
  public:
    explicit Cfg(const IRFunction &func);

    const std::vector<BlockId> &succs(BlockId b) const { return succs_[b]; }
    const std::vector<BlockId> &preds(BlockId b) const { return preds_[b]; }

    /** Blocks in reverse postorder from the entry block. */
    const std::vector<BlockId> &rpo() const { return rpo_; }

    /** Position of block b in the RPO (or UINT32_MAX if unreachable). */
    std::uint32_t rpoIndex(BlockId b) const { return rpoIndex_[b]; }

    bool reachable(BlockId b) const
    {
        return rpoIndex_[b] != UINT32_MAX;
    }

    std::uint32_t numBlocks() const
    {
        return static_cast<std::uint32_t>(succs_.size());
    }

  private:
    std::vector<std::vector<BlockId>> succs_;
    std::vector<std::vector<BlockId>> preds_;
    std::vector<BlockId> rpo_;
    std::vector<std::uint32_t> rpoIndex_;
};

} // namespace rvp

#endif // RVP_IR_CFG_HH
