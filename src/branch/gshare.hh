/**
 * @file
 * Branch prediction per Table 1 of the paper: gshare with a 2K-entry
 * 2-bit PHT, a 256-entry BTB, and a return-address stack. The paper's
 * processor predicts conditional direction with gshare, targets with
 * the BTB, and returns with the RAS.
 */

#ifndef RVP_BRANCH_GSHARE_HH
#define RVP_BRANCH_GSHARE_HH

#include <cstdint>
#include <vector>

#include "common/counters.hh"
#include "common/stats.hh"
#include "isa/inst.hh"

namespace rvp
{

/** Branch predictor configuration (defaults = Table 1). */
struct BranchPredictorConfig
{
    unsigned phtEntries = 2048;   ///< 2-bit counters
    unsigned btbEntries = 256;    ///< direct-mapped, tagged
    unsigned rasEntries = 16;
    unsigned historyBits = 11;    ///< log2(phtEntries)
};

/** Outcome of one prediction. */
struct BranchPrediction
{
    bool taken = false;
    bool targetKnown = false;     ///< BTB/RAS produced a target
    std::uint64_t target = 0;
};

/**
 * gshare + BTB + RAS. The caller predicts at fetch and updates at
 * branch resolution with the actual direction and target.
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorConfig &config = {});

    /**
     * Predict the instruction at pc. Unconditional branches predict
     * taken; conditionals consult the PHT; JSR pushes the RAS; RET
     * pops it.
     */
    BranchPrediction predict(std::uint64_t pc, const StaticInst &inst);

    /**
     * Train on the resolved branch and repair the speculative history
     * if the direction was mispredicted.
     */
    void update(std::uint64_t pc, const StaticInst &inst, bool taken,
                std::uint64_t target, bool direction_mispredicted);

    void reset();
    void exportStats(StatSet &stats) const;

  private:
    struct BtbEntry
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t target = 0;
    };

    /**
     * gshare PHT index for pc under the given history value. predict
     * and update MUST hash through this one function: predict passes
     * the pre-prediction history, update passes the repaired history
     * shifted back one bit (undoing the speculative shift predict
     * applied), so both sides index the same entry for the same
     * branch. A second hand-written hash in update once risked the
     * two silently diverging — see test_branch.cc's
     * PredictAndUpdateAgreeOnThePhtIndex regression.
     */
    unsigned phtIndex(std::uint64_t pc, std::uint64_t history) const;
    unsigned btbIndex(std::uint64_t pc) const;

    BranchPredictorConfig config_;
    std::vector<SaturatingCounter> pht_;
    std::vector<BtbEntry> btb_;
    std::vector<std::uint64_t> ras_;
    std::size_t rasTop_ = 0;
    std::uint64_t history_ = 0;

    std::uint64_t lookups_ = 0;
    std::uint64_t btbMisses_ = 0;
};

} // namespace rvp

#endif // RVP_BRANCH_GSHARE_HH
