#include "branch/gshare.hh"

#include "common/bits.hh"

namespace rvp
{

BranchPredictor::BranchPredictor(const BranchPredictorConfig &config)
    : config_(config),
      pht_(config.phtEntries, SaturatingCounter(2, 1)),
      btb_(config.btbEntries),
      ras_(config.rasEntries, 0)
{
}

unsigned
BranchPredictor::phtIndex(std::uint64_t pc, std::uint64_t history) const
{
    std::uint64_t hashed = (pc >> 2) ^ (history & mask(config_.historyBits));
    return static_cast<unsigned>(hashed % config_.phtEntries);
}

unsigned
BranchPredictor::btbIndex(std::uint64_t pc) const
{
    return static_cast<unsigned>((pc >> 2) % config_.btbEntries);
}

BranchPrediction
BranchPredictor::predict(std::uint64_t pc, const StaticInst &inst)
{
    ++lookups_;
    const OpcodeInfo &info = inst.info();
    BranchPrediction pred;

    if (info.isCondBranch) {
        pred.taken = pht_[phtIndex(pc, history_)].isSet();
        // Speculative history update; repaired on mispredict.
        history_ = (history_ << 1) | (pred.taken ? 1 : 0);
    } else {
        pred.taken = true;
    }

    if (inst.op == Opcode::RET) {
        // Pop the RAS.
        rasTop_ = (rasTop_ + ras_.size() - 1) % ras_.size();
        pred.target = ras_[rasTop_];
        pred.targetKnown = pred.target != 0;
        if (!pred.targetKnown)
            ++btbMisses_;
        return pred;
    }

    if (inst.op == Opcode::JSR) {
        // Push the return address.
        ras_[rasTop_] = pc + 4;
        rasTop_ = (rasTop_ + 1) % ras_.size();
    }

    if (pred.taken) {
        const BtbEntry &entry = btb_[btbIndex(pc)];
        if (entry.valid && entry.tag == pc) {
            pred.target = entry.target;
            pred.targetKnown = true;
        } else {
            ++btbMisses_;
        }
    } else {
        pred.target = pc + 4;
        pred.targetKnown = true;
    }
    return pred;
}

void
BranchPredictor::update(std::uint64_t pc, const StaticInst &inst, bool taken,
                        std::uint64_t target, bool direction_mispredicted)
{
    const OpcodeInfo &info = inst.info();
    if (info.isCondBranch) {
        // The speculatively-shifted history bit must be corrected
        // before training so the PHT index stream stays consistent.
        if (direction_mispredicted)
            history_ ^= 1;
        // history_ >> 1 undoes predict's speculative shift, so this is
        // exactly the history predict hashed with — the shared
        // phtIndex keeps the two sides structurally in agreement
        // (update used to re-derive the index with its own copy of
        // the hash, one masking drift away from training dead
        // entries).
        unsigned idx = phtIndex(pc, history_ >> 1);
        if (taken)
            pht_[idx].increment();
        else
            pht_[idx].decrement();
    }
    if (taken && inst.op != Opcode::RET) {
        BtbEntry &entry = btb_[btbIndex(pc)];
        entry.valid = true;
        entry.tag = pc;
        entry.target = target;
    }
}

void
BranchPredictor::reset()
{
    for (auto &counter : pht_)
        counter = SaturatingCounter(2, 1);
    for (auto &entry : btb_)
        entry = BtbEntry{};
    for (auto &slot : ras_)
        slot = 0;
    rasTop_ = 0;
    history_ = 0;
    lookups_ = 0;
    btbMisses_ = 0;
}

void
BranchPredictor::exportStats(StatSet &stats) const
{
    stats.set("bp.lookups", static_cast<double>(lookups_));
    stats.set("bp.btb_misses", static_cast<double>(btbMisses_));
}

} // namespace rvp
