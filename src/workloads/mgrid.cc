/**
 * @file
 * "mgrid" analogue: a 3D multigrid relaxation kernel in the spirit of
 * the SPEC95 multigrid solver. A 16^3 grid that is ~90% zeros (a
 * sparse charge distribution) is swept with a 7-point stencil whose
 * result is written to a second grid. Characteristics reproduced: the
 * overwhelming majority of loads return 0.0 — the *constant locality*
 * the paper calls out (predicting zero beats last-value prediction
 * when occasional nonzeros interrupt runs), plus regular FP loop
 * structure with deep nesting.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"

namespace rvp
{

namespace
{

constexpr unsigned dim = 16;
constexpr std::uint64_t gridBase = Program::dataBase;
constexpr std::uint64_t outBase = Program::dataBase + 0x10000;
constexpr std::uint64_t coefBase = Program::dataBase + 0x20000;

} // namespace

BuiltWorkload
buildMgrid(InputSet input)
{
    BuiltWorkload wl;
    wl.name = "mgrid";
    wl.isFloatingPoint = true;

    Rng rng(input == InputSet::Train ? 0x36901 : 0x36902);
    unsigned charge_pct = input == InputSet::Train ? 8 : 11;
    for (unsigned x = 0; x < dim; ++x) {
        for (unsigned y = 0; y < dim; ++y) {
            for (unsigned z = 0; z < dim; ++z) {
                if (rng.chance(charge_pct, 100)) {
                    double v = 0.5 + rng.nextDouble();
                    wl.data.push_back(
                        {gridBase +
                             8ull * ((x * dim + y) * dim + z),
                         doubleBits(v)});
                }
                // zeros are implicit (memory reads as zero)
            }
        }
    }
    wl.data.push_back({coefBase, doubleBits(-0.125)});
    wl.data.push_back({coefBase + 8, doubleBits(0.5)});

    IRFunction &f = wl.func;
    IRBuilder b(f);

    VReg grid = f.newIntVReg();
    VReg out = f.newIntVReg();
    VReg coefs = f.newIntVReg();
    VReg outer = f.newIntVReg();
    VReg x = f.newIntVReg();
    VReg y = f.newIntVReg();
    VReg z = f.newIntVReg();
    VReg plane = f.newIntVReg();
    VReg rowoff = f.newIntVReg();
    VReg addr = f.newIntVReg();
    VReg oaddr = f.newIntVReg();
    VReg tmp = f.newIntVReg();
    VReg wa = f.newFpVReg();
    VReg wb = f.newFpVReg();
    VReg center = f.newFpVReg();
    VReg up = f.newFpVReg();
    VReg down = f.newFpVReg();
    VReg north = f.newFpVReg();
    VReg south = f.newFpVReg();
    VReg west = f.newFpVReg();
    VReg east = f.newFpVReg();
    VReg acc = f.newFpVReg();
    VReg resv = f.newFpVReg();

    constexpr std::int32_t zstep = 8;
    constexpr std::int32_t ystep = 8 * dim;
    constexpr std::int32_t xstep = 8 * dim * dim;

    b.startBlock();
    b.loadAddr(grid, gridBase);
    b.loadAddr(out, outBase);
    b.loadAddr(coefs, coefBase);
    b.loadAddr(outer, 1'000'000);
    b.load(wa, coefs, 0);
    b.load(wb, coefs, 8);

    BlockId outer_head = b.startBlock();
    b.loadImm(x, 1);
    BlockId x_head = b.startBlock();
    b.opImm(Opcode::SLL, plane, x, 8);   // x * dim*dim (16*16 = 256)
    b.loadImm(y, 1);
    BlockId y_head = b.startBlock();
    b.opImm(Opcode::SLL, rowoff, y, 4);  // y * dim
    b.op3(Opcode::ADDQ, rowoff, rowoff, plane);
    b.loadImm(z, 1);

    BlockId z_head = b.startBlock();
    b.op3(Opcode::ADDQ, addr, rowoff, z);
    b.opImm(Opcode::SLL, addr, addr, 3);
    b.op3(Opcode::ADDQ, oaddr, addr, out);
    b.op3(Opcode::ADDQ, addr, addr, grid);
    b.load(center, addr, 0);             // ~90% of these are 0.0
    b.load(up, addr, xstep);
    b.load(down, addr, -xstep);
    b.load(north, addr, ystep);
    b.load(south, addr, -ystep);
    b.load(west, addr, -zstep);
    b.load(east, addr, zstep);
    b.op3(Opcode::ADDT, acc, up, down);
    b.op3(Opcode::ADDT, acc, acc, north);
    b.op3(Opcode::ADDT, acc, acc, south);
    b.op3(Opcode::ADDT, acc, acc, west);
    b.op3(Opcode::ADDT, acc, acc, east);
    b.op3(Opcode::MULT, acc, acc, wa);
    b.op3(Opcode::MULT, resv, center, wb);
    b.op3(Opcode::ADDT, resv, resv, acc);
    b.store(resv, oaddr, 0);

    b.opImm(Opcode::ADDQ, z, z, 1);
    b.opImm(Opcode::CMPLT, tmp, z, static_cast<std::int32_t>(dim - 1));
    b.branch(Opcode::BNE, tmp, z_head);
    b.startBlock();
    b.opImm(Opcode::ADDQ, y, y, 1);
    b.opImm(Opcode::CMPLT, tmp, y, static_cast<std::int32_t>(dim - 1));
    b.branch(Opcode::BNE, tmp, y_head);
    b.startBlock();
    b.opImm(Opcode::ADDQ, x, x, 1);
    b.opImm(Opcode::CMPLT, tmp, x, static_cast<std::int32_t>(dim - 1));
    b.branch(Opcode::BNE, tmp, x_head);

    b.startBlock();
    b.opImm(Opcode::SUBQ, outer, outer, 1);
    b.branch(Opcode::BNE, outer, outer_head);
    b.startBlock();
    b.halt();

    f.numberInsts();
    return wl;
}

} // namespace rvp
