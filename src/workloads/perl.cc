/**
 * @file
 * "perl" analogue: hash-table driven string processing in the spirit
 * of the SPEC95 perl interpreter. A query stream of key pointers is
 * hashed (multiply/xor over four words per key), a bucket head is
 * loaded, and a chain of nodes is walked comparing key pointers; hits
 * accumulate the stored value. Characteristics reproduced: moderate
 * load reuse (keys repeat across the query stream so bucket heads and
 * node values recur), data-dependent chain-walk branches, and a mix
 * of well- and poorly-predictable loads.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"

namespace rvp
{

namespace
{

constexpr unsigned numKeys = 48;
constexpr unsigned numBuckets = 64;
constexpr unsigned numQueries = 96;
constexpr std::uint64_t keysBase = Program::dataBase;             // 4 words each
constexpr std::uint64_t bucketsBase = Program::dataBase + 0x4000;
constexpr std::uint64_t nodesBase = Program::dataBase + 0x8000;   // {key,val,next}
constexpr std::uint64_t queryBase = Program::dataBase + 0x10000;
constexpr std::uint64_t resultBase = Program::dataBase + 0x14000;
constexpr std::uint64_t globalsBase = Program::dataBase + 0x18000;

} // namespace

BuiltWorkload
buildPerl(InputSet input)
{
    BuiltWorkload wl;
    wl.name = "perl";
    wl.isFloatingPoint = false;

    Rng rng(input == InputSet::Train ? 0x9e711 : 0x9e712);

    // Keys: four pseudo-character words each.
    std::vector<std::uint64_t> key_addr(numKeys);
    for (unsigned k = 0; k < numKeys; ++k) {
        key_addr[k] = keysBase + 32ull * k;
        for (unsigned word = 0; word < 4; ++word) {
            wl.data.push_back(
                {key_addr[k] + 8ull * word, rng.nextBelow(1 << 20)});
        }
    }

    // Host-side hash must match the simulated hash so chains resolve.
    auto hash = [&](unsigned k) {
        std::uint64_t h = 0;
        for (unsigned word = 0; word < 4; ++word) {
            std::uint64_t c = 0;
            for (auto &[a, v] : wl.data)
                if (a == key_addr[k] + 8ull * word)
                    c = v;
            h = h * 31 + c;
        }
        return h & (numBuckets - 1);
    };

    // Hash-table nodes, chained per bucket.
    std::vector<std::uint64_t> bucket_head(numBuckets, 0);
    std::uint64_t next_node = nodesBase;
    for (unsigned k = 0; k < numKeys; ++k) {
        std::uint64_t node = next_node;
        next_node += 24;
        std::uint64_t b = hash(k);
        wl.data.push_back({node + 0, key_addr[k]});
        wl.data.push_back({node + 8, 100 + k});
        wl.data.push_back({node + 16, bucket_head[b]});
        bucket_head[b] = node;
    }
    for (unsigned b = 0; b < numBuckets; ++b)
        wl.data.push_back({bucketsBase + 8ull * b, bucket_head[b]});

    // Query stream: skewed toward a hot subset of keys.
    for (unsigned q = 0; q < numQueries; ++q) {
        unsigned k = rng.chance(70, 100)
                         ? static_cast<unsigned>(rng.nextBelow(8))
                         : static_cast<unsigned>(rng.nextBelow(numKeys));
        wl.data.push_back({queryBase + 8ull * q, key_addr[k]});
    }

    // Interpreter globals: the flags and configuration words a real
    // interpreter reloads constantly — all effectively constant, the
    // source of perl's steady trickle of value reuse.
    wl.data.push_back({globalsBase + 0, 0});    // magic/taint flag
    wl.data.push_back({globalsBase + 8, 1});    // warn level
    wl.data.push_back({globalsBase + 16, 32});  // field width
    wl.data.push_back({globalsBase + 24, 7});   // separator char

    IRFunction &f = wl.func;
    IRBuilder b(f);

    VReg queries = f.newIntVReg();
    VReg buckets = f.newIntVReg();
    VReg results = f.newIntVReg();
    VReg outer = f.newIntVReg();
    VReg q = f.newIntVReg();
    VReg kp = f.newIntVReg();
    VReg h = f.newIntVReg();
    VReg c = f.newIntVReg();
    VReg node = f.newIntVReg();
    VReg nk = f.newIntVReg();
    VReg v = f.newIntVReg();
    VReg sum = f.newIntVReg();
    VReg addr = f.newIntVReg();
    VReg tmp = f.newIntVReg();
    VReg globals = f.newIntVReg();
    VReg flag = f.newIntVReg();
    VReg width = f.newIntVReg();
    VReg sep = f.newIntVReg();
    VReg linelen = f.newIntVReg();

    b.startBlock();
    b.loadAddr(queries, queryBase);
    b.loadAddr(buckets, bucketsBase);
    b.loadAddr(results, resultBase);
    b.loadAddr(globals, globalsBase);
    b.loadAddr(outer, 2'000'000);

    BlockId outer_head = b.startBlock();
    b.loadImm(sum, 0);
    b.loadImm(q, 0);

    BlockId query_head = b.startBlock();
    // Interpreter bookkeeping: the taint/magic flag is polled on every
    // operation (and is always clear) — classic constant locality.
    b.load(flag, globals, 0);
    BlockId no_magic = b.label();
    b.branch(Opcode::BEQ, flag, no_magic);
    b.startBlock();
    b.store(flag, globals, 32);           // (never executed)
    b.place(no_magic);
    b.opImm(Opcode::SLL, addr, q, 3);
    b.op3(Opcode::ADDQ, addr, addr, queries);
    b.load(kp, addr, 0);                  // key pointer (hot set recurs)

    // Hash: h = (((c0*31 + c1)*31 + c2)*31 + c3), unrolled.
    b.load(c, kp, 0);
    b.move(h, c);
    b.load(c, kp, 8);
    b.opImm(Opcode::MULQ, h, h, 31);
    b.op3(Opcode::ADDQ, h, h, c);
    b.load(c, kp, 16);
    b.opImm(Opcode::MULQ, h, h, 31);
    b.op3(Opcode::ADDQ, h, h, c);
    b.load(c, kp, 24);
    b.opImm(Opcode::MULQ, h, h, 31);
    b.op3(Opcode::ADDQ, h, h, c);
    b.opImm(Opcode::AND, h, h,
            static_cast<std::int32_t>(numBuckets - 1));

    b.opImm(Opcode::SLL, tmp, h, 3);
    b.op3(Opcode::ADDQ, tmp, tmp, buckets);
    b.load(node, tmp, 0);                 // bucket head

    BlockId chain_head = b.startBlock();
    BlockId next_query = b.label();
    b.branch(Opcode::BEQ, node, next_query);   // empty / chain end
    b.startBlock();
    b.load(nk, node, 0);                  // node key pointer
    b.op3(Opcode::CMPEQ, tmp, nk, kp);
    BlockId miss = b.label();
    b.branch(Opcode::BEQ, tmp, miss);
    b.startBlock();                        // hit: take the value
    b.load(v, node, 8);
    b.op3(Opcode::ADDQ, sum, sum, v);
    b.jump(next_query);
    b.place(miss);
    b.load(node, node, 16);               // walk the chain
    b.jump(chain_head);

    b.place(next_query);
    b.opImm(Opcode::ADDQ, q, q, 1);
    b.opImm(Opcode::CMPLT, tmp, q,
            static_cast<std::int32_t>(numQueries));
    b.branch(Opcode::BNE, tmp, query_head);

    // -------- report-formatting phase (write the "output line") --------
    // Field width and separator are interpreter globals: constant
    // loads every iteration, like perl's format/write machinery.
    b.startBlock();
    b.store(sum, results, 0);
    b.loadImm(linelen, 0);
    b.loadImm(q, 0);
    BlockId fmt_head = b.startBlock();
    b.load(width, globals, 16);           // constant 32
    b.load(sep, globals, 24);             // constant 7
    b.opImm(Opcode::SLL, addr, q, 3);
    b.op3(Opcode::ADDQ, addr, addr, results);
    b.load(v, addr, 8);                   // previous line's cells
    b.op3(Opcode::ADDQ, v, v, sep);
    b.op3(Opcode::ADDQ, linelen, linelen, width);
    b.store(v, addr, 8);
    b.opImm(Opcode::ADDQ, q, q, 1);
    b.opImm(Opcode::CMPLT, tmp, q, 24);
    b.branch(Opcode::BNE, tmp, fmt_head);
    b.startBlock();
    b.store(linelen, results, 16);
    b.opImm(Opcode::SUBQ, outer, outer, 1);
    b.branch(Opcode::BNE, outer, outer_head);
    b.startBlock();
    b.halt();

    f.numberInsts();
    return wl;
}

} // namespace rvp
