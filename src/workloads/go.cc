/**
 * @file
 * "go" analogue: branchy integer board-scanning code in the style of
 * the SPEC95 go engine. A 512-point board (values 0 = empty, 1/2 =
 * stones) is scanned repeatedly: each point is classified, neighbour
 * chains are examined with data-dependent branches, and a
 * liberties-style table is consulted. After each full scan a
 * linear-congruential "move generator" mutates one board point, so
 * board values drift slowly. Characteristics reproduced: hard-to-
 * predict branches, moderate load-value reuse (empty points dominate),
 * small table loads with high reuse.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"

namespace rvp
{

namespace
{

constexpr std::uint64_t boardBase = Program::dataBase;          // 512 x 8B
constexpr std::uint64_t libTableBase = Program::dataBase + 0x2000; // 3 x 8B
constexpr std::uint64_t resultBase = Program::dataBase + 0x3000;

} // namespace

BuiltWorkload
buildGo(InputSet input)
{
    BuiltWorkload wl;
    wl.name = "go";
    wl.isFloatingPoint = false;

    // Board image: mostly empty, two stone colours.
    Rng rng(input == InputSet::Train ? 0x90901 : 0x90902);
    unsigned stone_pct = input == InputSet::Train ? 35 : 42;
    for (unsigned i = 0; i < 512; ++i) {
        std::uint64_t v = 0;
        if (rng.chance(stone_pct, 100))
            v = 1 + rng.nextBelow(2);
        wl.data.push_back({boardBase + 8 * i, v});
    }
    // Liberties table: one entry per point class.
    wl.data.push_back({libTableBase + 0, 4});
    wl.data.push_back({libTableBase + 8, 2});
    wl.data.push_back({libTableBase + 16, 1});

    IRFunction &f = wl.func;
    IRBuilder b(f);

    VReg board = f.newIntVReg();
    VReg libs = f.newIntVReg();
    VReg result = f.newIntVReg();
    VReg outer = f.newIntVReg();
    VReg seed = f.newIntVReg();
    VReg score = f.newIntVReg();
    VReg empty = f.newIntVReg();
    VReg chains = f.newIntVReg();
    VReg idx = f.newIntVReg();
    VReg addr = f.newIntVReg();
    VReg cell = f.newIntVReg();
    VReg left = f.newIntVReg();
    VReg right = f.newIntVReg();
    VReg lib = f.newIntVReg();
    VReg tmp = f.newIntVReg();
    VReg tmp2 = f.newIntVReg();

    b.startBlock();
    b.loadAddr(board, boardBase);
    b.loadAddr(libs, libTableBase);
    b.loadAddr(result, resultBase);
    b.loadAddr(outer, 4'000'000);
    b.loadImm(seed, 12345);

    BlockId outer_head = b.startBlock();
    b.loadImm(score, 0);
    b.loadImm(empty, 0);
    b.loadImm(chains, 0);
    b.loadImm(idx, 1);

    // -------- scan loop over interior points --------
    BlockId scan_head = b.startBlock();
    b.opImm(Opcode::SLL, addr, idx, 3);
    b.op3(Opcode::ADDQ, addr, addr, board);
    b.load(cell, addr, 0);

    BlockId occupied = b.label();
    BlockId point_done = b.label();
    b.branch(Opcode::BNE, cell, occupied);

    // Empty point: count it and fall to the next point.
    b.startBlock();
    b.opImm(Opcode::ADDQ, empty, empty, 1);
    b.jump(point_done);

    // Occupied: compare against both neighbours (data-dependent
    // branches: stone colours are pseudo-random).
    b.place(occupied);
    b.load(left, addr, -8);
    b.load(right, addr, 8);
    b.op3(Opcode::CMPEQ, tmp, left, cell);
    BlockId no_left = b.label();
    b.branch(Opcode::BEQ, tmp, no_left);
    b.startBlock();
    b.opImm(Opcode::ADDQ, chains, chains, 1);
    b.place(no_left);
    b.op3(Opcode::CMPEQ, tmp, right, cell);
    BlockId no_right = b.label();
    b.branch(Opcode::BEQ, tmp, no_right);
    b.startBlock();
    b.opImm(Opcode::ADDQ, chains, chains, 1);
    b.place(no_right);
    // Liberties table lookup: cell is 1 or 2 -> few distinct values.
    b.opImm(Opcode::SLL, tmp2, cell, 3);
    b.op3(Opcode::ADDQ, tmp2, tmp2, libs);
    b.load(lib, tmp2, 0);
    b.op3(Opcode::ADDQ, score, score, lib);

    b.place(point_done);
    b.opImm(Opcode::ADDQ, idx, idx, 1);
    b.opImm(Opcode::CMPLT, tmp, idx, 511);
    b.branch(Opcode::BNE, tmp, scan_head);

    // -------- end of scan: record and mutate one point --------
    b.startBlock();
    b.store(score, result, 0);
    b.store(empty, result, 8);
    b.store(chains, result, 16);
    // LCG move generator.
    b.opImm(Opcode::MULQ, seed, seed, 389);
    b.opImm(Opcode::ADDQ, seed, seed, 151);
    b.opImm(Opcode::SRL, tmp, seed, 16);
    b.opImm(Opcode::AND, tmp, tmp, 511);
    b.opImm(Opcode::SLL, tmp, tmp, 3);
    b.op3(Opcode::ADDQ, tmp, tmp, board);
    b.opImm(Opcode::SRL, tmp2, seed, 24);
    b.opImm(Opcode::AND, tmp2, tmp2, 1);
    b.opImm(Opcode::ADDQ, tmp2, tmp2, 1);
    b.store(tmp2, tmp, 0);

    b.opImm(Opcode::SUBQ, outer, outer, 1);
    b.branch(Opcode::BNE, outer, outer_head);
    b.startBlock();
    b.halt();

    f.numberInsts();
    return wl;
}

} // namespace rvp
