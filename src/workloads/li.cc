/**
 * @file
 * "li" analogue: a lisp-style list interpreter in the spirit of the
 * SPEC95 xlisp kernel. A small cons-cell heap holds several integer
 * lists; the main loop repeatedly dispatches (through JSR/RET) to a
 * list-summing routine that chases cdr pointers and branches on type
 * tags. Characteristics reproduced: pointer chasing (poor value
 * locality on the cdr loads), type-tag loads that almost always
 * return the same tag (strong reuse, including cross-register
 * correlation between the tag of a cell and the tag of its
 * successor), and call/return control flow.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"

namespace rvp
{

namespace
{

constexpr unsigned numLists = 8;
constexpr std::uint64_t heapBase = Program::dataBase;
constexpr std::uint64_t headsBase = Program::dataBase + 0x20000;
constexpr std::uint64_t symBase = Program::dataBase + 0x21000;
constexpr std::uint64_t resultBase = Program::dataBase + 0x22000;

} // namespace

BuiltWorkload
buildLi(InputSet input)
{
    BuiltWorkload wl;
    wl.name = "li";
    wl.isFloatingPoint = false;

    Rng rng(input == InputSet::Train ? 0x11101 : 0x11102);
    unsigned sym_pct = input == InputSet::Train ? 6 : 8;

    // Build the cons heap: cell = {tag, value, cdr}, 24-byte stride.
    std::uint64_t next_cell = heapBase;
    for (unsigned l = 0; l < numLists; ++l) {
        unsigned len = 10 + static_cast<unsigned>(rng.nextBelow(30));
        std::uint64_t head = next_cell;
        for (unsigned e = 0; e < len; ++e) {
            std::uint64_t cell = next_cell;
            next_cell += 24;
            bool is_sym = rng.chance(sym_pct, 100);
            std::uint64_t tag = is_sym ? 2 : 1;
            std::uint64_t value =
                is_sym ? rng.nextBelow(16) : rng.nextBelow(1000);
            std::uint64_t cdr = (e + 1 < len) ? next_cell : 0;
            wl.data.push_back({cell + 0, tag});
            wl.data.push_back({cell + 8, value});
            wl.data.push_back({cell + 16, cdr});
        }
        wl.data.push_back({headsBase + 8ull * l, head});
    }
    // Symbol table: small value set.
    for (unsigned s = 0; s < 16; ++s)
        wl.data.push_back({symBase + 8ull * s, 7});

    IRFunction &f = wl.func;
    IRBuilder b(f);

    VReg heads = f.newIntVReg();
    VReg syms = f.newIntVReg();
    VReg results = f.newIntVReg();
    VReg outer = f.newIntVReg();
    VReg l = f.newIntVReg();
    VReg ptr = f.newIntVReg();
    VReg sum = f.newIntVReg();
    VReg tag = f.newIntVReg();
    VReg nexttag = f.newIntVReg();
    VReg val = f.newIntVReg();
    VReg addr = f.newIntVReg();
    VReg tmp = f.newIntVReg();
    VReg link = f.newIntVReg();
    VReg callee_addr = f.newIntVReg();

    BlockId sum_list = b.label();   // the subroutine entry

    b.startBlock();
    b.loadAddr(heads, headsBase);
    b.loadAddr(syms, symBase);
    b.loadAddr(results, resultBase);
    b.loadAddr(outer, 2'000'000);
    b.labelAddr(callee_addr, sum_list);

    BlockId outer_head = b.startBlock();
    b.loadImm(l, 0);

    BlockId list_head = b.startBlock();
    b.opImm(Opcode::SLL, addr, l, 3);
    b.op3(Opcode::ADDQ, addr, addr, heads);
    b.load(ptr, addr, 0);                 // list head pointer
    b.call(link, callee_addr, sum_list);

    // ---- return continuation ----
    b.startBlock();
    b.opImm(Opcode::SLL, addr, l, 3);
    b.op3(Opcode::ADDQ, addr, addr, results);
    b.store(sum, addr, 0);
    b.opImm(Opcode::ADDQ, l, l, 1);
    b.opImm(Opcode::CMPLT, tmp, l, static_cast<std::int32_t>(numLists));
    b.branch(Opcode::BNE, tmp, list_head);

    b.startBlock();
    b.opImm(Opcode::SUBQ, outer, outer, 1);
    b.branch(Opcode::BNE, outer, outer_head);
    b.startBlock();
    b.halt();

    // ---- sum_list subroutine: walks ptr, accumulates into sum ----
    b.place(sum_list);
    b.loadImm(sum, 0);
    BlockId walk = b.startBlock();
    b.load(tag, ptr, 0);                  // type tag: almost always 1
    BlockId symbol_case = b.label();
    BlockId advance = b.label();
    b.opImm(Opcode::CMPEQ, tmp, tag, 1);
    b.branch(Opcode::BEQ, tmp, symbol_case);
    b.startBlock();                        // integer cell
    b.load(val, ptr, 8);
    b.op3(Opcode::ADDQ, sum, sum, val);
    b.jump(advance);
    b.place(symbol_case);                  // rare: symbol indirection
    b.load(val, ptr, 8);
    b.opImm(Opcode::SLL, val, val, 3);
    b.op3(Opcode::ADDQ, val, val, syms);
    b.load(val, val, 0);
    b.op3(Opcode::ADDQ, sum, sum, val);
    b.place(advance);
    b.load(ptr, ptr, 16);                 // cdr chase: poor locality
    BlockId done = b.label();
    b.branch(Opcode::BEQ, ptr, done);
    b.startBlock();
    // Peek at the successor's tag: correlates with the (now dead)
    // current tag register — the dead-register reuse pattern.
    b.load(nexttag, ptr, 0);
    b.op3(Opcode::ADDQ, sum, sum, nexttag);
    b.jump(walk);
    b.place(done);
    b.ret(link);

    f.numberInsts();
    return wl;
}

} // namespace rvp
