/**
 * @file
 * "m88ksim" analogue: an instruction-set simulator simulating a tiny
 * guest program, in the spirit of the SPEC95 Motorola 88k simulator.
 * The host loop fetches 16 guest "instructions" from a small program
 * image, decodes fields with shifts and masks, reads two guest
 * registers, executes a compare-chain dispatch, and writes the guest
 * register file. Because the same 16 words are fetched forever and
 * most guest register values reach a fixed point, this workload has
 * the extreme last-value/register reuse the paper reports for m88ksim
 * (it predicts 29-57% of instructions at ~99.9% accuracy). One guest
 * counter strides so not every value is constant.
 */

#include "workloads/workloads.hh"

namespace rvp
{

namespace
{

constexpr std::uint64_t progBase = Program::dataBase;          // 16 x 8B
constexpr std::uint64_t gregsBase = Program::dataBase + 0x1000; // 16 x 8B
constexpr std::uint64_t statsBase = Program::dataBase + 0x2000;

/** Pack a guest instruction: op[2:0], rd[6:3], rs[10:7]. */
constexpr std::uint64_t
guest(unsigned op, unsigned rd, unsigned rs)
{
    return op | (rd << 3) | (rs << 7);
}

} // namespace

BuiltWorkload
buildM88ksim(InputSet input)
{
    BuiltWorkload wl;
    wl.name = "m88ksim";
    wl.isFloatingPoint = false;

    // Guest program: ops 0=nop 1=add 2=sub 3=and 4=inc(rd).
    // AND chains and self-subtractions converge to fixed points within
    // a few guest iterations (the stable values m88ksim is famous
    // for); r7 (inc) and r13 (add) keep striding so accuracy stays
    // below 100%.
    const std::uint64_t prog[16] = {
        guest(3, 1, 2),  guest(3, 2, 3),  guest(2, 4, 4),  guest(4, 7, 0),
        guest(3, 5, 1),  guest(0, 0, 0),  guest(3, 6, 5),  guest(2, 8, 8),
        guest(3, 9, 6),  guest(1, 13, 7), guest(3, 10, 9), guest(2, 11, 11),
        guest(3, 12, 10), guest(0, 0, 0), guest(3, 14, 12), guest(3, 15, 14),
    };
    for (unsigned i = 0; i < 16; ++i)
        wl.data.push_back({progBase + 8ull * i, prog[i]});
    // Guest register values converge to zero through the AND chains
    // and self-subtractions within a few guest iterations (most of the
    // simulated machine's registers hold the same value nearly all the
    // time — the source of m88ksim's extreme value locality). Only r7
    // (a counter) and r13 (accumulating r7) keep changing.
    std::uint64_t seed_val = input == InputSet::Train ? 0x5c : 0x6c;
    for (unsigned r = 0; r < 16; ++r) {
        std::uint64_t init = 0;
        if (r == 7)
            init = 1;
        if (r == 13)
            init = seed_val;   // the train/ref inputs differ here
        wl.data.push_back({gregsBase + 8ull * r, init});
    }

    IRFunction &f = wl.func;
    IRBuilder b(f);

    VReg prog_ptr = f.newIntVReg();
    VReg gregs = f.newIntVReg();
    VReg stats = f.newIntVReg();
    VReg outer = f.newIntVReg();
    VReg gpc = f.newIntVReg();
    VReg w = f.newIntVReg();
    VReg op = f.newIntVReg();
    VReg rd = f.newIntVReg();
    VReg rs = f.newIntVReg();
    VReg rdv = f.newIntVReg();
    VReg rsv = f.newIntVReg();
    VReg res = f.newIntVReg();
    VReg addr = f.newIntVReg();
    VReg rdaddr = f.newIntVReg();
    VReg tmp = f.newIntVReg();
    VReg icount = f.newIntVReg();
    VReg status = f.newIntVReg();
    VReg bkpt = f.newIntVReg();

    b.startBlock();
    b.loadAddr(prog_ptr, progBase);
    b.loadAddr(gregs, gregsBase);
    b.loadAddr(stats, statsBase);
    b.loadAddr(outer, 3'000'000);
    b.loadImm(icount, 0);

    BlockId outer_head = b.startBlock();
    b.loadImm(gpc, 0);

    // -------- guest execution loop --------
    BlockId fetch = b.startBlock();
    b.opImm(Opcode::SLL, addr, gpc, 3);
    b.op3(Opcode::ADDQ, addr, addr, prog_ptr);
    b.load(w, addr, 0);                   // guest fetch: 16 constants
    // Simulator bookkeeping every guest step: interrupt-status and
    // breakpoint-table polls, both constant (always "nothing to do")
    // — the textbook constant-locality loads of a CPU simulator.
    b.load(status, stats, 8);             // always 0: no interrupt
    BlockId no_irq = b.label();
    b.branch(Opcode::BEQ, status, no_irq);
    b.startBlock();
    b.store(status, stats, 16);           // (never executed)
    b.place(no_irq);
    b.load(bkpt, stats, 24);              // always 0: no breakpoint
    BlockId no_bkpt = b.label();
    b.branch(Opcode::BEQ, bkpt, no_bkpt);
    b.startBlock();
    b.store(bkpt, stats, 32);             // (never executed)
    b.place(no_bkpt);
    // Decode.
    b.opImm(Opcode::AND, op, w, 7);
    b.opImm(Opcode::SRL, rd, w, 3);
    b.opImm(Opcode::AND, rd, rd, 15);
    b.opImm(Opcode::SRL, rs, w, 7);
    b.opImm(Opcode::AND, rs, rs, 15);
    // Guest register reads.
    b.opImm(Opcode::SLL, rdaddr, rd, 3);
    b.op3(Opcode::ADDQ, rdaddr, rdaddr, gregs);
    b.load(rdv, rdaddr, 0);               // guest regfile: stable values
    b.opImm(Opcode::SLL, tmp, rs, 3);
    b.op3(Opcode::ADDQ, tmp, tmp, gregs);
    b.load(rsv, tmp, 0);

    // Dispatch: compare chain on op.
    BlockId case_add = b.label();
    BlockId case_sub = b.label();
    BlockId case_and = b.label();
    BlockId case_inc = b.label();
    BlockId writeback = b.label();
    BlockId next = b.label();
    b.opImm(Opcode::CMPEQ, tmp, op, 1);
    b.branch(Opcode::BNE, tmp, case_add);
    b.startBlock();
    b.opImm(Opcode::CMPEQ, tmp, op, 2);
    b.branch(Opcode::BNE, tmp, case_sub);
    b.startBlock();
    b.opImm(Opcode::CMPEQ, tmp, op, 3);
    b.branch(Opcode::BNE, tmp, case_and);
    b.startBlock();
    b.opImm(Opcode::CMPEQ, tmp, op, 4);
    b.branch(Opcode::BNE, tmp, case_inc);
    b.startBlock();                        // nop
    b.jump(next);
    b.place(case_add);
    b.op3(Opcode::ADDQ, res, rdv, rsv);
    b.jump(writeback);
    b.place(case_sub);
    b.op3(Opcode::SUBQ, res, rdv, rsv);
    b.jump(writeback);
    b.place(case_and);
    b.op3(Opcode::AND, res, rdv, rsv);
    b.jump(writeback);
    b.place(case_inc);
    b.opImm(Opcode::ADDQ, res, rdv, 1);   // the striding counter
    b.place(writeback);
    b.store(res, rdaddr, 0);
    b.place(next);
    b.opImm(Opcode::ADDQ, icount, icount, 1);
    b.opImm(Opcode::ADDQ, gpc, gpc, 1);
    b.opImm(Opcode::CMPLT, tmp, gpc, 16);
    b.branch(Opcode::BNE, tmp, fetch);

    b.startBlock();
    b.store(icount, stats, 0);
    b.opImm(Opcode::SUBQ, outer, outer, 1);
    b.branch(Opcode::BNE, outer, outer_head);
    b.startBlock();
    b.halt();

    f.numberInsts();
    return wl;
}

} // namespace rvp
