/**
 * @file
 * "su2cor" analogue: small dense matrix-vector kernels in the spirit
 * of the SPEC95 quark-propagator code. The program first runs a long
 * strided initialization phase (su2cor famously spends billions of
 * instructions initializing, which is why the paper simulates it for
 * 3B instructions) and then repeatedly multiplies a small set of 4x4
 * "gauge link" matrices into propagator vectors. Characteristics
 * reproduced: a low-reuse init phase, then a main phase whose matrix
 * coefficient loads recur heavily (few distinct matrices) while the
 * vector data keeps changing.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"

namespace rvp
{

namespace
{

constexpr unsigned numMatrices = 4;
constexpr unsigned numVectors = 128;
constexpr std::uint64_t matBase = Program::dataBase;            // 4x4 each
constexpr std::uint64_t vecBase = Program::dataBase + 0x4000;
constexpr std::uint64_t outVecBase = Program::dataBase + 0x8000;
constexpr std::uint64_t initBase = Program::dataBase + 0x20000;

} // namespace

BuiltWorkload
buildSu2cor(InputSet input)
{
    BuiltWorkload wl;
    wl.name = "su2cor";
    wl.isFloatingPoint = true;

    Rng rng(input == InputSet::Train ? 0x50201 : 0x50202);
    for (unsigned m = 0; m < numMatrices; ++m)
        for (unsigned e = 0; e < 16; ++e)
            wl.data.push_back({matBase + 128ull * m + 8ull * e,
                               doubleBits(0.25 + 0.5 * rng.nextDouble())});
    for (unsigned v = 0; v < numVectors; ++v)
        for (unsigned e = 0; e < 4; ++e)
            wl.data.push_back({vecBase + 32ull * v + 8ull * e,
                               doubleBits(rng.nextDouble())});

    IRFunction &f = wl.func;
    IRBuilder b(f);

    VReg mats = f.newIntVReg();
    VReg vecs = f.newIntVReg();
    VReg outv = f.newIntVReg();
    VReg init = f.newIntVReg();
    VReg outer = f.newIntVReg();
    VReg n = f.newIntVReg();
    VReg vi = f.newIntVReg();
    VReg mrow = f.newIntVReg();
    VReg maddr = f.newIntVReg();
    VReg vaddr = f.newIntVReg();
    VReg addr = f.newIntVReg();
    VReg tmp = f.newIntVReg();
    VReg seedr = f.newIntVReg();
    VReg initmask = f.newIntVReg();
    VReg coef = f.newFpVReg();
    VReg vin = f.newFpVReg();
    VReg acc = f.newFpVReg();

    b.startBlock();
    b.loadAddr(mats, matBase);
    b.loadAddr(vecs, vecBase);
    b.loadAddr(outv, outVecBase);
    b.loadAddr(init, initBase);
    b.loadImm(seedr, 991);
    b.loadImm(initmask, 4095);

    // -------- initialization phase: strided integer fill --------
    // (~27K instructions of low-value-locality work before the main
    // loop, mirroring su2cor's long startup.)
    b.loadAddr(n, 3000);
    BlockId init_head = b.startBlock();
    b.opImm(Opcode::MULQ, seedr, seedr, 171);
    b.opImm(Opcode::ADDQ, seedr, seedr, 77);
    b.opImm(Opcode::SRL, tmp, seedr, 8);
    b.op3(Opcode::AND, tmp, tmp, initmask);
    b.opImm(Opcode::SLL, tmp, tmp, 3);
    b.op3(Opcode::ADDQ, tmp, tmp, init);
    b.store(seedr, tmp, 0);
    b.opImm(Opcode::SUBQ, n, n, 1);
    b.branch(Opcode::BNE, n, init_head);

    b.startBlock();
    b.loadAddr(outer, 1'000'000);

    // -------- main phase: out[v][row] = M[...][row] . vec[v] --------
    // Row-major outer loop over the matrix row, vectors inner: each
    // coefficient-load PC then sees one value for 32 consecutive
    // vectors (the same gauge link is applied to runs of lattice
    // sites, the source of su2cor's value reuse).
    BlockId outer_head = b.startBlock();
    b.loadImm(mrow, 0);
    BlockId row_head = b.startBlock();
    b.loadImm(vi, 0);
    BlockId vec_head = b.startBlock();
    // matrix address = matBase + ((vi >> 5) & 3) * 128
    b.opImm(Opcode::SRL, tmp, vi, 5);
    b.opImm(Opcode::AND, tmp, tmp, 3);
    b.opImm(Opcode::SLL, tmp, tmp, 7);
    b.op3(Opcode::ADDQ, maddr, tmp, mats);
    // vector address = vecBase + vi * 32
    b.opImm(Opcode::SLL, vaddr, vi, 5);
    b.op3(Opcode::ADDQ, vaddr, vaddr, vecs);
    // acc = sum over col of M[row][col] * v[col], unrolled by 4.
    b.opImm(Opcode::SLL, addr, mrow, 5);   // row * 32
    b.op3(Opcode::ADDQ, addr, addr, maddr);
    b.load(coef, addr, 0);                 // recurring coefficients
    b.load(vin, vaddr, 0);
    b.op3(Opcode::MULT, acc, coef, vin);
    b.load(coef, addr, 8);
    b.load(vin, vaddr, 8);
    b.op3(Opcode::MULT, vin, coef, vin);
    b.op3(Opcode::ADDT, acc, acc, vin);
    b.load(coef, addr, 16);
    b.load(vin, vaddr, 16);
    b.op3(Opcode::MULT, vin, coef, vin);
    b.op3(Opcode::ADDT, acc, acc, vin);
    b.load(coef, addr, 24);
    b.load(vin, vaddr, 24);
    b.op3(Opcode::MULT, vin, coef, vin);
    b.op3(Opcode::ADDT, acc, acc, vin);
    // out[vi][row] = acc
    b.opImm(Opcode::SLL, tmp, vi, 5);
    b.op3(Opcode::ADDQ, tmp, tmp, outv);
    b.opImm(Opcode::SLL, addr, mrow, 3);
    b.op3(Opcode::ADDQ, tmp, tmp, addr);
    b.store(acc, tmp, 0);

    b.opImm(Opcode::ADDQ, vi, vi, 1);
    b.opImm(Opcode::CMPLT, tmp, vi,
            static_cast<std::int32_t>(numVectors));
    b.branch(Opcode::BNE, tmp, vec_head);
    b.startBlock();
    b.opImm(Opcode::ADDQ, mrow, mrow, 1);
    b.opImm(Opcode::CMPLT, tmp, mrow, 4);
    b.branch(Opcode::BNE, tmp, row_head);

    b.startBlock();
    b.opImm(Opcode::SUBQ, outer, outer, 1);
    b.branch(Opcode::BNE, outer, outer_head);
    b.startBlock();
    b.halt();

    f.numberInsts();
    return wl;
}

} // namespace rvp
