/**
 * @file
 * "ijpeg" analogue: block-based image quantization in the style of the
 * SPEC95 JPEG codec. The program sweeps 8x8 coefficient blocks,
 * right-shifts each coefficient by a (mostly uniform) quantization
 * table entry, stores the quantized output, and then re-reads the
 * quantized plane while counting zero runs. Characteristics
 * reproduced: most quantized coefficients are zero (constant
 * locality), quantization-table loads see long runs of one value, and
 * the zero-run loop's loads are highly last-value predictable.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"

namespace rvp
{

namespace
{

constexpr unsigned numBlocks = 24;
constexpr std::uint64_t coeffBase = Program::dataBase;            // blocks
constexpr std::uint64_t quantBase = Program::dataBase + 0x10000;  // 64 x 8B
constexpr std::uint64_t quantOutBase = Program::dataBase + 0x20000;
constexpr std::uint64_t statsBase = Program::dataBase + 0x30000;

} // namespace

BuiltWorkload
buildIjpeg(InputSet input)
{
    BuiltWorkload wl;
    wl.name = "ijpeg";
    wl.isFloatingPoint = false;

    Rng rng(input == InputSet::Train ? 0x11001 : 0x11002);
    // Coefficients: DCT-like magnitude decay — low-frequency entries
    // large, the high-frequency tail small (quantizes to zero).
    for (unsigned blk = 0; blk < numBlocks; ++blk) {
        for (unsigned k = 0; k < 64; ++k) {
            std::uint64_t mag;
            if (k < 4)
                mag = 200 + rng.nextBelow(800);
            else if (k < 16)
                mag = rng.nextBelow(120);
            else
                mag = rng.nextBelow(12);
            wl.data.push_back({coeffBase + 512ull * blk + 8ull * k, mag});
        }
    }
    // Quantization table: uniform shift of 4 except the DC corner.
    for (unsigned k = 0; k < 64; ++k)
        wl.data.push_back({quantBase + 8ull * k, k < 2 ? 2u : 4u});

    IRFunction &f = wl.func;
    IRBuilder b(f);

    VReg coeffs = f.newIntVReg();
    VReg quant = f.newIntVReg();
    VReg out = f.newIntVReg();
    VReg stats = f.newIntVReg();
    VReg outer = f.newIntVReg();
    VReg blk = f.newIntVReg();
    VReg blk_in = f.newIntVReg();
    VReg blk_out = f.newIntVReg();
    VReg k = f.newIntVReg();
    VReg c = f.newIntVReg();
    VReg q = f.newIntVReg();
    VReg qc = f.newIntVReg();
    VReg addr = f.newIntVReg();
    VReg zrun = f.newIntVReg();
    VReg nonzero = f.newIntVReg();
    VReg tmp = f.newIntVReg();
    VReg scan_limit = f.newIntVReg();

    b.startBlock();
    b.loadImm(scan_limit, static_cast<std::int32_t>(numBlocks) * 64);
    b.loadAddr(coeffs, coeffBase);
    b.loadAddr(quant, quantBase);
    b.loadAddr(out, quantOutBase);
    b.loadAddr(stats, statsBase);
    b.loadAddr(outer, 2'000'000);

    BlockId outer_head = b.startBlock();
    b.loadImm(blk, 0);

    // -------- quantize every block --------
    BlockId blk_head = b.startBlock();
    b.opImm(Opcode::SLL, blk_in, blk, 9);        // blk * 512
    b.op3(Opcode::ADDQ, blk_in, blk_in, coeffs);
    b.opImm(Opcode::SLL, blk_out, blk, 9);
    b.op3(Opcode::ADDQ, blk_out, blk_out, out);
    b.loadImm(k, 0);

    BlockId q_head = b.startBlock();
    b.opImm(Opcode::SLL, addr, k, 3);
    b.op3(Opcode::ADDQ, tmp, addr, blk_in);
    b.load(c, tmp, 0);                    // coefficient
    b.op3(Opcode::ADDQ, tmp, addr, quant);
    b.load(q, tmp, 0);                    // quant shift: long value runs
    b.op3(Opcode::SRL, qc, c, q);         // quantize
    b.op3(Opcode::ADDQ, tmp, addr, blk_out);
    b.store(qc, tmp, 0);
    b.opImm(Opcode::ADDQ, k, k, 1);
    b.opImm(Opcode::CMPLT, tmp, k, 64);
    b.branch(Opcode::BNE, tmp, q_head);

    b.startBlock();
    b.opImm(Opcode::ADDQ, blk, blk, 1);
    b.opImm(Opcode::CMPLT, tmp, blk,
            static_cast<std::int32_t>(numBlocks));
    b.branch(Opcode::BNE, tmp, blk_head);

    // -------- zero-run scan over the quantized plane --------
    b.startBlock();
    b.loadImm(zrun, 0);
    b.loadImm(nonzero, 0);
    b.loadImm(k, 0);
    BlockId scan_head = b.startBlock();
    b.opImm(Opcode::SLL, addr, k, 3);
    b.op3(Opcode::ADDQ, addr, addr, out);
    b.load(qc, addr, 0);                  // mostly zero: constant locality
    BlockId is_nonzero = b.label();
    BlockId scan_next = b.label();
    b.branch(Opcode::BNE, qc, is_nonzero);
    b.startBlock();
    b.opImm(Opcode::ADDQ, zrun, zrun, 1);
    b.jump(scan_next);
    b.place(is_nonzero);
    b.opImm(Opcode::ADDQ, nonzero, nonzero, 1);
    b.place(scan_next);
    b.opImm(Opcode::ADDQ, k, k, 1);
    b.op3(Opcode::CMPLT, tmp, k, scan_limit);
    b.branch(Opcode::BNE, tmp, scan_head);

    b.startBlock();
    b.store(zrun, stats, 0);
    b.store(nonzero, stats, 8);
    b.opImm(Opcode::SUBQ, outer, outer, 1);
    b.branch(Opcode::BNE, outer, outer_head);
    b.startBlock();
    b.halt();

    f.numberInsts();
    return wl;
}

} // namespace rvp
