/**
 * @file
 * The nine SPEC95-analogue workloads the paper evaluates (go, ijpeg,
 * li, m88ksim, perl from CINT95; hydro2d, mgrid, su2cor, turb3d from
 * CFP95). The original Alpha binaries are unavailable, so each
 * workload is a synthetic program written against our IR that
 * reproduces the *code shape* and the *value-reuse class* the paper
 * attributes to its counterpart (see DESIGN.md for the substitution
 * argument):
 *
 *  - go:      branchy board-scanning integer code, modest reuse
 *  - ijpeg:   8x8 block quantization; repeating quant-table loads and
 *             many zero coefficients (constant locality)
 *  - li:      lisp-style cons-cell interpreter; pointer chasing, type
 *             tags with strong cross-register correlation, calls
 *  - m88ksim: CPU-simulator decode loop re-executing a small guest
 *             program; extremely high last-value and register reuse
 *  - perl:    hash+string processing; moderate reuse
 *  - hydro2d: 2D stencil over a smooth field; high FP value reuse
 *  - mgrid:   3D multigrid relaxation over a mostly-zero grid;
 *             constant-zero locality
 *  - su2cor:  small dense matrix-vector kernels with repeated
 *             coefficients; long initialization phase
 *  - turb3d:  FFT-like butterflies with repeating twiddle factors
 *
 * Each workload has a `train` input (used for profiling) and a `ref`
 * input (used for measurement), differing in seed and problem size,
 * matching the paper's profile-on-train / measure-on-ref methodology.
 */

#ifndef RVP_WORKLOADS_WORKLOADS_HH
#define RVP_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/ir.hh"
#include "isa/inst.hh"

namespace rvp
{

/** Which input the workload should be built with. */
enum class InputSet { Train, Ref };

/** A workload instance: IR plus its initial data image. */
struct BuiltWorkload
{
    std::string name;
    bool isFloatingPoint = false;
    IRFunction func;
    /** Initial memory image (address, value) pairs. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> data;
};

/** Static description of an available workload. */
struct WorkloadSpec
{
    std::string name;
    bool isFloatingPoint;
};

/** All nine workloads, in the paper's presentation order. */
const std::vector<WorkloadSpec> &allWorkloads();

/** Build a workload by name; panics on unknown names. */
BuiltWorkload buildWorkload(const std::string &name, InputSet input);

// Individual generators (one translation unit each).
BuiltWorkload buildGo(InputSet input);
BuiltWorkload buildIjpeg(InputSet input);
BuiltWorkload buildLi(InputSet input);
BuiltWorkload buildM88ksim(InputSet input);
BuiltWorkload buildPerl(InputSet input);
BuiltWorkload buildHydro2d(InputSet input);
BuiltWorkload buildMgrid(InputSet input);
BuiltWorkload buildSu2cor(InputSet input);
BuiltWorkload buildTurb3d(InputSet input);

/** Helper shared by the generators: encode a double as image bits. */
std::uint64_t doubleBits(double value);

} // namespace rvp

#endif // RVP_WORKLOADS_WORKLOADS_HH
