#include "workloads/workloads.hh"

#include <bit>

#include "common/logging.hh"

namespace rvp
{

const std::vector<WorkloadSpec> &
allWorkloads()
{
    static const std::vector<WorkloadSpec> specs = {
        {"go", false},      {"ijpeg", false},   {"li", false},
        {"m88ksim", false}, {"perl", false},    {"hydro2d", true},
        {"mgrid", true},    {"su2cor", true},   {"turb3d", true},
    };
    return specs;
}

BuiltWorkload
buildWorkload(const std::string &name, InputSet input)
{
    if (name == "go")
        return buildGo(input);
    if (name == "ijpeg")
        return buildIjpeg(input);
    if (name == "li")
        return buildLi(input);
    if (name == "m88ksim")
        return buildM88ksim(input);
    if (name == "perl")
        return buildPerl(input);
    if (name == "hydro2d")
        return buildHydro2d(input);
    if (name == "mgrid")
        return buildMgrid(input);
    if (name == "su2cor")
        return buildSu2cor(input);
    if (name == "turb3d")
        return buildTurb3d(input);
    fatal("unknown workload '%s'", name.c_str());
}

std::uint64_t
doubleBits(double value)
{
    return std::bit_cast<std::uint64_t>(value);
}

} // namespace rvp
