/**
 * @file
 * "turb3d" analogue: FFT-style butterfly passes in the spirit of the
 * SPEC95 turbulence code. Each stage sweeps a 256-element complex
 * array applying a*w +/- b butterflies; the twiddle factor for a
 * butterfly is selected by the low bits of the element index, so
 * within a stage the same few twiddle values recur in long runs —
 * strong load-value reuse on the coefficient stream (the behaviour
 * the paper reports as 28-46% of turb3d instructions predicted),
 * while the data array itself keeps evolving.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"

namespace rvp
{

namespace
{

constexpr unsigned numElems = 256;   // complex pairs
constexpr unsigned numTwiddles = 8;
constexpr std::uint64_t dataReBase = Program::dataBase;
constexpr std::uint64_t dataImBase = Program::dataBase + 0x4000;
constexpr std::uint64_t twReBase = Program::dataBase + 0x8000;
constexpr std::uint64_t twImBase = Program::dataBase + 0x9000;
constexpr std::uint64_t energyBase = Program::dataBase + 0xa000;

} // namespace

BuiltWorkload
buildTurb3d(InputSet input)
{
    BuiltWorkload wl;
    wl.name = "turb3d";
    wl.isFloatingPoint = true;

    Rng rng(input == InputSet::Train ? 0x73b01 : 0x73b02);
    for (unsigned i = 0; i < numElems; ++i) {
        wl.data.push_back(
            {dataReBase + 8ull * i, doubleBits(rng.nextDouble() - 0.5)});
        wl.data.push_back(
            {dataImBase + 8ull * i, doubleBits(rng.nextDouble() - 0.5)});
    }
    // Twiddles on (roughly) the unit circle; a small recurring set.
    for (unsigned t = 0; t < numTwiddles; ++t) {
        double angle = 0.785398 * t;   // pi/4 steps
        // Avoid libm in image construction: rational approximations
        // are fine, the values just need to be stable and distinct.
        double re = 1.0 - angle * angle / 2 + angle * angle * angle *
                    angle / 24;
        double im = angle - angle * angle * angle / 6;
        wl.data.push_back({twReBase + 8ull * t, doubleBits(re * 0.5)});
        wl.data.push_back({twImBase + 8ull * t, doubleBits(im * 0.5)});
    }

    IRFunction &f = wl.func;
    IRBuilder b(f);

    VReg dre = f.newIntVReg();
    VReg dim_ = f.newIntVReg();
    VReg twre = f.newIntVReg();
    VReg twim = f.newIntVReg();
    VReg energy = f.newIntVReg();
    VReg outer = f.newIntVReg();
    VReg stage = f.newIntVReg();
    VReg k = f.newIntVReg();
    VReg tsel = f.newIntVReg();
    VReg addr = f.newIntVReg();
    VReg taddr = f.newIntVReg();
    VReg tmp = f.newIntVReg();
    VReg limit = f.newIntVReg();
    VReg tshift = f.newIntVReg();
    VReg wre = f.newFpVReg();
    VReg wim = f.newFpVReg();
    VReg are = f.newFpVReg();
    VReg aim = f.newFpVReg();
    VReg bre = f.newFpVReg();
    VReg bim = f.newFpVReg();
    VReg tre = f.newFpVReg();
    VReg tim = f.newFpVReg();
    VReg t2 = f.newFpVReg();

    b.startBlock();
    b.loadAddr(dre, dataReBase);
    b.loadAddr(dim_, dataImBase);
    b.loadAddr(twre, twReBase);
    b.loadAddr(twim, twImBase);
    b.loadAddr(energy, energyBase);
    b.loadAddr(outer, 1'000'000);
    b.loadImm(limit, static_cast<std::int32_t>(numElems / 2));

    BlockId outer_head = b.startBlock();
    b.loadImm(stage, 0);

    BlockId stage_head = b.startBlock();
    b.loadImm(k, 0);
    // Twiddle stride per stage: stage s uses 2^s distinct twiddles
    // (classic decimation FFT), so tsel = k >> (7 - s) gives runs of
    // 128, 64, 32, 16 identical twiddle loads — the long coefficient
    // runs the paper's turb3d reuse comes from.
    b.loadImm(tshift, 7);
    b.op3(Opcode::SUBQ, tshift, tshift, stage);

    BlockId bfly_head = b.startBlock();
    b.op3(Opcode::SRL, tsel, k, tshift);
    b.opImm(Opcode::AND, tsel, tsel,
            static_cast<std::int32_t>(numTwiddles - 1));
    b.opImm(Opcode::SLL, taddr, tsel, 3);
    b.op3(Opcode::ADDQ, tmp, taddr, twre);
    b.load(wre, tmp, 0);
    b.op3(Opcode::ADDQ, tmp, taddr, twim);
    b.load(wim, tmp, 0);

    // a = data[k], b = data[k + N/2]
    b.opImm(Opcode::SLL, addr, k, 3);
    b.op3(Opcode::ADDQ, addr, addr, dre);
    b.load(are, addr, 0);
    b.load(bre, addr, 8 * static_cast<std::int32_t>(numElems / 2));
    b.opImm(Opcode::SLL, tmp, k, 3);
    b.op3(Opcode::ADDQ, tmp, tmp, dim_);
    b.load(aim, tmp, 0);
    b.load(bim, tmp, 8 * static_cast<std::int32_t>(numElems / 2));

    // t = b * w (complex); a' = a + t, b' = a - t.
    b.op3(Opcode::MULT, tre, bre, wre);
    b.op3(Opcode::MULT, t2, bim, wim);
    b.op3(Opcode::SUBT, tre, tre, t2);
    b.op3(Opcode::MULT, tim, bre, wim);
    b.op3(Opcode::MULT, t2, bim, wre);
    b.op3(Opcode::ADDT, tim, tim, t2);

    b.op3(Opcode::ADDT, t2, are, tre);
    b.store(t2, addr, 0);
    b.op3(Opcode::SUBT, t2, are, tre);
    b.store(t2, addr, 8 * static_cast<std::int32_t>(numElems / 2));
    b.op3(Opcode::ADDT, t2, aim, tim);
    b.store(t2, tmp, 0);
    b.op3(Opcode::SUBT, t2, aim, tim);
    b.store(t2, tmp, 8 * static_cast<std::int32_t>(numElems / 2));

    b.opImm(Opcode::ADDQ, k, k, 1);
    b.op3(Opcode::CMPLT, tmp, k, limit);
    b.branch(Opcode::BNE, tmp, bfly_head);
    b.startBlock();
    b.opImm(Opcode::ADDQ, stage, stage, 1);
    b.opImm(Opcode::CMPLT, tmp, stage, 4);
    b.branch(Opcode::BNE, tmp, stage_head);

    // End of pass: store an "energy" sample and renormalize nothing
    // (values drift slowly; the twiddle stream stays constant).
    b.startBlock();
    b.load(are, dre, 0);
    b.store(are, energy, 0);
    b.opImm(Opcode::SUBQ, outer, outer, 1);
    b.branch(Opcode::BNE, outer, outer_head);
    b.startBlock();
    b.halt();

    f.numberInsts();
    return wl;
}

} // namespace rvp
