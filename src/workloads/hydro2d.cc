/**
 * @file
 * "hydro2d" analogue: a 2D hydrodynamics relaxation stencil in the
 * spirit of the SPEC95 Navier-Stokes solver. Each sweep reads the
 * five-point neighbourhood of a 64x64 field and writes a damped
 * average into a second plane. The field is piecewise-smooth (large
 * constant patches around a varying blob), so neighbouring loads very
 * often return the *same* value — exactly the cross-register value
 * correlation (north == south == centre) that register value
 * prediction exploits and that buffer-based last-value prediction
 * cannot see. The source plane is never overwritten, so per-sweep
 * value streams repeat, giving the high reuse the paper reports for
 * hydro2d.
 */

#include "workloads/workloads.hh"

#include "common/rng.hh"

namespace rvp
{

namespace
{

// 32x32 doubles per plane: the two planes (16KB) stay L1-resident, so
// prediction verification latencies are dominated by the pipeline, not
// by cache misses (cf. DESIGN.md on run-length scaling).
constexpr unsigned dim = 32;
constexpr std::uint64_t gridBase = Program::dataBase;
constexpr std::uint64_t outBase = Program::dataBase + 0x10000;
constexpr std::uint64_t coefBase = Program::dataBase + 0x20000;

} // namespace

BuiltWorkload
buildHydro2d(InputSet input)
{
    BuiltWorkload wl;
    wl.name = "hydro2d";
    wl.isFloatingPoint = true;

    Rng rng(input == InputSet::Train ? 0x42d01 : 0x42d02);
    // Piecewise-smooth field: a mild per-row gradient (values constant
    // along each row — neighbouring loads correlate and per-PC value
    // streams repeat for a full row, then step), a zero boundary ring,
    // and one varying blob. The row gradient keeps the field from
    // being degenerately uniform.
    unsigned blob_x = 8 + static_cast<unsigned>(rng.nextBelow(8));
    unsigned blob_y = 8 + static_cast<unsigned>(rng.nextBelow(8));
    for (unsigned i = 0; i < dim; ++i) {
        for (unsigned j = 0; j < dim; ++j) {
            double v;
            if (i == 0 || j == 0 || i == dim - 1 || j == dim - 1)
                v = 0.0;
            else if (i >= blob_x && i < blob_x + 8 && j >= blob_y &&
                     j < blob_y + 8)
                v = 2.0 + 0.125 * static_cast<double>((i + j) % 8);
            else
                v = 1.0 + 0.03125 * static_cast<double>(i);
            wl.data.push_back(
                {gridBase + 8ull * (i * dim + j), doubleBits(v)});
        }
    }
    wl.data.push_back({coefBase, doubleBits(0.25)});
    wl.data.push_back({coefBase + 8, doubleBits(0.05)});

    IRFunction &f = wl.func;
    IRBuilder b(f);

    VReg grid = f.newIntVReg();
    VReg out = f.newIntVReg();
    VReg coefs = f.newIntVReg();
    VReg outer = f.newIntVReg();
    VReg i = f.newIntVReg();
    VReg j = f.newIntVReg();
    VReg row = f.newIntVReg();
    VReg addr = f.newIntVReg();
    VReg oaddr = f.newIntVReg();
    VReg tmp = f.newIntVReg();
    VReg quarter = f.newFpVReg();
    VReg nu = f.newFpVReg();
    VReg center = f.newFpVReg();
    VReg north = f.newFpVReg();
    VReg south = f.newFpVReg();
    VReg west = f.newFpVReg();
    VReg east = f.newFpVReg();
    VReg acc = f.newFpVReg();
    VReg lap = f.newFpVReg();

    b.startBlock();
    b.loadAddr(grid, gridBase);
    b.loadAddr(out, outBase);
    b.loadAddr(coefs, coefBase);
    b.loadAddr(outer, 1'000'000);
    b.load(quarter, coefs, 0);
    b.load(nu, coefs, 8);

    BlockId outer_head = b.startBlock();
    b.loadImm(i, 1);

    BlockId row_head = b.startBlock();
    // row = i * dim (strength-reduced shift: dim = 32).
    b.opImm(Opcode::SLL, row, i, 5);
    b.loadImm(j, 1);

    BlockId col_head = b.startBlock();
    b.op3(Opcode::ADDQ, addr, row, j);
    b.opImm(Opcode::SLL, addr, addr, 3);
    b.op3(Opcode::ADDQ, oaddr, addr, out);
    b.op3(Opcode::ADDQ, addr, addr, grid);
    b.load(center, addr, 0);
    b.load(north, addr, -8 * static_cast<std::int32_t>(dim));
    b.load(south, addr, 8 * static_cast<std::int32_t>(dim));
    b.load(west, addr, -8);
    b.load(east, addr, 8);
    // out = center + nu * (0.25*(n+s+w+e) - center)
    b.op3(Opcode::ADDT, acc, north, south);
    b.op3(Opcode::ADDT, acc, acc, west);
    b.op3(Opcode::ADDT, acc, acc, east);
    b.op3(Opcode::MULT, acc, acc, quarter);
    b.op3(Opcode::SUBT, lap, acc, center);
    b.op3(Opcode::MULT, lap, lap, nu);
    b.op3(Opcode::ADDT, lap, lap, center);
    b.store(lap, oaddr, 0);

    b.opImm(Opcode::ADDQ, j, j, 1);
    b.opImm(Opcode::CMPLT, tmp, j, static_cast<std::int32_t>(dim - 1));
    b.branch(Opcode::BNE, tmp, col_head);
    b.startBlock();
    b.opImm(Opcode::ADDQ, i, i, 1);
    b.opImm(Opcode::CMPLT, tmp, i, static_cast<std::int32_t>(dim - 1));
    b.branch(Opcode::BNE, tmp, row_head);

    b.startBlock();
    b.opImm(Opcode::SUBQ, outer, outer, 1);
    b.branch(Opcode::BNE, outer, outer_head);
    b.startBlock();
    b.halt();

    f.numberInsts();
    return wl;
}

} // namespace rvp
