/**
 * @file
 * Config-batched stream replay: one decode pass drives N consumers.
 *
 * A sweep times the *same* captured committed stream under many
 * core/predictor configurations. Solo replay pays the varint/zigzag
 * decode, the static-decode lookup, and the architectural-state
 * reconstruction once per run; BatchedStreamRun pays them once per
 * *stream* by decoding into a fixed-size ring of DynInst that N
 * Consumer objects (one per config, each a plain InstSource) read in
 * lockstep. A consumer's step() is then an 88-byte ring copy plus one
 * lazy register write — no per-consumer lane walk and no per-consumer
 * ArchState copy.
 *
 * Ring safety: refill() never decodes past
 * minAlivePos() + ringSlots, so a slot is only overwritten once every
 * live consumer has read it. The external driver (sim/batchrun.cc)
 * keeps every consumer within fetchWidth of the decode frontier
 * before each core cycle, which makes the self-refill in step() a
 * rare slow path rather than the steady state.
 *
 * Each Consumer reconstructs its own ArchState exactly like a
 * StreamCursor does — the last-stepped instruction's single register
 * write is applied lazily on the next step, so preState() is the
 * pre-execution state the value predictors expect. Writing
 * DynInst::dest (normalized) instead of the raw rc register is
 * equivalent: ArchState::write discards zero registers and regNone
 * either way. Consumers and the ring live in a MonotonicArena so the
 * N per-config working sets stay contiguous.
 */

#ifndef RVP_STREAM_BATCH_HH
#define RVP_STREAM_BATCH_HH

#include <memory>
#include <vector>

#include "common/arena.hh"
#include "stream/stream.hh"

namespace rvp
{

class BatchedStreamRun
{
  public:
    /**
     * One per-config view of the shared decode. Implements the
     * InstSource seam, so a Core drives it exactly like a
     * StreamCursor; step() yields the identical DynInst sequence and
     * preState() the identical pre-execution ArchState.
     */
    class Consumer final : public InstSource
    {
      public:
        bool step(DynInst &out) override;
        const ArchState &preState() const override { return state_; }

        /** Instructions consumed so far (the driver's lockstep gauge). */
        std::uint64_t position() const { return pos_; }

        /** Drop this consumer from ring-retention accounting (its run
         *  finished or failed); it must not be stepped afterwards. */
        void detach() { detached_ = true; }
        bool detached() const { return detached_; }

      private:
        friend class BatchedStreamRun;
        explicit Consumer(BatchedStreamRun &run);

        BatchedStreamRun *run_;
        std::uint64_t pos_ = 0;
        bool detached_ = false;
        /** Register write of the last-stepped instruction, applied on
         *  the next step (see StreamCursor). */
        RegIndex pendingDest_ = regNone;
        std::uint64_t pendingValue_ = 0;
        ArchState state_;
    };

    /**
     * @param stream verified on attach (the internal StreamCursor
     *        throws StreamIntegrityError exactly like a solo replay)
     * @param ringSlots decode-ring capacity, rounded up to a power of
     *        two; also the burst granularity of the lockstep driver
     */
    explicit BatchedStreamRun(
        std::shared_ptr<const CapturedStream> stream,
        std::size_t ringSlots = defaultRingSlots);

    /** Default ring size: big enough to amortize the consumer switch,
     *  small enough that ring + consumers stay cache-resident. */
    static constexpr std::size_t defaultRingSlots = 16384;

    /** Add one consumer (arena-placed; freed with the run). Add all
     *  consumers before the first step — a late consumer would start
     *  at position 0 behind an already-advanced ring. */
    Consumer *addConsumer();

    /** Instructions decoded into the ring so far (frontier). */
    std::uint64_t decodedCount() const { return decoded_; }

    /** True once the whole capture has been decoded. */
    bool decodeDone() const { return decodeDone_; }

    std::uint64_t instCount() const { return stream_->instCount(); }

    /**
     * Decode forward as far as the slowest live consumer allows
     * (at most minAlivePos() + ringSlots). Returns the number of
     * instructions newly decoded; 0 once decoding is done or the
     * laggard pins the frontier.
     */
    std::size_t refill();

    /** Diagnostic counters for batch reports. */
    std::uint64_t refillCalls() const { return refillCalls_; }

  private:
    friend class Consumer;

    std::uint64_t minAlivePos() const;

    std::shared_ptr<const CapturedStream> stream_;
    StreamCursor cursor_;   ///< the single shared decoder
    MonotonicArena arena_;
    DynInst *ring_;
    std::size_t ringSlots_;
    std::size_t ringMask_;
    std::uint64_t decoded_ = 0;
    bool decodeDone_ = false;
    std::uint64_t refillCalls_ = 0;
    std::vector<Consumer *> consumers_;
};

} // namespace rvp

#endif // RVP_STREAM_BATCH_HH
