#include "stream/stream.hh"

#include "common/logging.hh"

namespace rvp
{

namespace
{

/** LEB128 append. */
void
putVarint(std::vector<std::uint8_t> &lane, std::uint64_t v)
{
    while (v >= 0x80) {
        lane.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    lane.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

void
putDelta(std::vector<std::uint8_t> &lane, std::int64_t delta)
{
    putVarint(lane, zigzag(delta));
}

/** LEB128 read; advances pos. The encoder bounds every lane, so the
 *  decode side trusts the byte stream (capture verified it). */
std::uint64_t
getVarint(const std::uint8_t *&pos)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
        std::uint8_t byte = *pos++;
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
    }
}

std::int64_t
getDelta(const std::uint8_t *&pos)
{
    std::uint64_t z = getVarint(pos);
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

} // namespace

InstSource::~InstSource() = default;

// ---------------------------------------------------------------------
// Capture
// ---------------------------------------------------------------------

std::shared_ptr<const CapturedStream>
CapturedStream::capture(const Program &prog, std::uint64_t maxInsts,
                        std::uint64_t maxBytes)
{
    auto stream = std::shared_ptr<CapturedStream>(new CapturedStream);

    // Static decode table: everything an instance shares with its
    // static instruction, precomputed once.
    stream->decode_.reserve(prog.size());
    for (const StaticInst &si : prog.insts) {
        const OpcodeInfo &info = si.info();
        StaticDecode d;
        d.op = si.op;
        d.srcA = (si.ra == regNone || isZeroReg(si.ra)) ? regNone : si.ra;
        if (!si.useImm && !info.isLoad && si.op != Opcode::LDA &&
            si.rb != regNone && !isZeroReg(si.rb)) {
            d.srcB = si.rb;
        }
        if (info.writesRc) {
            d.flags |= kWrites;
            d.rawRc = si.rc;
            d.dest = isZeroReg(si.rc) ? regNone : si.rc;
        }
        if (info.isLoad || info.isStore)
            d.flags |= kMem;
        if (info.isStore) {
            d.flags |= kStore;
            d.storeReg = si.rb;
        }
        if (info.isCondBranch)
            d.flags |= kCond;
        if (info.isUncondBranch)
            d.flags |= kAlwaysTaken;
        stream->decode_.push_back(d);
    }

    Emulator emu(prog);
    stream->initialState_ = emu.state();

    // Mirror of the state a replay cursor will reconstruct; every
    // derived field is checked against the live DynInst as we encode,
    // so replay correctness is established at capture time.
    ArchState mirror = emu.state();
    DynInst di;
    std::int64_t prev_idx = 0;
    std::uint64_t prev_addr = 0;
    std::uint64_t expected_pc = Program::textBase;

    while (stream->count_ < maxInsts) {
        if (!emu.step(di))
            break;
        std::uint32_t idx = di.staticIndex;
        const StaticDecode &d = stream->decode_[idx];
        RVP_ASSERT(di.pc == Program::pcOf(idx) && di.pc == expected_pc);
        RVP_ASSERT(di.op == d.op && di.srcA == d.srcA &&
                   di.srcB == d.srcB && di.dest == d.dest);

        putDelta(stream->idxLane_, static_cast<std::int64_t>(idx) -
                                       prev_idx);
        prev_idx = static_cast<std::int64_t>(idx);

        if (d.flags & kWrites) {
            std::uint64_t old = mirror.read(d.rawRc);
            RVP_ASSERT(old == di.oldDestValue);
            putDelta(stream->valueLane_,
                     static_cast<std::int64_t>(di.newValue - old));
            mirror.write(d.rawRc, di.newValue);
        } else if (d.flags & kStore) {
            RVP_ASSERT(di.newValue == mirror.read(d.storeReg));
        }
        if (d.flags & kMem) {
            putDelta(stream->addrLane_,
                     static_cast<std::int64_t>(di.effAddr - prev_addr));
            prev_addr = di.effAddr;
        } else {
            RVP_ASSERT(di.effAddr == 0);
        }
        if (d.flags & kCond) {
            unsigned bit = stream->takenBits_ & 7;
            if (bit == 0)
                stream->takenLane_.push_back(0);
            stream->takenLane_.back() |=
                static_cast<std::uint8_t>(di.isTaken) << bit;
            ++stream->takenBits_;
        } else {
            RVP_ASSERT(di.isTaken == ((d.flags & kAlwaysTaken) != 0));
        }

        expected_pc = di.nextPc;
        stream->finalNextPc_ = di.nextPc;
        ++stream->count_;

        if (maxBytes && stream->encodedBytes() > maxBytes)
            return nullptr;
    }
    stream->complete_ = emu.halted();
    return stream;
}

std::size_t
CapturedStream::encodedBytes() const
{
    return idxLane_.size() + valueLane_.size() + addrLane_.size() +
           takenLane_.size() +
           decode_.size() * sizeof(StaticDecode) + sizeof(*this);
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

StreamCursor::StreamCursor(std::shared_ptr<const CapturedStream> stream)
    : stream_(std::move(stream)),
      idxPos_(stream_->idxLane_.data()),
      valPos_(stream_->valueLane_.data()),
      addrPos_(stream_->addrLane_.data()),
      takenPos_(stream_->takenLane_.data()),
      state_(stream_->initialState_)
{
    if (stream_->count_ > 0)
        nextIdx_ = static_cast<std::uint32_t>(getDelta(idxPos_));
}

bool
StreamCursor::step(DynInst &out)
{
    const CapturedStream &s = *stream_;
    if (pos_ == s.count_) {
        RVP_ASSERT(s.complete_,
                   "stream cursor ran past a truncated capture "
                   "(%llu instructions): covers() was not checked",
                   static_cast<unsigned long long>(s.count_));
        return false;
    }

    // Apply the previous instruction's register write now, keeping
    // state_ equal to the *pre*-state of the instruction we return.
    if (pendingDest_ != regNone) {
        state_.write(pendingDest_, pendingValue_);
        pendingDest_ = regNone;
    }

    std::uint32_t idx = nextIdx_;
    const CapturedStream::StaticDecode &d = s.decode_[idx];

    out = DynInst{};
    out.seq = pos_;
    out.staticIndex = idx;
    out.pc = Program::pcOf(idx);
    out.op = d.op;
    out.srcA = d.srcA;
    out.srcB = d.srcB;
    out.dest = d.dest;

    if (d.flags & CapturedStream::kWrites) {
        std::uint64_t old = state_.read(d.rawRc);
        out.oldDestValue = old;
        out.newValue =
            old + static_cast<std::uint64_t>(getDelta(valPos_));
        pendingDest_ = d.rawRc;
        pendingValue_ = out.newValue;
    } else if (d.flags & CapturedStream::kStore) {
        out.newValue = state_.read(d.storeReg);
    }
    if (d.flags & CapturedStream::kMem) {
        prevAddr_ += static_cast<std::uint64_t>(getDelta(addrPos_));
        out.effAddr = prevAddr_;
    }
    if (d.flags & CapturedStream::kCond) {
        out.isTaken = (*takenPos_ >> takenBit_) & 1;
        if (++takenBit_ == 8) {
            takenBit_ = 0;
            ++takenPos_;
        }
    } else {
        out.isTaken = (d.flags & CapturedStream::kAlwaysTaken) != 0;
    }

    ++pos_;
    if (pos_ < s.count_) {
        nextIdx_ = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(idx) + getDelta(idxPos_));
        out.nextPc = Program::pcOf(nextIdx_);
    } else {
        out.nextPc = s.finalNextPc_;
    }
    return true;
}

} // namespace rvp
