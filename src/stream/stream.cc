#include "stream/stream.hh"

#include "common/logging.hh"

namespace rvp
{

namespace
{

/** LEB128 append. */
void
putVarint(std::vector<std::uint8_t> &lane, std::uint64_t v)
{
    while (v >= 0x80) {
        lane.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    lane.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

void
putDelta(std::vector<std::uint8_t> &lane, std::int64_t delta)
{
    putVarint(lane, zigzag(delta));
}

/** LEB128 read; advances pos. The encoder bounds every lane, so the
 *  decode side trusts the byte stream (capture verified it). */
std::uint64_t
getVarint(const std::uint8_t *&pos)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (;;) {
        std::uint8_t byte = *pos++;
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
    }
}

std::int64_t
getDelta(const std::uint8_t *&pos)
{
    std::uint64_t z = getVarint(pos);
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

/** FNV-1a over a byte lane (the per-lane integrity checksum). */
std::uint64_t
fnv1aLane(const std::vector<std::uint8_t> &lane)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint8_t b : lane) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

std::atomic<CapturedStream::CaptureHook> CapturedStream::captureHook{
    nullptr};

InstSource::~InstSource() = default;

// ---------------------------------------------------------------------
// Capture
// ---------------------------------------------------------------------

std::shared_ptr<const CapturedStream>
CapturedStream::capture(const Program &prog, std::uint64_t maxInsts,
                        std::uint64_t maxBytes,
                        const RunDeadline *deadline)
{
    auto stream = std::shared_ptr<CapturedStream>(new CapturedStream);

    // Static decode table: everything an instance shares with its
    // static instruction, precomputed once.
    stream->decode_.reserve(prog.size());
    for (const StaticInst &si : prog.insts) {
        const OpcodeInfo &info = si.info();
        StaticDecode d;
        d.op = si.op;
        d.srcA = (si.ra == regNone || isZeroReg(si.ra)) ? regNone : si.ra;
        if (!si.useImm && !info.isLoad && si.op != Opcode::LDA &&
            si.rb != regNone && !isZeroReg(si.rb)) {
            d.srcB = si.rb;
        }
        if (info.writesRc) {
            d.flags |= kWrites;
            d.rawRc = si.rc;
            d.dest = isZeroReg(si.rc) ? regNone : si.rc;
        }
        if (info.isLoad || info.isStore)
            d.flags |= kMem;
        if (info.isStore) {
            d.flags |= kStore;
            d.storeReg = si.rb;
        }
        if (info.isCondBranch)
            d.flags |= kCond;
        if (info.isUncondBranch)
            d.flags |= kAlwaysTaken;
        stream->decode_.push_back(d);
    }

    Emulator emu(prog);
    stream->initialState_ = emu.state();

    // Mirror of the state a replay cursor will reconstruct; every
    // derived field is checked against the live DynInst as we encode,
    // so replay correctness is established at capture time.
    ArchState mirror = emu.state();
    DynInst di;
    std::int64_t prev_idx = 0;
    std::uint64_t prev_addr = 0;
    std::uint64_t expected_pc = Program::textBase;

    while (stream->count_ < maxInsts) {
        if (deadline && (stream->count_ & 4095u) == 0)
            deadline->check("stream capture");
        if (CaptureHook hook =
                captureHook.load(std::memory_order_acquire))
            hook(stream->count_);
        if (!emu.step(di))
            break;
        std::uint32_t idx = di.staticIndex;
        const StaticDecode &d = stream->decode_[idx];
        RVP_ASSERT(di.pc == Program::pcOf(idx) && di.pc == expected_pc);
        RVP_ASSERT(di.op == d.op && di.srcA == d.srcA &&
                   di.srcB == d.srcB && di.dest == d.dest);

        putDelta(stream->idxLane_, static_cast<std::int64_t>(idx) -
                                       prev_idx);
        prev_idx = static_cast<std::int64_t>(idx);

        if (d.flags & kWrites) {
            std::uint64_t old = mirror.read(d.rawRc);
            RVP_ASSERT(old == di.oldDestValue);
            putDelta(stream->valueLane_,
                     static_cast<std::int64_t>(di.newValue - old));
            mirror.write(d.rawRc, di.newValue);
        } else if (d.flags & kStore) {
            RVP_ASSERT(di.newValue == mirror.read(d.storeReg));
        }
        if (d.flags & kMem) {
            putDelta(stream->addrLane_,
                     static_cast<std::int64_t>(di.effAddr - prev_addr));
            prev_addr = di.effAddr;
        } else {
            RVP_ASSERT(di.effAddr == 0);
        }
        if (d.flags & kCond) {
            unsigned bit = stream->takenBits_ & 7;
            if (bit == 0)
                stream->takenLane_.push_back(0);
            stream->takenLane_.back() |=
                static_cast<std::uint8_t>(di.isTaken) << bit;
            ++stream->takenBits_;
        } else {
            RVP_ASSERT(di.isTaken == ((d.flags & kAlwaysTaken) != 0));
        }

        expected_pc = di.nextPc;
        stream->finalNextPc_ = di.nextPc;
        ++stream->count_;

        if (maxBytes && stream->encodedBytes() > maxBytes)
            return nullptr;
    }
    stream->complete_ = emu.halted();
    stream->seal();
    return stream;
}

void
CapturedStream::seal()
{
    header_.magic = Header::kMagic;
    header_.version = Header::kVersion;
    header_.instCount = count_;
    const std::vector<std::uint8_t> *lanes[4] = {&idxLane_, &valueLane_,
                                                 &addrLane_, &takenLane_};
    for (unsigned i = 0; i < 4; ++i) {
        header_.laneBytes[i] = lanes[i]->size();
        header_.laneFnv[i] = fnv1aLane(*lanes[i]);
    }
}

void
CapturedStream::verifyIntegrity() const
{
    if (header_.magic != Header::kMagic)
        throw StreamIntegrityError("bad magic (stream was never sealed)");
    if (header_.version != Header::kVersion)
        throw StreamIntegrityError(
            "format version " + std::to_string(header_.version) +
            " (expected " + std::to_string(Header::kVersion) + ")");
    if (header_.instCount != count_)
        throw StreamIntegrityError(
            "instruction count mismatch (header " +
            std::to_string(header_.instCount) + ", stream " +
            std::to_string(count_) + ")");
    static const char *laneNames[4] = {"index", "value", "address",
                                       "taken"};
    const std::vector<std::uint8_t> *lanes[4] = {&idxLane_, &valueLane_,
                                                 &addrLane_, &takenLane_};
    for (unsigned i = 0; i < 4; ++i) {
        if (header_.laneBytes[i] != lanes[i]->size())
            throw StreamIntegrityError(
                std::string(laneNames[i]) + " lane truncated (" +
                std::to_string(lanes[i]->size()) + " bytes, header " +
                std::to_string(header_.laneBytes[i]) + ")");
        if (header_.laneFnv[i] != fnv1aLane(*lanes[i]))
            throw StreamIntegrityError(std::string(laneNames[i]) +
                                       " lane checksum mismatch");
    }
}

std::size_t
CapturedStream::encodedBytes() const
{
    return idxLane_.size() + valueLane_.size() + addrLane_.size() +
           takenLane_.size() +
           decode_.size() * sizeof(StaticDecode) + sizeof(*this);
}

// Test-only corruption seams (declared as friends in stream.hh): the
// cached stream is immutable by contract, so these cast that away —
// they exist solely to let fault-injection tests prove that a flipped
// byte or dropped tail is caught at cursor attach, never replayed.
void
corruptStreamForTest(const CapturedStream &stream, unsigned lane,
                     std::size_t offset, std::uint8_t xorMask)
{
    auto &mut = const_cast<CapturedStream &>(stream);
    std::vector<std::uint8_t> *lanes[4] = {
        &mut.idxLane_, &mut.valueLane_, &mut.addrLane_, &mut.takenLane_};
    RVP_ASSERT(lane < 4 && offset < lanes[lane]->size());
    (*lanes[lane])[offset] ^= xorMask;
}

void
truncateStreamForTest(const CapturedStream &stream, unsigned lane,
                      std::size_t dropBytes)
{
    auto &mut = const_cast<CapturedStream &>(stream);
    std::vector<std::uint8_t> *lanes[4] = {
        &mut.idxLane_, &mut.valueLane_, &mut.addrLane_, &mut.takenLane_};
    RVP_ASSERT(lane < 4 && dropBytes <= lanes[lane]->size());
    lanes[lane]->resize(lanes[lane]->size() - dropBytes);
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

StreamCursor::StreamCursor(std::shared_ptr<const CapturedStream> stream)
    : stream_(std::move(stream))
{
    // Verify before touching any lane: a truncated or corrupt stream
    // must throw StreamIntegrityError here, not replay garbage (or
    // read out of bounds) later.
    stream_->verifyIntegrity();
    idxPos_ = stream_->idxLane_.data();
    valPos_ = stream_->valueLane_.data();
    addrPos_ = stream_->addrLane_.data();
    takenPos_ = stream_->takenLane_.data();
    state_ = stream_->initialState_;
    if (stream_->count_ > 0)
        nextIdx_ = static_cast<std::uint32_t>(getDelta(idxPos_));
}

bool
StreamCursor::step(DynInst &out)
{
    const CapturedStream &s = *stream_;
    if (pos_ == s.count_) {
        RVP_ASSERT(s.complete_,
                   "stream cursor ran past a truncated capture "
                   "(%llu instructions): covers() was not checked",
                   static_cast<unsigned long long>(s.count_));
        return false;
    }

    // Apply the previous instruction's register write now, keeping
    // state_ equal to the *pre*-state of the instruction we return.
    if (pendingDest_ != regNone) {
        state_.write(pendingDest_, pendingValue_);
        pendingDest_ = regNone;
    }

    std::uint32_t idx = nextIdx_;
    const CapturedStream::StaticDecode &d = s.decode_[idx];

    out = DynInst{};
    out.seq = pos_;
    out.staticIndex = idx;
    out.pc = Program::pcOf(idx);
    out.op = d.op;
    out.srcA = d.srcA;
    out.srcB = d.srcB;
    out.dest = d.dest;

    if (d.flags & CapturedStream::kWrites) {
        std::uint64_t old = state_.read(d.rawRc);
        out.oldDestValue = old;
        out.newValue =
            old + static_cast<std::uint64_t>(getDelta(valPos_));
        pendingDest_ = d.rawRc;
        pendingValue_ = out.newValue;
    } else if (d.flags & CapturedStream::kStore) {
        out.newValue = state_.read(d.storeReg);
    }
    if (d.flags & CapturedStream::kMem) {
        prevAddr_ += static_cast<std::uint64_t>(getDelta(addrPos_));
        out.effAddr = prevAddr_;
    }
    if (d.flags & CapturedStream::kCond) {
        out.isTaken = (*takenPos_ >> takenBit_) & 1;
        if (++takenBit_ == 8) {
            takenBit_ = 0;
            ++takenPos_;
        }
    } else {
        out.isTaken = (d.flags & CapturedStream::kAlwaysTaken) != 0;
    }

    ++pos_;
    if (pos_ < s.count_) {
        nextIdx_ = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(idx) + getDelta(idxPos_));
        out.nextPc = Program::pcOf(nextIdx_);
    } else {
        out.nextPc = s.finalNextPc_;
    }
    return true;
}

} // namespace rvp
