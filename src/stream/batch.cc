#include "stream/batch.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace rvp
{

BatchedStreamRun::BatchedStreamRun(
    std::shared_ptr<const CapturedStream> stream, std::size_t ringSlots)
    : stream_(stream), cursor_(std::move(stream))
{
    RVP_ASSERT(ringSlots > 0);
    ringSlots_ = std::bit_ceil(ringSlots);
    ringMask_ = ringSlots_ - 1;
    ring_ = arena_.makeArray<DynInst>(ringSlots_);
}

BatchedStreamRun::Consumer::Consumer(BatchedStreamRun &run) : run_(&run)
{
    state_ = run.stream_->initialState();
}

BatchedStreamRun::Consumer *
BatchedStreamRun::addConsumer()
{
    RVP_ASSERT(decoded_ == 0,
               "batched-replay consumers must all attach before the "
               "first decode (a late consumer would start behind the "
               "ring)");
    // Placement-construct here (not via MonotonicArena::make) so the
    // private Consumer constructor stays reachable only from its
    // friend. Arena storage: no destructor runs, which is fine —
    // Consumer's only non-trivial member is a trivially-destructible
    // ArchState.
    void *p = arena_.allocate(sizeof(Consumer), alignof(Consumer));
    Consumer *c = ::new (p) Consumer(*this);
    consumers_.push_back(c);
    return c;
}

std::uint64_t
BatchedStreamRun::minAlivePos() const
{
    std::uint64_t min = decoded_;
    for (const Consumer *c : consumers_)
        if (!c->detached_ && c->pos_ < min)
            min = c->pos_;
    return min;
}

std::size_t
BatchedStreamRun::refill()
{
    ++refillCalls_;
    if (decodeDone_)
        return 0;
    std::uint64_t end = stream_->instCount();
    std::uint64_t limit =
        std::min<std::uint64_t>(minAlivePos() + ringSlots_, end);
    std::size_t n = 0;
    while (decoded_ < limit) {
        bool ok = cursor_.step(ring_[decoded_ & ringMask_]);
        RVP_ASSERT(ok);
        ++decoded_;
        ++n;
    }
    if (decoded_ == end)
        decodeDone_ = true;
    return n;
}

bool
BatchedStreamRun::Consumer::step(DynInst &out)
{
    BatchedStreamRun &run = *run_;
    if (pos_ == run.decoded_) {
        // Slow path: the driver normally refills between bursts, so a
        // consumer only lands here at end-of-stream or when running
        // without a driver (single consumer, e.g. the microbench).
        if (!run.decodeDone_)
            run.refill();
        if (pos_ == run.decoded_) {
            // Mirror StreamCursor's end semantics exactly: a complete
            // stream ends cleanly; stepping past a truncated capture
            // is a covers() bookkeeping bug; and a laggard-pinned
            // frontier means the driver violated its burst contract.
            RVP_ASSERT(run.decodeDone_,
                       "batched consumer outran the decode ring at "
                       "%llu (driver burst contract violated)",
                       static_cast<unsigned long long>(pos_));
            RVP_ASSERT(run.stream_->complete(),
                       "stream consumer ran past a truncated capture "
                       "(%llu instructions): covers() was not checked",
                       static_cast<unsigned long long>(
                           run.stream_->instCount()));
            return false;
        }
    }

    // Apply the previous instruction's register write now, keeping
    // state_ equal to the *pre*-state of the instruction we return.
    if (pendingDest_ != regNone) {
        state_.write(pendingDest_, pendingValue_);
        pendingDest_ = regNone;
    }

    out = run.ring_[pos_ & run.ringMask_];
    pendingDest_ = out.dest;
    pendingValue_ = out.newValue;
    ++pos_;
    return true;
}

} // namespace rvp
