/**
 * @file
 * Committed-stream capture & replay. The committed-path DynInst stream
 * is a pure function of the compiled program (the emulator is
 * deterministic and input-free beyond the data image), so a sweep that
 * times one binary under many core/VP configurations can execute it
 * once and replay the encoded stream everywhere else.
 *
 * The seam is InstSource: Core pulls instructions through it and the
 * value predictors receive the pre-execution architectural state from
 * it, so a live Emulator and a replay cursor are interchangeable and
 * bit-identical in every emitted stat.
 *
 * Encoding (CapturedStream): a per-static decode table carries
 * everything derivable from the static instruction (opcode, normalized
 * sources, destination, flags); per-instruction lanes carry only the
 * dynamic residue, as varint/zigzag deltas in structure-of-arrays
 * form:
 *
 *   - static-index lane: delta vs the previous instruction's index
 *     (sequential code encodes as +1 -> one byte)
 *   - value lane: result minus the destination's prior value, for
 *     writesRc instructions only (loads, ALU ops, JSR)
 *   - address lane: effective-address delta vs the previous memory
 *     operation, for loads/stores only
 *   - taken lane: one bit per conditional branch
 *
 * Everything else is reconstructed: pc = Program::pcOf(index), nextPc
 * is the following instruction's pc (the final one is stored), store
 * data and oldDestValue are read from the replayed architectural
 * state, which the cursor maintains by applying each instruction's
 * single register write. Capture verifies all of these derivations
 * against the live emulator instruction by instruction, so a stream
 * that builds at all replays exactly.
 */

#ifndef RVP_STREAM_STREAM_HH
#define RVP_STREAM_STREAM_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/deadline.hh"
#include "emu/emulator.hh"

namespace rvp
{

/**
 * A captured stream failed its integrity verification (bad magic /
 * version, lane length mismatch, or a per-lane checksum mismatch).
 * Replaying such a stream would silently diverge from the committed
 * path, so verification fails loudly instead; the sweep layer converts
 * the error into a cache miss plus live-emulation fallback (counted in
 * WorkloadCacheStats::streamIntegrityFailures).
 */
class StreamIntegrityError : public std::runtime_error
{
  public:
    explicit StreamIntegrityError(const std::string &what)
        : std::runtime_error("stream integrity: " + what)
    {
    }
};

/**
 * The instruction-stream seam between the functional front end and the
 * timing model. step() fills one committed-path DynInst (false once
 * the program has halted); preState() is the architectural state the
 * last-stepped instruction executed in, which is all the value
 * predictors read beyond the DynInst itself.
 */
class InstSource
{
  public:
    virtual ~InstSource();

    /** Produce the next committed instruction; false after HALT. */
    virtual bool step(DynInst &out) = 0;

    /**
     * Architectural state *before* the instruction the last successful
     * step() produced. Valid until the next step() call.
     */
    virtual const ArchState &preState() const = 0;
};

/** Live functional execution: owns an Emulator, copies no state. */
class LiveEmulatorSource final : public InstSource
{
  public:
    explicit LiveEmulatorSource(const Program &prog) : emu_(prog) {}

    bool
    step(DynInst &out) override
    {
        pre_ = emu_.state();
        return emu_.step(out);
    }

    const ArchState &preState() const override { return pre_; }

  private:
    Emulator emu_;
    ArchState pre_;
};

/**
 * An immutable captured committed stream. Build once per compiled
 * binary with capture(), replay any number of times (concurrently)
 * through StreamCursor.
 */
class CapturedStream
{
  public:
    /**
     * Run a fresh Emulator over prog for up to maxInsts committed
     * instructions and encode the stream. Returns null if the encoded
     * size would exceed maxBytes (0 = unlimited); a null result means
     * "use live emulation", never a partial stream. A non-null
     * deadline is checked periodically (DeadlineExceeded propagates).
     * The finished stream is sealed: a versioned header with per-lane
     * FNV-1a checksums that verifyIntegrity() revalidates.
     */
    static std::shared_ptr<const CapturedStream>
    capture(const Program &prog, std::uint64_t maxInsts,
            std::uint64_t maxBytes = 0,
            const RunDeadline *deadline = nullptr);

    /**
     * Test-only capture fault hook: when non-null, invoked once per
     * captured instruction with the count so far. Fault-injection
     * tests (sim/faultinject.hh) use it to simulate allocation failure
     * mid-capture; production code never sets it. Atomic because
     * sweep workers capture concurrently while a test arms or disarms
     * the hook — a bare pointer here is a data race (TSan-visible).
     */
    using CaptureHook = void (*)(std::uint64_t instsSoFar);
    static std::atomic<CaptureHook> captureHook;

    /**
     * Revalidate the sealed header against the lanes: magic, format
     * version, instruction count, per-lane byte length and FNV-1a
     * checksum. Throws StreamIntegrityError on any mismatch (flipped
     * byte, truncated lane, foreign or stale header). StreamCursor
     * calls this on attach, so no corrupt stream is ever replayed.
     */
    void verifyIntegrity() const;

    /** Captured instruction count. */
    std::uint64_t instCount() const { return count_; }

    /** True if the stream ends in HALT (nothing was truncated). */
    bool complete() const { return complete_; }

    /** True if a run consuming up to insts instructions can replay. */
    bool
    covers(std::uint64_t insts) const
    {
        return complete_ || count_ >= insts;
    }

    /** Total encoded footprint (lanes + decode table + state). */
    std::size_t encodedBytes() const;

    /** Architectural state before the first captured instruction (the
     *  starting point every replaying consumer reconstructs from). */
    const ArchState &initialState() const { return initialState_; }

  private:
    friend class StreamCursor;
    /** Test-only corruption seams (sim/faultinject.hh): flip one lane
     *  byte / drop lane tail bytes so integrity tests can prove the
     *  mismatch is caught at cursor attach. */
    friend void corruptStreamForTest(const CapturedStream &stream,
                                     unsigned lane, std::size_t offset,
                                     std::uint8_t xorMask);
    friend void truncateStreamForTest(const CapturedStream &stream,
                                      unsigned lane, std::size_t dropBytes);

    CapturedStream() = default;

    /** Sealed at the end of capture(); verifyIntegrity() revalidates. */
    struct Header
    {
        static constexpr std::uint32_t kMagic = 0x52565053; // "RVPS"
        static constexpr std::uint32_t kVersion = 1;

        std::uint32_t magic = 0;
        std::uint32_t version = 0;
        std::uint64_t instCount = 0;
        std::uint64_t laneBytes[4] = {};  ///< idx/value/addr/taken
        std::uint64_t laneFnv[4] = {};
    };

    /** Compute the header over the current lanes (capture-time seal). */
    void seal();

    /** Per-static-instruction fields shared by all its instances. */
    struct StaticDecode
    {
        Opcode op = Opcode::NOP;
        RegIndex srcA = regNone;   ///< normalized, as DynInst reports
        RegIndex srcB = regNone;
        RegIndex dest = regNone;   ///< normalized (zero regs -> none)
        /** Raw rc when writesRc: oldDestValue / replay-write register
         *  (ArchState read/write discard the zero regs). */
        RegIndex rawRc = regNone;
        RegIndex storeReg = regNone; ///< store data register (rb)
        std::uint8_t flags = 0;
    };

    static constexpr std::uint8_t kWrites = 1;      ///< writesRc
    static constexpr std::uint8_t kMem = 2;         ///< load or store
    static constexpr std::uint8_t kStore = 4;
    static constexpr std::uint8_t kCond = 8;        ///< conditional br
    static constexpr std::uint8_t kAlwaysTaken = 16;///< BR / JSR / RET

    std::vector<StaticDecode> decode_;
    ArchState initialState_;

    // Dynamic lanes (see file comment for the per-lane encodings).
    std::vector<std::uint8_t> idxLane_;
    std::vector<std::uint8_t> valueLane_;
    std::vector<std::uint8_t> addrLane_;
    std::vector<std::uint8_t> takenLane_;
    std::uint64_t takenBits_ = 0;

    std::uint64_t count_ = 0;
    std::uint64_t finalNextPc_ = 0;
    bool complete_ = false;
    Header header_;
};

/**
 * Replays a CapturedStream through the InstSource contract. The
 * cursor reconstructs the full architectural state as it goes by
 * applying each instruction's register write *lazily* (at the next
 * step), so preState() is a reference to the state the last-stepped
 * instruction saw — no per-instruction copy, unlike the live path.
 */
class StreamCursor final : public InstSource
{
  public:
    explicit StreamCursor(std::shared_ptr<const CapturedStream> stream);

    bool step(DynInst &out) override;
    const ArchState &preState() const override { return state_; }

  private:
    std::shared_ptr<const CapturedStream> stream_;

    // Lane read positions.
    const std::uint8_t *idxPos_;
    const std::uint8_t *valPos_;
    const std::uint8_t *addrPos_;
    const std::uint8_t *takenPos_;
    unsigned takenBit_ = 0;

    std::uint64_t pos_ = 0;        ///< instructions consumed
    std::uint32_t nextIdx_ = 0;    ///< static index of instruction pos_
    std::uint64_t prevAddr_ = 0;   ///< last memory effective address

    ArchState state_;
    /** Register write of the last-stepped instruction, applied on the
     *  next step so state_ stays that instruction's pre-state. */
    RegIndex pendingDest_ = regNone;
    std::uint64_t pendingValue_ = 0;
};

} // namespace rvp

#endif // RVP_STREAM_STREAM_HH
