/**
 * @file
 * Sampled pipeline-lifecycle tracing. The core records, for 1 out of
 * every `sampleInterval` fetched instructions, the cycle at which the
 * instruction passed each pipeline stage (fetch, rename, issue,
 * complete, commit) together with its value-prediction outcome and how
 * it left the pipeline (committed, squashed, still in flight). Records
 * live in a preallocated ring buffer — tracing a long run keeps the
 * most recent `capacity` records and counts the rest — and can be
 * exported as Chrome trace-event JSON (load in chrome://tracing or
 * ui.perfetto.dev) or as one-JSON-object-per-line JSONL.
 *
 * The tracer is strictly passive: it never changes timing, and the
 * core's hook sites reduce to a single predictable null-pointer branch
 * when tracing is off (pinned by tests/test_trace.cc and the golden
 * stat snapshot).
 *
 * Sampling is by sequence number (`seq % sampleInterval == 0`), so the
 * sampled set — and therefore every exported byte — is a deterministic
 * function of the run configuration, independent of host timing or the
 * sweep scheduler's job count.
 */

#ifndef RVP_TRACE_TRACER_HH
#define RVP_TRACE_TRACER_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "isa/opcodes.hh"

namespace rvp
{

/** How a traced instruction left the pipeline. */
enum class TraceExit : std::uint8_t
{
    InFlight,     ///< still in the window when the run ended
    Committed,    ///< retired architecturally
    ValueSquash,  ///< squashed by a value-misprediction refetch
};

/** Stable lowercase name for a TraceExit (export field). */
const char *traceExitName(TraceExit exit);

/** Lifecycle of one sampled dynamic instruction. Cycles use
 *  `unknownCycle` until (unless) the stage is reached. */
struct TraceRecord
{
    static constexpr std::uint64_t unknownCycle = ~0ull;

    std::uint64_t seq = 0;
    std::uint64_t pc = 0;
    Opcode op = Opcode::NOP;

    std::uint64_t fetchCycle = unknownCycle;
    std::uint64_t renameCycle = unknownCycle;
    std::uint64_t issueCycle = unknownCycle;    ///< last (re)issue
    std::uint64_t completeCycle = unknownCycle; ///< last completion
    std::uint64_t commitCycle = unknownCycle;

    /** Times the instruction re-entered the queue after a value
     *  mispredict it depended on (reissue/selective recovery). */
    std::uint32_t reissues = 0;

    // Value-prediction outcome, decided at fetch.
    bool vpEligible = false;
    bool vpPredicted = false;
    bool vpCorrect = false;

    TraceExit exit = TraceExit::InFlight;
};

/**
 * Collects sampled TraceRecords. The core drives the on*() hooks; a
 * record is opened at fetch (if the seq is sampled) and finalized at
 * commit or squash into the ring buffer. The live set is tiny (window
 * size / sampleInterval), so it is a linear-scanned vector.
 */
class PipelineTracer
{
  public:
    /**
     * @param sample_interval trace 1 of every N instructions (>= 1)
     * @param capacity ring-buffer capacity (most recent records kept)
     */
    explicit PipelineTracer(std::uint64_t sample_interval,
                            std::size_t capacity = 1u << 16);

    /** True if seq is in the sampled subset. */
    bool
    sampled(std::uint64_t seq) const
    {
        return seq % sampleInterval_ == 0;
    }

    std::uint64_t sampleInterval() const { return sampleInterval_; }

    // ---- lifecycle hooks (core-facing; seq must be sampled) ----
    void onFetch(std::uint64_t seq, std::uint64_t pc, Opcode op,
                 std::uint64_t cycle, bool vp_eligible, bool vp_predicted,
                 bool vp_correct);
    void onRename(std::uint64_t seq, std::uint64_t cycle);
    void onIssue(std::uint64_t seq, std::uint64_t cycle);
    void onComplete(std::uint64_t seq, std::uint64_t cycle);
    void onReissue(std::uint64_t seq);
    void onCommit(std::uint64_t seq, std::uint64_t cycle);
    void onSquash(std::uint64_t seq, TraceExit cause);

    /** Finalize still-open records (end of run) as InFlight. */
    void finish();

    /** Finalized records seen, including any evicted from the ring. */
    std::uint64_t recordedTotal() const { return recordedTotal_; }

    /** Finalized records currently held (<= capacity). */
    std::size_t size() const;

    /** Held records, oldest first. */
    std::vector<TraceRecord> records() const;

    /**
     * Chrome trace-event JSON: an object with a "traceEvents" array of
     * complete ("ph":"X") events, one per record, ts/dur in cycles
     * (displayed as microseconds). Stage cycles and the VP outcome
     * ride in each event's "args".
     */
    void writeChromeJson(std::ostream &os) const;

    /** One JSON object per line, one line per record, oldest first. */
    void writeJsonl(std::ostream &os) const;

  private:
    void finalize(std::uint64_t seq, TraceExit exit, std::uint64_t cycle);
    TraceRecord *findLive(std::uint64_t seq);

    std::uint64_t sampleInterval_;
    std::vector<TraceRecord> ring_;   ///< preallocated to capacity
    std::size_t ringNext_ = 0;        ///< next slot to overwrite
    bool ringWrapped_ = false;
    std::uint64_t recordedTotal_ = 0;
    std::vector<TraceRecord> live_;   ///< open records (fetched, not final)
};

} // namespace rvp

#endif // RVP_TRACE_TRACER_HH
