#include "trace/tracer.hh"

#include <algorithm>
#include <string>

#include "common/logging.hh"

namespace rvp
{

namespace
{

/** Serialize a stage cycle: unknown stages export as null. */
std::string
cycleField(std::uint64_t cycle)
{
    if (cycle == TraceRecord::unknownCycle)
        return "null";
    return std::to_string(cycle);
}

/** The record's lifetime end for span rendering: the last stage it
 *  reached (a record open at run end spans to its last known cycle). */
std::uint64_t
lastKnownCycle(const TraceRecord &r)
{
    for (std::uint64_t c : {r.commitCycle, r.completeCycle, r.issueCycle,
                            r.renameCycle, r.fetchCycle}) {
        if (c != TraceRecord::unknownCycle)
            return c;
    }
    return 0;
}

void
writeArgs(std::ostream &os, const TraceRecord &r)
{
    os << "{\"seq\":" << r.seq << ",\"pc\":" << r.pc << ",\"opcode\":\""
       << opcodeInfo(r.op).mnemonic << "\",\"fetch\":"
       << cycleField(r.fetchCycle) << ",\"rename\":"
       << cycleField(r.renameCycle) << ",\"issue\":"
       << cycleField(r.issueCycle) << ",\"complete\":"
       << cycleField(r.completeCycle) << ",\"commit\":"
       << cycleField(r.commitCycle) << ",\"reissues\":" << r.reissues
       << ",\"vp_eligible\":" << (r.vpEligible ? "true" : "false")
       << ",\"vp_predicted\":" << (r.vpPredicted ? "true" : "false")
       << ",\"vp_correct\":" << (r.vpCorrect ? "true" : "false")
       << ",\"exit\":\"" << traceExitName(r.exit) << "\"}";
}

} // namespace

const char *
traceExitName(TraceExit exit)
{
    switch (exit) {
      case TraceExit::InFlight:
        return "in_flight";
      case TraceExit::Committed:
        return "committed";
      case TraceExit::ValueSquash:
        return "value_squash";
    }
    return "?";
}

PipelineTracer::PipelineTracer(std::uint64_t sample_interval,
                               std::size_t capacity)
    : sampleInterval_(sample_interval)
{
    RVP_ASSERT(sample_interval >= 1,
               "trace sample interval must be at least 1");
    RVP_ASSERT(capacity >= 1, "trace ring buffer cannot be empty");
    ring_.resize(capacity);   // preallocated; slots overwritten in place
    live_.reserve(64);
}

TraceRecord *
PipelineTracer::findLive(std::uint64_t seq)
{
    for (TraceRecord &r : live_)
        if (r.seq == seq)
            return &r;
    return nullptr;
}

void
PipelineTracer::onFetch(std::uint64_t seq, std::uint64_t pc, Opcode op,
                        std::uint64_t cycle, bool vp_eligible,
                        bool vp_predicted, bool vp_correct)
{
    // A refetch recovery replays squashed seqs: the squashed instance
    // was already finalized, so the replay opens a fresh record.
    RVP_ASSERT(findLive(seq) == nullptr);
    TraceRecord r;
    r.seq = seq;
    r.pc = pc;
    r.op = op;
    r.fetchCycle = cycle;
    r.vpEligible = vp_eligible;
    r.vpPredicted = vp_predicted;
    r.vpCorrect = vp_correct;
    live_.push_back(r);
}

void
PipelineTracer::onRename(std::uint64_t seq, std::uint64_t cycle)
{
    if (TraceRecord *r = findLive(seq))
        r->renameCycle = cycle;
}

void
PipelineTracer::onIssue(std::uint64_t seq, std::uint64_t cycle)
{
    if (TraceRecord *r = findLive(seq))
        r->issueCycle = cycle;
}

void
PipelineTracer::onComplete(std::uint64_t seq, std::uint64_t cycle)
{
    if (TraceRecord *r = findLive(seq))
        r->completeCycle = cycle;
}

void
PipelineTracer::onReissue(std::uint64_t seq)
{
    if (TraceRecord *r = findLive(seq))
        ++r->reissues;
}

void
PipelineTracer::finalize(std::uint64_t seq, TraceExit exit,
                         std::uint64_t cycle)
{
    TraceRecord *r = findLive(seq);
    if (!r)
        return;
    r->exit = exit;
    if (exit == TraceExit::Committed)
        r->commitCycle = cycle;
    ring_[ringNext_] = *r;
    if (++ringNext_ == ring_.size()) {
        ringNext_ = 0;
        ringWrapped_ = true;
    }
    ++recordedTotal_;
    // Swap-erase keeps finalize O(live) worst case; live_ order is
    // irrelevant (export reads the ring).
    *r = live_.back();
    live_.pop_back();
}

void
PipelineTracer::onCommit(std::uint64_t seq, std::uint64_t cycle)
{
    finalize(seq, TraceExit::Committed, cycle);
}

void
PipelineTracer::onSquash(std::uint64_t seq, TraceExit cause)
{
    finalize(seq, cause, TraceRecord::unknownCycle);
}

void
PipelineTracer::finish()
{
    // Drain oldest first so the ring stays ordered by pipeline age
    // (finalize() swap-erases, so snapshot the seqs up front).
    std::vector<std::uint64_t> seqs;
    seqs.reserve(live_.size());
    for (const TraceRecord &r : live_)
        seqs.push_back(r.seq);
    std::sort(seqs.begin(), seqs.end());
    for (std::uint64_t seq : seqs)
        finalize(seq, TraceExit::InFlight, TraceRecord::unknownCycle);
}

std::size_t
PipelineTracer::size() const
{
    return ringWrapped_ ? ring_.size() : ringNext_;
}

std::vector<TraceRecord>
PipelineTracer::records() const
{
    std::vector<TraceRecord> out;
    out.reserve(size());
    if (ringWrapped_)
        for (std::size_t i = ringNext_; i < ring_.size(); ++i)
            out.push_back(ring_[i]);
    for (std::size_t i = 0; i < ringNext_; ++i)
        out.push_back(ring_[i]);
    return out;
}

void
PipelineTracer::writeChromeJson(std::ostream &os) const
{
    std::vector<TraceRecord> recs = records();
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const TraceRecord &r : recs) {
        if (!first)
            os << ",\n";
        first = false;
        std::uint64_t end = lastKnownCycle(r);
        std::uint64_t start =
            r.fetchCycle == TraceRecord::unknownCycle ? end : r.fetchCycle;
        // Lanes (tid) spread concurrent instructions vertically; 32
        // lanes comfortably exceeds the per-cycle fetch width.
        os << "{\"name\":\"" << opcodeInfo(r.op).mnemonic
           << "\",\"cat\":\"" << traceExitName(r.exit)
           << "\",\"ph\":\"X\",\"ts\":" << start
           << ",\"dur\":" << (end >= start ? end - start : 0)
           << ",\"pid\":0,\"tid\":" << (r.seq % 32) << ",\"args\":";
        writeArgs(os, r);
        os << "}";
    }
    os << "]}\n";
}

void
PipelineTracer::writeJsonl(std::ostream &os) const
{
    for (const TraceRecord &r : records()) {
        writeArgs(os, r);
        os << "\n";
    }
}

} // namespace rvp
