/**
 * @file
 * Two-level memory hierarchy per Table 1 of the paper: split 32KB
 * 4-way L1 I/D caches with a 20-cycle miss penalty and a unified 512KB
 * 2-way off-chip L2 with an 80-cycle miss penalty. All lines are 64
 * bytes. The hierarchy returns access *latencies*; data always comes
 * from the functional emulator.
 */

#ifndef RVP_MEM_HIERARCHY_HH
#define RVP_MEM_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"

namespace rvp
{

/** Latency parameters for the hierarchy (cycles). */
struct HierarchyConfig
{
    CacheConfig l1i{"l1i", 32 * 1024, 4, 64};
    CacheConfig l1d{"l1d", 32 * 1024, 4, 64};
    CacheConfig l2{"l2", 512 * 1024, 2, 64};
    unsigned l1HitLatency = 1;     ///< load-use latency on an L1 hit
    unsigned l1MissPenalty = 20;   ///< added when L1 misses (L2 hit)
    unsigned l2MissPenalty = 80;   ///< added when L2 also misses
};

/** Split L1 + unified L2, returning per-access latencies. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &config = {});

    /** Latency (cycles) to fetch the instruction line at pc. */
    unsigned fetchLatency(std::uint64_t pc);

    /** Latency (cycles) for a data load at addr. */
    unsigned loadLatency(std::uint64_t addr);

    /**
     * Perform a committed store: updates cache state (write-allocate,
     * write-back). Stores retire into a write buffer, so they add no
     * instruction latency; the returned latency is informational.
     */
    unsigned storeAccess(std::uint64_t addr);

    void reset();

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }

    void exportStats(StatSet &stats) const;

  private:
    /** Common L1->L2 path: returns total added latency beyond L1 hit. */
    unsigned accessThrough(Cache &l1, std::uint64_t addr, bool is_write);

    HierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
};

} // namespace rvp

#endif // RVP_MEM_HIERARCHY_HH
