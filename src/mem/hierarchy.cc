#include "mem/hierarchy.hh"

namespace rvp
{

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config)
    : config_(config), l1i_(config.l1i), l1d_(config.l1d), l2_(config.l2)
{
}

unsigned
MemoryHierarchy::accessThrough(Cache &l1, std::uint64_t addr, bool is_write)
{
    CacheAccessResult l1_result = l1.access(addr, is_write);
    if (l1_result.hit)
        return 0;

    unsigned added = config_.l1MissPenalty;
    // The L1 fill reads the line from L2; a dirty L1 victim is written
    // back into L2 (it cannot miss the write buffer in this model).
    if (l1_result.writeback)
        l2_.access(*l1_result.writeback, true);
    CacheAccessResult l2_result = l2_.access(addr, false);
    if (!l2_result.hit)
        added += config_.l2MissPenalty;
    return added;
}

unsigned
MemoryHierarchy::fetchLatency(std::uint64_t pc)
{
    return config_.l1HitLatency + accessThrough(l1i_, pc, false);
}

unsigned
MemoryHierarchy::loadLatency(std::uint64_t addr)
{
    return config_.l1HitLatency + accessThrough(l1d_, addr, false);
}

unsigned
MemoryHierarchy::storeAccess(std::uint64_t addr)
{
    return config_.l1HitLatency + accessThrough(l1d_, addr, true);
}

void
MemoryHierarchy::reset()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
}

void
MemoryHierarchy::exportStats(StatSet &stats) const
{
    l1i_.exportStats(stats);
    l1d_.exportStats(stats);
    l2_.exportStats(stats);
}

} // namespace rvp
