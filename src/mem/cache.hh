/**
 * @file
 * Set-associative cache model with true-LRU replacement and write-back,
 * write-allocate semantics. Timing-only: the cache tracks tags and
 * dirtiness, never data (data correctness comes from the functional
 * emulator).
 */

#ifndef RVP_MEM_CACHE_HH
#define RVP_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace rvp
{

/** Geometry and identity of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;

    unsigned numSets() const
    {
        return static_cast<unsigned>(sizeBytes / (assoc * lineBytes));
    }
};

/**
 * Fail fast (RVP_ASSERT) on a cache geometry the model cannot index
 * correctly. The set index is computed with a shift and a mask, so
 * lineBytes and numSets() must be powers of two, and sizeBytes must
 * factor exactly as sets * assoc * lineBytes — a non-divisible size
 * would otherwise silently round down to a smaller cache, and a
 * non-power-of-two set count would alias distinct sets onto the same
 * lines. Called by the Cache constructor and by
 * validateExperimentConfig (so a bad hierarchy is rejected before any
 * simulation work).
 */
void validateCacheConfig(const CacheConfig &config);

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** Address of a dirty line written back on this fill, if any. */
    std::optional<std::uint64_t> writeback;
};

/** One level of set-associative, true-LRU, write-back cache. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access the line containing addr. On a miss the line is filled
     * (write-allocate) and the LRU victim evicted.
     *
     * @param addr byte address accessed
     * @param is_write marks the line dirty
     * @return hit/miss and any dirty writeback
     */
    CacheAccessResult access(std::uint64_t addr, bool is_write);

    /** Probe without changing state (tests, prefetch filters). */
    bool contains(std::uint64_t addr) const;

    /** Invalidate everything (between experiment runs). */
    void reset();

    const CacheConfig &config() const { return config_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }

    /** Export counters under "<name>." prefix. */
    void exportStats(StatSet &stats) const;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t tagOf(std::uint64_t addr) const;
    unsigned setOf(std::uint64_t addr) const;

    CacheConfig config_;
    unsigned setShift_;
    unsigned setMask_;
    std::vector<Line> lines_;   // sets * assoc, row-major by set
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace rvp

#endif // RVP_MEM_CACHE_HH
