#include "mem/cache.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace rvp
{

void
validateCacheConfig(const CacheConfig &config)
{
    RVP_ASSERT(config.assoc >= 1, "cache '%s' needs at least one way",
               config.name.c_str());
    RVP_ASSERT(config.lineBytes >= 1 && isPowerOf2(config.lineBytes),
               "cache '%s' line size %u is not a power of two "
               "(the set index is addr >> log2(lineBytes))",
               config.name.c_str(), config.lineBytes);
    std::uint64_t way_bytes =
        static_cast<std::uint64_t>(config.assoc) * config.lineBytes;
    RVP_ASSERT(config.sizeBytes >= way_bytes &&
                   config.sizeBytes % way_bytes == 0,
               "cache '%s' size %llu is not a whole number of "
               "assoc*lineBytes (%llu) rows; the model would silently "
               "shrink it to %u sets",
               config.name.c_str(),
               static_cast<unsigned long long>(config.sizeBytes),
               static_cast<unsigned long long>(way_bytes),
               config.numSets());
    RVP_ASSERT(isPowerOf2(config.numSets()),
               "cache '%s' has %u sets, not a power of two (the set "
               "mask would alias distinct sets)",
               config.name.c_str(), config.numSets());
}

Cache::Cache(const CacheConfig &config)
    : config_(config)
{
    validateCacheConfig(config_);
    setShift_ = floorLog2(config_.lineBytes);
    setMask_ = config_.numSets() - 1;
    lines_.resize(static_cast<std::size_t>(config_.numSets()) *
                  config_.assoc);
}

std::uint64_t
Cache::tagOf(std::uint64_t addr) const
{
    return addr >> setShift_;
}

unsigned
Cache::setOf(std::uint64_t addr) const
{
    return static_cast<unsigned>((addr >> setShift_) & setMask_);
}

CacheAccessResult
Cache::access(std::uint64_t addr, bool is_write)
{
    CacheAccessResult result;
    unsigned set = setOf(addr);
    std::uint64_t tag = tagOf(addr);
    Line *base = &lines_[static_cast<std::size_t>(set) * config_.assoc];

    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            line.lruStamp = ++stamp_;
            line.dirty |= is_write;
            ++hits_;
            result.hit = true;
            return result;
        }
    }

    // Miss: fill into the first invalid way, else the LRU way.
    ++misses_;
    Line *victim = nullptr;
    for (unsigned way = 0; way < config_.assoc; ++way) {
        Line &line = base[way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    if (victim->valid && victim->dirty) {
        ++writebacks_;
        result.writeback = victim->tag << setShift_;
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lruStamp = ++stamp_;
    return result;
}

bool
Cache::contains(std::uint64_t addr) const
{
    unsigned set = setOf(addr);
    std::uint64_t tag = tagOf(addr);
    const Line *base = &lines_[static_cast<std::size_t>(set) *
                               config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return true;
    }
    return false;
}

void
Cache::reset()
{
    for (Line &line : lines_)
        line = Line{};
    stamp_ = 0;
    hits_ = 0;
    misses_ = 0;
    writebacks_ = 0;
}

void
Cache::exportStats(StatSet &stats) const
{
    stats.set(config_.name + ".hits", static_cast<double>(hits_));
    stats.set(config_.name + ".misses", static_cast<double>(misses_));
    stats.set(config_.name + ".writebacks",
              static_cast<double>(writebacks_));
}

} // namespace rvp
