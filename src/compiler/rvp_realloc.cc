#include "compiler/rvp_realloc.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "ir/dominators.hh"

namespace rvp
{

namespace
{

/** Union-find with class member lists (for pairwise legality checks). */
class AliasClasses
{
  public:
    explicit AliasClasses(std::uint32_t n)
        : parent_(n), members_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
        for (VReg v = 0; v < n; ++v)
            members_[v] = {v};
    }

    VReg
    find(VReg v) const
    {
        while (parent_[v] != v)
            v = parent_[v];
        return v;
    }

    void
    merge(VReg a, VReg b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        parent_[b] = a;
        members_[a].insert(members_[a].end(), members_[b].begin(),
                           members_[b].end());
        members_[b].clear();
    }

    const std::vector<VReg> &membersOf(VReg v) const
    {
        return members_[find(v)];
    }

    std::vector<VReg>
    toAliasMap() const
    {
        std::vector<VReg> map(parent_.size());
        for (VReg v = 0; v < parent_.size(); ++v)
            map[v] = find(v);
        return map;
    }

  private:
    std::vector<VReg> parent_;
    std::vector<std::vector<VReg>> members_;
};

/** Do any members of the two classes interfere in the base graph? */
bool
classesInterfere(const InterferenceGraph &base, const AliasClasses &alias,
                 VReg a, VReg b)
{
    for (VReg x : alias.membersOf(a))
        for (VReg y : alias.membersOf(b))
            if (base.interferes(x, y))
                return true;
    return false;
}

} // namespace

ReallocResult
reallocForReuse(IRFunction &func, const AllocConfig &cfg,
                const std::vector<ReuseCandidate> &candidates)
{
    ReallocResult result;
    result.honored.assign(candidates.size(), false);

    func.numberInsts();
    Cfg cfg_graph(func);
    Liveness liveness(func, cfg_graph);
    Dominators doms(cfg_graph);
    LoopInfo loops(cfg_graph, doms);
    InterferenceGraph base = buildInterference(func, cfg_graph, liveness);

    // Destination vreg of an IR instruction, or noVReg.
    auto destOf = [&](std::uint32_t ir_id) {
        const IRInst &inst = func.instAt(ir_id);
        return inst.info().writesRc ? inst.dst : noVReg;
    };

    // ---- Phase 1: legality filtering, in descending priority. ----
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return candidates[x].priority > candidates[y].priority;
    });

    AliasClasses alias(func.numVRegs());
    // Per-candidate LVR edge lists (consumer dst vs each loop def).
    std::vector<std::vector<std::pair<VReg, VReg>>> lvr_edges(
        candidates.size());
    std::vector<bool> accepted(candidates.size(), false);
    std::vector<unsigned> lvr_depth(candidates.size(), 0);

    for (std::size_t idx : order) {
        const ReuseCandidate &cand = candidates[idx];
        VReg cdst = destOf(cand.consumerIr);
        if (cdst == noVReg) {
            ++result.droppedForLegality;
            continue;
        }
        if (cand.isLvr) {
            // The instruction must sit in a loop; give its destination
            // an interference edge against every other definition in
            // the innermost loop so the register stays exclusive.
            BlockId cb = func.blockOf(cand.consumerIr);
            LoopId loop = loops.innermost(cb);
            if (loop == noLoop) {
                ++result.droppedForLegality;
                continue;
            }
            lvr_depth[idx] = loops.loops()[loop].depth;
            bool legal = true;
            std::vector<std::pair<VReg, VReg>> edges;
            for (BlockId lb : loops.loops()[loop].blocks) {
                for (const IRInst &other : func.blocks()[lb].insts) {
                    VReg odst =
                        other.info().writesRc ? other.dst : noVReg;
                    if (odst == noVReg || odst == cdst)
                        continue;
                    if (alias.find(odst) == alias.find(cdst)) {
                        // Already forced to share a register with
                        // another loop definition: unusable.
                        legal = false;
                        break;
                    }
                    edges.emplace_back(cdst, odst);
                }
                if (!legal)
                    break;
            }
            if (!legal) {
                ++result.droppedForLegality;
                continue;
            }
            lvr_edges[idx] = std::move(edges);
            accepted[idx] = true;
        } else {
            // Dead-register reuse: combine the consumer's live range
            // with the primary producer's (same colour => same
            // architectural register => same-register reuse).
            if (cand.producerIr == UINT32_MAX) {
                ++result.droppedForLegality;
                continue;
            }
            VReg pdst = destOf(cand.producerIr);
            if (pdst == noVReg || pdst == cdst ||
                func.vregIsFp(pdst) != func.vregIsFp(cdst)) {
                if (pdst == cdst && pdst != noVReg) {
                    // Same vreg already: trivially honoured.
                    accepted[idx] = true;
                } else {
                    ++result.droppedForLegality;
                }
                continue;
            }
            if (classesInterfere(base, alias, cdst, pdst)) {
                ++result.droppedForLegality;
                continue;
            }
            alias.merge(cdst, pdst);
            accepted[idx] = true;
        }
    }

    // ---- Phase 2: colour; prune until the graph is K-colourable. ----
    // Drop order per the paper's heuristics: LVR before register
    // reuse; among LVRs, outer (shallower) loops first; then lowest
    // critical-path priority first.
    auto dropOrder = [&]() {
        std::vector<std::size_t> drops;
        for (std::size_t i = 0; i < candidates.size(); ++i)
            if (accepted[i])
                drops.push_back(i);
        std::sort(drops.begin(), drops.end(),
                  [&](std::size_t x, std::size_t y) {
                      if (candidates[x].isLvr != candidates[y].isLvr)
                          return candidates[x].isLvr; // LVR drops first
                      if (candidates[x].isLvr && lvr_depth[x] != lvr_depth[y])
                          return lvr_depth[x] < lvr_depth[y];
                      return candidates[x].priority < candidates[y].priority;
                  });
        return drops;
    };

    AllocConfig no_spill_cfg = cfg;
    no_spill_cfg.allowSpill = false;

    while (true) {
        // Rebuild alias map from currently-accepted dead merges.
        AliasClasses cur(func.numVRegs());
        for (std::size_t i = 0; i < candidates.size(); ++i) {
            if (accepted[i] && !candidates[i].isLvr &&
                candidates[i].producerIr != UINT32_MAX) {
                VReg cdst = destOf(candidates[i].consumerIr);
                VReg pdst = destOf(candidates[i].producerIr);
                if (cdst != noVReg && pdst != noVReg)
                    cur.merge(cdst, pdst);
            }
        }
        std::vector<std::pair<VReg, VReg>> edges;
        for (std::size_t i = 0; i < candidates.size(); ++i)
            if (accepted[i] && candidates[i].isLvr)
                edges.insert(edges.end(), lvr_edges[i].begin(),
                             lvr_edges[i].end());

        std::vector<VReg> alias_map = cur.toAliasMap();
        AllocResult attempt = allocateRegisters(func, no_spill_cfg,
                                                &alias_map, &edges);
        if (attempt.success) {
            result.success = true;
            result.alloc = std::move(attempt);
            for (std::size_t i = 0; i < candidates.size(); ++i)
                result.honored[i] = accepted[i];
            return result;
        }

        std::vector<std::size_t> drops = dropOrder();
        if (drops.empty()) {
            // Even the bare graph failed without spilling; report
            // failure so the caller keeps the original allocation.
            return result;
        }
        accepted[drops.front()] = false;
        ++result.droppedForColoring;
    }
}

} // namespace rvp
