#include "compiler/lower.hh"

#include "common/logging.hh"
#include "isa/disasm.hh"
#include "isa/encoding.hh"

namespace rvp
{

namespace
{

/** Map a vreg through the allocation; noVReg on memory ops means SP. */
RegIndex
regOf(const AllocResult &alloc, VReg v, RegIndex fallback)
{
    if (v == noVReg)
        return fallback;
    RegIndex r = alloc.colorOf[v];
    RVP_ASSERT(r != regNone);
    return r;
}

} // namespace

LowerResult
lower(const IRFunction &func, const AllocResult &alloc,
      const std::unordered_set<std::uint32_t> *rvp_marked)
{
    LowerResult result;
    RVP_ASSERT(alloc.success);

    // First pass: static index of the first instruction of each block,
    // in layout (emission) order.
    std::vector<std::uint32_t> block_start(func.numBlocks(), UINT32_MAX);
    std::uint32_t count = 0;
    for (BlockId b : func.layout()) {
        block_start[b] = count;
        count += static_cast<std::uint32_t>(func.blocks()[b].insts.size());
    }

    result.irIdOfStatic.reserve(count);
    result.staticOfIrId.assign(count, UINT32_MAX);

    std::uint32_t ir_id = 0;
    for (BlockId b : func.layout()) {
        for (const IRInst &ir : func.blocks()[b].insts) {
            const OpcodeInfo &info = ir.info();
            StaticInst si;
            si.op = ir.op;
            std::uint32_t my_index =
                static_cast<std::uint32_t>(result.program.insts.size());

            if (info.isLoad || info.isStore) {
                si.ra = regOf(alloc, ir.srcA, spReg);   // base (SP = spill)
                si.imm = ir.imm;
                if (info.isStore)
                    si.rb = regOf(alloc, ir.srcB, regNone);
                else
                    si.rc = regOf(alloc, ir.dst, regNone);
                if (info.isLoad && rvp_marked && rvp_marked->count(ir_id)) {
                    si.op = (si.op == Opcode::LDQ) ? Opcode::RVP_LDQ
                                                   : Opcode::RVP_LDT;
                }
            } else if (info.isCondBranch || ir.op == Opcode::BR) {
                if (info.isCondBranch)
                    si.ra = regOf(alloc, ir.srcA, regNone);
                RVP_ASSERT(ir.target != noBlock &&
                           block_start[ir.target] != UINT32_MAX);
                std::int64_t disp =
                    static_cast<std::int64_t>(block_start[ir.target]) -
                    (static_cast<std::int64_t>(my_index) + 1);
                si.imm = static_cast<std::int32_t>(disp);
            } else if (ir.op == Opcode::JSR) {
                si.ra = regOf(alloc, ir.srcA, regNone);
                si.rc = regOf(alloc, ir.dst, regNone);
            } else if (ir.op == Opcode::RET) {
                si.ra = regOf(alloc, ir.srcA, regNone);
            } else if (ir.op == Opcode::LDA) {
                si.rc = regOf(alloc, ir.dst, regNone);
                si.ra = ir.srcA == noVReg ? zeroReg
                                          : regOf(alloc, ir.srcA, regNone);
                si.useImm = true;
                if (ir.target != noBlock) {
                    // labelAddr pseudo: materialize the block's pc.
                    RVP_ASSERT(block_start[ir.target] != UINT32_MAX);
                    si.imm = static_cast<std::int32_t>(
                        Program::pcOf(block_start[ir.target]));
                } else {
                    si.imm = ir.imm;
                }
            } else if (ir.op == Opcode::NOP || ir.op == Opcode::HALT) {
                // no operands
            } else {
                // Generic operate.
                si.rc = regOf(alloc, ir.dst, regNone);
                si.ra = ir.srcA == noVReg
                            ? (info.raIsFp ? fpZeroReg : zeroReg)
                            : regOf(alloc, ir.srcA, regNone);
                if (ir.useImm) {
                    si.useImm = true;
                    si.imm = ir.imm;
                } else {
                    si.rb = ir.srcB == noVReg
                                ? (info.rbIsFp ? fpZeroReg : zeroReg)
                                : regOf(alloc, ir.srcB, regNone);
                }
            }

            if (!encodable(si)) {
                panic("unencodable instruction during lowering: %s",
                      disassemble(si).c_str());
            }
            result.program.insts.push_back(si);
            result.irIdOfStatic.push_back(ir_id);
            result.staticOfIrId[ir_id] = my_index;
            ++ir_id;
        }
    }
    return result;
}

} // namespace rvp
