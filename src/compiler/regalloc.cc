#include "compiler/regalloc.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "ir/dominators.hh"

namespace rvp
{

namespace
{

/** Spill-cost estimate: uses+defs weighted by 10^loop-depth. */
std::vector<double>
spillCosts(const IRFunction &func, const Cfg &cfg, const LoopInfo &loops)
{
    std::vector<double> cost(func.numVRegs(), 0.0);
    for (BlockId b = 0; b < func.numBlocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        double weight = std::pow(10.0, loops.depth(b));
        for (const IRInst &inst : func.blocks()[b].insts) {
            UseDef ud = useDef(inst);
            for (VReg u : ud.uses)
                if (u != noVReg)
                    cost[u] += weight;
            if (ud.def != noVReg)
                cost[ud.def] += weight;
        }
    }
    return cost;
}

/**
 * One simplify/select round over representatives. Returns colours per
 * representative; nodes that could not be coloured are reported in
 * spilled.
 */
bool
colorOnce(const IRFunction &func, const InterferenceGraph &graph,
          const AllocConfig &cfg, const std::vector<VReg> &rep_of,
          const std::vector<double> &cost,
          const std::vector<bool> &no_spill,
          std::vector<RegIndex> &color_of_rep, std::vector<VReg> &spilled)
{
    std::uint32_t n = func.numVRegs();

    // Collect live representatives (those that appear in the code).
    std::vector<bool> is_rep(n, false);
    std::vector<bool> used(n, false);
    for (BlockId b = 0; b < func.numBlocks(); ++b) {
        for (const IRInst &inst : func.blocks()[b].insts) {
            UseDef ud = useDef(inst);
            for (VReg u : ud.uses)
                if (u != noVReg)
                    used[rep_of[u]] = true;
            if (ud.def != noVReg)
                used[rep_of[ud.def]] = true;
        }
    }
    for (VReg v = 0; v < n; ++v)
        if (used[v] && rep_of[v] == v)
            is_rep[v] = true;

    auto sameBank = [&](VReg a) {
        return func.vregIsFp(a);
    };
    auto kOf = [&](VReg v) {
        return sameBank(v) ? cfg.numFpColors : cfg.numIntColors;
    };

    // Simplify: push nodes with same-bank degree < K; when stuck, push
    // the cheapest spill candidate optimistically (Briggs).
    std::vector<VReg> stack;
    std::vector<bool> removed(n, true);
    std::vector<unsigned> degree(n, 0);
    std::vector<VReg> work;
    for (VReg v = 0; v < n; ++v) {
        if (is_rep[v]) {
            removed[v] = false;
            work.push_back(v);
        }
    }
    for (VReg v : work) {
        degree[v] = graph.degree(v, [&](VReg m) {
            return !removed[m] && sameBank(m) == sameBank(v);
        });
    }

    std::size_t remaining = work.size();
    while (remaining > 0) {
        // Find a trivially-colourable node.
        VReg pick = noVReg;
        for (VReg v : work) {
            if (!removed[v] && degree[v] < kOf(v)) {
                pick = v;
                break;
            }
        }
        if (pick == noVReg) {
            // Potential spill: cheapest cost/degree among spillable.
            double best = 0.0;
            for (VReg v : work) {
                if (removed[v] || no_spill[v])
                    continue;
                double metric = cost[v] / (degree[v] + 1.0);
                if (pick == noVReg || metric < best) {
                    pick = v;
                    best = metric;
                }
            }
            if (pick == noVReg) {
                // Only unspillable nodes left; push any (will likely
                // fail in select, reported to caller).
                for (VReg v : work) {
                    if (!removed[v]) {
                        pick = v;
                        break;
                    }
                }
            }
        }
        removed[pick] = true;
        stack.push_back(pick);
        --remaining;
        graph.forEachNeighbor(pick, [&](VReg m) {
            if (!removed[m] && sameBank(m) == sameBank(pick) && degree[m])
                --degree[m];
        });
    }

    // Select: colour in reverse simplification order.
    color_of_rep.assign(n, regNone);
    spilled.clear();
    for (std::size_t i = stack.size(); i-- > 0;) {
        VReg v = stack[i];
        std::uint64_t used_colors = 0;
        graph.forEachNeighbor(v, [&](VReg m) {
            if (sameBank(m) == sameBank(v) && color_of_rep[m] != regNone) {
                unsigned c = sameBank(v) ? color_of_rep[m] - fpBase
                                         : color_of_rep[m];
                used_colors |= 1ull << c;
            }
        });
        unsigned k = kOf(v);
        unsigned chosen = k;
        for (unsigned c = 0; c < k; ++c) {
            if (!(used_colors & (1ull << c))) {
                chosen = c;
                break;
            }
        }
        if (chosen == k) {
            spilled.push_back(v);
        } else {
            color_of_rep[v] = static_cast<RegIndex>(
                sameBank(v) ? chosen + fpBase : chosen);
        }
    }
    return spilled.empty();
}

/** Rewrite func to spill vreg v to a stack slot. */
void
insertSpillCode(IRFunction &func, VReg v, std::int32_t slot_offset,
                std::vector<bool> &no_spill)
{
    bool is_fp = func.vregIsFp(v);
    for (BlockId b = 0; b < func.numBlocks(); ++b) {
        auto &insts = func.blocks()[b].insts;
        for (std::size_t i = 0; i < insts.size(); ++i) {
            IRInst &inst = insts[i];
            UseDef ud = useDef(inst);
            bool uses_v = (ud.uses[0] == v || ud.uses[1] == v);
            bool defs_v = (ud.def == v);
            if (!uses_v && !defs_v)
                continue;

            if (uses_v) {
                // Reload into a fresh unspillable temp before the use.
                VReg tmp = func.newVReg(is_fp);
                no_spill.push_back(true);
                IRInst reload;
                reload.op = is_fp ? Opcode::LDT : Opcode::LDQ;
                reload.dst = tmp;
                reload.srcA = noVReg;   // patched below: base = SP
                reload.imm = slot_offset;
                reload.useImm = false;
                reload.target = noBlock;
                // The lowering pass maps srcA == noVReg on memory ops
                // to the stack pointer; mark via a dedicated flag-free
                // convention (see lower.cc).
                if (inst.srcA == v)
                    inst.srcA = tmp;
                if (inst.srcB == v)
                    inst.srcB = tmp;
                insts.insert(insts.begin() + i, reload);
                ++i;   // now pointing back at the original instruction
            }
            if (defs_v) {
                IRInst &def_inst = insts[i];
                VReg tmp = func.newVReg(is_fp);
                no_spill.push_back(true);
                def_inst.dst = tmp;
                IRInst save;
                save.op = is_fp ? Opcode::STT : Opcode::STQ;
                save.srcA = noVReg;     // base = SP (lowering convention)
                save.srcB = tmp;
                save.imm = slot_offset;
                insts.insert(insts.begin() + i + 1, save);
                ++i;   // skip the inserted store
            }
        }
    }
}

} // namespace

AllocResult
allocateRegisters(IRFunction &func, const AllocConfig &cfg,
                  const std::vector<VReg> *alias_of,
                  const std::vector<std::pair<VReg, VReg>> *extra_edges)
{
    AllocResult result;
    std::vector<bool> no_spill(func.numVRegs(), false);
    unsigned next_slot = 0;

    for (unsigned round = 0; round < 32; ++round) {
        func.numberInsts();
        Cfg cfg_graph(func);
        Liveness liveness(func, cfg_graph);
        Dominators doms(cfg_graph);
        LoopInfo loops(cfg_graph, doms);

        std::vector<VReg> rep_of(func.numVRegs());
        for (VReg v = 0; v < func.numVRegs(); ++v)
            rep_of[v] = alias_of && v < alias_of->size() ? (*alias_of)[v]
                                                          : v;

        InterferenceGraph graph =
            buildInterference(func, cfg_graph, liveness, &rep_of);
        if (extra_edges) {
            for (auto [a, b] : *extra_edges)
                graph.addEdge(rep_of[a], rep_of[b]);
        }

        std::vector<double> cost = spillCosts(func, cfg_graph, loops);
        // Aggregate cost onto representatives.
        for (VReg v = 0; v < func.numVRegs(); ++v) {
            if (rep_of[v] != v) {
                cost[rep_of[v]] += cost[v];
                if (no_spill[v])
                    no_spill[rep_of[v]] = true;
            }
        }

        std::vector<RegIndex> color_of_rep;
        std::vector<VReg> spilled;
        bool ok = colorOnce(func, graph, cfg, rep_of, cost, no_spill,
                            color_of_rep, spilled);
        if (ok) {
            result.success = true;
            result.colorOf.assign(func.numVRegs(), regNone);
            for (VReg v = 0; v < func.numVRegs(); ++v)
                result.colorOf[v] = color_of_rep[rep_of[v]];
            result.spillSlots = next_slot;
            return result;
        }

        if (!cfg.allowSpill)
            return result;   // success == false

        // Spill every failed node and retry.
        for (VReg v : spilled) {
            RVP_ASSERT(!no_spill[v]);
            // Spilling a representative with aliases is not supported
            // (alias mode never allows spilling).
            insertSpillCode(func, v,
                            static_cast<std::int32_t>(next_slot * 8),
                            no_spill);
            ++next_slot;
            ++result.spilledVRegs;
        }
    }
    panic("register allocation did not converge");
}

} // namespace rvp
