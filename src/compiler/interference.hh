/**
 * @file
 * Register-interference graph construction ("register allocation via
 * coloring", Chaitin et al.), with support for alias (coalescing)
 * classes: the RVP reallocation pass combines the live ranges of a
 * value's producer and its correlated consumer by mapping both virtual
 * registers to one representative node before edges are added.
 */

#ifndef RVP_COMPILER_INTERFERENCE_HH
#define RVP_COMPILER_INTERFERENCE_HH

#include <cstdint>
#include <vector>

#include "ir/liveness.hh"

namespace rvp
{

/** Undirected interference graph over (representative) vregs. */
class InterferenceGraph
{
  public:
    explicit InterferenceGraph(std::uint32_t num_vregs);

    void addEdge(VReg a, VReg b);
    bool interferes(VReg a, VReg b) const;

    /** Degree counting only neighbors that satisfy filter. */
    template <typename Fn>
    unsigned
    degree(VReg v, Fn &&filter) const
    {
        unsigned d = 0;
        adj_[v].forEach([&](VReg n) { d += filter(n) ? 1 : 0; });
        return d;
    }

    template <typename Fn>
    void
    forEachNeighbor(VReg v, Fn &&fn) const
    {
        adj_[v].forEach(fn);
    }

    std::uint32_t numNodes() const
    {
        return static_cast<std::uint32_t>(adj_.size());
    }

  private:
    std::vector<VRegSet> adj_;
};

/**
 * Build the interference graph of func. alias_of maps each vreg to its
 * representative (identity when null); edges connect representatives.
 * The standard rule applies: at each definition d, d interferes with
 * everything live after the instruction.
 */
InterferenceGraph
buildInterference(const IRFunction &func, const Cfg &cfg,
                  const Liveness &liveness,
                  const std::vector<VReg> *alias_of = nullptr);

} // namespace rvp

#endif // RVP_COMPILER_INTERFERENCE_HH
