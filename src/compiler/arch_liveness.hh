/**
 * @file
 * Post-allocation architectural-register liveness: for every static
 * instruction of a lowered program, which architectural registers hold
 * live values just before it executes. The reuse profiler uses this to
 * classify other-register value matches as "dead register" (free to
 * re-allocate) versus "live register" (needs a move), per Section 5 of
 * the paper.
 */

#ifndef RVP_COMPILER_ARCH_LIVENESS_HH
#define RVP_COMPILER_ARCH_LIVENESS_HH

#include <cstdint>
#include <vector>

#include "compiler/lower.hh"

namespace rvp
{

/**
 * Bitmask per static instruction: bit r set means architectural
 * register r is live immediately before the instruction. An arch
 * register is live iff some virtual register coloured onto it is live.
 */
std::vector<std::uint64_t>
archLiveBefore(const IRFunction &func, const AllocResult &alloc,
               const LowerResult &low);

} // namespace rvp

#endif // RVP_COMPILER_ARCH_LIVENESS_HH
