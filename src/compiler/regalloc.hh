/**
 * @file
 * Chaitin–Briggs graph-colouring register allocator. Colours virtual
 * registers onto the SRISC architectural register file: integer vregs
 * get r0..r29 (r30 is the stack pointer, r31 reads zero), fp vregs get
 * f0..f30 (f31 reads zero). When colouring fails and spilling is
 * allowed, spill code (stack loads/stores off r30) is inserted and the
 * allocation retried.
 *
 * The allocator optionally honours an alias map (vreg -> representative)
 * so the RVP reallocation pass can force producer/consumer pairs into
 * the same architectural register, which is how the paper turns
 * dead-register value reuse into same-register reuse.
 */

#ifndef RVP_COMPILER_REGALLOC_HH
#define RVP_COMPILER_REGALLOC_HH

#include <cstdint>
#include <vector>

#include "compiler/interference.hh"
#include "isa/inst.hh"
#include "ir/loops.hh"

namespace rvp
{

/** Allocator parameters. */
struct AllocConfig
{
    unsigned numIntColors = 30;   ///< r0..r29 allocatable
    unsigned numFpColors = 31;    ///< f0..f30 allocatable
    bool allowSpill = true;
};

/** Allocation outcome. */
struct AllocResult
{
    bool success = false;
    /** Architectural register of each vreg (regNone for never-used). */
    std::vector<RegIndex> colorOf;
    unsigned spilledVRegs = 0;
    unsigned spillSlots = 0;
};

/**
 * Allocate registers for func. May mutate func by inserting spill
 * code (when cfg.allowSpill). alias_of, if given, forces vregs with
 * the same representative to share a colour; it must be
 * interference-free (the caller checks) and is only used with
 * allowSpill == false.
 *
 * extra_edges lets the caller add interference edges beyond liveness
 * (the LVR loop-exclusivity constraint), expressed as vreg pairs.
 */
AllocResult
allocateRegisters(IRFunction &func, const AllocConfig &cfg,
                  const std::vector<VReg> *alias_of = nullptr,
                  const std::vector<std::pair<VReg, VReg>> *extra_edges =
                      nullptr);

} // namespace rvp

#endif // RVP_COMPILER_REGALLOC_HH
