#include "compiler/arch_liveness.hh"

#include "common/logging.hh"
#include "ir/liveness.hh"

namespace rvp
{

std::vector<std::uint64_t>
archLiveBefore(const IRFunction &func, const AllocResult &alloc,
               const LowerResult &low)
{
    // func must already be numbered consistently with low.
    Cfg cfg(func);
    Liveness liveness(func, cfg);

    std::vector<std::uint64_t> result(low.program.size(), 0);
    for (std::uint32_t s = 0; s < low.program.size(); ++s) {
        std::uint32_t ir_id = low.irIdOfStatic[s];
        VRegSet live = liveness.liveBefore(ir_id);
        std::uint64_t bits = 0;
        live.forEach([&](VReg v) {
            RegIndex r = alloc.colorOf[v];
            if (r != regNone)
                bits |= 1ull << r;
        });
        result[s] = bits;
    }
    return result;
}

} // namespace rvp
