/**
 * @file
 * Lowering: IR + register allocation -> SRISC Program. Resolves block
 * targets to pc-relative displacements, patches labelAddr pseudo-ops,
 * maps spill-slot memory operations onto the stack pointer, and
 * applies static-RVP load marking (LDQ -> RVP_LDQ) for the instruction
 * set the profiler selected.
 */

#ifndef RVP_COMPILER_LOWER_HH
#define RVP_COMPILER_LOWER_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "compiler/regalloc.hh"
#include "isa/inst.hh"

namespace rvp
{

/** Result of lowering: the binary plus IR<->static index maps. */
struct LowerResult
{
    Program program;
    /** Global IR inst id of each static instruction. */
    std::vector<std::uint32_t> irIdOfStatic;
    /** Static index of each global IR inst id. */
    std::vector<std::uint32_t> staticOfIrId;
};

/**
 * Lower func to machine code using the given allocation. rvp_marked,
 * if non-null, lists global IR instruction ids of loads to emit as
 * rvp_* opcodes (static register value prediction).
 */
LowerResult
lower(const IRFunction &func, const AllocResult &alloc,
      const std::unordered_set<std::uint32_t> *rvp_marked = nullptr);

} // namespace rvp

#endif // RVP_COMPILER_LOWER_HH
