#include "compiler/interference.hh"

#include "common/logging.hh"

namespace rvp
{

InterferenceGraph::InterferenceGraph(std::uint32_t num_vregs)
    : adj_(num_vregs, VRegSet(num_vregs))
{
}

void
InterferenceGraph::addEdge(VReg a, VReg b)
{
    if (a == b)
        return;
    adj_[a].insert(b);
    adj_[b].insert(a);
}

bool
InterferenceGraph::interferes(VReg a, VReg b) const
{
    return a != b && adj_[a].contains(b);
}

InterferenceGraph
buildInterference(const IRFunction &func, const Cfg &cfg,
                  const Liveness &liveness,
                  const std::vector<VReg> *alias_of)
{
    auto rep = [&](VReg v) { return alias_of ? (*alias_of)[v] : v; };

    InterferenceGraph graph(func.numVRegs());
    for (BlockId b = 0; b < func.numBlocks(); ++b) {
        if (!cfg.reachable(b))
            continue;
        const BasicBlock &block = func.blocks()[b];
        VRegSet live = liveness.liveOut(b);
        for (std::size_t i = block.insts.size(); i-- > 0;) {
            const IRInst &inst = block.insts[i];
            UseDef ud = useDef(inst);
            if (ud.def != noVReg) {
                VReg d = rep(ud.def);
                live.forEach([&](VReg l) { graph.addEdge(d, rep(l)); });
                live.erase(ud.def);
            }
            for (VReg u : ud.uses)
                if (u != noVReg)
                    live.insert(u);
        }
    }
    return graph;
}

} // namespace rvp
