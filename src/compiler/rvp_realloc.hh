/**
 * @file
 * The paper's register-reallocation algorithm (Section 7.3): given
 * profile-identified reuse candidates, rebuild the register allocation
 * so that dead-register value reuse becomes same-register reuse
 * (live-range combining) and last-value reuse gets a register that no
 * other instruction in the innermost loop defines (loop-exclusive
 * interference edges). When the supplemented graph cannot be coloured,
 * candidates are abandoned using the paper's heuristics: LVR before
 * register reuse, outer loops before inner, and low critical-path
 * importance first.
 */

#ifndef RVP_COMPILER_RVP_REALLOC_HH
#define RVP_COMPILER_RVP_REALLOC_HH

#include <cstdint>
#include <vector>

#include "compiler/lower.hh"
#include "compiler/regalloc.hh"

namespace rvp
{

/** One profile-identified reuse a recompilation should try to honour. */
struct ReuseCandidate
{
    std::uint32_t consumerIr = 0;   ///< IR id of the reusing instruction
    /** IR id of the primary producer of the reused value (dead-reg). */
    std::uint32_t producerIr = UINT32_MAX;
    bool isLvr = false;             ///< last-value-reuse candidate
    /** Critical-path importance (higher = keep longer). */
    double priority = 0.0;
};

/** Outcome of the reallocation. */
struct ReallocResult
{
    bool success = false;
    AllocResult alloc;
    /** Per input candidate: did the final allocation honour it? */
    std::vector<bool> honored;
    unsigned droppedForLegality = 0; ///< live ranges already conflicted
    unsigned droppedForColoring = 0; ///< pruned to make the graph K-colourable
};

/**
 * Re-colour func's registers to honour as many candidates as possible.
 * Does not mutate func (no spill code is ever inserted; if even the
 * bare graph cannot be coloured the result reports failure and the
 * caller keeps the original allocation).
 */
ReallocResult
reallocForReuse(IRFunction &func, const AllocConfig &cfg,
                const std::vector<ReuseCandidate> &candidates);

} // namespace rvp

#endif // RVP_COMPILER_RVP_REALLOC_HH
