/**
 * @file
 * Figure 6: dynamic register value prediction applied to ALL
 * register-writing instructions. Speedup over no prediction for:
 * LVP-all, the Gabbay & Mendelson register predictor (register-indexed
 * confidence, no stride unit), plain dynamic RVP, RVP + dead-register
 * reallocation, and RVP + dead + last-value reallocation.
 */

#include "common.hh"

using namespace rvp;
using namespace rvp::bench;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);

    std::vector<Variant> variants = {
        {"no_predict", [](ExperimentConfig &) {}},
        {"lvp_all",
         [](ExperimentConfig &c) { c.scheme = VpScheme::Lvp; }},
        {"Grp_all",
         [](ExperimentConfig &c) { c.scheme = VpScheme::GabbayRp; }},
        {"drvp_all",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::Same;
         }},
        {"drvp_all_dead",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::Dead;
         }},
        {"drvp_all_dead_lv",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::DeadLv;
         }},
    };

    auto results = sweep(variants, [](ExperimentConfig &c) {
        c.loadsOnly = false;
        c.core.recovery = RecoveryPolicy::Selective;
    });

    TextTable table;
    table.setHeader({"program", "lvp_all", "Grp_all", "drvp_all",
                     "drvp_all_dead", "drvp_all_dead_lv"});
    std::map<std::string, std::vector<double>> speedups;
    for (const auto &[workload, row] : results) {
        double base = row.at("no_predict").ipc;
        std::vector<std::string> cells{workload};
        for (std::size_t i = 1; i < variants.size(); ++i) {
            double s = row.at(variants[i].name).ipc / base;
            speedups[variants[i].name].push_back(s);
            cells.push_back(TextTable::num(s));
        }
        table.addRow(cells);
    }
    std::vector<std::string> avg{"average"};
    for (std::size_t i = 1; i < variants.size(); ++i)
        avg.push_back(TextTable::num(mean(speedups[variants[i].name])));
    table.addRow(avg);

    std::cout << "Figure 6: dynamic RVP for all instructions "
                 "(speedup over no prediction)\n\n";
    table.print(std::cout);
    std::cout << "\npaper shape: drvp_all_dead_lv best (~12% average);"
                 " even drvp_all_dead beats buffer-based LVP; the"
                 " Gabbay register predictor trails everything due to"
                 " per-register counter interference.\n";
    return 0;
}
