/**
 * @file
 * Table 2: the percentage of (all) instructions predicted and the
 * prediction accuracy for dynamic RVP (dead), RVP (dead+lv), LVP, and
 * the Gabbay & Mendelson register predictor, everything applied to all
 * register-writing instructions on the 8-wide core.
 */

#include "common.hh"

using namespace rvp;
using namespace rvp::bench;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);

    std::vector<Variant> variants = {
        {"drvp dead",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::Dead;
         }},
        {"dead lv",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::DeadLv;
         }},
        {"lvp",
         [](ExperimentConfig &c) { c.scheme = VpScheme::Lvp; }},
        {"G&M RP",
         [](ExperimentConfig &c) { c.scheme = VpScheme::GabbayRp; }},
    };

    auto results = sweep(variants, [](ExperimentConfig &c) {
        c.loadsOnly = false;
        c.core.recovery = RecoveryPolicy::Selective;
    });

    TextTable table;
    table.setHeader({"program", "drvp dead", "dead lv", "lvp", "G&M RP"});
    for (const auto &[workload, row] : results) {
        std::vector<std::string> cells{workload};
        for (const Variant &v : variants) {
            const ExperimentResult &r = row.at(v.name);
            cells.push_back(TextTable::num(r.predictedFrac * 100, 1) +
                            "/" + TextTable::num(r.accuracy * 100, 1));
        }
        table.addRow(cells);
    }

    std::cout << "Table 2: % instructions predicted / accuracy\n\n";
    table.print(std::cout);
    std::cout
        << "\npaper reference (predicted%/accuracy%):\n"
           "  go      4/93.7   5/95.7    4/94.8   1.3/95.9\n"
           "  hydro  22/99.4  46/99.5   35/99.2     7/98.3\n"
           "  ijpeg   5/98.8  10/98.9   12/98.4     2/97.8\n"
           "  li      9/97.5  24/99.1   24/98.2   1.4/91.0\n"
           "  m88k   29/99.9  57/100    57/99.9     3/98.4\n"
           "  mgrid   7/99.9  19/99.7    7/99.4     4/97.9\n"
           "  perl    8/99.1  14/95.2    6/98.8   1.4/87.5\n"
           "  su2     9/99.3  21/99.2   12/98.2     1/94.1\n"
           "  tu3d   28/99.5  46/99.4   34/98.4     8/94.4\n"
           "shape: dead_lv has the widest coverage; accuracy uniformly"
           " high (resetting counters, threshold 7); G&M coverage"
           " collapses due to register-counter interference.\n";
    return 0;
}
