/**
 * @file
 * Ablation: the table-interference argument of Section 7.2. A loop
 * whose static footprint exceeds the prediction table makes a tagged
 * LVP value file "virtually useless" (every access evicts), while
 * RVP's untagged counters keep working because two instructions that
 * share a counter and both exhibit register reuse interfere
 * *positively*. This binary constructs such loops directly (synthetic
 * straight-line loop bodies of increasing size, every instruction
 * value-stable) and reports coverage for both predictors.
 */

#include <iostream>

#include "common.hh"
#include "sim/sweep.hh"
#include "sim/tables.hh"
#include "uarch/core.hh"
#include "vp/oracle.hh"

using namespace rvp;

namespace
{

/**
 * A loop with `body` value-stable ADDQ instructions (each register
 * re-written with the same value every iteration: r_k = r_k + r31).
 */
Program
bigLoop(unsigned body, std::int32_t iters)
{
    Program prog;
    StaticInst init;
    init.op = Opcode::LDA;
    init.rc = 1;
    init.ra = zeroReg;
    init.useImm = true;
    init.imm = iters;
    prog.insts.push_back(init);
    for (unsigned i = 0; i < body; ++i) {
        StaticInst add;
        add.op = Opcode::ADDQ;
        add.rc = static_cast<RegIndex>(2 + (i % 24));
        add.ra = add.rc;
        add.rb = zeroReg;   // value never changes: perfect reuse
        prog.insts.push_back(add);
    }
    StaticInst dec;
    dec.op = Opcode::SUBQ;
    dec.rc = 1;
    dec.ra = 1;
    dec.useImm = true;
    dec.imm = 1;
    prog.insts.push_back(dec);
    StaticInst br;
    br.op = Opcode::BNE;
    br.ra = 1;
    br.imm = -static_cast<std::int32_t>(body + 2);
    prog.insts.push_back(br);
    StaticInst halt;
    halt.op = Opcode::HALT;
    prog.insts.push_back(halt);
    return prog;
}

double
coverage(const Program &prog, VpScheme scheme, unsigned entries)
{
    VpConfig vp;
    vp.scheme = scheme;
    vp.loadsOnly = false;
    vp.tableEntries = entries;
    auto predictor = makePredictor(vp, prog);
    CoreParams params = CoreParams::table1();
    params.maxInsts = 200'000;
    Core core(params, prog, *predictor);
    CoreResult r = core.run();
    double eligible = r.stats.get("vp.eligible");
    return eligible > 0 ? r.stats.get("vp.predictions") / eligible : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);

    std::cout << "Ablation: loop footprint vs a 256-entry prediction "
                 "table (coverage of eligible instructions)\n\n";
    TextTable table;
    table.setHeader({"loop body (insts)", "lvp (tagged values)",
                     "drvp (untagged counters)"});
    const std::vector<unsigned> bodies{64u,  128u, 192u, 256u,
                                       384u, 512u, 1024u};
    std::vector<double> lvp(bodies.size()), rvp(bodies.size());
    parallelFor(bodies.size(), bench::benchOptions().jobs,
                [&](std::size_t i) {
                    Program prog = bigLoop(bodies[i], 2000);
                    lvp[i] = coverage(prog, VpScheme::Lvp, 256);
                    rvp[i] = coverage(prog, VpScheme::DynamicRvp, 256);
                    std::cerr << "  body " +
                                     std::to_string(bodies[i]) +
                                     " done\n";
                });
    for (std::size_t i = 0; i < bodies.size(); ++i) {
        table.addRow({std::to_string(bodies[i]),
                      TextTable::percent(lvp[i]),
                      TextTable::percent(rvp[i])});
    }
    table.print(std::cout);
    std::cout << "\npaper shape: LVP coverage collapses once the loop"
                 " exceeds the table (tag conflicts every access); RVP"
                 " coverage persists — shared counters interfere"
                 " positively when both instructions exhibit register"
                 " reuse.\n";
    return 0;
}
