/**
 * @file
 * Figure 8: value prediction on the aggressive 16-wide core (doubled
 * queues, functional units, renaming registers, and fetch bandwidth;
 * up to three basic blocks fetched per cycle). Speedup over no
 * prediction for LVP-all, plain dynamic RVP, and RVP + dead + lv.
 */

#include "common.hh"

using namespace rvp;
using namespace rvp::bench;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);

    std::vector<Variant> variants = {
        {"no_predict", [](ExperimentConfig &) {}},
        {"lvp_all",
         [](ExperimentConfig &c) { c.scheme = VpScheme::Lvp; }},
        {"drvp_all",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::Same;
         }},
        {"drvp_all_dead_lv",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::DeadLv;
         }},
    };

    auto results = sweep(variants, [](ExperimentConfig &c) {
        std::uint64_t budget = c.core.maxInsts;
        std::uint64_t profile = c.profileInsts;
        c.core = CoreParams::aggressive16();
        c.core.maxInsts = budget;
        c.profileInsts = profile;
        c.loadsOnly = false;
        c.core.recovery = RecoveryPolicy::Selective;
    });

    TextTable table;
    table.setHeader(
        {"program", "lvp_all", "drvp_all", "drvp_all_dead_lv"});
    std::map<std::string, std::vector<double>> speedups;
    for (const auto &[workload, row] : results) {
        double base = row.at("no_predict").ipc;
        std::vector<std::string> cells{workload};
        for (std::size_t i = 1; i < variants.size(); ++i) {
            double s = row.at(variants[i].name).ipc / base;
            speedups[variants[i].name].push_back(s);
            cells.push_back(TextTable::num(s));
        }
        table.addRow(cells);
    }
    table.addRow({"average", TextTable::num(mean(speedups["lvp_all"])),
                  TextTable::num(mean(speedups["drvp_all"])),
                  TextTable::num(mean(speedups["drvp_all_dead_lv"]))});

    std::cout << "Figure 8: the aggressive 16-wide core "
                 "(speedup over no prediction)\n\n";
    table.print(std::cout);
    std::cout << "\npaper shape: removing ILP limits amplifies value"
                 " prediction; drvp_all_dead_lv ~15% over no prediction"
                 " and ~5% over LVP; even unassisted drvp_all matches"
                 " LVP.\n";
    return 0;
}
