/**
 * @file
 * Figure 3: static register value prediction (selective-reissue
 * recovery), IPC per workload for: no prediction, dynamic last-value
 * prediction (1K-entry buffer), and static RVP with increasing
 * compiler support — same-register only, dead-register correlation,
 * live-register correlation, and live + last-value. Profile threshold
 * 80%, profiles taken on the train input.
 */

#include "common.hh"

using namespace rvp;
using namespace rvp::bench;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);

    std::vector<Variant> variants = {
        {"no_predict", [](ExperimentConfig &) {}},
        {"lvp",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::Lvp;
             c.loadsOnly = true;
         }},
        {"srvp_same",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::StaticRvp;
             c.assist = AssistLevel::Same;
         }},
        {"srvp_dead",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::StaticRvp;
             c.assist = AssistLevel::Dead;
         }},
        {"srvp_live",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::StaticRvp;
             c.assist = AssistLevel::Live;
         }},
        {"srvp_live_lv",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::StaticRvp;
             c.assist = AssistLevel::LiveLv;
         }},
    };

    auto results = sweep(variants, [](ExperimentConfig &c) {
        c.core.recovery = RecoveryPolicy::Selective;
        c.profileThreshold = 0.8;
    });

    TextTable table;
    table.setHeader({"program", "no_predict", "lvp", "srvp_same",
                     "srvp_dead", "srvp_live", "srvp_live_lv"});
    for (const auto &[workload, row] : results) {
        std::vector<std::string> cells{workload};
        for (const Variant &v : variants)
            cells.push_back(TextTable::num(row.at(v.name).ipc));
        table.addRow(cells);
    }

    std::cout << "Figure 3: static RVP on the 8-wide core (IPC)\n\n";
    table.print(std::cout);
    std::cout << "\npaper shape: compiler levels monotonically help;"
                 " some programs gain >=3% with no compiler support;"
                 " li/mgrid gain large amounts from the dead-register"
                 " optimization; srvp_live_lv is the best static"
                 " configuration (up to ~22% over baseline).\n";
    return 0;
}
