/**
 * @file
 * Figure 7: realistic compiler register re-allocation (Section 7.3)
 * versus the idealized profile application. For the workloads where
 * compiler assistance matters, compares: LVP, dynamic RVP on the
 * unmodified binary, dynamic RVP on the *re-allocated* binary
 * (Chaitin colouring with combined live ranges and loop-exclusive LVR
 * registers), and dynamic RVP with the idealized dead+lv profile
 * application. All instructions are prediction candidates.
 */

#include "common.hh"

using namespace rvp;
using namespace rvp::bench;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);

    // The paper shows hydro2d, li, mgrid, su2cor (the programs where
    // ideal reallocation made a significant difference).
    if (!std::getenv("RVP_BENCH_WORKLOADS")) {
#if defined(_WIN32)
        _putenv_s("RVP_BENCH_WORKLOADS", "hydro2d,li,mgrid,su2cor");
#else
        setenv("RVP_BENCH_WORKLOADS", "hydro2d,li,mgrid,su2cor", 1);
#endif
    }

    std::vector<Variant> variants = {
        {"no_predict", [](ExperimentConfig &) {}},
        {"lvp",
         [](ExperimentConfig &c) { c.scheme = VpScheme::Lvp; }},
        {"drvp_all_noreallocate",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::Same;
         }},
        {"drvp_all_dead_lv_realloc",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.realisticRealloc = true;
         }},
        {"drvp_all_dead_lv_ideal",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::DeadLv;
         }},
    };

    auto results = sweep(variants, [](ExperimentConfig &c) {
        c.loadsOnly = false;
        c.core.recovery = RecoveryPolicy::Selective;
    });

    TextTable table;
    table.setHeader({"program", "lvp", "drvp_all_noreallocate",
                     "drvp_all_dead_lv_realloc", "drvp_all_dead_lv_ideal"});
    std::vector<std::string> fell_back;
    for (const auto &[workload, row] : results) {
        double base = row.at("no_predict").ipc;
        std::vector<std::string> cells{workload};
        for (std::size_t i = 1; i < variants.size(); ++i)
            cells.push_back(
                TextTable::num(row.at(variants[i].name).ipc / base));
        if (row.at("drvp_all_dead_lv_realloc").reallocFailed)
            fell_back.push_back(workload);
        table.addRow(cells);
    }

    std::cout << "Figure 7: realistic register re-allocation "
                 "(speedup over no prediction)\n\n";
    table.print(std::cout);
    if (fell_back.empty()) {
        std::cout << "\nre-allocation succeeded for every workload "
                     "(no baseline fallbacks).\n";
    } else {
        std::cout << "\nWARNING: re-allocation FAILED and fell back to "
                     "the baseline allocation for:";
        for (const std::string &w : fell_back)
            std::cout << ' ' << w;
        std::cout << "\n(the drvp_all_dead_lv_realloc column measures "
                     "plain same-register DRVP there)\n";
    }
    std::cout << "\npaper shape: compiler-based re-allocation recovers"
                 " most of the ideal-profile potential; wherever LVP"
                 " beat plain DRVP, the re-allocation is enough to"
                 " exceed LVP.\n";
    return 0;
}
