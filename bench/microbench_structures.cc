/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot data
 * structures: the confidence table, the LVP table, the cache, the
 * functional emulator, and a full timed core step. These guard the
 * simulator's own performance (the harness runs ~200 full experiments
 * per figure sweep).
 */

#include <benchmark/benchmark.h>

#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "emu/emulator.hh"
#include "mem/hierarchy.hh"
#include "uarch/core.hh"
#include "vp/oracle.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace rvp;

void
BM_ConfidenceTable(benchmark::State &state)
{
    ConfidenceConfig cfg;
    cfg.tagged = state.range(0) != 0;
    ConfidenceTable table(cfg);
    std::uint64_t pc = 0x1000;
    bool outcome = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.confident(pc));
        table.update(pc, outcome);
        pc += 4;
        outcome = !outcome;
    }
}
BENCHMARK(BM_ConfidenceTable)->Arg(0)->Arg(1);

void
BM_LvpTable(benchmark::State &state)
{
    LastValuePredictor lvp;
    DynInst di;
    di.op = Opcode::LDQ;
    di.dest = 3;
    for (auto _ : state) {
        di.pc += 4;
        di.newValue = di.pc & 0xff;
        benchmark::DoNotOptimize(lvp.onInst(di, {}));
    }
}
BENCHMARK(BM_LvpTable);

void
BM_CacheAccess(benchmark::State &state)
{
    MemoryHierarchy mem;
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.loadLatency(addr));
        addr = (addr + 64) % (1 << state.range(0));
    }
}
BENCHMARK(BM_CacheAccess)->Arg(14)->Arg(22);   // L1-resident vs thrash

void
BM_EmulatorStep(benchmark::State &state)
{
    BuiltWorkload wl = buildWorkload("go", InputSet::Ref);
    AllocResult alloc = allocateRegisters(wl.func, AllocConfig{});
    LowerResult low = lower(wl.func, alloc);
    low.program.dataImage = wl.data;
    auto emu = std::make_unique<Emulator>(low.program);
    DynInst di;
    for (auto _ : state) {
        if (!emu->step(di)) {
            state.PauseTiming();
            emu = std::make_unique<Emulator>(low.program);
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(di);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmulatorStep);

void
BM_CoreCycle(benchmark::State &state)
{
    BuiltWorkload wl = buildWorkload("ijpeg", InputSet::Ref);
    AllocResult alloc = allocateRegisters(wl.func, AllocConfig{});
    LowerResult low = lower(wl.func, alloc);
    low.program.dataImage = wl.data;
    for (auto _ : state) {
        VpConfig vp;
        vp.scheme = VpScheme::DynamicRvp;
        vp.loadsOnly = false;
        auto predictor = makePredictor(vp, low.program);
        CoreParams params = CoreParams::table1();
        params.maxInsts = 20'000;
        Core core(params, low.program, *predictor);
        CoreResult r = core.run();
        benchmark::DoNotOptimize(r);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(r.committed));
    }
}
BENCHMARK(BM_CoreCycle)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
