/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot data
 * structures: the confidence table, the LVP table, the cache, the
 * functional emulator, and a full timed core step. These guard the
 * simulator's own performance (the harness runs ~200 full experiments
 * per figure sweep).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "emu/emulator.hh"
#include "mem/hierarchy.hh"
#include "stream/batch.hh"
#include "stream/stream.hh"
#include "uarch/core.hh"
#include "vp/oracle.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace rvp;

void
BM_ConfidenceTable(benchmark::State &state)
{
    ConfidenceConfig cfg;
    cfg.tagged = state.range(0) != 0;
    ConfidenceTable table(cfg);
    std::uint64_t pc = 0x1000;
    bool outcome = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.confident(pc));
        table.update(pc, outcome);
        pc += 4;
        outcome = !outcome;
    }
}
BENCHMARK(BM_ConfidenceTable)->Arg(0)->Arg(1);

void
BM_LvpTable(benchmark::State &state)
{
    LastValuePredictor lvp;
    DynInst di;
    di.op = Opcode::LDQ;
    di.dest = 3;
    for (auto _ : state) {
        di.pc += 4;
        di.newValue = di.pc & 0xff;
        benchmark::DoNotOptimize(lvp.onInst(di, {}));
    }
}
BENCHMARK(BM_LvpTable);

void
BM_CacheAccess(benchmark::State &state)
{
    MemoryHierarchy mem;
    std::uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.loadLatency(addr));
        addr = (addr + 64) % (1 << state.range(0));
    }
}
BENCHMARK(BM_CacheAccess)->Arg(14)->Arg(22);   // L1-resident vs thrash

void
BM_EmulatorStep(benchmark::State &state)
{
    BuiltWorkload wl = buildWorkload("go", InputSet::Ref);
    AllocResult alloc = allocateRegisters(wl.func, AllocConfig{});
    LowerResult low = lower(wl.func, alloc);
    low.program.dataImage = wl.data;
    auto emu = std::make_unique<Emulator>(low.program);
    DynInst di;
    for (auto _ : state) {
        if (!emu->step(di)) {
            state.PauseTiming();
            emu = std::make_unique<Emulator>(low.program);
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(di);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmulatorStep);

void
BM_CoreCycle(benchmark::State &state)
{
    BuiltWorkload wl = buildWorkload("ijpeg", InputSet::Ref);
    AllocResult alloc = allocateRegisters(wl.func, AllocConfig{});
    LowerResult low = lower(wl.func, alloc);
    low.program.dataImage = wl.data;
    for (auto _ : state) {
        VpConfig vp;
        vp.scheme = VpScheme::DynamicRvp;
        vp.loadsOnly = false;
        auto predictor = makePredictor(vp, low.program);
        CoreParams params = CoreParams::table1();
        params.maxInsts = 20'000;
        Core core(params, low.program, *predictor);
        CoreResult r = core.run();
        benchmark::DoNotOptimize(r);
        state.SetItemsProcessed(state.items_processed() +
                                static_cast<std::int64_t>(r.committed));
    }
}
BENCHMARK(BM_CoreCycle)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Before/after pairs for the event-driven core hot path
// (docs/INTERNALS.md, "Simulator performance"). Each pair models the
// seed's O(window) per-cycle pattern against the O(1) replacement the
// core now uses, on deterministic synthetic state sized like a full
// Table-1 window (128 entries).
// ---------------------------------------------------------------------

/** A minimal stand-in for the window entry the scans touched. */
struct FakeInst
{
    std::uint64_t seq = 0;
    std::uint64_t completeCycle = 0;
    std::uint64_t effAddr = 0;
    bool issued = false;
    bool isStore = false;
};

std::vector<FakeInst>
makeWindow(std::size_t n)
{
    std::vector<FakeInst> window(n);
    for (std::size_t i = 0; i < n; ++i) {
        window[i].seq = i;
        window[i].completeCycle = 1 + (i * 7) % 64;
        window[i].effAddr = 0x1000 + 8 * ((i * 13) % 32);
        window[i].issued = i % 3 != 0;
        window[i].isStore = i % 5 == 0;
    }
    return window;
}

/** Seed pattern: every cycle scans the whole window for completions. */
void
BM_CompletionWindowScan(benchmark::State &state)
{
    std::vector<FakeInst> window = makeWindow(128);
    std::uint64_t cycle = 0;
    for (auto _ : state) {
        cycle = (cycle + 1) % 64;
        unsigned done = 0;
        for (const FakeInst &inst : window)
            done += inst.issued && inst.completeCycle == cycle;
        benchmark::DoNotOptimize(done);
    }
}
BENCHMARK(BM_CompletionWindowScan);

/** Core pattern: pop one event-wheel bucket per cycle. */
void
BM_CompletionEventWheel(benchmark::State &state)
{
    std::vector<FakeInst> window = makeWindow(128);
    constexpr std::uint64_t mask = 63;
    std::vector<std::vector<std::uint64_t>> wheel(mask + 1);
    for (const FakeInst &inst : window)
        if (inst.issued)
            wheel[inst.completeCycle & mask].push_back(inst.seq);
    std::uint64_t cycle = 0;
    for (auto _ : state) {
        cycle = (cycle + 1) % 64;
        std::vector<std::uint64_t> &bucket = wheel[cycle & mask];
        std::sort(bucket.begin(), bucket.end());
        unsigned done = 0;
        for (std::uint64_t seq : bucket)
            done += window[seq].issued &&
                    window[seq].completeCycle == cycle;
        benchmark::DoNotOptimize(done);
        // Re-arm instead of clearing so every iteration pops a
        // representative bucket (the core clears; steady-state work is
        // identical).
    }
}
BENCHMARK(BM_CompletionEventWheel);

/** Seed pattern: walk the window backwards looking for older stores. */
void
BM_StoreBackwardScan(benchmark::State &state)
{
    std::vector<FakeInst> window = makeWindow(128);
    std::uint64_t load_addr = 0x1000;
    for (auto _ : state) {
        bool hit = false;
        for (std::size_t i = window.size(); i-- > 0;) {
            if (window[i].isStore && window[i].effAddr == load_addr) {
                hit = true;
                break;
            }
        }
        benchmark::DoNotOptimize(hit);
        load_addr = 0x1000 + ((load_addr + 8) & 0xff);
    }
}
BENCHMARK(BM_StoreBackwardScan);

/** Core pattern: address-indexed in-flight store map. */
void
BM_StoreAddressIndex(benchmark::State &state)
{
    std::vector<FakeInst> window = makeWindow(128);
    std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> index;
    for (const FakeInst &inst : window)
        if (inst.isStore)
            index[inst.effAddr].push_back(inst.seq);
    std::uint64_t load_addr = 0x1000;
    std::uint64_t load_seq = 96;
    for (auto _ : state) {
        bool hit = false;
        auto it = index.find(load_addr);
        if (it != index.end()) {
            auto pos = std::lower_bound(it->second.begin(),
                                        it->second.end(), load_seq);
            hit = pos != it->second.begin();
        }
        benchmark::DoNotOptimize(hit);
        load_addr = 0x1000 + ((load_addr + 8) & 0xff);
    }
}
BENCHMARK(BM_StoreAddressIndex);

/** Seed pattern: per-event stat update via string-keyed map lookup. */
void
BM_StatAddByName(benchmark::State &state)
{
    StatSet stats;
    for (auto _ : state) {
        stats.add("core.issued");
        stats.add("core.fetched");
        stats.add("core.iq_occupancy_int", 37.0);
    }
    benchmark::DoNotOptimize(stats.get("core.issued"));
}
BENCHMARK(BM_StatAddByName);

/** Core pattern: interned Counter handles, registered once. */
void
BM_StatAddByHandle(benchmark::State &state)
{
    StatSet stats;
    StatSet::Counter &issued = stats.counter("core.issued");
    StatSet::Counter &fetched = stats.counter("core.fetched");
    StatSet::Counter &occ = stats.counter("core.iq_occupancy_int");
    for (auto _ : state) {
        issued.add();
        fetched.add();
        occ.add(37.0);
    }
    benchmark::DoNotOptimize(stats.get("core.issued"));
}
BENCHMARK(BM_StatAddByHandle);

/**
 * Committed-stream capture (stream/stream.hh): one full emulate +
 * verify + encode pass. Amortized over every replay of the stream, so
 * compare against (replays x BM_EmulatorStep).
 */
void
BM_StreamCapture(benchmark::State &state)
{
    BuiltWorkload wl = buildWorkload("go", InputSet::Ref);
    AllocResult alloc = allocateRegisters(wl.func, AllocConfig{});
    LowerResult low = lower(wl.func, alloc);
    low.program.dataImage = wl.data;
    const std::uint64_t insts = 100'000;
    std::shared_ptr<const CapturedStream> stream;
    for (auto _ : state) {
        stream = CapturedStream::capture(low.program, insts);
        benchmark::DoNotOptimize(stream);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(insts));
    if (stream) {
        state.counters["bytes_per_inst"] =
            static_cast<double>(stream->encodedBytes()) /
            static_cast<double>(stream->instCount());
    }
}
BENCHMARK(BM_StreamCapture)->Unit(benchmark::kMillisecond);

/** Replay rate through the InstSource seam; the live-path comparison
 *  point is BM_EmulatorStep (plus its per-step ArchState copy). */
void
BM_StreamReplayStep(benchmark::State &state)
{
    BuiltWorkload wl = buildWorkload("go", InputSet::Ref);
    AllocResult alloc = allocateRegisters(wl.func, AllocConfig{});
    LowerResult low = lower(wl.func, alloc);
    low.program.dataImage = wl.data;
    auto stream = CapturedStream::capture(low.program, 100'000);
    auto cursor = std::make_unique<StreamCursor>(stream);
    std::uint64_t left = stream->instCount();
    DynInst di;
    for (auto _ : state) {
        if (left == 0) {
            state.PauseTiming();
            cursor = std::make_unique<StreamCursor>(stream);
            left = stream->instCount();
            state.ResumeTiming();
        }
        cursor->step(di);
        --left;
        benchmark::DoNotOptimize(di);
        benchmark::DoNotOptimize(cursor->preState());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamReplayStep);

/** Per-consumer step rate of config-batched replay: one shared decode
 *  ring feeding four lockstep consumers (sim/batchrun.hh drives the
 *  same shape). Compare against BM_StreamReplayStep: the batched step
 *  is a ring copy plus one lazy register write, with the varint
 *  decode amortized across the consumers. */
void
BM_BatchedReplayStep(benchmark::State &state)
{
    constexpr std::size_t consumers = 4;
    BuiltWorkload wl = buildWorkload("go", InputSet::Ref);
    AllocResult alloc = allocateRegisters(wl.func, AllocConfig{});
    LowerResult low = lower(wl.func, alloc);
    low.program.dataImage = wl.data;
    auto stream = CapturedStream::capture(low.program, 100'000);

    auto fresh = [&]() {
        auto batch = std::make_unique<BatchedStreamRun>(stream);
        std::vector<BatchedStreamRun::Consumer *> cons;
        for (std::size_t i = 0; i < consumers; ++i)
            cons.push_back(batch->addConsumer());
        return std::pair(std::move(batch), std::move(cons));
    };
    auto [batch, cons] = fresh();
    std::uint64_t left = stream->instCount() * consumers;
    std::size_t turn = 0;
    DynInst di;
    for (auto _ : state) {
        if (left == 0) {
            state.PauseTiming();
            std::tie(batch, cons) = fresh();
            left = stream->instCount() * consumers;
            turn = 0;
            state.ResumeTiming();
        }
        // Round-robin keeps the consumers in lockstep, so the shared
        // ring stays hot and the decode frontier advances smoothly.
        cons[turn]->step(di);
        turn = (turn + 1) % consumers;
        --left;
        benchmark::DoNotOptimize(di);
        benchmark::DoNotOptimize(cons[0]->preState());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BatchedReplayStep);

} // namespace

BENCHMARK_MAIN();
