/**
 * @file
 * Figure 1: the degree of register-value reuse for loads. For each
 * workload, the fraction of dynamic loads whose loaded value is
 * already (a) in the destination register itself, (b) in a dead
 * register, (c) anywhere in the register file, or (d) in a register
 * or equal to the load's last value. The paper reports that at least
 * ~75% of loaded values are in (or were recently in) the register
 * file, with the columns strictly cumulative.
 */

#include "common.hh"

using namespace rvp;
using namespace rvp::bench;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);

    std::uint64_t insts = envU64("RVP_BENCH_INSTS", 400'000);

    TextTable table;
    table.setHeader({"program", "same reg", "dead reg", "any reg",
                     "reg or lvp"});

    double c_sum[4] = {}, f_sum[4] = {};
    unsigned c_count = 0, f_count = 0;

    // Profile every workload in parallel; rows print in input order.
    std::vector<std::string> names = benchWorkloads();
    std::vector<ReuseProfile> profiles(names.size());
    WorkloadCache cache;
    parallelFor(names.size(), benchOptions().jobs, [&](std::size_t i) {
        profiles[i] =
            cache.profiled(names[i], InputSet::Ref, insts)->profile;
    });

    for (std::size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const ReuseProfile &p = profiles[w];
        double execs = static_cast<double>(p.loadExecs);
        if (execs == 0)
            continue;
        double cols[4] = {
            static_cast<double>(p.loadSameReg) / execs,
            static_cast<double>(p.loadDeadReg) / execs,
            static_cast<double>(p.loadAnyReg) / execs,
            static_cast<double>(p.loadRegOrLv) / execs,
        };
        bool is_fp = false;
        for (const WorkloadSpec &spec : allWorkloads())
            if (spec.name == name)
                is_fp = spec.isFloatingPoint;
        for (int i = 0; i < 4; ++i)
            (is_fp ? f_sum[i] : c_sum[i]) += cols[i];
        (is_fp ? f_count : c_count) += 1;

        table.addRow({name, TextTable::percent(cols[0]),
                      TextTable::percent(cols[1]),
                      TextTable::percent(cols[2]),
                      TextTable::percent(cols[3])});
    }
    if (c_count) {
        table.addRow({"C SPEC avg", TextTable::percent(c_sum[0] / c_count),
                      TextTable::percent(c_sum[1] / c_count),
                      TextTable::percent(c_sum[2] / c_count),
                      TextTable::percent(c_sum[3] / c_count)});
    }
    if (f_count) {
        table.addRow({"F SPEC avg", TextTable::percent(f_sum[0] / f_count),
                      TextTable::percent(f_sum[1] / f_count),
                      TextTable::percent(f_sum[2] / f_count),
                      TextTable::percent(f_sum[3] / f_count)});
    }

    std::cout << "Figure 1: degree of register-value reuse for loads\n\n";
    table.print(std::cout);
    std::cout << "\npaper shape: columns cumulative; 'reg or lvp' >= ~75%"
                 " on average.\n";
    return 0;
}
