/**
 * @file
 * Ablation: RVP confidence-counter design. Sweeps (a) tagged vs
 * untagged counters (the paper asserts untagged counters slightly
 * *outperform* tagged ones for RVP thanks to positive interference),
 * (b) the counter-table size (the hardware-cost knob), and (c) the
 * confidence threshold (coverage/accuracy trade-off), for dynamic RVP
 * over all instructions on the 8-wide core.
 */

#include "common.hh"

using namespace rvp;
using namespace rvp::bench;

namespace
{

ExperimentResult
runDrvp(const std::string &workload, bool tagged, unsigned threshold,
        unsigned entries)
{
    ExperimentConfig config = baseConfig(workload);
    config.scheme = VpScheme::DynamicRvp;
    config.loadsOnly = false;
    config.taggedRvp = tagged;
    config.tableEntries = entries;
    config.counterThreshold = threshold;
    config.core.recovery = RecoveryPolicy::Selective;
    return runExperiment(config);
}

} // namespace

int
main()
{
    std::cout << "Ablation: RVP confidence-counter design "
                 "(speedup over no prediction)\n\n";

    TextTable table;
    table.setHeader({"program", "untag-1K-t7", "tag-1K-t7",
                     "untag-256-t7", "untag-4K-t7", "untag-1K-t3",
                     "untag-1K-t5"});
    for (const std::string &workload : benchWorkloads()) {
        double no_pred = runExperiment(baseConfig(workload)).ipc;
        auto cell = [&](bool tagged, unsigned thr, unsigned entries) {
            return TextTable::num(
                runDrvp(workload, tagged, thr, entries).ipc / no_pred);
        };
        table.addRow({workload, cell(false, 7, 1024),
                      cell(true, 7, 1024), cell(false, 7, 256),
                      cell(false, 7, 4096), cell(false, 3, 1024),
                      cell(false, 5, 1024)});
        std::cerr << "  ran " << workload << "\n";
    }
    table.print(std::cout);
    std::cout << "\npaper shape: untagged counters do not lose to tagged"
                 " ones for RVP (positive interference); modest tables"
                 " suffice; threshold 7 is the paper's conservative"
                 " filter — lower thresholds raise coverage but admit"
                 " mispredicts.\n";
    return 0;
}
