/**
 * @file
 * Ablation: RVP confidence-counter design. Sweeps (a) tagged vs
 * untagged counters (the paper asserts untagged counters slightly
 * *outperform* tagged ones for RVP thanks to positive interference),
 * (b) the counter-table size (the hardware-cost knob), and (c) the
 * confidence threshold (coverage/accuracy trade-off), for dynamic RVP
 * over all instructions on the 8-wide core.
 */

#include "common.hh"

using namespace rvp;
using namespace rvp::bench;

namespace
{

/** One counter-design cell of the ablation grid. */
struct Cell
{
    const char *name;
    bool tagged;
    unsigned threshold;
    unsigned entries;
};

constexpr Cell kCells[] = {
    {"untag-1K-t7", false, 7, 1024}, {"tag-1K-t7", true, 7, 1024},
    {"untag-256-t7", false, 7, 256}, {"untag-4K-t7", false, 7, 4096},
    {"untag-1K-t3", false, 3, 1024}, {"untag-1K-t5", false, 5, 1024},
};

} // namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);

    std::cout << "Ablation: RVP confidence-counter design "
                 "(speedup over no prediction)\n\n";

    // Grid: per workload, the no-prediction baseline plus every cell.
    std::vector<std::string> workloads = benchWorkloads();
    std::vector<ExperimentConfig> configs;
    for (const std::string &workload : workloads) {
        configs.push_back(baseConfig(workload));
        for (const Cell &cell : kCells) {
            ExperimentConfig config = baseConfig(workload);
            config.scheme = VpScheme::DynamicRvp;
            config.loadsOnly = false;
            config.taggedRvp = cell.tagged;
            config.tableEntries = cell.entries;
            config.counterThreshold = cell.threshold;
            config.core.recovery = RecoveryPolicy::Selective;
            configs.push_back(std::move(config));
        }
    }

    SweepReport report;
    std::vector<ExperimentResult> results =
        runSweep(configs, benchSweepOptions(), &report);
    reportSweep(report);

    TextTable table;
    table.setHeader({"program", "untag-1K-t7", "tag-1K-t7",
                     "untag-256-t7", "untag-4K-t7", "untag-1K-t3",
                     "untag-1K-t5"});
    std::size_t idx = 0;
    for (const std::string &workload : workloads) {
        double no_pred = results[idx++].ipc;
        std::vector<std::string> cells{workload};
        for (std::size_t c = 0; c < std::size(kCells); ++c)
            cells.push_back(TextTable::num(results[idx++].ipc / no_pred));
        table.addRow(cells);
    }
    table.print(std::cout);
    std::cout << "\npaper shape: untagged counters do not lose to tagged"
                 " ones for RVP (positive interference); modest tables"
                 " suffice; threshold 7 is the paper's conservative"
                 " filter — lower thresholds raise coverage but admit"
                 " mispredicts.\n";
    return 0;
}
