/**
 * @file
 * Extension study: stride prediction through register values. The
 * paper's Section 3 ("Et Cetera") notes that RVP can subsume stride
 * prediction if the compiler inserts an add that keeps the prior
 * register value one stride ahead; the paper never evaluates it. This
 * benchmark adds the stride source to the dead+lv assist level and
 * measures what it buys on top.
 */

#include "common.hh"

using namespace rvp;
using namespace rvp::bench;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);

    std::vector<Variant> variants = {
        {"no_predict", [](ExperimentConfig &) {}},
        {"drvp_dead_lv",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::DeadLv;
         }},
        {"drvp_dead_lv_stride",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::DeadLvStride;
         }},
    };

    auto results = sweep(variants, [](ExperimentConfig &c) {
        c.loadsOnly = false;
        c.core.recovery = RecoveryPolicy::Selective;
    });

    TextTable table;
    table.setHeader({"program", "dead_lv", "dead_lv_stride",
                     "stride coverage delta"});
    for (const auto &[workload, row] : results) {
        double base = row.at("no_predict").ipc;
        const ExperimentResult &lv = row.at("drvp_dead_lv");
        const ExperimentResult &stride = row.at("drvp_dead_lv_stride");
        table.addRow({workload, TextTable::num(lv.ipc / base),
                      TextTable::num(stride.ipc / base),
                      TextTable::percent(stride.predictedFrac -
                                         lv.predictedFrac)});
    }

    std::cout << "Extension: stride prediction via inserted adds "
                 "(speedup over no prediction)\n\n";
    table.print(std::cout);
    std::cout << "\nexpectation: extra coverage on striding values "
                 "(loop counters, accumulators);\ngains where those sit "
                 "on dependence chains, neutral elsewhere.\n"
                 "caveat: like the paper's live-register moves, the "
                 "inserted add is assumed off\nthe critical path, so "
                 "these numbers are a somewhat optimistic upper bound.\n";
    return 0;
}
