/**
 * @file
 * Shared scaffolding for the figure/table benchmark binaries: run
 * configuration from the command line and the environment,
 * per-workload sweeps through the parallel sweep scheduler
 * (sim/sweep.hh), speedup computation, and uniform output.
 *
 * Command-line flags (every figure/table binary):
 *   --jobs N, -j N           worker threads (default: all cores)
 *   --serial                 shorthand for --jobs 1
 *   --quiet                  suppress per-run progress lines
 *
 * Environment knobs:
 *   RVP_BENCH_INSTS          committed instructions per run (400000)
 *   RVP_BENCH_PROFILE_INSTS  profiling instructions (300000)
 *   RVP_BENCH_WORKLOADS      comma-separated workload filter (all)
 *   RVP_BENCH_JOBS           worker threads (flags take precedence)
 */

#ifndef RVP_BENCH_COMMON_HH
#define RVP_BENCH_COMMON_HH

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/tables.hh"
#include "workloads/workloads.hh"

namespace rvp::bench
{

inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

/** Options shared by every bench binary (set by init()). */
struct BenchOptions
{
    unsigned jobs = 0;       ///< 0 = defaultJobs()
    bool progress = true;
};

inline BenchOptions &
benchOptions()
{
    static BenchOptions options{
        static_cast<unsigned>(envU64("RVP_BENCH_JOBS", 0)), true};
    return options;
}

/**
 * Parse the common bench flags (--jobs/-j N, --serial, --quiet,
 * --help). Unknown arguments are fatal so typos don't silently run
 * the full default sweep.
 */
inline void
init(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": missing value for " << arg
                          << "\n";
                std::exit(1);
            }
            benchOptions().jobs =
                static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--serial") {
            benchOptions().jobs = 1;
        } else if (arg == "--quiet") {
            benchOptions().progress = false;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << argv[0]
                      << " [--jobs N|-j N] [--serial] [--quiet]\n"
                         "env: RVP_BENCH_INSTS, RVP_BENCH_PROFILE_INSTS,\n"
                         "     RVP_BENCH_WORKLOADS, RVP_BENCH_JOBS\n";
            std::exit(0);
        } else {
            std::cerr << argv[0] << ": unknown argument '" << arg
                      << "' (try --help)\n";
            std::exit(1);
        }
    }
}

inline SweepOptions
benchSweepOptions()
{
    SweepOptions options;
    options.jobs = benchOptions().jobs;
    options.progress = benchOptions().progress;
    return options;
}

inline std::vector<std::string>
benchWorkloads()
{
    std::vector<std::string> names;
    const char *filter = std::getenv("RVP_BENCH_WORKLOADS");
    if (!filter) {
        for (const WorkloadSpec &spec : allWorkloads())
            names.push_back(spec.name);
        return names;
    }
    std::string s(filter);
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        names.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return names;
}

/** Base experiment config with the bench-wide budgets applied. */
inline ExperimentConfig
baseConfig(const std::string &workload)
{
    ExperimentConfig config;
    config.workload = workload;
    config.core.maxInsts = envU64("RVP_BENCH_INSTS", 400'000);
    config.profileInsts = envU64("RVP_BENCH_PROFILE_INSTS", 300'000);
    return config;
}

/** A named experiment variant applied on top of the base config. */
struct Variant
{
    std::string name;
    void (*apply)(ExperimentConfig &);
};

/** Print the sweep's wall-clock and cache-effectiveness summary. */
inline void
reportSweep(const SweepReport &report)
{
    std::cerr << "  sweep: " << report.runSeconds.size() << " runs in "
              << TextTable::num(report.wallSeconds, 2) << "s at jobs="
              << report.jobs << " (compile cache "
              << report.cache.compileHits << " hits / "
              << report.cache.compileMisses << " misses, profile cache "
              << report.cache.profileHits << " hits / "
              << report.cache.profileMisses << " misses)\n";
}

/**
 * Run all variants over all workloads on the parallel sweep
 * scheduler; returns result[workload][variant]. Results are
 * bit-identical for any --jobs value.
 */
inline std::map<std::string, std::map<std::string, ExperimentResult>>
sweep(const std::vector<Variant> &variants,
      void (*common)(ExperimentConfig &) = nullptr)
{
    std::vector<std::string> workloads = benchWorkloads();
    std::vector<ExperimentConfig> configs;
    configs.reserve(workloads.size() * variants.size());
    for (const std::string &workload : workloads) {
        for (const Variant &variant : variants) {
            ExperimentConfig config = baseConfig(workload);
            if (common)
                common(config);
            variant.apply(config);
            configs.push_back(std::move(config));
        }
    }

    SweepReport report;
    std::vector<ExperimentResult> results =
        runSweep(configs, benchSweepOptions(), &report);
    reportSweep(report);

    std::map<std::string, std::map<std::string, ExperimentResult>> out;
    std::size_t idx = 0;
    for (const std::string &workload : workloads)
        for (const Variant &variant : variants)
            out[workload][variant.name] = std::move(results[idx++]);
    return out;
}

/** Geometric-mean-free average used by the paper's "average" bars. */
inline double
mean(const std::vector<double> &values)
{
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return values.empty() ? 0.0 : sum / static_cast<double>(values.size());
}

} // namespace rvp::bench

#endif // RVP_BENCH_COMMON_HH
