/**
 * @file
 * Shared scaffolding for the figure/table benchmark binaries: run
 * configuration from the environment, per-workload sweeps, speedup
 * computation, and uniform output.
 *
 * Environment knobs:
 *   RVP_BENCH_INSTS          committed instructions per run (400000)
 *   RVP_BENCH_PROFILE_INSTS  profiling instructions (300000)
 *   RVP_BENCH_WORKLOADS      comma-separated workload filter (all)
 */

#ifndef RVP_BENCH_COMMON_HH
#define RVP_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/tables.hh"
#include "workloads/workloads.hh"

namespace rvp::bench
{

inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

inline std::vector<std::string>
benchWorkloads()
{
    std::vector<std::string> names;
    const char *filter = std::getenv("RVP_BENCH_WORKLOADS");
    if (!filter) {
        for (const WorkloadSpec &spec : allWorkloads())
            names.push_back(spec.name);
        return names;
    }
    std::string s(filter);
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        names.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return names;
}

/** Base experiment config with the bench-wide budgets applied. */
inline ExperimentConfig
baseConfig(const std::string &workload)
{
    ExperimentConfig config;
    config.workload = workload;
    config.core.maxInsts = envU64("RVP_BENCH_INSTS", 400'000);
    config.profileInsts = envU64("RVP_BENCH_PROFILE_INSTS", 300'000);
    return config;
}

/** A named experiment variant applied on top of the base config. */
struct Variant
{
    std::string name;
    void (*apply)(ExperimentConfig &);
};

/**
 * Run all variants over all workloads; returns result[workload][variant].
 */
inline std::map<std::string, std::map<std::string, ExperimentResult>>
sweep(const std::vector<Variant> &variants,
      void (*common)(ExperimentConfig &) = nullptr)
{
    std::map<std::string, std::map<std::string, ExperimentResult>> out;
    for (const std::string &workload : benchWorkloads()) {
        for (const Variant &variant : variants) {
            ExperimentConfig config = baseConfig(workload);
            if (common)
                common(config);
            variant.apply(config);
            out[workload][variant.name] = runExperiment(config);
            std::cerr << "  ran " << workload << " / " << variant.name
                      << " (ipc " << TextTable::num(
                             out[workload][variant.name].ipc)
                      << ")\n";
        }
    }
    return out;
}

/** Geometric-mean-free average used by the paper's "average" bars. */
inline double
mean(const std::vector<double> &values)
{
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return values.empty() ? 0.0 : sum / static_cast<double>(values.size());
}

} // namespace rvp::bench

#endif // RVP_BENCH_COMMON_HH
