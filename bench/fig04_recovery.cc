/**
 * @file
 * Figure 4: the effect of the misprediction-recovery mechanism on
 * static RVP (dead-register optimization). Compares no-prediction
 * against srvp_dead under refetch, reissue, and selective-reissue
 * recovery. Uses the more conservative 90% profile threshold, as the
 * paper does for this figure.
 */

#include "common.hh"

using namespace rvp;
using namespace rvp::bench;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);

    std::vector<Variant> variants = {
        {"no_predict", [](ExperimentConfig &) {}},
        {"srvp_refetch",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::StaticRvp;
             c.assist = AssistLevel::Dead;
             c.core.recovery = RecoveryPolicy::Refetch;
         }},
        {"srvp_reissue",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::StaticRvp;
             c.assist = AssistLevel::Dead;
             c.core.recovery = RecoveryPolicy::Reissue;
         }},
        {"srvp_selective",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::StaticRvp;
             c.assist = AssistLevel::Dead;
             c.core.recovery = RecoveryPolicy::Selective;
         }},
    };

    auto results = sweep(variants, [](ExperimentConfig &c) {
        c.profileThreshold = 0.9;   // conservative marking (paper)
    });

    TextTable table;
    table.setHeader({"program", "no_predict", "srvp_refetch",
                     "srvp_reissue", "srvp_selective"});
    std::vector<double> refetch_v, reissue_v, selective_v;
    for (const auto &[workload, row] : results) {
        std::vector<std::string> cells{workload};
        for (const Variant &v : variants)
            cells.push_back(TextTable::num(row.at(v.name).ipc));
        table.addRow(cells);
        double base = row.at("no_predict").ipc;
        refetch_v.push_back(row.at("srvp_refetch").ipc / base);
        reissue_v.push_back(row.at("srvp_reissue").ipc / base);
        selective_v.push_back(row.at("srvp_selective").ipc / base);
    }
    table.addRow({"avg speedup", "1.000",
                  TextTable::num(mean(refetch_v)),
                  TextTable::num(mean(reissue_v)),
                  TextTable::num(mean(selective_v))});

    std::cout << "Figure 4: recovery mechanisms, srvp_dead (IPC)\n\n";
    table.print(std::cout);
    std::cout << "\npaper shape: selective reissue best overall; simple"
                 " refetch is competitive and often beats full reissue"
                 " (reissue's queue pressure restricts parallelism).\n";
    return 0;
}
