/**
 * @file
 * Figure 5: dynamic register value prediction restricted to load
 * instructions. Speedup over no prediction for: buffer-based LVP,
 * plain dynamic RVP (no compiler support), RVP with dead-register
 * reallocation, and RVP with dead + last-value reallocation.
 */

#include "common.hh"

using namespace rvp;
using namespace rvp::bench;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);

    std::vector<Variant> variants = {
        {"no_predict", [](ExperimentConfig &) {}},
        {"lvp",
         [](ExperimentConfig &c) { c.scheme = VpScheme::Lvp; }},
        {"drvp",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::Same;
         }},
        {"drvp_dead",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::Dead;
         }},
        {"drvp_dead_lv",
         [](ExperimentConfig &c) {
             c.scheme = VpScheme::DynamicRvp;
             c.assist = AssistLevel::DeadLv;
         }},
    };

    auto results = sweep(variants, [](ExperimentConfig &c) {
        c.loadsOnly = true;
        c.core.recovery = RecoveryPolicy::Selective;
    });

    TextTable table;
    table.setHeader({"program", "lvp", "drvp", "drvp_dead",
                     "drvp_dead_lv"});
    std::map<std::string, std::vector<double>> speedups;
    for (const auto &[workload, row] : results) {
        double base = row.at("no_predict").ipc;
        std::vector<std::string> cells{workload};
        for (std::size_t i = 1; i < variants.size(); ++i) {
            double s = row.at(variants[i].name).ipc / base;
            speedups[variants[i].name].push_back(s);
            cells.push_back(TextTable::num(s));
        }
        table.addRow(cells);
    }
    table.addRow({"average", TextTable::num(mean(speedups["lvp"])),
                  TextTable::num(mean(speedups["drvp"])),
                  TextTable::num(mean(speedups["drvp_dead"])),
                  TextTable::num(mean(speedups["drvp_dead_lv"]))});

    std::cout << "Figure 5: dynamic RVP for loads "
                 "(speedup over no prediction)\n\n";
    table.print(std::cout);
    std::cout << "\npaper shape: drvp_dead only slightly under-performs"
                 " the much more expensive LVP; drvp_dead_lv outperforms"
                 " LVP (paper: ~8% average gain over no prediction).\n";
    return 0;
}
