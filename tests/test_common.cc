/**
 * @file
 * Unit tests for the common substrate: counters, RNG, stats, bit
 * utilities.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/bits.hh"
#include "common/counters.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace rvp
{
namespace
{

TEST(SaturatingCounter, SaturatesAtMax)
{
    SaturatingCounter c(2);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.isSet());
}

TEST(SaturatingCounter, SaturatesAtZero)
{
    SaturatingCounter c(2, 3);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_FALSE(c.isSet());
}

TEST(SaturatingCounter, HysteresisAroundMidpoint)
{
    SaturatingCounter c(2, 2);
    EXPECT_TRUE(c.isSet());
    c.decrement();
    EXPECT_FALSE(c.isSet());   // value 1
    c.increment();
    EXPECT_TRUE(c.isSet());    // back to 2
}

TEST(ResettingCounter, NeedsSevenConsecutiveCorrect)
{
    // The paper's filter: 3-bit resetting counter, threshold 7 — a
    // prediction is only authorized after seven consecutive hits.
    ResettingCounter c(3, 7);
    for (int i = 0; i < 6; ++i) {
        c.recordCorrect();
        EXPECT_FALSE(c.confident()) << "after " << i + 1 << " corrects";
    }
    c.recordCorrect();
    EXPECT_TRUE(c.confident());
}

TEST(ResettingCounter, SingleMissResets)
{
    ResettingCounter c(3, 7);
    for (int i = 0; i < 7; ++i)
        c.recordCorrect();
    ASSERT_TRUE(c.confident());
    c.recordIncorrect();
    EXPECT_FALSE(c.confident());
    EXPECT_EQ(c.value(), 0u);
}

TEST(ResettingCounter, StaysSaturated)
{
    ResettingCounter c(3, 7);
    for (int i = 0; i < 100; ++i)
        c.recordCorrect();
    EXPECT_EQ(c.value(), 7u);
    EXPECT_TRUE(c.confident());
}

TEST(ResettingCounter, ThresholdEqualToMaxStillReachable)
{
    // threshold == max is the boundary the constructor's assert allows:
    // confidence must still be reachable (saturation is not an
    // off-by-one above the threshold).
    ResettingCounter wide(3, 7);
    for (int i = 0; i < 7; ++i)
        wide.recordCorrect();
    EXPECT_TRUE(wide.confident());
    EXPECT_EQ(wide.value(), wide.threshold());

    ResettingCounter one_bit(1, 1);
    EXPECT_FALSE(one_bit.confident());
    one_bit.recordCorrect();
    EXPECT_TRUE(one_bit.confident());
    EXPECT_EQ(one_bit.value(), 1u);
    one_bit.recordCorrect();   // saturated: must not wrap past max
    EXPECT_TRUE(one_bit.confident());
    EXPECT_EQ(one_bit.value(), 1u);
    one_bit.recordIncorrect();
    EXPECT_FALSE(one_bit.confident());
}

TEST(ResettingCounter, ThresholdZeroIsAlwaysConfident)
{
    // Degenerate but legal: threshold 0 authorizes every prediction,
    // even straight after a reset.
    ResettingCounter c(3, 0);
    EXPECT_TRUE(c.confident());
    c.recordIncorrect();
    EXPECT_TRUE(c.confident());
}

TEST(SaturatingCounter, OddBitWidths)
{
    // Widths with no midpoint pair: 1, 3, and 5 bits. max must be
    // 2^bits - 1 and isSet() must flip strictly above max/2.
    SaturatingCounter one(1);
    EXPECT_EQ(one.max(), 1u);
    EXPECT_FALSE(one.isSet());
    one.increment();
    EXPECT_EQ(one.value(), 1u);
    EXPECT_TRUE(one.isSet());
    one.increment();   // saturate, no wrap
    EXPECT_EQ(one.value(), 1u);

    SaturatingCounter three(3);
    EXPECT_EQ(three.max(), 7u);
    for (int i = 0; i < 3; ++i)
        three.increment();
    EXPECT_FALSE(three.isSet());   // 3 == max/2: lower half
    three.increment();
    EXPECT_TRUE(three.isSet());    // 4 > max/2
    for (int i = 0; i < 10; ++i)
        three.increment();
    EXPECT_EQ(three.value(), 7u);

    SaturatingCounter five(5, 31);
    EXPECT_EQ(five.max(), 31u);
    EXPECT_EQ(five.value(), 31u);
    five.increment();              // saturated at construction
    EXPECT_EQ(five.value(), 31u);
    for (int i = 0; i < 16; ++i)
        five.decrement();
    EXPECT_FALSE(five.isSet());    // 15 == max/2: lower half
    for (int i = 0; i < 20; ++i)
        five.decrement();
    EXPECT_EQ(five.value(), 0u);   // saturates at zero
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Rng, RangeRespected)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.nextRange(-5, 9);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, BelowCoversValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(StatSet, AddAndGet)
{
    StatSet s;
    s.add("x");
    s.add("x", 2.0);
    EXPECT_DOUBLE_EQ(s.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(s.get("missing"), 0.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_FALSE(s.has("missing"));
}

TEST(StatSet, RatioHandlesZeroDenominator)
{
    StatSet s;
    s.set("n", 5);
    EXPECT_DOUBLE_EQ(s.ratio("n", "d"), 0.0);
    s.set("d", 2);
    EXPECT_DOUBLE_EQ(s.ratio("n", "d"), 2.5);
}

TEST(StatSet, MergeSums)
{
    StatSet a, b;
    a.add("x", 1);
    b.add("x", 2);
    b.add("y", 3);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 3.0);
}

TEST(StatSet, DumpIsSorted)
{
    StatSet s;
    s.set("zeta", 1);
    s.set("alpha", 2);
    std::ostringstream os;
    s.dump(os);
    std::string text = os.str();
    EXPECT_LT(text.find("alpha"), text.find("zeta"));
}

TEST(Bits, MaskEdges)
{
    EXPECT_EQ(mask(0), 0ull);
    EXPECT_EQ(mask(1), 1ull);
    EXPECT_EQ(mask(64), ~0ull);
}

TEST(Bits, ExtractInsertRoundTrip)
{
    std::uint64_t v = 0;
    v = insertBits(v, 15, 8, 0xab);
    EXPECT_EQ(bits(v, 15, 8), 0xabull);
    EXPECT_EQ(bits(v, 7, 0), 0ull);
    v = insertBits(v, 15, 8, 0x5);
    EXPECT_EQ(bits(v, 15, 8), 0x5ull);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0x3ff, 10), -1);
    EXPECT_EQ(signExtend(0x1ff, 10), 511);
    EXPECT_EQ(signExtend(0x200, 10), -512);
    EXPECT_EQ(signExtend(0, 10), 0);
}

TEST(CounterWidth, RejectsDegenerateAndOversizedWidths)
{
    // Both counter classes compute their maximum as (1u << bits) - 1,
    // which is undefined behaviour at bits >= 32. counterMax() bounds
    // the width *before* the shift, so a bad width dies with a
    // diagnostic instead of shifting out of range (the old code
    // shifted in the member-initializer list, ahead of any assert in
    // the constructor body).
    EXPECT_DEATH(SaturatingCounter(0), "outside \\[1, 16\\]");
    EXPECT_DEATH(SaturatingCounter(32), "outside \\[1, 16\\]");
    EXPECT_DEATH(SaturatingCounter(33), "outside \\[1, 16\\]");
    EXPECT_DEATH(ResettingCounter(0, 0), "outside \\[1, 16\\]");
    EXPECT_DEATH(ResettingCounter(32, 7), "outside \\[1, 16\\]");
    EXPECT_DEATH(ResettingCounter(64, 7), "outside \\[1, 16\\]");
}

TEST(CounterWidth, WidestAllowedWidthWorks)
{
    SaturatingCounter sat(16);
    EXPECT_EQ(sat.max(), 65535u);
    ResettingCounter conf(16, 65535);
    EXPECT_EQ(conf.threshold(), 65535u);
}

TEST(CounterWidth, RejectsOutOfRangeInitialAndThreshold)
{
    EXPECT_DEATH(SaturatingCounter(2, 4), "exceeds the 2-bit maximum");
    EXPECT_DEATH(ResettingCounter(3, 8), "exceeds the 3-bit maximum");
}

TEST(Distribution, BucketBoundariesAreLog2)
{
    using D = StatSet::Distribution;
    EXPECT_EQ(D::bucketOf(0.0), 0u);     // < 1 -> bucket 0
    EXPECT_EQ(D::bucketOf(0.5), 0u);
    EXPECT_EQ(D::bucketOf(1.0), 1u);     // [1, 2)
    EXPECT_EQ(D::bucketOf(1.9), 1u);
    EXPECT_EQ(D::bucketOf(2.0), 2u);     // [2, 4)
    EXPECT_EQ(D::bucketOf(3.0), 2u);
    EXPECT_EQ(D::bucketOf(4.0), 3u);     // [4, 8)
    EXPECT_EQ(D::bucketOf(1024.0), 11u); // [1024, 2048)
    EXPECT_EQ(D::bucketOf(1e300), D::numBuckets - 1);
}

TEST(Distribution, CountSumMeanMinMax)
{
    StatSet stats;
    StatSet::Distribution &d = stats.distribution("lat");
    d.sample(3.0);
    d.sample(1.0);
    d.sample(8.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.sum(), 12.0);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 8.0);
}

TEST(Distribution, PercentilesClampToObservedRange)
{
    StatSet stats;
    StatSet::Distribution &d = stats.distribution("lat");
    for (int i = 0; i < 90; ++i)
        d.sample(1.0);
    for (int i = 0; i < 10; ++i)
        d.sample(100.0);
    // p50 lands in the bucket of the 1.0 samples; p99 in the bucket
    // holding 100.0 — bucket-resolution, but clamped to the exact
    // observed max.
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.99), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
}

TEST(Distribution, DerivedScalarsMaterializeOnRead)
{
    StatSet stats;
    StatSet::Distribution &d = stats.distribution("core.lat");
    d.sample(2.0);
    d.sample(6.0);
    const auto &values = stats.values();
    EXPECT_EQ(values.at("core.lat.count"), 2.0);
    EXPECT_EQ(values.at("core.lat.sum"), 8.0);
    EXPECT_EQ(values.at("core.lat.mean"), 4.0);
    EXPECT_EQ(values.at("core.lat.min"), 2.0);
    EXPECT_EQ(values.at("core.lat.max"), 6.0);
    EXPECT_TRUE(values.count("core.lat.p50"));
    EXPECT_TRUE(values.count("core.lat.p90"));
    EXPECT_TRUE(values.count("core.lat.p99"));
}

TEST(Distribution, NeverSampledEmitsNothing)
{
    // Golden snapshots are compared as exact stat maps, so an interned
    // but unused histogram must not add keys.
    StatSet stats;
    stats.distribution("quiet");
    stats.add("other", 1.0);
    EXPECT_EQ(stats.values().size(), 1u);
    EXPECT_FALSE(stats.has("quiet.count"));
}

TEST(Distribution, MergeCombinesSamplesNotScalars)
{
    StatSet a, b;
    StatSet::Distribution &da = a.distribution("lat");
    StatSet::Distribution &db = b.distribution("lat");
    for (int i = 0; i < 10; ++i)
        da.sample(1.0);
    for (int i = 0; i < 10; ++i)
        db.sample(64.0);
    // Force both sides to materialize first: a correct merge must
    // combine buckets and recompute, not sum the derived scalars.
    (void)a.values();
    (void)b.values();
    a.merge(b);
    const auto &values = a.values();
    EXPECT_EQ(values.at("lat.count"), 20.0);
    EXPECT_EQ(values.at("lat.sum"), 650.0);
    EXPECT_EQ(values.at("lat.min"), 1.0);
    EXPECT_EQ(values.at("lat.max"), 64.0);
    // The merged p99 must reflect b's samples, not a's old p99.
    EXPECT_EQ(values.at("lat.p99"), 64.0);
}

TEST(Distribution, NegativeSamplesClampToZero)
{
    StatSet stats;
    StatSet::Distribution &d = stats.distribution("neg");
    d.sample(-5.0);
    EXPECT_EQ(d.count(), 1u);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.sum(), 0.0);
}

TEST(Bits, PowerOf2AndLog)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(1024));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(12));
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1023), 9u);
}

} // namespace
} // namespace rvp
