/**
 * @file
 * Unit tests for the cache model and the two-level hierarchy (Table 1
 * geometry and latencies).
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"

namespace rvp
{
namespace
{

CacheConfig
tinyCache(unsigned size, unsigned assoc)
{
    CacheConfig cfg;
    cfg.name = "tiny";
    cfg.sizeBytes = size;
    cfg.assoc = assoc;
    cfg.lineBytes = 64;
    return cfg;
}

TEST(Cache, HitAfterFill)
{
    Cache cache(tinyCache(1024, 2));
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1038, false).hit);   // same 64B line
    EXPECT_FALSE(cache.access(0x1040, false).hit);  // next line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 1KB, 2-way, 64B lines -> 8 sets; addresses 512B apart collide.
    Cache cache(tinyCache(1024, 2));
    std::uint64_t a = 0x0000, b = 0x0200, c = 0x0400;
    cache.access(a, false);
    cache.access(b, false);
    EXPECT_TRUE(cache.access(a, false).hit);
    cache.access(c, false);              // evicts b (LRU)
    EXPECT_TRUE(cache.access(a, false).hit);
    EXPECT_FALSE(cache.access(b, false).hit);
}

TEST(Cache, DirtyWritebackReported)
{
    Cache cache(tinyCache(1024, 1));     // direct-mapped, 16 sets
    cache.access(0x0000, true);          // dirty
    auto result = cache.access(0x0400, false);   // same set
    ASSERT_TRUE(result.writeback.has_value());
    EXPECT_EQ(*result.writeback, 0x0000u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, CleanEvictionSilent)
{
    Cache cache(tinyCache(1024, 1));
    cache.access(0x0000, false);
    auto result = cache.access(0x0400, false);
    EXPECT_FALSE(result.writeback.has_value());
}

TEST(Cache, ContainsDoesNotPerturb)
{
    Cache cache(tinyCache(1024, 2));
    cache.access(0x1000, false);
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_FALSE(cache.contains(0x2000));
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, ResetClearsEverything)
{
    Cache cache(tinyCache(1024, 2));
    cache.access(0x1000, true);
    cache.reset();
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(Cache, StatsExported)
{
    Cache cache(tinyCache(1024, 2));
    cache.access(0x1000, false);
    cache.access(0x1000, false);
    StatSet stats;
    cache.exportStats(stats);
    EXPECT_DOUBLE_EQ(stats.get("tiny.hits"), 1.0);
    EXPECT_DOUBLE_EQ(stats.get("tiny.misses"), 1.0);
}

class CacheGeometry
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{};

TEST_P(CacheGeometry, FillsWholeCapacityWithoutConflict)
{
    auto [size, assoc] = GetParam();
    Cache cache(tinyCache(size, assoc));
    unsigned lines = size / 64;
    // Sequential fill touches each line once...
    for (unsigned i = 0; i < lines; ++i)
        EXPECT_FALSE(cache.access(i * 64ull, false).hit);
    // ...and then every line hits: LRU keeps a fully-resident working
    // set resident.
    for (unsigned i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.access(i * 64ull, false).hit);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::make_pair(1024u, 1u), std::make_pair(1024u, 2u),
                      std::make_pair(4096u, 4u), std::make_pair(32768u, 4u),
                      std::make_pair(524288u, 2u)));

TEST(CacheGeometryValidation, AcceptsWellFormedConfigs)
{
    // Table-1 shapes and a couple of odd-but-valid ones.
    validateCacheConfig({"l1", 32 * 1024, 4, 64});
    validateCacheConfig({"l2", 512 * 1024, 2, 64});
    validateCacheConfig({"tiny", 128, 1, 32});      // 4 sets
    validateCacheConfig({"full", 3 * 64, 3, 64});   // 1 set, assoc 3
}

TEST(CacheGeometryValidation, RejectsNonPowerOfTwoLine)
{
    // The set index is addr >> log2(lineBytes): a 48-byte line cannot
    // be indexed with a shift and used to silently misplace lines.
    EXPECT_DEATH(Cache({"bad", 32 * 1024, 4, 48}),
                 "not a power of two");
    EXPECT_DEATH(validateCacheConfig({"bad", 32 * 1024, 4, 48}),
                 "not a power of two");
}

TEST(CacheGeometryValidation, RejectsSizeNotMultipleOfWayBytes)
{
    // 65636 / (4*64) = 256.39...: numSets() would round down to 256
    // sets and the "64KB-ish" cache would silently behave as 64KB.
    EXPECT_DEATH(validateCacheConfig({"bad", 65636, 4, 64}),
                 "silently");
}

TEST(CacheGeometryValidation, RejectsNonPowerOfTwoSets)
{
    // 96KB / (4 * 64) = 384 sets: divisible, but the set *mask*
    // (numSets - 1) would alias distinct sets.
    EXPECT_DEATH(validateCacheConfig({"bad", 96 * 1024, 4, 64}),
                 "power of two");
}

TEST(CacheGeometryValidation, RejectsZeroSets)
{
    // Smaller than one way: numSets() == 0, and the constructor would
    // otherwise allocate no lines and index out of bounds.
    EXPECT_DEATH(validateCacheConfig({"bad", 64, 4, 64}), "");
}

TEST(CacheGeometryValidation, RejectsZeroAssoc)
{
    EXPECT_DEATH(validateCacheConfig({"bad", 32 * 1024, 0, 64}),
                 "at least one way");
}

TEST(Hierarchy, Table1Latencies)
{
    MemoryHierarchy mem;
    // Cold: miss everywhere = 1 + 20 + 80.
    EXPECT_EQ(mem.loadLatency(0x10000), 101u);
    // Warm L1.
    EXPECT_EQ(mem.loadLatency(0x10000), 1u);
    // Evicting from L1 but present in L2: thrash L1 with conflicting
    // addresses (L1 32KB 4-way: 128 sets; stride 8KB collides).
    for (unsigned i = 1; i <= 4; ++i)
        mem.loadLatency(0x10000 + i * 8192);
    EXPECT_EQ(mem.loadLatency(0x10000), 21u);   // L1 miss, L2 hit
}

TEST(Hierarchy, InstAndDataSplit)
{
    MemoryHierarchy mem;
    EXPECT_EQ(mem.fetchLatency(0x2000), 101u);
    // The D-cache did not see that address.
    EXPECT_EQ(mem.loadLatency(0x2000), 21u);   // L2 already has it
}

TEST(Hierarchy, StoresAllocate)
{
    MemoryHierarchy mem;
    mem.storeAccess(0x3000);
    EXPECT_EQ(mem.loadLatency(0x3000), 1u);
}

TEST(Hierarchy, ResetRestoresColdState)
{
    MemoryHierarchy mem;
    mem.loadLatency(0x10000);
    mem.reset();
    EXPECT_EQ(mem.loadLatency(0x10000), 101u);
}

} // namespace
} // namespace rvp
