/**
 * @file
 * Unit tests for the IR: builder, CFG construction, dominators,
 * natural-loop detection, and liveness dataflow.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "ir/cfg.hh"
#include "ir/dominators.hh"
#include "ir/ir.hh"
#include "ir/liveness.hh"
#include "ir/loops.hh"

namespace rvp
{
namespace
{

/**
 * A diamond:    b0 -> b1, b2;  b1 -> b3;  b2 -> b3
 */
struct Diamond
{
    IRFunction func;
    BlockId b0, b1, b2, b3;
    VReg x, y;

    Diamond()
    {
        IRBuilder b(func);
        x = func.newIntVReg();
        y = func.newIntVReg();
        b0 = b.startBlock();
        b.loadImm(x, 5);
        BlockId else_blk = b.label();
        b.branch(Opcode::BEQ, x, else_blk);
        b1 = b.startBlock();
        b.opImm(Opcode::ADDQ, y, x, 1);
        BlockId join = b.label();
        b.jump(join);
        b2 = else_blk;
        b.place(b2);
        b.opImm(Opcode::ADDQ, y, x, 2);
        b3 = join;
        b.place(b3);
        b.store(y, x, 0);
        b.halt();
        func.numberInsts();
    }
};

TEST(Cfg, DiamondEdges)
{
    Diamond d;
    Cfg cfg(d.func);
    // block order: b0=0, b1=1, b2(else)=2? label() creates blocks in
    // creation order: b0, else(b2), b1, join... verify via succs.
    auto s0 = cfg.succs(d.b0);
    EXPECT_EQ(s0.size(), 2u);
    EXPECT_TRUE(std::count(s0.begin(), s0.end(), d.b1));
    EXPECT_TRUE(std::count(s0.begin(), s0.end(), d.b2));
    EXPECT_EQ(cfg.succs(d.b1), std::vector<BlockId>{d.b3});
    EXPECT_EQ(cfg.succs(d.b2), std::vector<BlockId>{d.b3});
    EXPECT_TRUE(cfg.succs(d.b3).empty());
    EXPECT_EQ(cfg.preds(d.b3).size(), 2u);
}

TEST(Cfg, RpoStartsAtEntry)
{
    Diamond d;
    Cfg cfg(d.func);
    ASSERT_FALSE(cfg.rpo().empty());
    EXPECT_EQ(cfg.rpo().front(), d.b0);
    EXPECT_EQ(cfg.rpoIndex(d.b0), 0u);
    // Join must come after both arms.
    EXPECT_GT(cfg.rpoIndex(d.b3), cfg.rpoIndex(d.b1));
    EXPECT_GT(cfg.rpoIndex(d.b3), cfg.rpoIndex(d.b2));
}

TEST(Cfg, UnreachableBlockDetected)
{
    IRFunction func;
    IRBuilder b(func);
    BlockId b0 = b.startBlock();
    BlockId b2 = b.label();
    b.jump(b2);
    BlockId b1 = b.startBlock();   // unreachable
    b.halt();
    b.place(b2);
    b.halt();
    func.numberInsts();
    Cfg cfg(func);
    EXPECT_TRUE(cfg.reachable(b0));
    EXPECT_FALSE(cfg.reachable(b1));
    EXPECT_TRUE(cfg.reachable(b2));
}

TEST(Dominators, Diamond)
{
    Diamond d;
    Cfg cfg(d.func);
    Dominators doms(cfg);
    EXPECT_TRUE(doms.dominates(d.b0, d.b1));
    EXPECT_TRUE(doms.dominates(d.b0, d.b3));
    EXPECT_FALSE(doms.dominates(d.b1, d.b3));
    EXPECT_FALSE(doms.dominates(d.b2, d.b3));
    EXPECT_TRUE(doms.dominates(d.b3, d.b3));   // reflexive
    EXPECT_EQ(doms.idom(d.b3), d.b0);
}

/** Build a doubly-nested loop. */
struct NestedLoops
{
    IRFunction func;
    BlockId entry, outer_head, inner_head, inner_body, outer_latch, exit;
    VReg i, j;

    NestedLoops()
    {
        IRBuilder b(func);
        i = func.newIntVReg();
        j = func.newIntVReg();
        entry = b.startBlock();
        b.loadImm(i, 4);
        outer_head = b.startBlock();
        b.loadImm(j, 3);
        inner_head = b.startBlock();
        inner_body = inner_head;   // single-block inner loop
        b.opImm(Opcode::SUBQ, j, j, 1);
        b.branch(Opcode::BNE, j, inner_head);
        outer_latch = b.startBlock();
        b.opImm(Opcode::SUBQ, i, i, 1);
        b.branch(Opcode::BNE, i, outer_head);
        exit = b.startBlock();
        b.halt();
        func.numberInsts();
    }
};

TEST(Loops, NestedDetection)
{
    NestedLoops n;
    Cfg cfg(n.func);
    Dominators doms(cfg);
    LoopInfo loops(cfg, doms);

    ASSERT_EQ(loops.loops().size(), 2u);
    EXPECT_EQ(loops.depth(n.inner_head), 2u);
    EXPECT_EQ(loops.depth(n.outer_head), 1u);
    EXPECT_EQ(loops.depth(n.outer_latch), 1u);
    EXPECT_EQ(loops.depth(n.entry), 0u);
    EXPECT_EQ(loops.depth(n.exit), 0u);

    LoopId inner = loops.innermost(n.inner_head);
    LoopId outer = loops.innermost(n.outer_head);
    ASSERT_NE(inner, noLoop);
    ASSERT_NE(outer, noLoop);
    EXPECT_EQ(loops.loops()[inner].parent, outer);
    EXPECT_EQ(loops.loops()[outer].parent, noLoop);
    EXPECT_TRUE(loops.contains(outer, n.inner_head));
    EXPECT_FALSE(loops.contains(inner, n.outer_latch));
}

TEST(Loops, StraightLineHasNone)
{
    IRFunction func;
    IRBuilder b(func);
    b.startBlock();
    VReg x = func.newIntVReg();
    b.loadImm(x, 1);
    b.halt();
    func.numberInsts();
    Cfg cfg(func);
    Dominators doms(cfg);
    LoopInfo loops(cfg, doms);
    EXPECT_TRUE(loops.loops().empty());
}

TEST(Liveness, LiveAcrossBranch)
{
    Diamond d;
    Cfg cfg(d.func);
    Liveness live(d.func, cfg);
    // x defined in b0, used in b1, b2 and b3 => live into all of them.
    EXPECT_TRUE(live.liveIn(d.b1).contains(d.x));
    EXPECT_TRUE(live.liveIn(d.b2).contains(d.x));
    EXPECT_TRUE(live.liveIn(d.b3).contains(d.x));
    // y defined in both arms, used only in join.
    EXPECT_TRUE(live.liveIn(d.b3).contains(d.y));
    EXPECT_FALSE(live.liveIn(d.b1).contains(d.y));
    // Nothing is live out of the exit block.
    EXPECT_FALSE(live.liveOut(d.b3).contains(d.x));
}

TEST(Liveness, LoopCarriedValueLiveAtHeader)
{
    NestedLoops n;
    Cfg cfg(n.func);
    Liveness live(n.func, cfg);
    // i is decremented in outer latch and tested => live around the
    // outer loop, including through the inner loop.
    EXPECT_TRUE(live.liveIn(n.outer_head).contains(n.i));
    EXPECT_TRUE(live.liveIn(n.inner_head).contains(n.i));
    // j is re-initialized each outer iteration: dead at the outer head.
    EXPECT_FALSE(live.liveIn(n.outer_head).contains(n.j));
    EXPECT_TRUE(live.liveIn(n.inner_head).contains(n.j));
}

TEST(Liveness, PerInstructionQueries)
{
    IRFunction func;
    IRBuilder b(func);
    VReg x = func.newIntVReg();
    VReg y = func.newIntVReg();
    b.startBlock();
    b.loadImm(x, 1);                    // id 0
    b.opImm(Opcode::ADDQ, y, x, 1);     // id 1: last use of x
    b.store(y, y, 0);                   // id 2
    b.halt();                           // id 3
    func.numberInsts();
    Cfg cfg(func);
    Liveness live(func, cfg);

    EXPECT_TRUE(live.liveBefore(1).contains(x));
    EXPECT_FALSE(live.liveAfter(1).contains(x));   // x dead after use
    EXPECT_TRUE(live.liveAfter(1).contains(y));
    EXPECT_FALSE(live.liveBefore(1).contains(y));  // def not yet live
    EXPECT_FALSE(live.liveAfter(2).contains(y));
}

TEST(Liveness, DeadDefStaysDead)
{
    IRFunction func;
    IRBuilder b(func);
    VReg x = func.newIntVReg();
    b.startBlock();
    b.loadImm(x, 1);   // never used
    b.halt();
    func.numberInsts();
    Cfg cfg(func);
    Liveness live(func, cfg);
    EXPECT_FALSE(live.liveAfter(0).contains(x));
}

TEST(VRegSet, BasicOps)
{
    VRegSet s(100);
    EXPECT_FALSE(s.contains(70));
    s.insert(70);
    s.insert(3);
    EXPECT_TRUE(s.contains(70));
    std::vector<VReg> seen;
    s.forEach([&](VReg v) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<VReg>{3, 70}));
    s.erase(3);
    EXPECT_FALSE(s.contains(3));

    VRegSet t(100);
    t.insert(5);
    EXPECT_TRUE(s.unionWith(t));
    EXPECT_FALSE(s.unionWith(t));   // already merged
    EXPECT_TRUE(s.contains(5));
}

TEST(IRFunction, InstIdNavigation)
{
    Diamond d;
    const IRInst &first = d.func.instAt(0);
    EXPECT_EQ(first.op, Opcode::LDA);
    EXPECT_EQ(d.func.blockOf(0), d.b0);
    // Total = 2(b0) + 2(b1) + 1(b2) + 2(b3)
    EXPECT_EQ(d.func.numInsts(), 7u);
    EXPECT_EQ(d.func.blockOf(d.func.numInsts() - 1), d.b3);
}

} // namespace
} // namespace rvp
