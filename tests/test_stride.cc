/**
 * @file
 * Tests for the stride extension (PredSource::Stride): profiler stride
 * detection via majority vote, spec evaluation, the assist-level
 * gating, and an end-to-end runner check.
 */

#include <gtest/gtest.h>

#include "compiler/arch_liveness.hh"
#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "emu/emulator.hh"
#include "profile/reuse_profiler.hh"
#include "sim/runner.hh"
#include "vp/rvp.hh"

namespace rvp
{
namespace
{

TEST(StrideProfile, DetectsConstantStride)
{
    // A counter loop: i takes 100, 99, ..., delta -1 every time.
    IRFunction func;
    IRBuilder b(func);
    VReg base = func.newIntVReg();
    VReg i = func.newIntVReg();
    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.loadImm(i, 100);
    BlockId head = b.startBlock();
    b.store(i, base, 0);
    b.opImm(Opcode::SUBQ, i, i, 1);
    b.branch(Opcode::BNE, i, head);
    b.startBlock();
    b.halt();
    func.numberInsts();

    AllocResult alloc = allocateRegisters(func, AllocConfig{});
    ASSERT_TRUE(alloc.success);
    LowerResult low = lower(func, alloc);
    auto live = archLiveBefore(func, alloc, low);
    ReuseProfiler profiler(low.program, live);
    Emulator emu(low.program);
    DynInst di;
    while (true) {
        ArchState pre = emu.state();
        if (!emu.step(di))
            break;
        profiler.observe(di, pre);
    }
    ReuseProfile profile = profiler.finish();

    // Find the subq.
    std::uint32_t subq = UINT32_MAX;
    for (std::uint32_t s = 0; s < low.program.size(); ++s)
        if (low.program.at(s).op == Opcode::SUBQ)
            subq = s;
    ASSERT_NE(subq, UINT32_MAX);

    const InstReuseCounts &c = profile.counts[subq];
    EXPECT_EQ(c.strideValue, -1);
    EXPECT_GT(c.strideHits, 90u);
    EXPECT_LT(c.lastValueHits, 5u);   // never repeats

    // Only the stride level may exploit it.
    StaticPredSpec lv_spec = profile.bestSpec(subq, AssistLevel::DeadLv);
    EXPECT_NE(lv_spec.source, PredSource::Stride);
    StaticPredSpec stride_spec =
        profile.bestSpec(subq, AssistLevel::DeadLvStride);
    EXPECT_EQ(stride_spec.source, PredSource::Stride);
    EXPECT_EQ(stride_spec.stride, -1);
    EXPECT_GT(profile.bestRate(subq, AssistLevel::DeadLvStride), 0.9);
}

TEST(StrideSpec, EvaluatorTracksStride)
{
    std::vector<StaticPredSpec> specs(1);
    specs[0].source = PredSource::Stride;
    specs[0].stride = 4;
    SpecEvaluator eval(std::move(specs));

    DynInst di;
    di.staticIndex = 0;
    di.dest = 3;
    di.op = Opcode::ADDQ;
    di.newValue = 100;
    EXPECT_FALSE(eval.wouldBeCorrect(di, {}));   // no history yet
    di.newValue = 104;
    EXPECT_TRUE(eval.wouldBeCorrect(di, {}));    // 100 + 4
    di.newValue = 108;
    EXPECT_TRUE(eval.wouldBeCorrect(di, {}));
    di.newValue = 108;                            // stride broken
    EXPECT_FALSE(eval.wouldBeCorrect(di, {}));
}

TEST(StrideSpec, NegativeStride)
{
    std::vector<StaticPredSpec> specs(1);
    specs[0].source = PredSource::Stride;
    specs[0].stride = -8;
    SpecEvaluator eval(std::move(specs));
    DynInst di;
    di.staticIndex = 0;
    di.dest = 3;
    di.op = Opcode::ADDQ;
    di.newValue = 64;
    eval.wouldBeCorrect(di, {});
    di.newValue = 56;
    EXPECT_TRUE(eval.wouldBeCorrect(di, {}));
}

TEST(StrideRunner, EndToEndGainsCoverage)
{
    // m88ksim's guest counter (r7) strides by one per guest loop: the
    // stride level must add coverage on top of dead+lv.
    ExperimentConfig lv;
    lv.workload = "m88ksim";
    lv.core.maxInsts = 40'000;
    lv.profileInsts = 40'000;
    lv.scheme = VpScheme::DynamicRvp;
    lv.assist = AssistLevel::DeadLv;
    lv.loadsOnly = false;
    ExperimentConfig stride = lv;
    stride.assist = AssistLevel::DeadLvStride;

    ExperimentResult r_lv = runExperiment(lv);
    ExperimentResult r_stride = runExperiment(stride);
    EXPECT_GE(r_stride.predictedFrac, r_lv.predictedFrac);
    EXPECT_GE(r_stride.committed, 40'000u);
}

} // namespace
} // namespace rvp
