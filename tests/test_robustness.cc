/**
 * @file
 * Robustness tests: watchdog deadlines, retry-with-degradation, stream
 * integrity verification, the crash-safe run journal, and sweep_all's
 * kill-and-resume behaviour (exercised on the real binary via
 * fork/exec/SIGKILL). Every fault class the injector can produce
 * (sim/faultinject.hh) must end in either a recorded failure or a
 * degraded-but-bit-exact result — never a crash, a hang, or a silently
 * wrong statistic.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.hh"
#include "sim/faultinject.hh"
#include "sim/journal.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "stream/stream.hh"
#include "uarch/core.hh"
#include "vp/oracle.hh"

namespace rvp
{
namespace
{

ExperimentConfig
smallConfig(const std::string &workload)
{
    ExperimentConfig config;
    config.workload = workload;
    config.core.maxInsts = 12'000;
    config.profileInsts = 12'000;
    return config;
}

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b,
                const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.committed, b.committed) << label;
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc) << label;
    EXPECT_DOUBLE_EQ(a.predictedFrac, b.predictedFrac) << label;
    EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy) << label;
    EXPECT_EQ(a.stats.values().size(), b.stats.values().size()) << label;
    for (const auto &[name, value] : a.stats.values())
        EXPECT_DOUBLE_EQ(value, b.stats.get(name)) << label << ": " << name;
}

/** A value-writing loop long enough to feed capture and the core. */
Program
loopProgram(std::int32_t iters)
{
    Program prog;
    StaticInst init;
    init.op = Opcode::LDA;
    init.rc = 1;
    init.ra = zeroReg;
    init.useImm = true;
    init.imm = iters;
    prog.insts.push_back(init);
    StaticInst add;
    add.op = Opcode::ADDQ;
    add.rc = 2;
    add.ra = 2;
    add.rb = zeroReg;
    prog.insts.push_back(add);
    StaticInst dec;
    dec.op = Opcode::SUBQ;
    dec.rc = 1;
    dec.ra = 1;
    dec.useImm = true;
    dec.imm = 1;
    prog.insts.push_back(dec);
    StaticInst br;
    br.op = Opcode::BNE;
    br.ra = 1;
    br.imm = -3;
    prog.insts.push_back(br);
    StaticInst halt;
    halt.op = Opcode::HALT;
    prog.insts.push_back(halt);
    return prog;
}

// ---------------------------------------------------------------------
// RunDeadline
// ---------------------------------------------------------------------

TEST(Deadline, GenerousBudgetNeitherExpiresNorThrows)
{
    RunDeadline deadline(3600.0);
    EXPECT_FALSE(deadline.expired());
    EXPECT_NO_THROW(deadline.check("test"));
}

TEST(Deadline, ExpiredBudgetThrowsWithTheCheckSite)
{
    RunDeadline deadline(-1.0);
    EXPECT_TRUE(deadline.expired());
    try {
        deadline.check("unit test site");
        FAIL() << "check() must throw";
    } catch (const DeadlineExceeded &e) {
        EXPECT_NE(std::string(e.what()).find("unit test site"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("deadline exceeded"),
                  std::string::npos);
    }
}

TEST(Deadline, ExpiredDeadlineAbortsRunExperiment)
{
    RunDeadline expired(-1.0);
    RunContext context;
    context.deadline = &expired;
    EXPECT_THROW(runExperiment(smallConfig("go"), context),
                 DeadlineExceeded);
}

TEST(Deadline, ExpiredDeadlineAbortsTheCoreLoop)
{
    Program prog = loopProgram(50'000);
    VpConfig vp;
    auto predictor = makePredictor(vp, prog);
    CoreParams params = CoreParams::table1();
    params.maxInsts = 100'000;
    RunDeadline expired(-1.0);
    Core core(params, prog, *predictor, nullptr, nullptr, &expired);
    EXPECT_THROW(core.run(), DeadlineExceeded);
}

TEST(Deadline, NullDeadlineLeavesResultsBitIdentical)
{
    // The watchdog-off fast path must not perturb any statistic: the
    // golden-stat snapshot pins the default path globally, and this
    // pins the seam directly.
    ExperimentConfig config = smallConfig("go");
    ExperimentResult with_null_seam = runExperiment(config, RunContext{});
    ExperimentResult plain = runExperiment(config);
    expectIdentical(with_null_seam, plain, "null deadline seam");

    // A generous (non-null, never-firing) deadline is also invisible.
    RunDeadline generous(3600.0);
    RunContext context;
    context.deadline = &generous;
    ExperimentResult with_deadline = runExperiment(config, context);
    expectIdentical(with_deadline, plain, "armed-but-unfired deadline");
}

// ---------------------------------------------------------------------
// Retry with graceful degradation (sweep scheduler)
// ---------------------------------------------------------------------

TEST(Retry, TransientThrowIsRetriedDegradedWithExactStats)
{
    std::vector<ExperimentConfig> configs;
    configs.push_back(smallConfig("go"));
    configs.push_back(smallConfig("mgrid"));
    configs.push_back(smallConfig("go"));

    FaultPlan plan;
    plan.faults[1] = FaultKind::Throw;   // transient: attempt 0 only
    auto log = std::make_shared<FaultLog>();

    SweepOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    opts.retryBackoff = 0.0;
    opts.runFn = makeFaultInjectingRunFn(plan, log);
    std::vector<ExperimentResult> results = runSweep(configs, opts);

    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(log->fired.load(), 1u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_FALSE(results[i].failed) << i;
        EXPECT_EQ(results[i].retries, i == 1 ? 1u : 0u) << i;
        EXPECT_EQ(results[i].degraded, i == 1) << i;
    }
    // The degraded profile only bypasses observers (stream replay,
    // tracing, histograms), so the retried run's stats are bit-exact.
    expectIdentical(results[1], runExperiment(configs[1]),
                    "degraded retry vs clean run");
}

TEST(Retry, PersistentThrowEndsAsARecordedFailure)
{
    std::vector<ExperimentConfig> configs;
    configs.push_back(smallConfig("go"));
    configs.push_back(smallConfig("go"));

    FaultPlan plan;
    plan.faults[0] = FaultKind::Throw;
    plan.persistent = true;
    auto log = std::make_shared<FaultLog>();

    SweepOptions opts;
    opts.jobs = 1;
    opts.progress = false;
    opts.retryBackoff = 0.0;
    opts.runFn = makeFaultInjectingRunFn(plan, log);
    std::vector<ExperimentResult> results = runSweep(configs, opts);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(log->fired.load(), 2u);   // initial attempt + retry
    EXPECT_TRUE(results[0].failed);
    EXPECT_EQ(results[0].retries, 1u);
    EXPECT_NE(results[0].error.find("injected fault"), std::string::npos);
    EXPECT_FALSE(results[1].failed);
    expectIdentical(results[1], runExperiment(configs[1]),
                    "unfaulted neighbour");
}

TEST(Retry, PersistentDeadlineOverrunIsRecordedNotWedged)
{
    // The injected run sleeps past its watchdog on every attempt, so
    // both attempts fail with DeadlineExceeded at the run-start check
    // (timing-robust: the sleep strictly exceeds the budget and the
    // simulation itself never starts). The sweep completes anyway.
    std::vector<ExperimentConfig> configs;
    configs.push_back(smallConfig("go"));
    configs.push_back(smallConfig("go"));

    FaultPlan plan;
    plan.faults[0] = FaultKind::SleepPastDeadline;
    plan.sleepSeconds = 0.6;
    plan.persistent = true;
    auto log = std::make_shared<FaultLog>();

    SweepOptions opts;
    opts.jobs = 1;
    opts.progress = false;
    opts.retryBackoff = 0.0;
    opts.runDeadline = 0.25;
    // Prewarm compile/profile/stream into the sweep's cache with no
    // deadline before the first timed attempt: run 0 faults at entry
    // and never builds anything, so without this the unfaulted run 1
    // would pay the whole toolchain under the tight watchdog and fail
    // spuriously on slow or sanitizer-instrumented hosts. The timed
    // attempts then exercise exactly what the test is about: the
    // watchdog catching the injected sleep, not build latency.
    auto inject = makeFaultInjectingRunFn(plan, log);
    bool prewarmed = false;   // jobs == 1, so a plain bool is safe
    opts.runFn = [&inject, &prewarmed](const ExperimentConfig &config,
                                       WorkloadCache &cache,
                                       const RunContext &context) {
        if (!prewarmed) {
            prewarmed = true;
            RunContext warm;
            warm.cache = &cache;
            runExperiment(config, warm);
        }
        return inject(config, cache, context);
    };
    std::vector<ExperimentResult> results = runSweep(configs, opts);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].failed);
    EXPECT_EQ(results[0].retries, 1u);
    EXPECT_NE(results[0].error.find("deadline exceeded"),
              std::string::npos);
    EXPECT_FALSE(results[1].failed);
}

TEST(Retry, FailedSharedBuildIsEvictedNotPoisoned)
{
    // Regression guard for the memoization layer: a compile/profile
    // build that throws (here: an expired deadline) used to leave its
    // exception cached in the shared_future forever, so every later
    // run of the workload inherited the failure. The entry is now
    // evicted before the exception is published.
    WorkloadCache cache;
    RunDeadline expired(-1.0);
    EXPECT_THROW(cache.profiled("go", InputSet::Train, 5'000, &expired),
                 DeadlineExceeded);
    // Clean rebuild with no deadline: must succeed, not rethrow.
    auto profile = cache.profiled("go", InputSet::Train, 5'000);
    EXPECT_NE(profile, nullptr);
}

// ---------------------------------------------------------------------
// Stream capture OOM degradation
// ---------------------------------------------------------------------

TEST(CaptureOom, FallsBackToLiveHalvesBudgetAndStaysExact)
{
    constexpr std::uint64_t budget = 1u << 20;
    WorkloadCache cache(budget);
    RunContext context;
    context.cache = &cache;

    ExperimentConfig config = smallConfig("go");
    ExperimentResult faulted;
    {
        CaptureFaultGuard guard;
        armCaptureBadAlloc(64);   // capture dies 64 instructions in
        faulted = runExperiment(config, context);
    }

    WorkloadCacheStats stats = cache.stats();
    EXPECT_EQ(stats.streamCaptureOoms, 1u);
    EXPECT_EQ(cache.streamBudgetBytes(), budget / 2);
    EXPECT_EQ(stats.streamBytesBuilt, 0u);

    // The run recovered via live emulation: bit-exact result.
    expectIdentical(faulted, runExperiment(config), "oom fallback");

    // The key is pinned live: no further capture attempt (which would
    // throw again were the hook still armed — it is not, so a rebuild
    // would instead show up as streamBytesBuilt).
    ExperimentResult again = runExperiment(config, context);
    EXPECT_EQ(cache.stats().streamBytesBuilt, 0u);
    expectIdentical(again, faulted, "pinned-live rerun");
}

TEST(CaptureOom, InjectedBadAllocInASweepDegradesWithoutFailing)
{
    // The injector arms the capture OOM hook for run 0's first
    // attempt only (jobs=1: the hook is process-global). The capture
    // throws bad_alloc, the cache halves its budget and pins the key
    // live, and the run itself completes via live emulation without
    // even needing the retry.
    std::vector<ExperimentConfig> configs;
    configs.push_back(smallConfig("go"));
    configs.push_back(smallConfig("go"));
    configs[1].scheme = VpScheme::Lvp;

    FaultPlan plan;
    plan.faults[0] = FaultKind::BadAlloc;
    plan.oomAfterInsts = 0;
    auto log = std::make_shared<FaultLog>();

    SweepOptions opts;
    opts.jobs = 1;
    opts.progress = false;
    opts.retryBackoff = 0.0;
    opts.runFn = makeFaultInjectingRunFn(plan, log);
    SweepReport report;
    std::vector<ExperimentResult> results =
        runSweep(configs, opts, &report);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(log->fired.load(), 1u);
    EXPECT_EQ(report.cache.streamCaptureOoms, 1u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_FALSE(results[i].failed) << i;
        expectIdentical(results[i], runExperiment(configs[i]),
                        "bad_alloc sweep run " + std::to_string(i));
    }
}

TEST(CaptureOom, ConcurrentArmDisarmAndCaptureIsRaceFree)
{
    // Regression for the capture hook being a bare static function
    // pointer: sweep workers capture streams while a test arms or
    // disarms the hook from another thread, so the hook must be an
    // atomic (this test races the two on purpose — TSan flags the old
    // plain load/store in the capture loop). The armed threshold sits
    // far past the capture length, so a capture that observes the
    // armed hook still never throws.
    Program prog = loopProgram(400);
    std::atomic<bool> stop{false};
    std::thread toggler([&] {
        while (!stop.load()) {
            armCaptureBadAlloc(
                std::numeric_limits<std::uint64_t>::max());
            disarmCaptureFaults();
        }
    });
    for (int i = 0; i < 100; ++i) {
        auto stream = CapturedStream::capture(prog, 2'000);
        ASSERT_NE(stream, nullptr);
    }
    stop.store(true);
    toggler.join();
    disarmCaptureFaults();
}

// ---------------------------------------------------------------------
// Stream integrity
// ---------------------------------------------------------------------

TEST(StreamIntegrity, FreshCaptureVerifiesAndAttaches)
{
    auto stream = CapturedStream::capture(loopProgram(2'000), 4'000);
    ASSERT_NE(stream, nullptr);
    EXPECT_NO_THROW(stream->verifyIntegrity());
    EXPECT_NO_THROW(StreamCursor{stream});
}

TEST(StreamIntegrity, FlippedLaneByteFailsCursorAttach)
{
    for (unsigned lane : {0u, 1u, 3u}) {   // idx / value / taken
        auto stream = CapturedStream::capture(loopProgram(2'000), 4'000);
        ASSERT_NE(stream, nullptr);
        corruptStreamForTest(*stream, lane, 0, 0x40);
        EXPECT_THROW(StreamCursor{stream}, StreamIntegrityError)
            << "lane " << lane;
        EXPECT_THROW(stream->verifyIntegrity(), StreamIntegrityError)
            << "lane " << lane;
    }
}

TEST(StreamIntegrity, TruncatedLaneFailsCursorAttach)
{
    auto stream = CapturedStream::capture(loopProgram(2'000), 4'000);
    ASSERT_NE(stream, nullptr);
    truncateStreamForTest(*stream, 0, 1);
    EXPECT_THROW(StreamCursor{stream}, StreamIntegrityError);
}

TEST(StreamIntegrity, CorruptCachedStreamFallsBackToLiveInTheSweep)
{
    // Run 0 captures the stream; the injector corrupts it before run 1
    // attaches. Run 1 must detect the corruption at attach, drop the
    // entry, count it, and produce bit-exact results via live
    // emulation — with no failure and no retry.
    std::vector<ExperimentConfig> configs;
    configs.push_back(smallConfig("go"));
    configs.push_back(smallConfig("go"));
    configs[1].scheme = VpScheme::Lvp;   // same stream key, distinct run

    FaultPlan plan;
    plan.faults[1] = FaultKind::CorruptStream;
    auto log = std::make_shared<FaultLog>();

    SweepOptions opts;
    opts.jobs = 1;   // deterministic capture-then-corrupt ordering
    opts.progress = false;
    opts.runFn = makeFaultInjectingRunFn(plan, log);
    SweepReport report;
    std::vector<ExperimentResult> results =
        runSweep(configs, opts, &report);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(log->fired.load(), 1u);
    EXPECT_EQ(report.cache.streamIntegrityFailures, 1u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_FALSE(results[i].failed) << i;
        EXPECT_EQ(results[i].retries, 0u) << i;
        expectIdentical(results[i], runExperiment(configs[i]),
                        "corrupt-stream fallback run " + std::to_string(i));
    }
}

TEST(StreamIntegrity, TruncatedCachedStreamFallsBackToLiveInTheSweep)
{
    std::vector<ExperimentConfig> configs;
    configs.push_back(smallConfig("mgrid"));
    configs.push_back(smallConfig("mgrid"));

    FaultPlan plan;
    plan.faults[1] = FaultKind::TruncateStream;
    plan.corruptLane = 0;

    SweepOptions opts;
    opts.jobs = 1;
    opts.progress = false;
    opts.runFn = makeFaultInjectingRunFn(plan, nullptr);
    SweepReport report;
    std::vector<ExperimentResult> results =
        runSweep(configs, opts, &report);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(report.cache.streamIntegrityFailures, 1u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_FALSE(results[1].failed);
    expectIdentical(results[1], runExperiment(configs[1]),
                    "truncated-stream fallback");
}

// ---------------------------------------------------------------------
// Journal and atomic-write primitives
// ---------------------------------------------------------------------

struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/rvp_robust_XXXXXX";
        char *dir = mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        path = dir ? dir : "";
    }
    ~TempDir()
    {
        if (!path.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(path, ec);
        }
    }
    std::string file(const std::string &name) const
    {
        return path + "/" + name;
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

TEST(AtomicWrite, WriteFileAtomicCreatesAndReplaces)
{
    TempDir dir;
    std::string path = dir.file("out.json");
    EXPECT_TRUE(writeFileAtomic(path, "first\n"));
    EXPECT_EQ(readFile(path), "first\n");
    EXPECT_TRUE(writeFileAtomic(path, "second\n"));
    EXPECT_EQ(readFile(path), "second\n");
    // No temp-file litter left beside the target.
    std::size_t entries = 0;
    for ([[maybe_unused]] const auto &e :
         std::filesystem::directory_iterator(dir.path))
        ++entries;
    EXPECT_EQ(entries, 1u);
}

TEST(AtomicWrite, WriteFileAtomicReportsUnwritableTargets)
{
    EXPECT_FALSE(writeFileAtomic("/nonexistent-dir-zzz/x.json", "data"));
}

TEST(AtomicWrite, WriteFileAtomicSyncsTheParentDirectoryEntry)
{
    // Regression for the missing directory fsync after the rename:
    // the data fsync alone leaves the *name* undurable, so a crash
    // right after writeFileAtomic() returned could resurrect the old
    // contents. Userland can't observe the fsync itself, so this pins
    // the code paths it added: a nested parent directory, and the "."
    // parent for a slashless path (both must open-and-sync cleanly
    // and still replace atomically with no temp litter).
    TempDir dir;
    std::string nested = dir.path + "/sub";
    ASSERT_TRUE(std::filesystem::create_directory(nested));
    std::string path = nested + "/out.json";
    EXPECT_TRUE(writeFileAtomic(path, "old\n"));
    EXPECT_TRUE(writeFileAtomic(path, "new\n"));
    EXPECT_EQ(readFile(path), "new\n");
    std::size_t entries = 0;
    for ([[maybe_unused]] const auto &e :
         std::filesystem::directory_iterator(nested))
        ++entries;
    EXPECT_EQ(entries, 1u);

    // Slashless target: the parent is the working directory.
    std::filesystem::path old_cwd = std::filesystem::current_path();
    std::filesystem::current_path(dir.path);
    EXPECT_TRUE(writeFileAtomic("bare.json", "bare\n"));
    EXPECT_EQ(readFile("bare.json"), "bare\n");
    std::filesystem::current_path(old_cwd);
}

TEST(AtomicWrite, AppendLineAtomicAccumulatesWholeLines)
{
    TempDir dir;
    std::string path = dir.file("bench.json");
    EXPECT_TRUE(appendLineAtomic(path, "{\"row\": 1}"));
    EXPECT_TRUE(appendLineAtomic(path, "{\"row\": 2}"));
    EXPECT_EQ(readFile(path), "{\"row\": 1}\n{\"row\": 2}\n");
}

JournalRecord
sampleRecord(const std::string &key, bool failed)
{
    JournalRecord rec;
    rec.key = key;
    rec.figure = "fig05";
    rec.variant = "drvp";
    rec.workload = "go";
    rec.runSeconds = 0.1 + 0.2;   // not exactly representable
    rec.result.ipc = 1.0 / 3.0;
    rec.result.cycles = 123'456'789'012'345ull;
    rec.result.committed = 400'000;
    rec.result.predictedFrac = 0.12345678901234567;
    rec.result.accuracy = 0.99999999999999989;
    rec.result.hostSeconds = 2.5e-3;
    rec.result.kips = 1234.5678901234567;
    rec.result.failed = failed;
    rec.result.error = failed ? "synthetic \"quoted\" error" : "";
    rec.result.retries = failed ? 1 : 0;
    rec.result.degraded = failed;
    rec.result.stats.set("core.cycles", 7.0);
    rec.result.stats.set("vp.accuracy", 0.3333333333333333);
    return rec;
}

TEST(Journal, RecordsRoundTripBitExactly)
{
    TempDir dir;
    std::string path = dir.file("sweep.journal");
    {
        RunJournal journal(path);
        ASSERT_TRUE(journal.ok());
        journal.appendSweepHeader("cafebabe00000001");
        journal.append(sampleRecord("k1", false));
        journal.append(sampleRecord("k2", true));
    }
    RunJournal::Loaded loaded = RunJournal::load(path);
    EXPECT_EQ(loaded.sweepHash, "cafebabe00000001");
    EXPECT_EQ(loaded.skippedLines, 0u);
    ASSERT_EQ(loaded.runs.size(), 2u);

    JournalRecord want = sampleRecord("k2", true);
    const JournalRecord &got = loaded.runs.at("k2");
    EXPECT_EQ(got.figure, want.figure);
    EXPECT_EQ(got.variant, want.variant);
    EXPECT_EQ(got.workload, want.workload);
    // %.17g round-trips doubles exactly: EXPECT_EQ, not NEAR.
    EXPECT_EQ(got.runSeconds, want.runSeconds);
    EXPECT_EQ(got.result.ipc, want.result.ipc);
    EXPECT_EQ(got.result.cycles, want.result.cycles);
    EXPECT_EQ(got.result.committed, want.result.committed);
    EXPECT_EQ(got.result.predictedFrac, want.result.predictedFrac);
    EXPECT_EQ(got.result.accuracy, want.result.accuracy);
    EXPECT_EQ(got.result.hostSeconds, want.result.hostSeconds);
    EXPECT_EQ(got.result.kips, want.result.kips);
    EXPECT_EQ(got.result.failed, want.result.failed);
    EXPECT_EQ(got.result.error, want.result.error);
    EXPECT_EQ(got.result.retries, want.result.retries);
    EXPECT_EQ(got.result.degraded, want.result.degraded);
    EXPECT_EQ(got.result.stats.values(), want.result.stats.values());
}

TEST(Journal, TornTrailingLineIsSkippedNotFatal)
{
    TempDir dir;
    std::string path = dir.file("sweep.journal");
    {
        RunJournal journal(path);
        journal.appendSweepHeader("feedface00000001");
        journal.append(sampleRecord("k1", false));
        journal.append(sampleRecord("k2", false));
    }
    // Simulate a SIGKILL mid-append: chop the file mid-way through the
    // final record.
    std::string contents = readFile(path);
    ASSERT_FALSE(contents.empty());
    std::string torn = contents.substr(0, contents.size() - 40);
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << torn;
    }
    RunJournal::Loaded loaded = RunJournal::load(path);
    EXPECT_EQ(loaded.sweepHash, "feedface00000001");
    EXPECT_EQ(loaded.skippedLines, 1u);
    ASSERT_EQ(loaded.runs.size(), 1u);
    EXPECT_EQ(loaded.runs.count("k1"), 1u);
}

TEST(Journal, DuplicateKeysKeepTheLaterRecord)
{
    TempDir dir;
    std::string path = dir.file("sweep.journal");
    {
        RunJournal journal(path);
        journal.append(sampleRecord("k1", true));    // failed first try
        journal.append(sampleRecord("k1", false));   // resumed retry won
    }
    RunJournal::Loaded loaded = RunJournal::load(path);
    ASSERT_EQ(loaded.runs.size(), 1u);
    EXPECT_FALSE(loaded.runs.at("k1").result.failed);
}

TEST(Journal, MissingFileLoadsEmpty)
{
    RunJournal::Loaded loaded =
        RunJournal::load("/nonexistent-dir-zzz/nope.journal");
    EXPECT_TRUE(loaded.sweepHash.empty());
    EXPECT_TRUE(loaded.runs.empty());
    EXPECT_EQ(loaded.skippedLines, 0u);
}

// ---------------------------------------------------------------------
// sweep_all kill-and-resume (subprocess tests on the real binary)
// ---------------------------------------------------------------------

pid_t
spawnSweepAll(const std::vector<std::string> &args)
{
    pid_t pid = fork();
    if (pid != 0)
        return pid;
    // Child: silence it and exec the real binary.
    int devnull = open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
        dup2(devnull, 1);
        dup2(devnull, 2);
        close(devnull);
    }
    std::vector<char *> argv;
    static const char *bin = RVP_SWEEP_ALL_BIN;
    argv.push_back(const_cast<char *>(bin));
    for (const std::string &arg : args)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);
    execv(bin, argv.data());
    _exit(127);
}

/** Blocking reap; exit status, or -signal when killed. */
int
waitExit(pid_t pid)
{
    int status = 0;
    if (waitpid(pid, &status, 0) != pid)
        return -9999;
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return -WTERMSIG(status);
    return -9998;
}

std::size_t
countJournalRuns(const std::string &path)
{
    std::ifstream is(path);
    std::size_t count = 0;
    std::string line;
    while (std::getline(is, line))
        if (line.find("\"type\": \"run\"") != std::string::npos)
            ++count;
    return count;
}

/** A small (10-run) grid with deterministic, timing-free output. */
std::vector<std::string>
stableSweepArgs(const std::string &out)
{
    return {"--workloads", "go,mgrid", "--figures",        "fig05",
            "--insts",     "12000",    "--profile-insts",  "12000",
            "--jobs",      "2",        "--quiet",          "--stable-output",
            "--bench-out", "",         "--out",            out};
}

/** Start a sweep, SIGKILL it once >= targetRuns are journaled (or let
 *  it win the race and finish), then --resume to completion. */
void
killAndResume(const std::string &out, std::size_t targetRuns)
{
    std::string journal = out + ".journal";
    pid_t pid = spawnSweepAll(stableSweepArgs(out));
    ASSERT_GT(pid, 0);
    bool reaped = false;
    for (int spin = 0; spin < 150'000; ++spin) {   // <= ~5 min
        int status = 0;
        pid_t r = waitpid(pid, &status, WNOHANG);
        if (r == pid) {
            reaped = true;   // finished before the kill: still valid
            break;
        }
        if (countJournalRuns(journal) >= targetRuns) {
            kill(pid, SIGKILL);
            break;
        }
        usleep(2'000);
    }
    if (!reaped) {
        kill(pid, SIGKILL);   // idempotent if already sent
        waitExit(pid);
    }

    std::vector<std::string> resume_args = stableSweepArgs(out);
    resume_args.push_back("--resume");
    EXPECT_EQ(waitExit(spawnSweepAll(resume_args)), 0);
}

TEST(SweepAllResume, KilledSweepResumesToByteIdenticalOutput)
{
    TempDir dir;
    std::string out = dir.file("results.json");

    // Reference: one uninterrupted sweep.
    ASSERT_EQ(waitExit(spawnSweepAll(stableSweepArgs(out))), 0);
    std::string reference = readFile(out);
    ASSERT_FALSE(reference.empty());
    // A fully successful sweep cleans up its journal.
    EXPECT_FALSE(std::filesystem::exists(out + ".journal"));

    std::filesystem::remove(out);
    killAndResume(out, 2);
    EXPECT_EQ(readFile(out), reference)
        << "resumed output must be byte-identical to the uninterrupted "
           "sweep";
    EXPECT_FALSE(std::filesystem::exists(out + ".journal"));
}

TEST(SweepAllResume, KillResumeSmokeLoopStaysByteIdentical)
{
    // S5: kill at five different points in the sweep's lifetime; every
    // resume must converge to the same bytes.
    TempDir dir;
    std::string out = dir.file("results.json");
    ASSERT_EQ(waitExit(spawnSweepAll(stableSweepArgs(out))), 0);
    std::string reference = readFile(out);
    ASSERT_FALSE(reference.empty());

    for (std::size_t target = 1; target <= 5; ++target) {
        std::filesystem::remove(out);
        killAndResume(out, target * 2);
        EXPECT_EQ(readFile(out), reference) << "kill point " << target;
        EXPECT_FALSE(std::filesystem::exists(out + ".journal"))
            << "kill point " << target;
    }
}

TEST(SweepAllResume, MismatchedJournalIsRefused)
{
    TempDir dir;
    std::string out = dir.file("results.json");
    // Forge a journal from a "different" sweep configuration.
    {
        RunJournal journal(out + ".journal");
        journal.appendSweepHeader("0123456789abcdef");
    }
    std::vector<std::string> args = stableSweepArgs(out);
    args.push_back("--resume");
    EXPECT_NE(waitExit(spawnSweepAll(args)), 0);
    EXPECT_FALSE(std::filesystem::exists(out));
}

TEST(SweepAllFailures, DeadlineFailuresExitNonzeroAndResumeRecovers)
{
    TempDir dir;
    std::string out = dir.file("results.json");

    // An impossible per-run deadline: every run fails (after its
    // degraded retry), the exit code is nonzero, the failure rows are
    // recorded, and the journal survives for --resume.
    std::vector<std::string> failing = {
        "--workloads", "go",    "--figures",       "fig05",
        "--insts",     "12000", "--profile-insts", "12000",
        "--jobs",      "2",     "--quiet",         "--stable-output",
        "--bench-out", "",      "--out",           out,
        "--run-deadline", "0.000001"};
    EXPECT_EQ(waitExit(spawnSweepAll(failing)), 2);
    std::string report = readFile(out);
    EXPECT_NE(report.find("\"failed\": true"), std::string::npos);
    EXPECT_NE(report.find("deadline exceeded"), std::string::npos);
    EXPECT_NE(report.find("\"retries\": 1"), std::string::npos);
    EXPECT_TRUE(std::filesystem::exists(out + ".journal"));

    // --keep-going turns the same failures into exit 0.
    std::vector<std::string> keep_going = failing;
    keep_going.push_back("--keep-going");
    EXPECT_EQ(waitExit(spawnSweepAll(keep_going)), 0);

    // Resuming without the deadline re-runs exactly the failed runs
    // and completes the sweep (journal cleaned up on full success).
    std::vector<std::string> resume = {
        "--workloads", "go",    "--figures",       "fig05",
        "--insts",     "12000", "--profile-insts", "12000",
        "--jobs",      "2",     "--quiet",         "--stable-output",
        "--bench-out", "",      "--out",           out,
        "--resume"};
    EXPECT_EQ(waitExit(spawnSweepAll(resume)), 0);
    std::string recovered = readFile(out);
    EXPECT_EQ(recovered.find("\"failed\": true"), std::string::npos);
    EXPECT_FALSE(std::filesystem::exists(out + ".journal"));
}

} // namespace
} // namespace rvp
