/**
 * @file
 * Unit tests for the functional emulator: per-opcode semantics, the
 * DynInst record fields the predictors depend on (old destination
 * value, effective address, branch outcome), and sparse memory.
 */

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "emu/emulator.hh"
#include "isa/inst.hh"

namespace rvp
{
namespace
{

StaticInst
op3(Opcode op, RegIndex rc, RegIndex ra, RegIndex rb)
{
    StaticInst si;
    si.op = op;
    si.rc = rc;
    si.ra = ra;
    si.rb = rb;
    return si;
}

StaticInst
opImm(Opcode op, RegIndex rc, RegIndex ra, std::int32_t imm)
{
    StaticInst si;
    si.op = op;
    si.rc = rc;
    si.ra = ra;
    si.useImm = true;
    si.imm = imm;
    return si;
}

StaticInst
lda(RegIndex rc, RegIndex ra, std::int32_t imm)
{
    return opImm(Opcode::LDA, rc, ra, imm);
}

StaticInst
mem(Opcode op, RegIndex reg, RegIndex base, std::int32_t imm)
{
    StaticInst si;
    si.op = op;
    si.ra = base;
    si.imm = imm;
    if (si.info().isStore)
        si.rb = reg;
    else
        si.rc = reg;
    return si;
}

StaticInst
branch(Opcode op, RegIndex ra, std::int32_t disp)
{
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.imm = disp;
    return si;
}

StaticInst
halt()
{
    StaticInst si;
    si.op = Opcode::HALT;
    return si;
}

/** Run prog to completion (or max_steps), returning all DynInsts. */
std::vector<DynInst>
run(const Program &prog, std::size_t max_steps = 10000)
{
    Emulator emu(prog);
    std::vector<DynInst> out;
    DynInst di;
    while (out.size() < max_steps && emu.step(di))
        out.push_back(di);
    return out;
}

Program
progOf(std::vector<StaticInst> insts)
{
    Program prog;
    prog.insts = std::move(insts);
    return prog;
}

TEST(SparseMemory, ZeroFilledAndRoundTrips)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read64(0x1000), 0u);
    EXPECT_EQ(mem.residentPages(), 0u);
    mem.write64(0x1000, 0xdeadbeefcafef00dull);
    EXPECT_EQ(mem.read64(0x1000), 0xdeadbeefcafef00dull);
    EXPECT_EQ(mem.read64(0x1008), 0u);
    EXPECT_EQ(mem.residentPages(), 1u);
}

TEST(SparseMemory, CrossPageIndependent)
{
    SparseMemory mem;
    mem.write64(0x0ff8, 1);
    mem.write64(0x1000, 2);
    EXPECT_EQ(mem.read64(0x0ff8), 1u);
    EXPECT_EQ(mem.read64(0x1000), 2u);
    EXPECT_EQ(mem.residentPages(), 2u);
}

TEST(SparseMemory, ByteAccess)
{
    SparseMemory mem;
    mem.write8(0x2003, 0xab);
    EXPECT_EQ(mem.read8(0x2003), 0xab);
    EXPECT_EQ(mem.read64(0x2000), 0xab000000ull);   // little-endian byte 3
}

TEST(Emulator, IntegerArithmetic)
{
    auto prog = progOf({
        lda(1, zeroReg, 10),
        lda(2, zeroReg, 3),
        op3(Opcode::ADDQ, 3, 1, 2),   // 13
        op3(Opcode::SUBQ, 4, 1, 2),   // 7
        op3(Opcode::MULQ, 5, 1, 2),   // 30
        opImm(Opcode::SLL, 6, 2, 4),  // 48
        opImm(Opcode::SRL, 7, 1, 1),  // 5
        halt(),
    });
    Emulator emu(prog);
    DynInst di;
    while (emu.step(di)) {}
    EXPECT_EQ(emu.state().read(3), 13u);
    EXPECT_EQ(emu.state().read(4), 7u);
    EXPECT_EQ(emu.state().read(5), 30u);
    EXPECT_EQ(emu.state().read(6), 48u);
    EXPECT_EQ(emu.state().read(7), 5u);
}

TEST(Emulator, SignedOps)
{
    auto prog = progOf({
        lda(1, zeroReg, -8),
        opImm(Opcode::SRA, 2, 1, 1),       // -4
        opImm(Opcode::CMPLT, 3, 1, 0),     // -8 < 0 -> 1
        opImm(Opcode::CMPLE, 4, 1, -8),    // -8 <= -8 -> 1
        opImm(Opcode::CMPEQ, 5, 1, -8),    // 1
        opImm(Opcode::CMPULT, 6, 1, 1),    // huge unsigned < 1 -> 0
        halt(),
    });
    Emulator emu(prog);
    DynInst di;
    while (emu.step(di)) {}
    EXPECT_EQ(static_cast<std::int64_t>(emu.state().read(2)), -4);
    EXPECT_EQ(emu.state().read(3), 1u);
    EXPECT_EQ(emu.state().read(4), 1u);
    EXPECT_EQ(emu.state().read(5), 1u);
    EXPECT_EQ(emu.state().read(6), 0u);
}

TEST(Emulator, LogicalOps)
{
    auto prog = progOf({
        lda(1, zeroReg, 0xf0),
        lda(2, zeroReg, 0x3c),
        op3(Opcode::AND, 3, 1, 2),
        op3(Opcode::BIS, 4, 1, 2),
        op3(Opcode::XOR, 5, 1, 2),
        halt(),
    });
    Emulator emu(prog);
    DynInst di;
    while (emu.step(di)) {}
    EXPECT_EQ(emu.state().read(3), 0x30u);
    EXPECT_EQ(emu.state().read(4), 0xfcu);
    EXPECT_EQ(emu.state().read(5), 0xccu);
}

TEST(Emulator, ZeroRegisterReadsZeroAndDiscardsWrites)
{
    auto prog = progOf({
        lda(zeroReg, zeroReg, 99),       // write to r31 discarded
        op3(Opcode::ADDQ, 1, zeroReg, zeroReg),
        halt(),
    });
    auto trace = run(prog);
    EXPECT_EQ(trace[0].dest, regNone);   // normalized away
    EXPECT_EQ(trace[1].srcA, regNone);
    EXPECT_EQ(trace[1].srcB, regNone);
    Emulator emu(prog);
    DynInst di;
    while (emu.step(di)) {}
    EXPECT_EQ(emu.state().read(1), 0u);
}

TEST(Emulator, LoadStore)
{
    Program prog = progOf({
        lda(1, zeroReg, 0),                       // r1 = 0, rebuilt below
        mem(Opcode::LDQ, 2, 1, 8),                // r2 = mem[base+8]
        opImm(Opcode::ADDQ, 2, 2, 5),
        mem(Opcode::STQ, 2, 1, 16),               // mem[base+16] = r2
        mem(Opcode::LDQ, 3, 1, 16),
        halt(),
    });
    // Point r1 at the data segment.
    prog.insts[0] = lda(1, zeroReg, 0x4000);
    prog.dataImage.push_back({0x4008, 37});
    auto trace = run(prog);
    EXPECT_EQ(trace[1].effAddr, 0x4008u);
    EXPECT_EQ(trace[1].newValue, 37u);
    EXPECT_EQ(trace[3].effAddr, 0x4010u);
    EXPECT_EQ(trace[3].newValue, 42u);    // store data recorded
    EXPECT_EQ(trace[4].newValue, 42u);
}

TEST(Emulator, OldDestValueRecorded)
{
    // The heart of RVP: the emulator must report the value that was in
    // the destination register *before* the instruction wrote it.
    auto prog = progOf({
        lda(5, zeroReg, 111),
        lda(5, zeroReg, 222),
        lda(5, zeroReg, 222),
        halt(),
    });
    auto trace = run(prog);
    EXPECT_EQ(trace[0].oldDestValue, 0u);
    EXPECT_EQ(trace[1].oldDestValue, 111u);
    EXPECT_EQ(trace[2].oldDestValue, 222u);
    EXPECT_EQ(trace[2].newValue, 222u);   // same-register reuse!
}

TEST(Emulator, ConditionalBranches)
{
    auto prog = progOf({
        lda(1, zeroReg, 2),             // loop counter
        // loop:
        opImm(Opcode::SUBQ, 1, 1, 1),
        branch(Opcode::BNE, 1, -2),     // back to subq
        halt(),
    });
    auto trace = run(prog);
    // lda, subq, bne(taken), subq, bne(not-taken), halt
    ASSERT_EQ(trace.size(), 6u);
    EXPECT_TRUE(trace[2].isTaken);
    EXPECT_EQ(trace[2].nextPc, Program::pcOf(1));
    EXPECT_FALSE(trace[4].isTaken);
    EXPECT_EQ(trace[4].nextPc, Program::pcOf(3));
}

TEST(Emulator, BranchVariants)
{
    auto prog = progOf({
        lda(1, zeroReg, -1),
        branch(Opcode::BLT, 1, 1),      // taken, skip next
        halt(),
        branch(Opcode::BGE, 1, 1),      // not taken (-1 < 0)
        branch(Opcode::BLE, 1, 1),      // taken
        halt(),
        branch(Opcode::BGT, 1, 1),      // not taken
        halt(),
    });
    auto trace = run(prog);
    EXPECT_TRUE(trace[1].isTaken);
    EXPECT_FALSE(trace[2].isTaken);     // BGE
    EXPECT_TRUE(trace[3].isTaken);      // BLE
    EXPECT_FALSE(trace[4].isTaken);     // BGT
    EXPECT_EQ(trace.back().op, Opcode::HALT);
}

TEST(Emulator, UnconditionalAndIndirect)
{
    auto prog = progOf({
        branch(Opcode::BR, regNone, 2), // skip two
        halt(),
        halt(),
        lda(4, zeroReg, static_cast<std::int32_t>(Program::pcOf(6))),
        op3(Opcode::JSR, raReg, 4, regNone),
        halt(),                          // skipped: jsr jumps to 6
        // subroutine:
        lda(5, zeroReg, 77),
        op3(Opcode::RET, regNone, raReg, regNone),
    });
    auto trace = run(prog);
    // br, lda, jsr, lda(sub), ret, halt
    ASSERT_EQ(trace.size(), 6u);
    EXPECT_EQ(trace[2].op, Opcode::JSR);
    EXPECT_EQ(trace[2].newValue, Program::pcOf(5));  // return address
    EXPECT_EQ(trace[2].nextPc, Program::pcOf(6));
    EXPECT_EQ(trace[4].op, Opcode::RET);
    EXPECT_EQ(trace[4].nextPc, Program::pcOf(5));
    EXPECT_EQ(trace[5].op, Opcode::HALT);
}

TEST(Emulator, FloatingPoint)
{
    auto prog = progOf({
        lda(1, zeroReg, 7),
        op3(Opcode::ITOF, fpBase + 0, 1, regNone),
        op3(Opcode::CVTQT, fpBase + 1, fpBase + 0, regNone), // 7.0
        op3(Opcode::ADDT, fpBase + 2, fpBase + 1, fpBase + 1), // 14.0
        op3(Opcode::MULT, fpBase + 3, fpBase + 2, fpBase + 1), // 98.0
        op3(Opcode::SUBT, fpBase + 4, fpBase + 3, fpBase + 2), // 84.0
        op3(Opcode::DIVT, fpBase + 5, fpBase + 4, fpBase + 1), // 12.0
        op3(Opcode::CVTTQ, fpBase + 6, fpBase + 5, regNone),   // 12
        op3(Opcode::FTOI, 2, fpBase + 6, regNone),
        halt(),
    });
    Emulator emu(prog);
    DynInst di;
    while (emu.step(di)) {}
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(emu.state().read(fpBase + 1)),
                     7.0);
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(emu.state().read(fpBase + 5)),
                     12.0);
    EXPECT_EQ(emu.state().read(2), 12u);
}

TEST(Emulator, FpCompareAndBranch)
{
    auto prog = progOf({
        lda(1, zeroReg, 3),
        op3(Opcode::ITOF, fpBase + 0, 1, regNone),
        op3(Opcode::CVTQT, fpBase + 1, fpBase + 0, regNone),   // 3.0
        op3(Opcode::CMPTLT, fpBase + 2, fpBase + 1, fpBase + 1), // 0.0
        branch(Opcode::FBEQ, fpBase + 2, 1),    // taken: 0.0 == 0
        halt(),
        op3(Opcode::CMPTLE, fpBase + 3, fpBase + 1, fpBase + 1), // 1.0
        branch(Opcode::FBNE, fpBase + 3, 1),    // taken
        halt(),
        halt(),
    });
    auto trace = run(prog);
    EXPECT_TRUE(trace[4].isTaken);   // fbeq
    EXPECT_TRUE(trace[6].isTaken);   // fbne
}

TEST(Emulator, HaltStopsStepping)
{
    auto prog = progOf({halt()});
    Emulator emu(prog);
    DynInst di;
    EXPECT_TRUE(emu.step(di));
    EXPECT_TRUE(emu.halted());
    EXPECT_FALSE(emu.step(di));
    EXPECT_EQ(emu.instCount(), 1u);
}

TEST(Emulator, StackPointerInitialized)
{
    auto prog = progOf({halt()});
    Emulator emu(prog);
    EXPECT_EQ(emu.state().read(spReg), Program::stackTop);
}

TEST(Emulator, SourcesRecordedForStores)
{
    auto prog = progOf({
        lda(1, zeroReg, 0x4000),
        lda(2, zeroReg, 9),
        mem(Opcode::STQ, 2, 1, 0),
        halt(),
    });
    auto trace = run(prog);
    EXPECT_EQ(trace[2].srcA, 1);   // base
    EXPECT_EQ(trace[2].srcB, 2);   // data
    EXPECT_EQ(trace[2].dest, regNone);
}

TEST(Emulator, SequenceNumbersMonotonic)
{
    auto prog = progOf({
        lda(1, zeroReg, 3),
        opImm(Opcode::SUBQ, 1, 1, 1),
        branch(Opcode::BNE, 1, -2),
        halt(),
    });
    auto trace = run(prog);
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace[i].seq, i);
}

} // namespace
} // namespace rvp
