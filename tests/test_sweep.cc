/**
 * @file
 * Tests of the parallel sweep scheduler (sim/sweep.hh): parallel runs
 * must be bit-identical to serial ones, results must come back in
 * input order, the compile/profile memo cache must actually hit, the
 * up-front configuration validation must fail fast on contradictions,
 * and the committed-path prediction accounting must keep coverage a
 * real fraction (predictions never exceed committed instructions).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "uarch/core.hh"
#include "vp/oracle.hh"

namespace rvp
{
namespace
{

ExperimentConfig
smallConfig(const std::string &workload)
{
    ExperimentConfig config;
    config.workload = workload;
    config.core.maxInsts = 15'000;
    config.profileInsts = 15'000;
    return config;
}

/**
 * A small grid that exercises every code path the scheduler treats
 * differently: no prediction, LVP, static RVP (binary rewrite),
 * dynamic RVP with profile assists, and the Figure-7 re-allocation.
 */
std::vector<ExperimentConfig>
mixedGrid()
{
    std::vector<ExperimentConfig> configs;
    for (const char *workload : {"go", "mgrid"}) {
        ExperimentConfig base = smallConfig(workload);
        configs.push_back(base);

        ExperimentConfig lvp = base;
        lvp.scheme = VpScheme::Lvp;
        configs.push_back(lvp);

        ExperimentConfig srvp = base;
        srvp.scheme = VpScheme::StaticRvp;
        srvp.assist = AssistLevel::Dead;
        configs.push_back(srvp);

        ExperimentConfig drvp = base;
        drvp.scheme = VpScheme::DynamicRvp;
        drvp.assist = AssistLevel::DeadLv;
        drvp.loadsOnly = false;
        configs.push_back(drvp);

        ExperimentConfig realloc_cfg = base;
        realloc_cfg.scheme = VpScheme::DynamicRvp;
        realloc_cfg.realisticRealloc = true;
        realloc_cfg.loadsOnly = false;
        configs.push_back(realloc_cfg);
    }
    return configs;
}

void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b,
                const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.committed, b.committed) << label;
    EXPECT_EQ(a.reallocFailed, b.reallocFailed) << label;
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc) << label;
    EXPECT_DOUBLE_EQ(a.predictedFrac, b.predictedFrac) << label;
    EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy) << label;
    // Every stat, bit for bit — not just the headline numbers.
    EXPECT_EQ(a.stats.values().size(), b.stats.values().size()) << label;
    for (const auto &[name, value] : a.stats.values())
        EXPECT_DOUBLE_EQ(value, b.stats.get(name)) << label << ": " << name;
}

TEST(Sweep, ParallelIsBitIdenticalToSerial)
{
    std::vector<ExperimentConfig> configs = mixedGrid();
    SweepOptions serial;
    serial.jobs = 1;
    serial.progress = false;
    SweepOptions parallel_opts;
    parallel_opts.jobs = 8;
    parallel_opts.progress = false;
    std::vector<ExperimentResult> a = runSweep(configs, serial);
    std::vector<ExperimentResult> b = runSweep(configs, parallel_opts);
    ASSERT_EQ(a.size(), configs.size());
    ASSERT_EQ(b.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i)
        expectIdentical(a[i], b[i], describeConfig(configs[i]));
}

TEST(Sweep, ChunkedBatchGroupsStayBitIdentical)
{
    // Chunking a batch group (sharded work units bound group size via
    // maxBatchGroupRuns) must not perturb a single result bit: each
    // chunk replays the same committed stream from the same cache.
    std::vector<ExperimentConfig> configs = mixedGrid();
    SweepOptions plain;
    plain.jobs = 1;
    plain.progress = false;
    plain.maxBatchGroupRuns = 0;   // whole groups
    SweepOptions chunked = plain;
    // mixedGrid's Base-binary group has 3 members per workload
    // (Base/Lvp/DynamicRvp share one committed stream), so a cap of 2
    // forces a mid-group split.
    chunked.maxBatchGroupRuns = 2;
    std::vector<ExperimentResult> a = runSweep(configs, plain);
    std::vector<ExperimentResult> b = runSweep(configs, chunked);
    ASSERT_EQ(a.size(), configs.size());
    ASSERT_EQ(b.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i)
        expectIdentical(a[i], b[i], describeConfig(configs[i]));
}

TEST(Sweep, MaxBatchGroupZeroKeepsWholeGroup)
{
    // maxBatchGroupRuns = 0 disables chunking entirely — the batch
    // counters must match a cap no group reaches — while a cap of 1
    // degenerates every group to solo runs (batching needs >= 2).
    std::vector<ExperimentConfig> configs = mixedGrid();
    SweepOptions whole;
    whole.jobs = 1;
    whole.progress = false;
    whole.maxBatchGroupRuns = 0;
    SweepReport whole_report;
    runSweep(configs, whole, &whole_report);
    EXPECT_GT(whole_report.batchGroups, 0u);

    SweepOptions huge = whole;
    huge.maxBatchGroupRuns = 100'000;
    SweepReport huge_report;
    runSweep(configs, huge, &huge_report);
    EXPECT_EQ(whole_report.batchGroups, huge_report.batchGroups);
    EXPECT_EQ(whole_report.batchedRuns, huge_report.batchedRuns);

    SweepOptions singles = whole;
    singles.maxBatchGroupRuns = 1;
    SweepReport singles_report;
    runSweep(configs, singles, &singles_report);
    EXPECT_EQ(singles_report.batchGroups, 0u);
    EXPECT_EQ(singles_report.batchedRuns, 0u);
}

TEST(Sweep, CachedRunsMatchTheUncachedRunner)
{
    std::vector<ExperimentConfig> configs = mixedGrid();
    SweepOptions opts;
    opts.jobs = 4;
    opts.progress = false;
    std::vector<ExperimentResult> swept = runSweep(configs, opts);
    ASSERT_EQ(swept.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        ExperimentResult direct = runExperiment(configs[i]);
        expectIdentical(swept[i], direct, describeConfig(configs[i]));
    }
}

TEST(Sweep, ResultsComeBackInInputOrder)
{
    // Distinct commit budgets mark each config; spacing exceeds any
    // over-commit within the final cycle, so the budgets round-trip.
    std::vector<ExperimentConfig> configs;
    for (int i = 0; i < 6; ++i) {
        ExperimentConfig config = smallConfig(i % 2 ? "go" : "mgrid");
        config.core.maxInsts = 10'000 + 1'000u * static_cast<unsigned>(i);
        configs.push_back(config);
    }
    SweepOptions opts;
    opts.jobs = 8;
    opts.progress = false;
    std::vector<ExperimentResult> results = runSweep(configs, opts);
    ASSERT_EQ(results.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_GE(results[i].committed, configs[i].core.maxInsts);
        EXPECT_LT(results[i].committed, configs[i].core.maxInsts + 1'000u);
    }
}

TEST(Sweep, CompileAndProfileAreMemoized)
{
    // Four dynamic-RVP runs of one workload: the train and ref binaries
    // compile once each, the profile runs once, everything else hits.
    std::vector<ExperimentConfig> configs;
    for (unsigned threshold : {4u, 5u, 6u, 7u}) {
        ExperimentConfig config = smallConfig("go");
        config.scheme = VpScheme::DynamicRvp;
        config.assist = AssistLevel::Dead;
        config.counterThreshold = threshold;
        configs.push_back(config);
    }
    SweepOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    SweepReport report;
    runSweep(configs, opts, &report);
    EXPECT_EQ(report.cache.compileMisses, 2u);   // train + ref
    EXPECT_EQ(report.cache.profileMisses, 1u);
    EXPECT_GT(report.cache.compileHits, 0u);
    EXPECT_EQ(report.cache.profileHits, 3u);
    EXPECT_EQ(report.jobs, 2u);
    EXPECT_EQ(report.runSeconds.size(), configs.size());
    EXPECT_GT(report.wallSeconds, 0.0);
}

TEST(Sweep, WorkloadCacheReturnsOneInstance)
{
    WorkloadCache cache;
    auto a = cache.compiled("go", InputSet::Ref);
    auto b = cache.compiled("go", InputSet::Ref);
    EXPECT_EQ(a.get(), b.get());
    auto p = cache.profiled("go", InputSet::Train, 5'000);
    auto q = cache.profiled("go", InputSet::Train, 5'000);
    EXPECT_EQ(p.get(), q.get());
    // A different budget is a different profile.
    auto r = cache.profiled("go", InputSet::Train, 6'000);
    EXPECT_NE(p.get(), r.get());
}

TEST(SweepValidationDeathTest, ReallocRequiresDynamicRvp)
{
    ExperimentConfig config = smallConfig("go");
    config.realisticRealloc = true;
    config.scheme = VpScheme::Lvp;
    EXPECT_DEATH(validateExperimentConfig(config), "re-colours");
}

TEST(SweepValidationDeathTest, StaticRvpIsLoadsOnly)
{
    ExperimentConfig config = smallConfig("go");
    config.scheme = VpScheme::StaticRvp;
    config.loadsOnly = false;
    EXPECT_DEATH(validateExperimentConfig(config),
                 "loadsOnly=false is contradictory");
}

TEST(SweepValidationDeathTest, UnknownWorkloadAndBadKnobs)
{
    ExperimentConfig config = smallConfig("go");
    config.workload = "nonesuch";
    EXPECT_DEATH(validateExperimentConfig(config), "unknown workload");

    config = smallConfig("go");
    config.counterThreshold = 9;
    EXPECT_DEATH(validateExperimentConfig(config), "3-bit");

    config = smallConfig("go");
    config.tableEntries = 0;
    EXPECT_DEATH(validateExperimentConfig(config), "at least one entry");

    config = smallConfig("go");
    config.profileThreshold = 1.5;
    EXPECT_DEATH(validateExperimentConfig(config), "not a rate");
}

/**
 * A loop whose every body instruction is value-stable (r_k = r_k + r31)
 * — near-100% coverage for dynamic RVP, which makes the fetch-time
 * overcount of the in-flight tail visible: with a small commit budget
 * the core fetches (and "predicts") a window of instructions beyond the
 * budget that never commit.
 */
Program
stableLoop(unsigned body, std::int32_t iters)
{
    Program prog;
    StaticInst init;
    init.op = Opcode::LDA;
    init.rc = 1;
    init.ra = zeroReg;
    init.useImm = true;
    init.imm = iters;
    prog.insts.push_back(init);
    for (unsigned i = 0; i < body; ++i) {
        StaticInst add;
        add.op = Opcode::ADDQ;
        add.rc = static_cast<RegIndex>(2 + (i % 24));
        add.ra = add.rc;
        add.rb = zeroReg;
        prog.insts.push_back(add);
    }
    StaticInst dec;
    dec.op = Opcode::SUBQ;
    dec.rc = 1;
    dec.ra = 1;
    dec.useImm = true;
    dec.imm = 1;
    prog.insts.push_back(dec);
    StaticInst br;
    br.op = Opcode::BNE;
    br.ra = 1;
    br.imm = -static_cast<std::int32_t>(body + 2);
    prog.insts.push_back(br);
    StaticInst halt;
    halt.op = Opcode::HALT;
    prog.insts.push_back(halt);
    return prog;
}

TEST(CommittedPathStats, PredictionsNeverExceedCommitted)
{
    // Regression: vp.predictions used to count every fetched
    // instruction the predictor fired on, including the in-flight tail
    // past the commit budget — so "coverage" could exceed 100%.
    Program prog = stableLoop(64, 2'000);
    VpConfig vp;
    vp.scheme = VpScheme::DynamicRvp;
    vp.loadsOnly = false;
    auto predictor = makePredictor(vp, prog);
    CoreParams params = CoreParams::table1();
    params.maxInsts = 3'000;
    Core core(params, prog, *predictor);
    CoreResult r = core.run();

    double committed = static_cast<double>(r.committed);
    EXPECT_LE(r.stats.get("vp.eligible"), committed);
    EXPECT_LE(r.stats.get("vp.predictions"), r.stats.get("vp.eligible"));
    EXPECT_LE(r.stats.get("vp.correct"), r.stats.get("vp.predictions"));
    // The fetch-time counts remain visible and bound the committed ones.
    EXPECT_GE(r.stats.get("vp.predictions_fetched"),
              r.stats.get("vp.predictions"));
    EXPECT_GE(r.stats.get("vp.eligible_fetched"),
              r.stats.get("vp.eligible"));
    // The loop really is highly predictable (the gap to 100% is the
    // confidence warm-up), so the invariant is load-bearing here: the
    // in-flight tail past the budget is fetched, predicted, and never
    // committed — fetch-time counting strictly overshoots.
    EXPECT_GT(r.stats.get("vp.predictions"), 0.7 * committed);
    EXPECT_GT(r.stats.get("vp.predictions_fetched"),
              r.stats.get("vp.predictions"));
}

TEST(CommittedPathStats, ExperimentCoverageIsAFraction)
{
    ExperimentConfig config = smallConfig("m88ksim");
    config.scheme = VpScheme::DynamicRvp;
    config.assist = AssistLevel::DeadLv;
    config.loadsOnly = false;
    ExperimentResult r = runExperiment(config);
    EXPECT_GE(r.predictedFrac, 0.0);
    EXPECT_LE(r.predictedFrac, 1.0);
    EXPECT_GE(r.accuracy, 0.0);
    EXPECT_LE(r.accuracy, 1.0);
}

TEST(ReallocStats, SuccessPathIsRecorded)
{
    ExperimentConfig config = smallConfig("hydro2d");
    config.scheme = VpScheme::DynamicRvp;
    config.realisticRealloc = true;
    config.loadsOnly = false;
    ExperimentResult r = runExperiment(config);
    EXPECT_DOUBLE_EQ(r.stats.get("realloc.attempted"), 1.0);
    EXPECT_DOUBLE_EQ(r.stats.get("realloc.failed"), 0.0);
    EXPECT_FALSE(r.reallocFailed);
    EXPECT_GT(r.stats.get("realloc.candidates"), 0.0);
    EXPECT_GE(r.stats.get("realloc.honored"), 0.0);
}

TEST(ReallocStats, NonReallocRunsCarryNoReallocStats)
{
    ExperimentResult r = runExperiment(smallConfig("go"));
    EXPECT_DOUBLE_EQ(r.stats.get("realloc.attempted"), 0.0);
    EXPECT_FALSE(r.reallocFailed);
}

TEST(Sweep, DescribeConfigNamesTheVariant)
{
    ExperimentConfig config = smallConfig("go");
    config.scheme = VpScheme::DynamicRvp;
    config.assist = AssistLevel::DeadLv;
    config.loadsOnly = false;
    std::string desc = describeConfig(config);
    EXPECT_NE(desc.find("go"), std::string::npos);
    EXPECT_NE(desc.find("drvp"), std::string::npos);
}

TEST(Sweep, AThrowingRunIsContainedAndTheRestComplete)
{
    // Regression: a run body that threw used to escape parallelFor's
    // worker thread and std::terminate the whole process, taking every
    // other run's results with it. runSweep now catches per iteration
    // and records the failure on that run alone.
    std::vector<ExperimentConfig> configs;
    for (int i = 0; i < 5; ++i)
        configs.push_back(smallConfig(i % 2 ? "go" : "mgrid"));

    SweepOptions opts;
    opts.jobs = 4;
    opts.progress = false;
    opts.maxRetries = 0;   // containment semantics, not retry (see
                           // test_robustness.cc for the retry paths)
    opts.runFn = [](const ExperimentConfig &config, WorkloadCache &cache,
                    const RunContext &) -> ExperimentResult {
        static std::atomic<int> calls{0};
        if (calls.fetch_add(1) == 2)
            throw std::runtime_error("simulated mid-run failure");
        return runExperiment(config, &cache);
    };

    std::vector<ExperimentResult> results = runSweep(configs, opts);
    ASSERT_EQ(results.size(), configs.size());
    std::size_t failed = 0;
    for (const ExperimentResult &r : results) {
        if (r.failed) {
            ++failed;
            EXPECT_EQ(r.error, "simulated mid-run failure");
            EXPECT_EQ(r.committed, 0u);   // default-initialized metrics
        } else {
            EXPECT_TRUE(r.error.empty());
            EXPECT_GT(r.committed, 0u);
            EXPECT_GT(r.ipc, 0.0);
        }
    }
    EXPECT_EQ(failed, 1u);
}

TEST(Sweep, ContainedFailuresStaySerialParallelIdentical)
{
    // Which run fails is determined by the injected body (index 1),
    // not by scheduling, so serial and parallel sweeps agree even in
    // the presence of failures.
    std::vector<ExperimentConfig> configs;
    for (int i = 0; i < 4; ++i)
        configs.push_back(smallConfig("go"));
    auto run_fn = [](const ExperimentConfig &config, WorkloadCache &cache,
                     const RunContext &) -> ExperimentResult {
        if (config.core.maxInsts == 16'000)
            throw std::runtime_error("bad budget");
        return runExperiment(config, &cache);
    };
    configs[1].core.maxInsts = 16'000;

    for (unsigned jobs : {1u, 8u}) {
        SweepOptions opts;
        opts.jobs = jobs;
        opts.progress = false;
        opts.maxRetries = 0;
        opts.runFn = run_fn;
        std::vector<ExperimentResult> results = runSweep(configs, opts);
        ASSERT_EQ(results.size(), 4u);
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(results[i].failed, i == 1) << "jobs=" << jobs;
            if (i == 1) {
                EXPECT_EQ(results[i].error, "bad budget");
            }
        }
    }
}

TEST(SweepValidationDeathTest, BadCacheGeometryIsRejectedUpFront)
{
    // validateExperimentConfig now vets the whole cache hierarchy, so
    // a sweep fails before any simulation rather than silently running
    // a smaller cache than configured.
    ExperimentConfig config = smallConfig("go");
    config.core.mem.l1d.sizeBytes = 65'636;   // not sets*assoc*line
    EXPECT_DEATH(validateExperimentConfig(config), "silently");

    config = smallConfig("go");
    config.core.mem.l2.lineBytes = 48;
    EXPECT_DEATH(validateExperimentConfig(config), "power of two");
}

TEST(SweepValidationDeathTest, TracingNeedsAPositiveSampleInterval)
{
    ExperimentConfig config = smallConfig("go");
    config.traceOut = "/tmp/x.trace.json";
    config.traceSample = 0;
    EXPECT_DEATH(validateExperimentConfig(config), "traceSample");
}

TEST(Sweep, NegativeStreamEntryPinsSmallerCallersToLive)
{
    // An over-budget capture resolves to a negative (null) entry;
    // every later caller — including one with a smaller bound that a
    // fresh capture might have satisfied — takes the live-emulation
    // fallback without re-attempting the build.
    WorkloadCache cache(1024);
    StreamKey key;
    key.workload = "go";
    int builds = 0;
    auto build = [&](std::uint64_t) -> WorkloadCache::StreamPtr {
        ++builds;
        return nullptr;   // capture exceeded maxBytes
    };
    EXPECT_EQ(cache.stream(key, 10'000, build), nullptr);
    EXPECT_EQ(builds, 1);
    EXPECT_EQ(cache.stream(key, 1'000, build), nullptr);
    EXPECT_EQ(builds, 1);   // negative entry honored, no rebuild
    WorkloadCacheStats stats = cache.stats();
    EXPECT_EQ(stats.streamMisses, 2u);
    EXPECT_EQ(stats.streamHits, 0u);
    EXPECT_EQ(stats.streamBytesBuilt, 0u);
}

TEST(Sweep, TruncatedStreamIsRebuiltForALongerRun)
{
    // A stream captured for a short run is truncated below a longer
    // run's bound; the cache must rebuild at the larger bound instead
    // of replaying a stream that ends mid-run, and both runs must
    // match their uncached equivalents bit for bit.
    WorkloadCache cache;
    ExperimentConfig small_cfg = smallConfig("go");
    ExperimentConfig big_cfg = smallConfig("go");
    big_cfg.core.maxInsts = 30'000;

    RunContext context;
    context.cache = &cache;
    ExperimentResult a = runExperiment(small_cfg, context);
    ExperimentResult b = runExperiment(big_cfg, context);

    WorkloadCacheStats stats = cache.stats();
    EXPECT_EQ(stats.streamMisses, 2u)
        << "the truncated stream must be rebuilt, not replayed";
    EXPECT_EQ(stats.streamHits, 0u);

    expectIdentical(a, runExperiment(small_cfg), "small vs uncached");
    expectIdentical(b, runExperiment(big_cfg), "big vs uncached");
}

TEST(Sweep, ParallelForCoversEveryIndexOnce)
{
    std::vector<int> hits(100, 0);
    parallelFor(hits.size(), 8,
                [&](std::size_t i) { hits[i] += 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << i;
    // Serial fallback path.
    std::vector<int> serial_hits(5, 0);
    parallelFor(serial_hits.size(), 1,
                [&](std::size_t i) { serial_hits[i] += 1; });
    for (int h : serial_hits)
        EXPECT_EQ(h, 1);
}

TEST(Sweep, SummarizeKipsTreatsZeroAsAValidMinimum)
{
    // Regression for the old min-throughput sentinel: min_kips == 0.0
    // meant "unset", so a run that legitimately committed nothing
    // (zero KIPS) could never be the reported minimum. The summary
    // carries an explicit any-completed flag instead.
    auto completed = [](double kips) {
        ExperimentResult r;
        r.kips = kips;
        return r;
    };
    auto failed = [](double kips) {
        ExperimentResult r;
        r.kips = kips;
        r.failed = true;
        return r;
    };

    // A legitimate zero-KIPS run IS the minimum.
    KipsSummary s = summarizeKips({completed(0.0), completed(120.5)});
    EXPECT_TRUE(s.any);
    EXPECT_DOUBLE_EQ(s.minKips, 0.0);
    EXPECT_DOUBLE_EQ(s.maxKips, 120.5);

    // Failed runs are excluded from both extremes.
    s = summarizeKips(
        {failed(1.0), completed(50.0), completed(75.0), failed(900.0)});
    EXPECT_TRUE(s.any);
    EXPECT_DOUBLE_EQ(s.minKips, 50.0);
    EXPECT_DOUBLE_EQ(s.maxKips, 75.0);

    // Nothing completed: flagged, not silently zero-but-meaningless.
    s = summarizeKips({failed(1.0), failed(2.0)});
    EXPECT_FALSE(s.any);
    s = summarizeKips({});
    EXPECT_FALSE(s.any);
}

} // namespace
} // namespace rvp
