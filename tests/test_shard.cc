/**
 * @file
 * Sharded-sweep tests: grid partitioning, the framed pipe protocol,
 * cross-journal merging, and the work-stealing coordinator — including
 * end-to-end runs that spawn real `sweep_all --worker` processes and
 * SIGKILL them mid-grid. The load-bearing claim throughout: a sharded
 * sweep's published report is byte-identical to a single-process run,
 * no matter which workers die along the way.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/subprocess.hh"
#include "sim/journal.hh"
#include "sim/runner.hh"
#include "sim/shard.hh"

namespace rvp
{
namespace
{

struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/rvp_shard_XXXXXX";
        char *dir = mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        path = dir ? dir : "";
    }
    ~TempDir()
    {
        if (!path.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(path, ec);
        }
    }
    std::string file(const std::string &name) const
    {
        return path + "/" + name;
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

ExperimentConfig
smallConfig(const std::string &workload)
{
    ExperimentConfig config;
    config.workload = workload;
    config.core.maxInsts = 12'000;
    config.profileInsts = 12'000;
    return config;
}

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

TEST(Partition, GroupsByStreamKeyAndCoversPendingExactly)
{
    // 4 "go" configs share one stream key (Base binary; predictor
    // knobs don't change the committed stream), 2 "mgrid" another.
    std::vector<ExperimentConfig> grid;
    for (int i = 0; i < 4; ++i)
        grid.push_back(smallConfig("go"));
    grid.push_back(smallConfig("mgrid"));
    grid.push_back(smallConfig("mgrid"));
    std::vector<std::size_t> pending{0, 1, 2, 3, 4, 5};

    std::vector<WorkUnit> units = partitionWork(grid, pending, 0);
    ASSERT_EQ(units.size(), 2u);
    // LPT: the 4-run unit leads.
    EXPECT_EQ(units[0].indices, (std::vector<std::size_t>{0, 1, 2, 3}));
    EXPECT_EQ(units[1].indices, (std::vector<std::size_t>{4, 5}));
    EXPECT_EQ(units[0].id, 0u);
    EXPECT_EQ(units[1].id, 1u);
}

TEST(Partition, ChunksOversizedGroupsWithoutMixingKeys)
{
    std::vector<ExperimentConfig> grid;
    for (int i = 0; i < 5; ++i)
        grid.push_back(smallConfig("go"));
    grid.push_back(smallConfig("mgrid"));
    std::vector<std::size_t> pending{0, 1, 2, 3, 4, 5};

    std::vector<WorkUnit> units = partitionWork(grid, pending, 2);
    // go: {0,1} {2,3} {4}; mgrid: {5}. LPT puts the pairs first.
    ASSERT_EQ(units.size(), 4u);
    EXPECT_EQ(units[0].indices, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(units[1].indices, (std::vector<std::size_t>{2, 3}));
    // Equal-size singletons keep grid order (stable sort).
    EXPECT_EQ(units[2].indices, (std::vector<std::size_t>{4}));
    EXPECT_EQ(units[3].indices, (std::vector<std::size_t>{5}));

    // Every pending index appears exactly once across units.
    std::set<std::size_t> seen;
    for (const WorkUnit &unit : units)
        for (std::size_t i : unit.indices)
            EXPECT_TRUE(seen.insert(i).second) << i;
    EXPECT_EQ(seen.size(), pending.size());
}

TEST(Partition, RespectsPendingSubset)
{
    std::vector<ExperimentConfig> grid;
    for (int i = 0; i < 4; ++i)
        grid.push_back(smallConfig("go"));
    std::vector<WorkUnit> units = partitionWork(grid, {1, 3}, 0);
    ASSERT_EQ(units.size(), 1u);
    EXPECT_EQ(units[0].indices, (std::vector<std::size_t>{1, 3}));
}

// ---------------------------------------------------------------------
// Protocol codec and framing
// ---------------------------------------------------------------------

TEST(ShardProtocol, MessagesRoundTrip)
{
    ShardMsg hello = decodeShardMsg(encodeHello("deadbeef", 308));
    EXPECT_EQ(hello.type, "hello");
    EXPECT_EQ(hello.version, shardProtocolVersion);
    EXPECT_EQ(hello.sweepHash, "deadbeef");
    EXPECT_EQ(hello.gridRuns, 308u);

    WorkUnit unit;
    unit.id = 7;
    unit.indices = {3, 1, 4, 159};
    ShardMsg u = decodeShardMsg(encodeUnit(unit));
    EXPECT_EQ(u.type, "unit");
    EXPECT_EQ(u.id, 7u);
    EXPECT_EQ(u.indices, unit.indices);

    ShardMsg done = decodeShardMsg(encodeDone(7, 3, 1, 2, 4, 1));
    EXPECT_EQ(done.type, "done");
    EXPECT_EQ(done.id, 7u);
    EXPECT_EQ(done.okRuns, 3u);
    EXPECT_EQ(done.failedRuns, 1u);
    EXPECT_EQ(done.batchGroups, 2u);
    EXPECT_EQ(done.batchedRuns, 4u);
    EXPECT_EQ(done.batchFallouts, 1u);

    EXPECT_EQ(decodeShardMsg(encodeShutdown()).type, "shutdown");

    WorkloadCacheStats cache;
    cache.compileHits = 11;
    cache.streamMisses = 5;
    cache.streamBytesResident = 1u << 20;
    ShardMsg bye = decodeShardMsg(encodeBye(cache));
    EXPECT_EQ(bye.type, "bye");
    EXPECT_EQ(bye.cache.compileHits, 11u);
    EXPECT_EQ(bye.cache.streamMisses, 5u);
    EXPECT_EQ(bye.cache.streamBytesResident, 1u << 20);
}

TEST(ShardProtocol, GarbageThrows)
{
    EXPECT_THROW(decodeShardMsg("not json"), std::runtime_error);
    EXPECT_THROW(decodeShardMsg("{\"type\": \"warp-core\"}"),
                 std::runtime_error);
    EXPECT_THROW(decodeShardMsg("{\"type\": \"unit\"}"),
                 std::runtime_error);   // missing id/indices
    EXPECT_THROW(
        decodeShardMsg("{\"type\": \"hello\", \"version\": 1}"),
        std::runtime_error);
}

TEST(Framing, FramesSurviveArbitraryFragmentation)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    FrameReader reader(fds[0]);

    // Write two frames one byte at a time; the reader must reassemble
    // them exactly.
    std::string a = "{\"type\": \"shutdown\"}";
    std::string b = "payload two";
    std::string wire = std::to_string(a.size()) + "\n" + a + "\n" +
                       std::to_string(b.size()) + "\n" + b + "\n";
    std::vector<std::string> got;
    for (char c : wire) {
        ASSERT_EQ(write(fds[1], &c, 1), 1);
        ASSERT_TRUE(reader.fill());
        while (auto payload = reader.next())
            got.push_back(*payload);
    }
    close(fds[0]);
    close(fds[1]);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], a);
    EXPECT_EQ(got[1], b);
}

TEST(Framing, WriteFrameRoundTripsAndEofIsClean)
{
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    ASSERT_TRUE(writeFrame(fds[1], "hello there"));
    close(fds[1]);
    FrameReader reader(fds[0]);
    ASSERT_TRUE(reader.fill());
    auto payload = reader.next();
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(*payload, "hello there");
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_FALSE(reader.fill());   // EOF
    close(fds[0]);
}

TEST(Framing, MalformedLengthAndTornTerminatorThrow)
{
    {
        int fds[2];
        ASSERT_EQ(pipe(fds), 0);
        std::string garbage = "bogus\npayload\n";
        ASSERT_EQ(write(fds[1], garbage.data(), garbage.size()),
                  static_cast<ssize_t>(garbage.size()));
        FrameReader reader(fds[0]);
        ASSERT_TRUE(reader.fill());
        EXPECT_THROW(reader.next(), std::runtime_error);
        close(fds[0]);
        close(fds[1]);
    }
    {
        // Correct length, wrong terminator: a spliced/torn stream.
        int fds[2];
        ASSERT_EQ(pipe(fds), 0);
        std::string torn = "3\nabcX";
        ASSERT_EQ(write(fds[1], torn.data(), torn.size()),
                  static_cast<ssize_t>(torn.size()));
        FrameReader reader(fds[0]);
        ASSERT_TRUE(reader.fill());
        EXPECT_THROW(reader.next(), std::runtime_error);
        close(fds[0]);
        close(fds[1]);
    }
}

// ---------------------------------------------------------------------
// Journal merge
// ---------------------------------------------------------------------

JournalRecord
record(const std::string &key, bool failed, double ipc)
{
    JournalRecord rec;
    rec.key = key;
    rec.figure = "fig05";
    rec.variant = "drvp";
    rec.workload = "go";
    rec.result.ipc = ipc;
    rec.result.failed = failed;
    if (failed)
        rec.result.error = "synthetic";
    return rec;
}

void
writeJournal(const std::string &path, const std::string &sweepHash,
             const std::vector<JournalRecord> &records)
{
    RunJournal journal(path);
    ASSERT_TRUE(journal.ok());
    if (!sweepHash.empty())
        journal.appendSweepHeader(sweepHash);
    for (const JournalRecord &rec : records)
        journal.append(rec);
}

TEST(JournalMerge, SuccessNeverLosesToFailureInEitherFileOrder)
{
    TempDir dir;
    std::string ok_first = dir.file("a.journal.w0");
    std::string failed_second = dir.file("a.journal.w1");
    writeJournal(ok_first, "cafe", {record("k1", false, 1.5)});
    writeJournal(failed_second, "cafe", {record("k1", true, 0.0)});

    // Failure in the LATER file must not clobber the earlier success.
    MergedJournal merged =
        mergeShardJournals({ok_first, failed_second}, "cafe");
    ASSERT_EQ(merged.runs.size(), 1u);
    EXPECT_FALSE(merged.runs.at("k1").result.failed);
    EXPECT_DOUBLE_EQ(merged.runs.at("k1").result.ipc, 1.5);

    // And the success in the later file supersedes the failure.
    merged = mergeShardJournals({failed_second, ok_first}, "cafe");
    ASSERT_EQ(merged.runs.size(), 1u);
    EXPECT_FALSE(merged.runs.at("k1").result.failed);
}

TEST(JournalMerge, LaterSuccessWinsAcrossFiles)
{
    TempDir dir;
    std::string first = dir.file("a.journal.w0");
    std::string second = dir.file("a.journal.w1");
    writeJournal(first, "cafe", {record("k1", false, 1.0)});
    writeJournal(second, "cafe", {record("k1", false, 2.0)});
    MergedJournal merged = mergeShardJournals({first, second}, "cafe");
    EXPECT_DOUBLE_EQ(merged.runs.at("k1").result.ipc, 2.0);
}

TEST(JournalMerge, TornTrailingLineInOneShardIsCountedNotFatal)
{
    TempDir dir;
    std::string clean = dir.file("a.journal.w0");
    std::string torn = dir.file("a.journal.w1");
    writeJournal(clean, "cafe", {record("k1", false, 1.0)});
    writeJournal(torn, "cafe",
                 {record("k2", false, 2.0), record("k3", false, 3.0)});
    std::string contents = readFile(torn);
    {
        std::ofstream os(torn, std::ios::binary | std::ios::trunc);
        os << contents.substr(0, contents.size() - 25);
    }
    MergedJournal merged = mergeShardJournals({clean, torn}, "cafe");
    EXPECT_EQ(merged.skippedLines, 1u);
    EXPECT_EQ(merged.runs.size(), 2u);
    EXPECT_EQ(merged.runs.count("k1"), 1u);
    EXPECT_EQ(merged.runs.count("k2"), 1u);
}

TEST(JournalMerge, MismatchedSweepHashRefusesTheMerge)
{
    TempDir dir;
    std::string ours = dir.file("a.journal.w0");
    std::string alien = dir.file("a.journal.w1");
    writeJournal(ours, "cafe", {record("k1", false, 1.0)});
    writeJournal(alien, "beef", {record("k2", false, 2.0)});
    EXPECT_THROW(mergeShardJournals({ours, alien}, "cafe"),
                 std::runtime_error);
    // Headerless journals (nothing survived but run lines) merge fine.
    writeJournal(dir.file("a.journal.w2"), "", {record("k3", false, 3.0)});
    EXPECT_NO_THROW(
        mergeShardJournals({ours, dir.file("a.journal.w2")}, "cafe"));
}

TEST(JournalMerge, FindShardJournalsOrdersMainThenSlots)
{
    TempDir dir;
    std::string main_path = dir.file("res.json.journal");
    writeJournal(dir.file("res.json.journal.w10"), "", {});
    writeJournal(dir.file("res.json.journal.w2"), "", {});
    writeJournal(main_path, "", {});
    // Non-slot suffixes are not shard journals.
    writeJournal(dir.file("res.json.journal.wfoo"), "", {});
    writeJournal(dir.file("res.json.journal.w2.bak"), "", {});

    std::vector<std::string> found = findShardJournals(main_path);
    ASSERT_EQ(found.size(), 3u);
    EXPECT_EQ(found[0], main_path);
    EXPECT_EQ(found[1], dir.file("res.json.journal.w2"));
    EXPECT_EQ(found[2], dir.file("res.json.journal.w10"));

    // No main journal: slots only.
    unlink(main_path.c_str());
    found = findShardJournals(main_path);
    ASSERT_EQ(found.size(), 2u);
    EXPECT_EQ(found[0], dir.file("res.json.journal.w2"));
}

// ---------------------------------------------------------------------
// Coordinator against misbehaving fake workers
// ---------------------------------------------------------------------

std::vector<WorkUnit>
oneUnit()
{
    WorkUnit unit;
    unit.id = 0;
    unit.indices = {0};
    return {unit};
}

TEST(Coordinator, HungWorkerIsKilledAndBudgetExhaustionFailsLoudly)
{
    TempDir dir;
    ShardOptions options;
    options.workers = 1;
    options.journalPrefix = dir.file("j.w");
    options.sweepHash = "cafe";
    options.unitDeadline = 0.2;   // also bounds spawn -> hello
    options.maxRespawns = 2;
    options.progress = false;
    // A worker that never says hello.
    options.workerCommand = [](unsigned, const std::string &) {
        return std::vector<std::string>{"/bin/sh", "-c", "sleep 600"};
    };
    ShardReport report;
    EXPECT_FALSE(runShardedSweep(oneUnit(), options, report));
    EXPECT_FALSE(report.error.empty());
    EXPECT_NE(report.error.find("exhausted"), std::string::npos)
        << report.error;
    // Initial worker + 2 respawns, all dead on the deadline.
    EXPECT_EQ(report.workersSpawned, 3u);
    EXPECT_EQ(report.workerDeaths, 3u);
}

TEST(Coordinator, ImmediateWorkerDeathCountsAndFails)
{
    TempDir dir;
    ShardOptions options;
    options.workers = 1;
    options.journalPrefix = dir.file("j.w");
    options.sweepHash = "cafe";
    options.maxRespawns = 1;
    options.progress = false;
    options.workerCommand = [](unsigned, const std::string &) {
        return std::vector<std::string>{"/bin/false"};
    };
    ShardReport report;
    EXPECT_FALSE(runShardedSweep(oneUnit(), options, report));
    EXPECT_EQ(report.workerDeaths, 2u);   // initial + 1 respawn
}

TEST(Coordinator, WrongSweepHashAbortsTheWholeSweep)
{
    TempDir dir;
    ShardOptions options;
    options.workers = 1;
    options.journalPrefix = dir.file("j.w");
    options.sweepHash = "cafe";
    options.progress = false;
    // A fake worker that hellos with the WRONG sweep hash, then idles.
    std::string payload = encodeHello("beef", 1);
    std::string script = "printf '%s\\n%s\\n' " +
                         std::to_string(payload.size()) + " '" + payload +
                         "'; sleep 600";
    options.workerCommand = [script](unsigned, const std::string &) {
        return std::vector<std::string>{"/bin/sh", "-c", script};
    };
    ShardReport report;
    EXPECT_FALSE(runShardedSweep(oneUnit(), options, report));
    EXPECT_NE(report.error.find("different sweep"), std::string::npos)
        << report.error;
}

TEST(Coordinator, EmptyUnitListIsTrivialSuccess)
{
    ShardOptions options;
    options.workers = 4;
    ShardReport report;
    EXPECT_TRUE(runShardedSweep({}, options, report));
    EXPECT_EQ(report.workersSpawned, 0u);
}

// ---------------------------------------------------------------------
// End-to-end on the real sweep_all binary
// ---------------------------------------------------------------------

pid_t
spawnSweepAll(const std::vector<std::string> &args,
              const std::string &stdoutPath = "")
{
    pid_t pid = fork();
    if (pid != 0)
        return pid;
    int devnull = open("/dev/null", O_WRONLY);
    int out = stdoutPath.empty()
                  ? devnull
                  : open(stdoutPath.c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (out >= 0)
        dup2(out, 1);
    if (devnull >= 0)
        dup2(devnull, 2);
    std::vector<char *> argv;
    static const char *bin = RVP_SWEEP_ALL_BIN;
    argv.push_back(const_cast<char *>(bin));
    for (const std::string &arg : args)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);
    execv(bin, argv.data());
    _exit(127);
}

int
waitExit(pid_t pid)
{
    int status = 0;
    if (waitpid(pid, &status, 0) != pid)
        return -9999;
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    if (WIFSIGNALED(status))
        return -WTERMSIG(status);
    return -9998;
}

/** Common deterministic-output grid options (10 runs). */
std::vector<std::string>
shardSweepArgs(const std::string &out)
{
    return {"--workloads", "go,mgrid", "--figures",       "fig05",
            "--insts",     "12000",    "--profile-insts", "12000",
            "--jobs",      "1",        "--quiet",         "--stable-output",
            "--bench-out", "",         "--max-batch-group", "3",
            "--out",       out};
}

/**
 * Find a live `sweep_all --worker` process whose argv mentions
 * `marker` (the test's unique output path), via /proc. Returns -1
 * when none exists right now.
 */
pid_t
findWorkerPid(const std::string &marker)
{
    DIR *proc = opendir("/proc");
    if (!proc)
        return -1;
    pid_t found = -1;
    while (struct dirent *entry = readdir(proc)) {
        std::string name = entry->d_name;
        if (name.find_first_not_of("0123456789") != std::string::npos)
            continue;
        std::string cmdline =
            readFile("/proc/" + name + "/cmdline");
        // argv strings are NUL-separated: match the exact --worker
        // token (not --workers) plus the marker anywhere.
        bool is_worker =
            cmdline.find(std::string("--worker") + '\0') !=
            std::string::npos;
        if (is_worker && cmdline.find(marker) != std::string::npos) {
            found = static_cast<pid_t>(std::stol(name));
            break;
        }
    }
    closedir(proc);
    return found;
}

TEST(ShardEndToEnd, TwoWorkersMatchSingleProcessByteForByte)
{
    TempDir dir;
    std::string out = dir.file("results.json");

    // Reference: single process, --jobs 1 (what sharded runs report).
    ASSERT_EQ(waitExit(spawnSweepAll(shardSweepArgs(out))), 0);
    std::string reference = readFile(out);
    ASSERT_FALSE(reference.empty());
    std::filesystem::remove(out);

    std::vector<std::string> args = shardSweepArgs(out);
    args.push_back("--workers");
    args.push_back("2");
    ASSERT_EQ(waitExit(spawnSweepAll(args)), 0);
    EXPECT_EQ(readFile(out), reference)
        << "sharded output must be byte-identical to single-process";
    // A fully successful sharded sweep cleans up ALL its journals.
    EXPECT_TRUE(findShardJournals(out + ".journal").empty());
}

TEST(ShardEndToEnd, KilledWorkerIsReassignedAndOutputIsIdentical)
{
    TempDir dir;
    std::string out = dir.file("results.json");

    ASSERT_EQ(waitExit(spawnSweepAll(shardSweepArgs(out))), 0);
    std::string reference = readFile(out);
    std::filesystem::remove(out);

    std::vector<std::string> args = shardSweepArgs(out);
    args.push_back("--workers");
    args.push_back("2");
    pid_t coord = spawnSweepAll(args);
    ASSERT_GT(coord, 0);

    // SIGKILL the first worker we can catch; the coordinator must
    // reassign its unit to a replacement. If the sweep wins the race
    // and finishes first, the identity check below still holds.
    bool killed = false;
    for (int spin = 0; spin < 150'000 && !killed; ++spin) {
        int status = 0;
        if (waitpid(coord, &status, WNOHANG) == coord) {
            EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
            coord = -1;
            break;
        }
        pid_t worker = findWorkerPid(out);
        if (worker > 0) {
            kill(worker, SIGKILL);
            killed = true;
        } else {
            usleep(1'000);
        }
    }
    if (coord > 0) {
        EXPECT_EQ(waitExit(coord), 0);
    }
    EXPECT_EQ(readFile(out), reference)
        << "output after a worker SIGKILL must still be byte-identical"
        << (killed ? "" : " (worker outraced the kill)");
}

TEST(ShardEndToEnd, KilledCoordinatorResumesAcrossShardJournals)
{
    TempDir dir;
    std::string out = dir.file("results.json");

    ASSERT_EQ(waitExit(spawnSweepAll(shardSweepArgs(out))), 0);
    std::string reference = readFile(out);
    std::filesystem::remove(out);

    auto journaledRuns = [&]() {
        std::size_t count = 0;
        for (const std::string &path :
             findShardJournals(out + ".journal")) {
            std::ifstream is(path);
            std::string line;
            while (std::getline(is, line))
                if (line.find("\"type\": \"run\"") != std::string::npos)
                    ++count;
        }
        return count;
    };

    std::vector<std::string> args = shardSweepArgs(out);
    args.push_back("--workers");
    args.push_back("2");
    pid_t coord = spawnSweepAll(args);
    ASSERT_GT(coord, 0);
    bool finished = false;
    for (int spin = 0; spin < 150'000; ++spin) {
        int status = 0;
        if (waitpid(coord, &status, WNOHANG) == coord) {
            finished = true;   // outran us; resume is then a no-op
            break;
        }
        if (journaledRuns() >= 2) {
            kill(coord, SIGKILL);
            waitExit(coord);
            break;
        }
        usleep(1'000);
    }
    if (!finished) {
        kill(coord, SIGKILL);   // idempotent
        // Orphaned workers exit once their pipes close; reap any
        // stragglers so they stop appending before the resume runs.
        for (int spin = 0; spin < 5'000; ++spin) {
            pid_t worker = findWorkerPid(out);
            if (worker < 0)
                break;
            kill(worker, SIGKILL);
            usleep(1'000);
        }
    }

    std::vector<std::string> resume = shardSweepArgs(out);
    resume.push_back("--workers");
    resume.push_back("2");
    resume.push_back("--resume");
    ASSERT_EQ(waitExit(spawnSweepAll(resume)), 0);
    EXPECT_EQ(readFile(out), reference)
        << "killed-coordinator resume must converge to the same bytes";
    EXPECT_TRUE(findShardJournals(out + ".journal").empty());
}

TEST(ShardEndToEnd, DryRunPrintsUnitsWithRunKeys)
{
    TempDir dir;
    std::string out = dir.file("results.json");
    std::string capture = dir.file("dryrun.txt");
    std::vector<std::string> args = shardSweepArgs(out);
    args.push_back("--dry-run");
    ASSERT_EQ(waitExit(spawnSweepAll(args, capture)), 0);
    std::string text = readFile(capture);
    EXPECT_NE(text.find("dry run: 10 pending of 10 runs"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("unit 0:"), std::string::npos) << text;
    EXPECT_NE(text.find("fig05/"), std::string::npos) << text;
    // Dry run must not execute anything or touch journals.
    EXPECT_FALSE(std::filesystem::exists(out));
    EXPECT_TRUE(findShardJournals(out + ".journal").empty());
}

TEST(ShardEndToEnd, BenchRowCarriesWorkersAndWallKips)
{
    TempDir dir;
    std::string out = dir.file("results.json");
    std::string bench = dir.file("bench.json");
    std::vector<std::string> args{
        "--workloads", "go",    "--figures",       "fig05",
        "--insts",     "12000", "--profile-insts", "12000",
        "--quiet",     "--out", out,
        "--bench-out", bench,   "--workers",       "2"};
    ASSERT_EQ(waitExit(spawnSweepAll(args)), 0);
    std::string row = readFile(bench);
    EXPECT_NE(row.find("\"workers\": 2"), std::string::npos) << row;
    EXPECT_NE(row.find("\"wall_kips\": "), std::string::npos) << row;
    EXPECT_NE(row.find("\"jobs\": 1"), std::string::npos) << row;
}

} // namespace
} // namespace rvp
