/**
 * @file
 * Workload validation: every SPEC95-analogue program must compile
 * through the full register-allocation + lowering pipeline, execute
 * for a substantial instruction budget without faulting, exercise
 * loads/stores/branches, and expose the value-reuse class it was
 * designed around (checked coarsely here; the profiler tests refine).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "emu/emulator.hh"
#include "workloads/workloads.hh"

namespace rvp
{
namespace
{

struct RunStats
{
    std::uint64_t insts = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t takenBranches = 0;
    std::uint64_t loadSameRegHits = 0;   // load value == old dest value
    std::set<std::uint32_t> staticTouched;
};

Program
compileWorkload(BuiltWorkload &wl)
{
    AllocResult alloc = allocateRegisters(wl.func, AllocConfig{});
    EXPECT_TRUE(alloc.success) << wl.name;
    LowerResult low = lower(wl.func, alloc);
    low.program.dataImage = wl.data;
    return low.program;
}

RunStats
runFor(const Program &prog, std::uint64_t budget)
{
    Emulator emu(prog);
    RunStats stats;
    DynInst di;
    while (stats.insts < budget && emu.step(di)) {
        ++stats.insts;
        stats.staticTouched.insert(di.staticIndex);
        if (di.isLoad()) {
            ++stats.loads;
            stats.loadSameRegHits += di.newValue == di.oldDestValue;
        }
        stats.stores += di.isStore();
        if (di.info().isCondBranch) {
            ++stats.branches;
            stats.takenBranches += di.isTaken;
        }
    }
    return stats;
}

class WorkloadFixture : public ::testing::TestWithParam<WorkloadSpec>
{};

TEST_P(WorkloadFixture, CompilesAndRuns)
{
    BuiltWorkload wl = buildWorkload(GetParam().name, InputSet::Ref);
    EXPECT_EQ(wl.name, GetParam().name);
    EXPECT_EQ(wl.isFloatingPoint, GetParam().isFloatingPoint);
    Program prog = compileWorkload(wl);
    EXPECT_GT(prog.size(), 20u);

    RunStats stats = runFor(prog, 150'000);
    // Long-running: the budget, not HALT, must end the run.
    EXPECT_EQ(stats.insts, 150'000u) << "workload ended too early";
    // A real program mix.
    EXPECT_GT(stats.loads, stats.insts / 50) << "too few loads";
    EXPECT_GT(stats.stores, 0u);
    EXPECT_GT(stats.branches, stats.insts / 100);
    EXPECT_GT(stats.takenBranches, 0u);
    EXPECT_LT(stats.takenBranches, stats.branches + 1);
    // Steady state should touch most of the emitted static code.
    EXPECT_GT(stats.staticTouched.size(), prog.size() / 3);
}

TEST_P(WorkloadFixture, TrainAndRefDiffer)
{
    BuiltWorkload train = buildWorkload(GetParam().name, InputSet::Train);
    BuiltWorkload ref = buildWorkload(GetParam().name, InputSet::Ref);
    // Same code shape (structure transfers)...
    EXPECT_EQ(train.func.numInsts(), ref.func.numInsts());
    // ...different data image (inputs genuinely differ).
    std::map<std::uint64_t, std::uint64_t> a(train.data.begin(),
                                             train.data.end());
    std::map<std::uint64_t, std::uint64_t> b(ref.data.begin(),
                                             ref.data.end());
    EXPECT_NE(a, b) << "train and ref images identical";
}

TEST_P(WorkloadFixture, DeterministicBuild)
{
    BuiltWorkload a = buildWorkload(GetParam().name, InputSet::Ref);
    BuiltWorkload c = buildWorkload(GetParam().name, InputSet::Ref);
    EXPECT_EQ(a.data, c.data);
    EXPECT_EQ(a.func.numInsts(), c.func.numInsts());
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadFixture, ::testing::ValuesIn(allWorkloads()),
    [](const ::testing::TestParamInfo<WorkloadSpec> &info) {
        return info.param.name;
    });

TEST(Workloads, RegistryComplete)
{
    EXPECT_EQ(allWorkloads().size(), 9u);
    unsigned fp = 0;
    for (const WorkloadSpec &spec : allWorkloads())
        fp += spec.isFloatingPoint;
    EXPECT_EQ(fp, 4u);   // hydro2d, mgrid, su2cor, turb3d
}

TEST(Workloads, M88ksimHasExtremeReuse)
{
    // The paper's standout: most m88ksim loads return the value the
    // destination register already holds once warmed up.
    BuiltWorkload wl = buildWorkload("m88ksim", InputSet::Ref);
    Program prog = compileWorkload(wl);
    // Warm up past guest-register convergence, then measure.
    Emulator emu(prog);
    DynInst di;
    std::uint64_t n = 0;
    while (n < 50'000 && emu.step(di))
        ++n;
    std::uint64_t loads = 0, lv_hits = 0;
    std::map<std::uint32_t, std::uint64_t> last;
    while (n < 150'000 && emu.step(di)) {
        ++n;
        if (di.isLoad()) {
            ++loads;
            auto it = last.find(di.staticIndex);
            if (it != last.end() && it->second == di.newValue)
                ++lv_hits;
            last[di.staticIndex] = di.newValue;
        }
    }
    ASSERT_GT(loads, 1000u);
    EXPECT_GT(static_cast<double>(lv_hits) / loads, 0.7);
}

TEST(Workloads, MgridLoadsMostlyZero)
{
    BuiltWorkload wl = buildWorkload("mgrid", InputSet::Ref);
    Program prog = compileWorkload(wl);
    RunStats stats;
    Emulator emu(prog);
    DynInst di;
    std::uint64_t n = 0, fp_loads = 0, zero_loads = 0;
    while (n < 150'000 && emu.step(di)) {
        ++n;
        if (di.op == Opcode::LDT) {
            ++fp_loads;
            zero_loads += di.newValue == 0;
        }
    }
    ASSERT_GT(fp_loads, 1000u);
    EXPECT_GT(static_cast<double>(zero_loads) / fp_loads, 0.5);
}

TEST(Workloads, UnknownNameFatals)
{
    EXPECT_DEATH(buildWorkload("nonesuch", InputSet::Ref), "unknown");
}

} // namespace
} // namespace rvp
