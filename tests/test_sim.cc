/**
 * @file
 * End-to-end tests of the experiment runner (the paper's evaluation
 * recipe) and the table formatter: every scheme must run on a real
 * workload, the profile must come from the train input, and the
 * qualitative results the paper leans on must hold on at least the
 * clearest workloads (m88ksim's extreme reuse; the Gabbay predictor's
 * coverage collapse).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/runner.hh"
#include "sim/tables.hh"

namespace rvp
{
namespace
{

ExperimentConfig
baseConfig(const std::string &workload)
{
    ExperimentConfig config;
    config.workload = workload;
    config.core.maxInsts = 40'000;
    config.profileInsts = 40'000;
    return config;
}

TEST(Runner, NoPredictionBaselineRuns)
{
    ExperimentResult r = runExperiment(baseConfig("ijpeg"));
    EXPECT_GE(r.committed, 40'000u);
    EXPECT_GT(r.ipc, 0.3);
    EXPECT_DOUBLE_EQ(r.predictedFrac, 0.0);
}

TEST(Runner, EverySchemeRunsOnEveryRecovery)
{
    for (VpScheme scheme : {VpScheme::Lvp, VpScheme::StaticRvp,
                            VpScheme::DynamicRvp, VpScheme::GabbayRp}) {
        for (RecoveryPolicy recovery :
             {RecoveryPolicy::Refetch, RecoveryPolicy::Reissue,
              RecoveryPolicy::Selective}) {
            ExperimentConfig config = baseConfig("m88ksim");
            config.core.maxInsts = 20'000;
            config.profileInsts = 20'000;
            config.scheme = scheme;
            config.assist = AssistLevel::Dead;
            config.core.recovery = recovery;
            ExperimentResult r = runExperiment(config);
            EXPECT_GE(r.committed, 20'000u)
                << static_cast<int>(scheme) << "/"
                << static_cast<int>(recovery);
            EXPECT_GT(r.ipc, 0.2);
        }
    }
}

TEST(Runner, M88ksimDrvpHasHighCoverageAndAccuracy)
{
    ExperimentConfig config = baseConfig("m88ksim");
    config.scheme = VpScheme::DynamicRvp;
    config.assist = AssistLevel::DeadLv;
    config.loadsOnly = false;
    ExperimentResult r = runExperiment(config);
    // Paper Table 2 reports m88k at 29-57% of instructions predicted
    // with ~99.9% accuracy; our synthetic analogue lands in the same
    // regime (tens of percent coverage at >93% accuracy).
    EXPECT_GT(r.predictedFrac, 0.15);
    EXPECT_GT(r.accuracy, 0.93);
}

TEST(Runner, GabbayCoverageCollapses)
{
    ExperimentConfig drvp = baseConfig("m88ksim");
    drvp.scheme = VpScheme::DynamicRvp;
    drvp.loadsOnly = false;
    ExperimentResult r_drvp = runExperiment(drvp);

    ExperimentConfig grp = baseConfig("m88ksim");
    grp.scheme = VpScheme::GabbayRp;
    grp.loadsOnly = false;
    ExperimentResult r_grp = runExperiment(grp);

    // Table 2's contrast: register-indexed counters lose most of the
    // coverage that PC-indexed counters achieve.
    EXPECT_LT(r_grp.predictedFrac, r_drvp.predictedFrac * 0.6);
}

TEST(Runner, DynamicRvpHelpsM88ksim)
{
    ExperimentConfig base = baseConfig("m88ksim");
    ExperimentResult no_pred = runExperiment(base);

    ExperimentConfig drvp = baseConfig("m88ksim");
    drvp.scheme = VpScheme::DynamicRvp;
    drvp.assist = AssistLevel::DeadLv;
    drvp.loadsOnly = false;
    ExperimentResult with_pred = runExperiment(drvp);

    EXPECT_GT(with_pred.ipc, no_pred.ipc);
}

TEST(Runner, StaticRvpAccuracyHigh)
{
    ExperimentConfig config = baseConfig("ijpeg");
    config.scheme = VpScheme::StaticRvp;
    config.assist = AssistLevel::Dead;
    ExperimentResult r = runExperiment(config);
    if (r.predictedFrac > 0.005) {
        // Profile-selected loads at an 80% threshold: accuracy should
        // transfer from train to ref.
        EXPECT_GT(r.accuracy, 0.7);
    }
}

TEST(Runner, RealisticReallocRuns)
{
    ExperimentConfig config = baseConfig("li");
    config.scheme = VpScheme::DynamicRvp;
    config.loadsOnly = false;
    config.realisticRealloc = true;
    ExperimentResult r = runExperiment(config);
    EXPECT_GE(r.committed, 40'000u);
    EXPECT_GT(r.ipc, 0.2);
}

TEST(Runner, ProfileWorkloadProducesFigure1Data)
{
    ReuseProfile p = profileWorkload("mgrid", 60'000, InputSet::Ref);
    EXPECT_GT(p.loadExecs, 0u);
    // mgrid is mostly zeros: the register file almost always holds the
    // loaded value somewhere.
    double any = static_cast<double>(p.loadAnyReg) /
                 static_cast<double>(p.loadExecs);
    EXPECT_GT(any, 0.5);
}

TEST(Tables, FormatsAligned)
{
    TextTable table;
    table.setHeader({"prog", "ipc", "speedup"});
    table.addRow({"go", TextTable::num(1.234), TextTable::percent(0.052)});
    table.addRow({"hydro2d", TextTable::num(2.5), "-"});
    std::ostringstream os;
    table.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("prog"), std::string::npos);
    EXPECT_NE(text.find("1.234"), std::string::npos);
    EXPECT_NE(text.find("5.2%"), std::string::npos);
    EXPECT_NE(text.find("----"), std::string::npos);
    // Columns align: "ipc" starts at the same offset in both rows.
    std::size_t header_pos = text.find("ipc");
    std::size_t row_pos = text.find("1.234");
    std::size_t line_start_header = text.rfind('\n', header_pos);
    std::size_t line_start_row = text.rfind('\n', row_pos);
    EXPECT_EQ(header_pos - line_start_header, row_pos - line_start_row);
}

TEST(Tables, NumPrecision)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
    EXPECT_EQ(TextTable::percent(0.1234, 2), "12.34%");
}

} // namespace
} // namespace rvp
