/**
 * @file
 * Additional out-of-order-core tests: structural limits (physical
 * registers, LSQ, ROB, fetch bandwidth), store-to-load forwarding,
 * I-cache stalls, determinism, and the aggressive 16-wide
 * configuration's parameters.
 */

#include <gtest/gtest.h>

#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "uarch/core.hh"
#include "vp/oracle.hh"
#include "workloads/workloads.hh"

namespace rvp
{
namespace
{

StaticInst
opImm(Opcode op, RegIndex rc, RegIndex ra, std::int32_t imm)
{
    StaticInst si;
    si.op = op;
    si.rc = rc;
    si.ra = ra;
    si.useImm = true;
    si.imm = imm;
    return si;
}

StaticInst
lda(RegIndex rc, std::int32_t imm)
{
    return opImm(Opcode::LDA, rc, zeroReg, imm);
}

StaticInst
branch(Opcode op, RegIndex ra, std::int32_t disp)
{
    StaticInst si;
    si.op = op;
    si.ra = ra;
    si.imm = disp;
    return si;
}

StaticInst
haltInst()
{
    StaticInst si;
    si.op = Opcode::HALT;
    return si;
}

CoreResult
runProgram(const Program &prog, CoreParams params = CoreParams::table1(),
           VpConfig vp = {})
{
    auto predictor = makePredictor(vp, prog);
    Core core(params, prog, *predictor);
    return core.run();
}

TEST(CoreParams, AggressiveDoublesResources)
{
    CoreParams base = CoreParams::table1();
    CoreParams wide = CoreParams::aggressive16();
    EXPECT_EQ(wide.fetchWidth, base.fetchWidth * 2);
    EXPECT_EQ(wide.intIqEntries, base.intIqEntries * 2);
    EXPECT_EQ(wide.fpIqEntries, base.fpIqEntries * 2);
    EXPECT_EQ(wide.intFus, base.intFus * 2);
    EXPECT_EQ(wide.fpFus, base.fpFus * 2);
    EXPECT_EQ(wide.fetchBlocks, 3u);   // three basic blocks per cycle
    EXPECT_GT(wide.physIntRegs, base.physIntRegs);
    EXPECT_EQ(wide.robEntries, base.robEntries * 2);
}

TEST(Core, StoreForwardingBeatsCacheAccess)
{
    // store then immediately load the same address in a loop: every
    // load must forward from the in-flight/committed store.
    Program prog;
    StaticInst store;
    store.op = Opcode::STQ;
    store.rb = 2;
    store.ra = 5;
    store.imm = 0;
    StaticInst load;
    load.op = Opcode::LDQ;
    load.rc = 3;
    load.ra = 5;
    load.imm = 0;
    prog.insts = {
        lda(1, 3000),
        lda(5, static_cast<std::int32_t>(Program::dataBase >> 13)),
        opImm(Opcode::SLL, 5, 5, 13),
        opImm(Opcode::ADDQ, 2, 2, 1),   // 3: data changes
        store,                           // 4
        load,                            // 5
        opImm(Opcode::SUBQ, 1, 1, 1),    // 6
        branch(Opcode::BNE, 1, -4),      // 7 -> 3
        haltInst(),
    };
    CoreResult r = runProgram(prog);
    EXPECT_GT(r.stats.get("core.store_forwards"), 2000.0);
}

TEST(Core, PhysicalRegisterLimitStallsRename)
{
    // Long-latency producers hold physical registers; a tiny register
    // file must throttle dispatch.
    Program prog;
    prog.insts.push_back(lda(1, 3000));
    for (RegIndex r = 2; r < 12; ++r)
        prog.insts.push_back(opImm(Opcode::MULQ, r, r, 3));
    prog.insts.push_back(opImm(Opcode::SUBQ, 1, 1, 1));
    prog.insts.push_back(branch(Opcode::BNE, 1, -12));
    prog.insts.push_back(haltInst());

    CoreParams tight = CoreParams::table1();
    tight.physIntRegs = 40;   // 32 architectural + 8 rename
    CoreResult tight_r = runProgram(prog, tight);
    CoreResult ample_r = runProgram(prog);
    EXPECT_GT(tight_r.stats.get("core.phys_reg_stalls"), 100.0);
    EXPECT_GT(tight_r.cycles, ample_r.cycles);
}

TEST(Core, LsqLimitStallsMemOps)
{
    // A burst of independent loads: a tiny LSQ throttles them.
    Program prog;
    prog.insts.push_back(lda(1, 2000));
    prog.insts.push_back(
        lda(5, static_cast<std::int32_t>(Program::dataBase >> 13)));
    prog.insts.push_back(opImm(Opcode::SLL, 5, 5, 13));
    for (unsigned i = 0; i < 8; ++i) {
        StaticInst load;
        load.op = Opcode::LDQ;
        load.rc = static_cast<RegIndex>(6 + i);
        load.ra = 5;
        load.imm = static_cast<std::int32_t>(8 * i);
        prog.insts.push_back(load);
    }
    prog.insts.push_back(opImm(Opcode::SUBQ, 1, 1, 1));
    prog.insts.push_back(branch(Opcode::BNE, 1, -10));
    prog.insts.push_back(haltInst());

    CoreParams tight = CoreParams::table1();
    tight.lsqEntries = 4;
    CoreResult tight_r = runProgram(prog, tight);
    CoreResult ample_r = runProgram(prog);
    EXPECT_GT(tight_r.stats.get("core.lsq_full_stalls"), 100.0);
    EXPECT_GE(tight_r.cycles, ample_r.cycles);
}

TEST(Core, RobLimitCapsWindow)
{
    Program prog;
    // Independent long-latency divides: a large window overlaps many
    // of them; a 16-entry ROB can barely hold one loop iteration.
    prog.insts.push_back(lda(1, 1000));
    StaticInst div;
    div.op = Opcode::DIVT;
    div.rc = fpBase + 1;
    div.ra = fpBase + 3;   // f3 is never written: iterations independent
    div.rb = fpBase + 2;
    prog.insts.push_back(div);
    for (RegIndex r = 2; r < 8; ++r)
        prog.insts.push_back(opImm(Opcode::ADDQ, r, r, 1));
    prog.insts.push_back(opImm(Opcode::SUBQ, 1, 1, 1));
    prog.insts.push_back(branch(Opcode::BNE, 1, -9));
    prog.insts.push_back(haltInst());

    CoreParams tiny = CoreParams::table1();
    tiny.robEntries = 16;
    CoreResult tiny_r = runProgram(prog, tiny);
    CoreResult big_r = runProgram(prog);
    EXPECT_GT(tiny_r.stats.get("core.rob_full_stalls"), 100.0);
    EXPECT_GT(tiny_r.cycles, big_r.cycles);
}

TEST(Core, FetchBlocksLimitMattersForBranchyLoops)
{
    // A loop whose body contains an extra taken branch: two basic
    // blocks per iteration. The 1-block/cycle front end needs two
    // fetch cycles per iteration; the 3-block front end keeps up with
    // the 1-iteration/cycle subq chain.
    Program prog;
    prog.insts = {
        lda(1, 10000),
        // loop head (1):
        opImm(Opcode::ADDQ, 2, 2, 1),
        branch(Opcode::BR, regNone, 1),      // jump over the dead slot
        opImm(Opcode::ADDQ, 3, 3, 1),        // (skipped)
        opImm(Opcode::ADDQ, 4, 4, 1),        // 4: join
        opImm(Opcode::SUBQ, 1, 1, 1),
        branch(Opcode::BNE, 1, -6),
        haltInst(),
    };
    CoreParams one = CoreParams::table1();
    CoreParams three = CoreParams::table1();
    three.fetchBlocks = 3;
    CoreResult one_r = runProgram(prog, one);
    CoreResult three_r = runProgram(prog, three);
    EXPECT_LT(static_cast<double>(three_r.cycles),
              static_cast<double>(one_r.cycles) * 0.8);
}

TEST(Core, IcacheMissesStallFetch)
{
    // A loop body larger than the 32KB L1I (8192 instructions) misses
    // the instruction cache continuously.
    Program prog;
    prog.insts.push_back(lda(1, 60));
    for (unsigned i = 0; i < 9000; ++i)
        prog.insts.push_back(opImm(Opcode::ADDQ, 2, 2, 1));
    prog.insts.push_back(opImm(Opcode::SUBQ, 1, 1, 1));
    prog.insts.push_back(
        branch(Opcode::BNE, 1, -static_cast<std::int32_t>(9002)));
    prog.insts.push_back(haltInst());
    CoreResult r = runProgram(prog);
    EXPECT_GT(r.stats.get("l1i.misses"), 5000.0);
    EXPECT_GT(r.stats.get("core.icache_miss_stalls"), 1000.0);
    EXPECT_LT(r.ipc, 4.0);   // fetch-starved
}

TEST(Core, DeterministicAcrossRuns)
{
    BuiltWorkload wl = buildWorkload("perl", InputSet::Ref);
    AllocResult alloc = allocateRegisters(wl.func, AllocConfig{});
    ASSERT_TRUE(alloc.success);
    LowerResult low = lower(wl.func, alloc);
    low.program.dataImage = wl.data;
    CoreParams params = CoreParams::table1();
    params.maxInsts = 30'000;
    VpConfig vp;
    vp.scheme = VpScheme::DynamicRvp;
    vp.loadsOnly = false;
    CoreResult a = runProgram(low.program, params, vp);
    CoreResult c = runProgram(low.program, params, vp);
    EXPECT_EQ(a.cycles, c.cycles);
    EXPECT_EQ(a.committed, c.committed);
    EXPECT_EQ(a.stats.get("vp.predictions"), c.stats.get("vp.predictions"));
}

TEST(Core, RefetchRecoveryReplaysExactly)
{
    // Under heavy value misprediction with refetch recovery, the
    // committed stream must still be the functional stream (same
    // count, correct halt).
    Program prog;
    StaticInst load;
    load.op = Opcode::LDQ;
    load.rc = 5;
    load.ra = 5;
    load.imm = 0;
    prog.insts = {
        lda(1, 2000),
        lda(5, static_cast<std::int32_t>(Program::dataBase >> 13)),
        opImm(Opcode::SLL, 5, 5, 13),
        load,
        opImm(Opcode::ADDQ, 6, 5, 1),
        opImm(Opcode::SUBQ, 1, 1, 1),
        branch(Opcode::BNE, 1, -4),
        haltInst(),
    };
    // Two-element pointer cycle with periodic stability: A -> A for a
    // while is impossible with static data, so use the alternating
    // cycle plus a low threshold to force real mispredicted uses.
    prog.dataImage = {{Program::dataBase, Program::dataBase + 64},
                      {Program::dataBase + 64, Program::dataBase}};
    CoreParams params = CoreParams::table1();
    params.recovery = RecoveryPolicy::Refetch;
    VpConfig vp;
    vp.scheme = VpScheme::DynamicRvp;
    vp.threshold = 1;
    vp.counterBits = 3;
    CoreResult base = runProgram(prog);
    CoreResult r = runProgram(prog, params, vp);
    EXPECT_EQ(r.committed, base.committed);
}

TEST(Core, HaltDrainsCleanly)
{
    Program prog;
    prog.insts = {lda(1, 1), haltInst()};
    CoreResult r = runProgram(prog);
    EXPECT_EQ(r.committed, 2u);
    // One cold I-cache miss (1+20+80 cycles) plus the pipeline drain.
    EXPECT_LT(r.cycles, 130u);
}

TEST(Core, SixteenWideBeatsEightWideOnWorkloads)
{
    unsigned wins = 0, total = 0;
    for (const char *name : {"m88ksim", "turb3d", "ijpeg"}) {
        BuiltWorkload wl = buildWorkload(name, InputSet::Ref);
        AllocResult alloc = allocateRegisters(wl.func, AllocConfig{});
        LowerResult low = lower(wl.func, alloc);
        low.program.dataImage = wl.data;
        CoreParams narrow = CoreParams::table1();
        narrow.maxInsts = 30'000;
        CoreParams wide = CoreParams::aggressive16();
        wide.maxInsts = 30'000;
        CoreResult n = runProgram(low.program, narrow);
        CoreResult w = runProgram(low.program, wide);
        ++total;
        wins += w.ipc > n.ipc;
    }
    EXPECT_EQ(wins, total);
}

} // namespace
} // namespace rvp
