/**
 * @file
 * Property stress test: random (terminating) programs are compiled and
 * run through the out-of-order core under every value-prediction
 * scheme and recovery policy. Invariants checked per run:
 *
 *  - the core commits exactly the functional instruction stream
 *    (count equality with the emulator; the stream itself is shared by
 *    construction),
 *  - runs are deterministic,
 *  - predictor accounting is consistent (correct <= predicted <=
 *    eligible <= committed),
 *  - the core terminates without the deadlock watchdog firing.
 *
 * These random programs exercise branches, loads/stores with aliasing
 * addresses, fp chains, and calls, so they reach pipeline corners the
 * hand-written tests don't.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "emu/emulator.hh"
#include "uarch/core.hh"
#include "vp/oracle.hh"

namespace rvp
{
namespace
{

/** Build a random structured program (nested loops, memory, fp). */
Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    IRFunction func;
    IRBuilder b(func);

    VReg base = func.newIntVReg();
    VReg outer = func.newIntVReg();
    VReg inner = func.newIntVReg();
    std::vector<VReg> ints, fps;
    for (int i = 0; i < 6; ++i)
        ints.push_back(func.newIntVReg());
    for (int i = 0; i < 4; ++i)
        fps.push_back(func.newFpVReg());

    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    for (VReg v : ints)
        b.loadImm(v, static_cast<std::int32_t>(rng.nextRange(-50, 50)));
    b.loadImm(outer, static_cast<std::int32_t>(rng.nextRange(20, 60)));

    BlockId outer_head = b.startBlock();
    b.loadImm(inner, static_cast<std::int32_t>(rng.nextRange(3, 10)));
    BlockId inner_head = b.startBlock();

    unsigned body = 4 + static_cast<unsigned>(rng.nextBelow(10));
    for (unsigned i = 0; i < body; ++i) {
        switch (rng.nextBelow(7)) {
          case 0: {
            // integer op
            VReg d = ints[rng.nextBelow(ints.size())];
            VReg s1 = ints[rng.nextBelow(ints.size())];
            VReg s2 = ints[rng.nextBelow(ints.size())];
            Opcode ops[] = {Opcode::ADDQ, Opcode::SUBQ, Opcode::XOR,
                            Opcode::AND, Opcode::CMPLT};
            b.op3(ops[rng.nextBelow(5)], d, s1, s2);
            break;
          }
          case 1: {
            // store to a small aliasing window
            VReg s = ints[rng.nextBelow(ints.size())];
            b.store(s, base,
                    static_cast<std::int32_t>(8 * rng.nextBelow(8)));
            break;
          }
          case 2: {
            // load from the same window (store->load aliasing)
            VReg d = ints[rng.nextBelow(ints.size())];
            b.load(d, base,
                   static_cast<std::int32_t>(8 * rng.nextBelow(8)));
            break;
          }
          case 3: {
            // fp chain link
            VReg d = fps[rng.nextBelow(fps.size())];
            VReg s1 = fps[rng.nextBelow(fps.size())];
            VReg s2 = fps[rng.nextBelow(fps.size())];
            Opcode ops[] = {Opcode::ADDT, Opcode::SUBT, Opcode::MULT};
            b.op3(ops[rng.nextBelow(3)], d, s1, s2);
            break;
          }
          case 4: {
            // fp load/store
            VReg d = fps[rng.nextBelow(fps.size())];
            if (rng.chance(1, 2))
                b.load(d, base,
                       static_cast<std::int32_t>(64 +
                                                 8 * rng.nextBelow(8)));
            else
                b.store(d, base,
                        static_cast<std::int32_t>(
                            64 + 8 * rng.nextBelow(8)));
            break;
          }
          case 5: {
            // data-dependent forward branch over one instruction
            VReg s = ints[rng.nextBelow(ints.size())];
            BlockId skip = b.label();
            Opcode ops[] = {Opcode::BEQ, Opcode::BNE, Opcode::BLT,
                            Opcode::BGE};
            b.branch(ops[rng.nextBelow(4)], s, skip);
            b.startBlock();
            b.opImm(Opcode::ADDQ, ints[rng.nextBelow(ints.size())],
                    ints[rng.nextBelow(ints.size())],
                    static_cast<std::int32_t>(rng.nextRange(-3, 3)));
            b.place(skip);
            break;
          }
          default: {
            // immediate op
            VReg d = ints[rng.nextBelow(ints.size())];
            b.opImm(Opcode::ADDQ, d, ints[rng.nextBelow(ints.size())],
                    static_cast<std::int32_t>(rng.nextRange(-7, 7)));
            break;
          }
        }
    }

    b.opImm(Opcode::SUBQ, inner, inner, 1);
    b.branch(Opcode::BNE, inner, inner_head);
    b.startBlock();
    b.opImm(Opcode::SUBQ, outer, outer, 1);
    b.branch(Opcode::BNE, outer, outer_head);
    b.startBlock();
    b.halt();
    func.numberInsts();

    AllocResult alloc = allocateRegisters(func, AllocConfig{});
    EXPECT_TRUE(alloc.success);
    LowerResult low = lower(func, alloc);
    // Seed the aliasing window with random data.
    for (unsigned i = 0; i < 16; ++i)
        low.program.dataImage.push_back(
            {Program::dataBase + 8ull * i, rng.next()});
    return low.program;
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(PipelineProperty, CoreMatchesEmulatorUnderAllSchemes)
{
    for (std::uint64_t sub = 0; sub < 4; ++sub) {
        std::uint64_t seed = GetParam() * 100 + sub;
        Program prog = randomProgram(seed);

        // Functional reference count.
        Emulator emu(prog);
        DynInst di;
        std::uint64_t functional = 0;
        while (functional < 500'000 && emu.step(di))
            ++functional;
        ASSERT_TRUE(emu.halted()) << "seed " << seed;

        for (VpScheme scheme : {VpScheme::None, VpScheme::Lvp,
                                VpScheme::DynamicRvp, VpScheme::GabbayRp}) {
            for (RecoveryPolicy recovery :
                 {RecoveryPolicy::Refetch, RecoveryPolicy::Reissue,
                  RecoveryPolicy::Selective}) {
                VpConfig vp;
                vp.scheme = scheme;
                vp.loadsOnly = false;
                vp.threshold = 3;   // aggressive: force recoveries
                auto predictor = makePredictor(vp, prog);
                CoreParams params = CoreParams::table1();
                params.recovery = recovery;
                Core core(params, prog, *predictor);
                CoreResult r = core.run();

                EXPECT_EQ(r.committed, functional)
                    << "seed " << seed << " scheme "
                    << static_cast<int>(scheme) << " recovery "
                    << static_cast<int>(recovery);
                double eligible = r.stats.get("vp.eligible");
                double predicted = r.stats.get("vp.predictions");
                double correct = r.stats.get("vp.correct");
                EXPECT_LE(correct, predicted);
                EXPECT_LE(predicted, eligible);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

} // namespace
} // namespace rvp
