/**
 * @file
 * Tests for the register-reuse profiler and the critical-path
 * profiler: carefully constructed programs with known reuse patterns
 * must be classified into the right lists (same register, dead
 * register, live register, last value), with the right primary
 * producers, and the Figure-1 aggregates must be ordered correctly.
 */

#include <gtest/gtest.h>

#include "compiler/arch_liveness.hh"
#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "emu/emulator.hh"
#include "profile/critical_path.hh"
#include "profile/reuse_profiler.hh"
#include "workloads/workloads.hh"

namespace rvp
{
namespace
{

struct Compiled
{
    IRFunction func;
    AllocResult alloc;
    LowerResult low;
};

void
compileInto(Compiled &c, const std::vector<std::pair<std::uint64_t,
            std::uint64_t>> &data)
{
    c.alloc = allocateRegisters(c.func, AllocConfig{});
    ASSERT_TRUE(c.alloc.success);
    c.low = lower(c.func, c.alloc);
    c.low.program.dataImage = data;
}

ReuseProfile
profileRun(const Compiled &c, std::uint64_t budget)
{
    std::vector<std::uint64_t> live =
        archLiveBefore(c.func, c.alloc, c.low);
    ReuseProfiler profiler(c.low.program, live);
    Emulator emu(c.low.program);
    DynInst di;
    std::uint64_t n = 0;
    while (n < budget) {
        ArchState pre = emu.state();
        if (!emu.step(di))
            break;
        profiler.observe(di, pre);
        ++n;
    }
    return profiler.finish();
}

/** Find the static index of the n-th load in a program. */
std::uint32_t
nthLoad(const Program &prog, unsigned n)
{
    for (std::uint32_t s = 0; s < prog.size(); ++s) {
        if (prog.at(s).info().isLoad) {
            if (n == 0)
                return s;
            --n;
        }
    }
    return UINT32_MAX;
}

TEST(ReuseProfiler, SameRegisterReuseDetected)
{
    // A load in a loop whose value never changes and whose destination
    // register is not redefined: pure same-register reuse.
    Compiled c;
    IRBuilder b(c.func);
    VReg base = c.func.newIntVReg();
    VReg i = c.func.newIntVReg();
    VReg x = c.func.newIntVReg();
    VReg sum = c.func.newIntVReg();
    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.loadImm(i, 100);
    b.loadImm(sum, 0);
    BlockId head = b.startBlock();
    b.load(x, base, 0);                 // always 77
    b.op3(Opcode::ADDQ, sum, sum, x);
    b.opImm(Opcode::SUBQ, i, i, 1);
    b.branch(Opcode::BNE, i, head);
    b.startBlock();
    b.store(sum, base, 8);
    b.halt();
    c.func.numberInsts();
    compileInto(c, {{Program::dataBase, 77}});

    ReuseProfile profile = profileRun(c, 100000);
    std::uint32_t load = nthLoad(c.low.program, 0);
    const InstReuseCounts &counts = profile.counts[load];
    EXPECT_EQ(counts.execs, 100u);
    // First execution misses (register held something else); the other
    // 99 hit.
    EXPECT_GE(counts.sameRegHits, 99u);
    EXPECT_GE(counts.lastValueHits, 99u);
    EXPECT_GT(profile.bestRate(load, AssistLevel::Same), 0.98);
}

TEST(ReuseProfiler, DeadRegisterCorrelationDetected)
{
    // A producer writes 42 and dies; the load later produces 42 into a
    // register that was just clobbered with a varying value (so
    // same-register reuse fails) and whose live range wraps the back
    // edge (so the allocator cannot merge it with the producer by
    // accident — they interfere).
    Compiled c;
    IRBuilder b(c.func);
    VReg base = c.func.newIntVReg();
    VReg i = c.func.newIntVReg();
    VReg sum = c.func.newIntVReg();
    VReg producer = c.func.newIntVReg();
    VReg consumer = c.func.newIntVReg();
    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.loadImm(i, 100);
    b.loadImm(sum, 0);
    b.loadImm(consumer, 0);
    BlockId head = b.startBlock();
    b.op3(Opcode::ADDQ, sum, sum, consumer);
    b.loadImm(producer, 42);
    b.move(consumer, i);    // producer live across this def: the two
                            // registers interfere and get distinct colours
    b.store(consumer, base, 32);
    b.store(producer, base, 0);         // last use: producer dies
    b.load(consumer, base, 0);          // loads 42 into another reg
    b.store(consumer, base, 8);
    b.opImm(Opcode::SUBQ, i, i, 1);
    b.branch(Opcode::BNE, i, head);
    b.startBlock();
    b.store(sum, base, 16);
    b.halt();
    c.func.numberInsts();
    compileInto(c, {});

    ReuseProfile profile = profileRun(c, 100000);
    std::uint32_t load = nthLoad(c.low.program, 0);
    ASSERT_NE(c.alloc.colorOf[producer], c.alloc.colorOf[consumer]);

    // Same-register reuse must be dead (register just clobbered)...
    EXPECT_LT(profile.bestRate(load, AssistLevel::Same), 0.1);
    // ...but the Dead assist level finds the producer's register.
    StaticPredSpec spec = profile.bestSpec(load, AssistLevel::Dead);
    ASSERT_EQ(spec.source, PredSource::OtherReg);
    EXPECT_EQ(spec.reg, c.alloc.colorOf[producer]);
    EXPECT_GT(profile.bestRate(load, AssistLevel::Dead), 0.98);
    // The primary producer must be the LDA writing 42.
    auto it = profile.primaryProducer.find(
        ReuseProfile::producerKey(load, spec.reg));
    ASSERT_NE(it, profile.primaryProducer.end());
    EXPECT_EQ(c.low.program.at(it->second).op, Opcode::LDA);
    EXPECT_EQ(c.low.program.at(it->second).imm, 42);
}

TEST(ReuseProfiler, LiveRegisterRequiresLiveLevel)
{
    // The correlated register stays live past the consumer: only the
    // Live assist level may exploit it. The consumer's own register is
    // redefined each iteration with a different value first, so
    // same-register reuse fails.
    Compiled c;
    IRBuilder b(c.func);
    VReg base = c.func.newIntVReg();
    VReg i = c.func.newIntVReg();
    VReg corr = c.func.newIntVReg();    // live-correlated register
    VReg consumer = c.func.newIntVReg();
    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.loadImm(i, 100);
    b.loadImm(corr, 55);
    BlockId head = b.startBlock();
    b.move(consumer, i);                 // clobber with varying value
    b.store(consumer, base, 8);
    b.load(consumer, base, 0);           // always 55 == corr
    b.store(consumer, base, 16);
    b.store(corr, base, 24);             // corr stays live (loop-carried)
    b.opImm(Opcode::SUBQ, i, i, 1);
    b.branch(Opcode::BNE, i, head);
    b.startBlock();
    b.halt();
    c.func.numberInsts();
    compileInto(c, {{Program::dataBase, 55}});

    ReuseProfile profile = profileRun(c, 100000);
    std::uint32_t load = nthLoad(c.low.program, 0);

    EXPECT_LT(profile.bestRate(load, AssistLevel::Same), 0.1);
    // Dead level cannot see it (corr is live)...
    StaticPredSpec dead_spec = profile.bestSpec(load, AssistLevel::Dead);
    EXPECT_NE(dead_spec.reg, c.alloc.colorOf[corr]);
    // ...but Live level can.
    StaticPredSpec live_spec = profile.bestSpec(load, AssistLevel::Live);
    ASSERT_EQ(live_spec.source, PredSource::OtherReg);
    EXPECT_EQ(live_spec.reg, c.alloc.colorOf[corr]);
    EXPECT_GT(profile.bestRate(load, AssistLevel::Live), 0.98);
}

TEST(ReuseProfiler, LastValueRequiresLvLevel)
{
    // The load's value repeats per PC, but its destination register is
    // redefined (with a different value) between executions — the
    // paper's Figure 2(c) pattern. Only the *lv* levels see it.
    Compiled c;
    IRBuilder b(c.func);
    VReg base = c.func.newIntVReg();
    VReg i = c.func.newIntVReg();
    VReg x = c.func.newIntVReg();
    VReg y = c.func.newIntVReg();
    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.loadImm(i, 100);
    BlockId head = b.startBlock();
    b.load(x, base, 0);                 // always 99
    b.op3(Opcode::ADDQ, y, x, i);
    b.store(y, base, 8);
    b.move(x, i);                        // redefine x: kills same-reg reuse
    b.store(x, base, 16);
    b.opImm(Opcode::SUBQ, i, i, 1);
    b.branch(Opcode::BNE, i, head);
    b.startBlock();
    b.halt();
    c.func.numberInsts();
    compileInto(c, {{Program::dataBase, 99}});

    ReuseProfile profile = profileRun(c, 100000);
    std::uint32_t load = nthLoad(c.low.program, 0);

    EXPECT_LT(profile.bestRate(load, AssistLevel::Same), 0.1);
    StaticPredSpec spec = profile.bestSpec(load, AssistLevel::DeadLv);
    EXPECT_EQ(spec.source, PredSource::LastValue);
    EXPECT_GT(profile.bestRate(load, AssistLevel::DeadLv), 0.98);
}

TEST(ReuseProfiler, Figure1ColumnsAreMonotone)
{
    // same <= dead <= any <= reg-or-lv, on every workload.
    for (const WorkloadSpec &ws : allWorkloads()) {
        BuiltWorkload wl = buildWorkload(ws.name, InputSet::Train);
        Compiled c;
        c.func = std::move(wl.func);
        compileInto(c, wl.data);
        ReuseProfile p = profileRun(c, 120000);
        EXPECT_GT(p.loadExecs, 0u) << ws.name;
        EXPECT_LE(p.loadSameReg, p.loadDeadReg) << ws.name;
        EXPECT_LE(p.loadDeadReg, p.loadAnyReg) << ws.name;
        EXPECT_LE(p.loadAnyReg, p.loadRegOrLv) << ws.name;
        EXPECT_LE(p.loadRegOrLv, p.loadExecs) << ws.name;
    }
}

TEST(ReuseProfiler, BuildSpecsKeepsUnlistedAsSameReg)
{
    BuiltWorkload wl = buildWorkload("go", InputSet::Train);
    Compiled c;
    c.func = std::move(wl.func);
    compileInto(c, wl.data);
    ReuseProfile p = profileRun(c, 50000);
    auto specs = p.buildSpecs(AssistLevel::Dead, 0.8);
    ASSERT_EQ(specs.size(), c.low.program.size());
    unsigned other = 0;
    for (std::uint32_t s = 0; s < specs.size(); ++s) {
        if (specs[s].source == PredSource::OtherReg) {
            ++other;
            // Every OtherReg spec must clear the threshold.
            EXPECT_GE(p.bestRate(s, AssistLevel::Dead), 0.8);
        } else {
            EXPECT_EQ(specs[s].source, PredSource::SameReg);
        }
    }
    // Dead level never emits LastValue specs.
    for (const auto &spec : specs)
        EXPECT_NE(spec.source, PredSource::LastValue);
}

TEST(ReuseProfiler, SelectStaticLoadsHonoursThreshold)
{
    BuiltWorkload wl = buildWorkload("m88ksim", InputSet::Train);
    Compiled c;
    c.func = std::move(wl.func);
    compileInto(c, wl.data);
    ReuseProfile p = profileRun(c, 50000);
    auto strict = p.selectStaticLoads(AssistLevel::Same, 0.9);
    auto loose = p.selectStaticLoads(AssistLevel::Same, 0.8);
    auto assisted = p.selectStaticLoads(AssistLevel::DeadLv, 0.8);
    EXPECT_LE(strict.size(), loose.size());
    EXPECT_LE(loose.size(), assisted.size());
    EXPECT_FALSE(assisted.empty());
    for (std::uint32_t s : strict)
        EXPECT_TRUE(c.low.program.at(s).info().isLoad);
}

TEST(CriticalPath, ChainLeaderScoresHighest)
{
    // One long dependence chain plus independent noise: the chain's
    // instruction must collect (almost) all the frontier credit.
    Program prog;
    auto op = [&](Opcode o, RegIndex rc, RegIndex ra, std::int32_t imm) {
        StaticInst si;
        si.op = o;
        si.rc = rc;
        si.ra = ra;
        si.useImm = true;
        si.imm = imm;
        prog.insts.push_back(si);
    };
    // 0: chain head; 1: chain link (self-dependent); 2: independent.
    op(Opcode::LDA, 1, zeroReg, 5);
    op(Opcode::ADDQ, 1, 1, 1);
    op(Opcode::LDA, 2, zeroReg, 3);

    CriticalPathProfiler cp(prog.size());
    DynInst di;
    di.op = Opcode::ADDQ;
    for (int iter = 0; iter < 100; ++iter) {
        di.staticIndex = 1;
        di.srcA = 1;
        di.dest = 1;
        cp.observe(di);
        di.staticIndex = 2;
        di.srcA = regNone;
        di.dest = 2;
        cp.observe(di);
        di.srcA = 1;
        di.dest = 1;
    }
    EXPECT_GT(cp.scores()[1], cp.scores()[2] * 10);
}

} // namespace
} // namespace rvp
