/**
 * @file
 * Unit and property tests for the compiler: interference construction,
 * graph-colouring allocation (including forced spilling), lowering,
 * and the RVP reallocation pass. The central property: a program
 * compiled with ample registers and the same program compiled with a
 * starved register file (forcing spills) must produce identical
 * architectural results when executed.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "compiler/interference.hh"
#include "compiler/lower.hh"
#include "compiler/regalloc.hh"
#include "compiler/rvp_realloc.hh"
#include "emu/emulator.hh"
#include "ir/dominators.hh"
#include "ir/loops.hh"

namespace rvp
{
namespace
{

/** Run a program and collect its final stores into data memory. */
std::map<std::uint64_t, std::uint64_t>
runAndCapture(const Program &prog, const std::vector<std::uint64_t> &addrs,
              std::uint64_t max_steps = 200000)
{
    Emulator emu(prog);
    DynInst di;
    std::uint64_t steps = 0;
    while (steps < max_steps && emu.step(di))
        ++steps;
    EXPECT_TRUE(emu.halted()) << "program did not halt";
    std::map<std::uint64_t, std::uint64_t> out;
    for (std::uint64_t a : addrs)
        out[a] = emu.memory().read64(a);
    return out;
}

/**
 * Straight-line function with many simultaneously-live values: sums
 * and stores n values, each kept live to the end.
 */
IRFunction
manyLiveValues(unsigned n, std::vector<std::uint64_t> &out_addrs)
{
    IRFunction func;
    IRBuilder b(func);
    b.startBlock();
    VReg base = func.newIntVReg();
    b.loadAddr(base, Program::dataBase);
    std::vector<VReg> vals;
    for (unsigned i = 0; i < n; ++i) {
        VReg v = func.newIntVReg();
        b.loadImm(v, static_cast<std::int32_t>(i * 3 + 1));
        vals.push_back(v);
    }
    // Chain-sum so everything stays live until used.
    VReg acc = func.newIntVReg();
    b.loadImm(acc, 0);
    for (unsigned i = 0; i < n; ++i)
        b.op3(Opcode::ADDQ, acc, acc, vals[i]);
    b.store(acc, base, 0);
    for (unsigned i = 0; i < n; ++i)
        b.store(vals[i], base, static_cast<std::int32_t>(8 + 8 * i));
    b.halt();
    func.numberInsts();
    out_addrs.push_back(Program::dataBase);
    for (unsigned i = 0; i < n; ++i)
        out_addrs.push_back(Program::dataBase + 8 + 8 * i);
    return func;
}

TEST(Interference, SimultaneouslyLiveValuesInterfere)
{
    std::vector<std::uint64_t> addrs;
    IRFunction func = manyLiveValues(4, addrs);
    func.numberInsts();
    Cfg cfg(func);
    Liveness live(func, cfg);
    InterferenceGraph graph = buildInterference(func, cfg, live);
    // All four values are simultaneously live -> pairwise interference.
    // vregs: 0 = base, 1..4 = vals, 5 = acc.
    for (VReg a = 1; a <= 4; ++a)
        for (VReg c = 1; c <= 4; ++c)
            if (a != c)
                EXPECT_TRUE(graph.interferes(a, c)) << a << " " << c;
}

TEST(Interference, DisjointRangesDoNotInterfere)
{
    IRFunction func;
    IRBuilder b(func);
    b.startBlock();
    VReg base = func.newIntVReg();
    b.loadAddr(base, Program::dataBase);
    VReg x = func.newIntVReg();
    VReg y = func.newIntVReg();
    b.loadImm(x, 1);
    b.store(x, base, 0);     // x dies here
    b.loadImm(y, 2);         // y born after x's death
    b.store(y, base, 8);
    b.halt();
    func.numberInsts();
    Cfg cfg(func);
    Liveness live(func, cfg);
    InterferenceGraph graph = buildInterference(func, cfg, live);
    EXPECT_FALSE(graph.interferes(x, y));
    EXPECT_TRUE(graph.interferes(base, x));
    EXPECT_TRUE(graph.interferes(base, y));
}

TEST(RegAlloc, ColorsRespectInterference)
{
    std::vector<std::uint64_t> addrs;
    IRFunction func = manyLiveValues(10, addrs);
    AllocResult alloc = allocateRegisters(func, AllocConfig{});
    ASSERT_TRUE(alloc.success);
    EXPECT_EQ(alloc.spilledVRegs, 0u);

    func.numberInsts();
    Cfg cfg(func);
    Liveness live(func, cfg);
    InterferenceGraph graph = buildInterference(func, cfg, live);
    for (VReg a = 0; a < func.numVRegs(); ++a) {
        for (VReg c = a + 1; c < func.numVRegs(); ++c) {
            if (graph.interferes(a, c) && alloc.colorOf[a] != regNone &&
                alloc.colorOf[c] != regNone) {
                EXPECT_NE(alloc.colorOf[a], alloc.colorOf[c])
                    << "vregs " << a << "," << c;
            }
        }
    }
}

TEST(RegAlloc, SpillsWhenStarved)
{
    std::vector<std::uint64_t> addrs;
    IRFunction func = manyLiveValues(12, addrs);
    AllocConfig starved;
    starved.numIntColors = 4;
    AllocResult alloc = allocateRegisters(func, starved);
    ASSERT_TRUE(alloc.success);
    EXPECT_GT(alloc.spilledVRegs, 0u);
}

TEST(RegAlloc, StarvedAllocationStillComputesCorrectly)
{
    // The correctness property: spilled code == unspilled code.
    std::vector<std::uint64_t> addrs;
    IRFunction ample_func = manyLiveValues(12, addrs);
    AllocResult ample = allocateRegisters(ample_func, AllocConfig{});
    ASSERT_TRUE(ample.success);
    auto ref = runAndCapture(lower(ample_func, ample).program, addrs);

    std::vector<std::uint64_t> addrs2;
    IRFunction starved_func = manyLiveValues(12, addrs2);
    AllocConfig starved;
    starved.numIntColors = 4;
    AllocResult tight = allocateRegisters(starved_func, starved);
    ASSERT_TRUE(tight.success);
    auto got = runAndCapture(lower(starved_func, tight).program, addrs2);

    EXPECT_EQ(ref, got);
}

TEST(RegAlloc, NoSpillModeReportsFailure)
{
    std::vector<std::uint64_t> addrs;
    IRFunction func = manyLiveValues(12, addrs);
    AllocConfig cfg;
    cfg.numIntColors = 4;
    cfg.allowSpill = false;
    AllocResult alloc = allocateRegisters(func, cfg);
    EXPECT_FALSE(alloc.success);
}

TEST(Lower, BranchDisplacementsResolve)
{
    IRFunction func;
    IRBuilder b(func);
    VReg i = func.newIntVReg();
    VReg base = func.newIntVReg();
    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.loadImm(i, 5);
    BlockId head = b.startBlock();
    b.opImm(Opcode::SUBQ, i, i, 1);
    b.branch(Opcode::BNE, i, head);
    b.startBlock();
    b.store(i, base, 0);
    b.halt();
    func.numberInsts();

    AllocResult alloc = allocateRegisters(func, AllocConfig{});
    ASSERT_TRUE(alloc.success);
    LowerResult low = lower(func, alloc);

    auto result = runAndCapture(low.program, {Program::dataBase});
    EXPECT_EQ(result[Program::dataBase], 0u);

    // Index maps must be mutually inverse.
    for (std::uint32_t s = 0; s < low.program.size(); ++s)
        EXPECT_EQ(low.staticOfIrId[low.irIdOfStatic[s]], s);
}

TEST(Lower, RvpMarkingChangesOpcode)
{
    IRFunction func;
    IRBuilder b(func);
    VReg base = func.newIntVReg();
    VReg x = func.newIntVReg();
    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.load(x, base, 0);          // the load to mark
    b.store(x, base, 8);
    b.halt();
    func.numberInsts();

    // Find the load's IR id.
    std::uint32_t load_ir = UINT32_MAX;
    for (std::uint32_t id = 0; id < func.numInsts(); ++id)
        if (func.instAt(id).op == Opcode::LDQ)
            load_ir = id;
    ASSERT_NE(load_ir, UINT32_MAX);

    AllocResult alloc = allocateRegisters(func, AllocConfig{});
    ASSERT_TRUE(alloc.success);
    std::unordered_set<std::uint32_t> marked{load_ir};
    LowerResult low = lower(func, alloc, &marked);

    unsigned rvp_loads = 0;
    for (const StaticInst &si : low.program.insts)
        rvp_loads += si.op == Opcode::RVP_LDQ;
    EXPECT_EQ(rvp_loads, 1u);

    // Marked load must execute identically to the unmarked one.
    LowerResult plain = lower(func, alloc);
    auto a = runAndCapture(low.program, {Program::dataBase + 8});
    auto c = runAndCapture(plain.program, {Program::dataBase + 8});
    EXPECT_EQ(a, c);
}

/**
 * Random-program equivalence sweep: generate a random (terminating)
 * integer program, allocate with ample and with starved register
 * files, and require identical results.
 */
class AllocEquivalence : public ::testing::TestWithParam<std::uint64_t>
{};

IRFunction
randomProgram(std::uint64_t seed, std::vector<std::uint64_t> &addrs)
{
    Rng rng(seed);
    IRFunction func;
    IRBuilder b(func);
    b.startBlock();
    VReg base = func.newIntVReg();
    b.loadAddr(base, Program::dataBase);

    unsigned num_vals = 4 + static_cast<unsigned>(rng.nextBelow(10));
    std::vector<VReg> vals;
    for (unsigned i = 0; i < num_vals; ++i) {
        VReg v = func.newIntVReg();
        b.loadImm(v, static_cast<std::int32_t>(rng.nextRange(-100, 100)));
        vals.push_back(v);
    }

    // A bounded loop mutating random values.
    VReg counter = func.newIntVReg();
    b.loadImm(counter, static_cast<std::int32_t>(rng.nextRange(3, 12)));
    BlockId head = b.startBlock();
    unsigned body_len = 3 + static_cast<unsigned>(rng.nextBelow(8));
    for (unsigned i = 0; i < body_len; ++i) {
        VReg d = vals[rng.nextBelow(vals.size())];
        VReg s1 = vals[rng.nextBelow(vals.size())];
        VReg s2 = vals[rng.nextBelow(vals.size())];
        switch (rng.nextBelow(4)) {
          case 0: b.op3(Opcode::ADDQ, d, s1, s2); break;
          case 1: b.op3(Opcode::SUBQ, d, s1, s2); break;
          case 2: b.op3(Opcode::XOR, d, s1, s2); break;
          default: b.opImm(Opcode::ADDQ, d, s1,
                           static_cast<std::int32_t>(rng.nextRange(-5, 5)));
        }
    }
    b.opImm(Opcode::SUBQ, counter, counter, 1);
    b.branch(Opcode::BNE, counter, head);
    b.startBlock();
    for (unsigned i = 0; i < num_vals; ++i) {
        b.store(vals[i], base, static_cast<std::int32_t>(8 * i));
        addrs.push_back(Program::dataBase + 8 * i);
    }
    b.halt();
    func.numberInsts();
    return func;
}

TEST_P(AllocEquivalence, StarvedMatchesAmple)
{
    for (std::uint64_t sub = 0; sub < 10; ++sub) {
        std::uint64_t seed = GetParam() * 1000 + sub;
        std::vector<std::uint64_t> addrs1, addrs2;
        IRFunction f1 = randomProgram(seed, addrs1);
        IRFunction f2 = randomProgram(seed, addrs2);

        AllocResult ample = allocateRegisters(f1, AllocConfig{});
        ASSERT_TRUE(ample.success);
        AllocConfig starved_cfg;
        starved_cfg.numIntColors = 5;
        AllocResult starved = allocateRegisters(f2, starved_cfg);
        ASSERT_TRUE(starved.success);

        auto ref = runAndCapture(lower(f1, ample).program, addrs1);
        auto got = runAndCapture(lower(f2, starved).program, addrs2);
        EXPECT_EQ(ref, got) << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(RvpRealloc, CombinesDeadRegisterLiveRanges)
{
    // Producer writes a value; later a load produces the same value.
    // After reallocation both must share one architectural register.
    IRFunction func;
    IRBuilder b(func);
    VReg base = func.newIntVReg();
    VReg producer = func.newIntVReg();
    VReg consumer = func.newIntVReg();
    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.loadImm(producer, 42);          // producer def (ir id 3)
    b.store(producer, base, 0);       // last use of producer
    b.load(consumer, base, 0);        // loads 42: correlated!
    b.store(consumer, base, 8);
    b.halt();
    func.numberInsts();

    std::uint32_t producer_ir = UINT32_MAX, consumer_ir = UINT32_MAX;
    for (std::uint32_t id = 0; id < func.numInsts(); ++id) {
        const IRInst &inst = func.instAt(id);
        if (inst.op == Opcode::LDA && inst.imm == 42)
            producer_ir = id;
        if (inst.op == Opcode::LDQ)
            consumer_ir = id;
    }
    ASSERT_NE(producer_ir, UINT32_MAX);
    ASSERT_NE(consumer_ir, UINT32_MAX);

    std::vector<ReuseCandidate> cands;
    cands.push_back({consumer_ir, producer_ir, false, 1.0});
    ReallocResult rr = reallocForReuse(func, AllocConfig{}, cands);
    ASSERT_TRUE(rr.success);
    ASSERT_TRUE(rr.honored[0]);
    EXPECT_EQ(rr.alloc.colorOf[producer], rr.alloc.colorOf[consumer]);

    // The re-allocated program must still be correct.
    auto got = runAndCapture(lower(func, rr.alloc).program,
                             {Program::dataBase + 8});
    EXPECT_EQ(got[Program::dataBase + 8], 42u);
}

TEST(RvpRealloc, RejectsOverlappingLiveRanges)
{
    // Producer stays live past the consumer: combining is illegal.
    IRFunction func;
    IRBuilder b(func);
    VReg base = func.newIntVReg();
    VReg producer = func.newIntVReg();
    VReg consumer = func.newIntVReg();
    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.loadImm(producer, 42);
    b.load(consumer, base, 0);
    b.store(consumer, base, 8);
    b.store(producer, base, 16);   // producer still live here
    b.halt();
    func.numberInsts();

    std::uint32_t producer_ir = 3, consumer_ir = 4;
    ASSERT_EQ(func.instAt(producer_ir).op, Opcode::LDA);
    ASSERT_EQ(func.instAt(consumer_ir).op, Opcode::LDQ);

    std::vector<ReuseCandidate> cands;
    cands.push_back({consumer_ir, producer_ir, false, 1.0});
    ReallocResult rr = reallocForReuse(func, AllocConfig{}, cands);
    ASSERT_TRUE(rr.success);
    EXPECT_FALSE(rr.honored[0]);
    EXPECT_EQ(rr.droppedForLegality, 1u);
}

TEST(RvpRealloc, LvrGetsLoopExclusiveRegister)
{
    // A loop with one LVR load and several other defs; after the
    // reallocation no other instruction in the loop may write the
    // load's register.
    IRFunction func;
    IRBuilder b(func);
    VReg base = func.newIntVReg();
    VReg i = func.newIntVReg();
    VReg x = func.newIntVReg();      // the LVR load target
    VReg t1 = func.newIntVReg();
    VReg t2 = func.newIntVReg();
    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.loadImm(i, 10);
    BlockId head = b.startBlock();
    b.load(x, base, 0);              // last-value reuse
    b.op3(Opcode::ADDQ, t1, x, i);
    b.opImm(Opcode::ADDQ, t2, t1, 7);
    b.store(t2, base, 8);
    b.opImm(Opcode::SUBQ, i, i, 1);
    b.branch(Opcode::BNE, i, head);
    b.startBlock();
    b.halt();
    func.numberInsts();

    std::uint32_t load_ir = UINT32_MAX;
    for (std::uint32_t id = 0; id < func.numInsts(); ++id)
        if (func.instAt(id).op == Opcode::LDQ)
            load_ir = id;
    ASSERT_NE(load_ir, UINT32_MAX);

    std::vector<ReuseCandidate> cands;
    ReuseCandidate lvr;
    lvr.consumerIr = load_ir;
    lvr.isLvr = true;
    lvr.priority = 5.0;
    cands.push_back(lvr);
    ReallocResult rr = reallocForReuse(func, AllocConfig{}, cands);
    ASSERT_TRUE(rr.success);
    ASSERT_TRUE(rr.honored[0]);

    RegIndex xreg = rr.alloc.colorOf[x];
    EXPECT_NE(rr.alloc.colorOf[t1], xreg);
    EXPECT_NE(rr.alloc.colorOf[t2], xreg);
    EXPECT_NE(rr.alloc.colorOf[i], xreg);
}

TEST(RvpRealloc, LvrOutsideLoopAbandoned)
{
    IRFunction func;
    IRBuilder b(func);
    VReg base = func.newIntVReg();
    VReg x = func.newIntVReg();
    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.load(x, base, 0);
    b.store(x, base, 8);
    b.halt();
    func.numberInsts();

    std::vector<ReuseCandidate> cands;
    ReuseCandidate lvr;
    lvr.consumerIr = 3;   // the load
    lvr.isLvr = true;
    cands.push_back(lvr);
    ReallocResult rr = reallocForReuse(func, AllocConfig{}, cands);
    ASSERT_TRUE(rr.success);
    EXPECT_FALSE(rr.honored[0]);
    EXPECT_EQ(rr.droppedForLegality, 1u);
}

TEST(RvpRealloc, PruningPreservesColorability)
{
    // More LVR candidates than can possibly hold exclusive registers
    // in a starved file: the pass must drop some and still succeed.
    IRFunction func;
    IRBuilder b(func);
    VReg base = func.newIntVReg();
    VReg i = func.newIntVReg();
    std::vector<VReg> loads;
    b.startBlock();
    b.loadAddr(base, Program::dataBase);
    b.loadImm(i, 10);
    BlockId head = b.startBlock();
    VReg acc = func.newIntVReg();
    b.loadImm(acc, 0);
    for (unsigned k = 0; k < 6; ++k) {
        VReg v = func.newIntVReg();
        b.load(v, base, static_cast<std::int32_t>(8 * k));
        b.op3(Opcode::ADDQ, acc, acc, v);
        loads.push_back(v);
    }
    b.store(acc, base, 64);
    b.opImm(Opcode::SUBQ, i, i, 1);
    b.branch(Opcode::BNE, i, head);
    b.startBlock();
    b.halt();
    func.numberInsts();

    std::vector<ReuseCandidate> cands;
    for (std::uint32_t id = 0; id < func.numInsts(); ++id) {
        if (func.instAt(id).op == Opcode::LDQ) {
            ReuseCandidate lvr;
            lvr.consumerIr = id;
            lvr.isLvr = true;
            lvr.priority = static_cast<double>(id);
            cands.push_back(lvr);
        }
    }
    ASSERT_EQ(cands.size(), 6u);

    AllocConfig tiny;
    tiny.numIntColors = 6;
    ReallocResult rr = reallocForReuse(func, tiny, cands);
    ASSERT_TRUE(rr.success);
    unsigned honored = 0;
    for (bool h : rr.honored)
        honored += h;
    EXPECT_LT(honored, 6u);
    EXPECT_GT(rr.droppedForColoring, 0u);
}

} // namespace
} // namespace rvp
